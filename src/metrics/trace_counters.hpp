// Trace-derived counters: aggregates a captured trace into per-kind
// record counts. Used by the bench harness and the sweep summary to
// report what a scenario's trace contains without re-parsing it, and by
// tests to assert that instrumentation coverage does not silently
// regress (a subsystem whose count drops to zero stopped emitting).
#pragma once

#include <array>
#include <cstdint>

#include "common/json.hpp"
#include "trace/record.hpp"
#include "trace/tracer.hpp"

namespace hpas::metrics {

struct TraceCounters {
  std::uint64_t total = 0;    ///< records present in the capture
  std::uint64_t dropped = 0;  ///< ring overwrites (0 for sink captures)
  std::array<std::uint64_t, trace::kNumRecordKinds> by_kind{};
};

/// Tallies every record in `file` by kind.
TraceCounters count_trace(const trace::TraceFile& file);

/// {"total": N, "dropped": D, "by_kind": {"event_fired": ..., ...}}
/// with only non-zero kinds listed, in RecordKind order.
Json trace_counters_json(const TraceCounters& counters);

}  // namespace hpas::metrics
