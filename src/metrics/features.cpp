#include "metrics/features.hpp"

#include "common/stats.hpp"

namespace hpas::metrics {

const std::vector<std::string>& feature_statistic_names() {
  static const std::vector<std::string> kNames = {
      "mean", "std",  "min",  "max",  "p05",  "p25",
      "p50",  "p75",  "p95",  "skew", "kurt", "slope"};
  return kNames;
}

std::size_t features_per_metric() { return feature_statistic_names().size(); }

std::vector<double> extract_series_features(std::span<const double> values) {
  if (values.empty())
    return std::vector<double>(features_per_metric(), 0.0);
  const Summary s = summarize(values);
  return {
      s.mean,
      s.stddev,
      s.min,
      s.max,
      percentile(values, 5.0),
      percentile(values, 25.0),
      percentile(values, 50.0),
      percentile(values, 75.0),
      percentile(values, 95.0),
      s.skewness,
      s.kurtosis,
      index_slope(values),
  };
}

std::vector<double> extract_features(const MetricStore& store,
                                     const std::vector<MetricId>& ids,
                                     double t0, double t1,
                                     std::vector<std::string>* feature_names) {
  std::vector<double> features;
  features.reserve(ids.size() * features_per_metric());
  if (feature_names != nullptr) {
    feature_names->clear();
    feature_names->reserve(ids.size() * features_per_metric());
  }
  for (const auto& id : ids) {
    std::vector<double> window;
    if (store.contains(id)) window = store.series(id).values_between(t0, t1);
    const auto series_features = extract_series_features(window);
    features.insert(features.end(), series_features.begin(),
                    series_features.end());
    if (feature_names != nullptr) {
      for (const auto& stat : feature_statistic_names())
        feature_names->push_back(id.full_name() + "#" + stat);
    }
  }
  return features;
}

}  // namespace hpas::metrics
