// Metric naming, following the paper's LDMS convention.
//
// The paper writes metrics as "<metric>::<sampler>", e.g. "user::procstat"
// (the `user` field of /proc/stat collected by the procstat sampler) or
// "L2_RQSTS:MISS::spapiHASW" (a PAPI hardware counter). HPAS keeps that
// exact convention so experiment output reads like the paper.
#pragma once

#include <functional>
#include <string>
#include <string_view>

namespace hpas::metrics {

struct MetricId {
  std::string metric;   ///< e.g. "user", "Memfree", "L2_RQSTS:MISS"
  std::string sampler;  ///< e.g. "procstat", "meminfo", "spapiHASW"

  std::string full_name() const { return metric + "::" + sampler; }

  friend bool operator==(const MetricId&, const MetricId&) = default;
  friend auto operator<=>(const MetricId&, const MetricId&) = default;
};

/// Parses "user::procstat" back into its parts. A name without "::" is
/// treated as a metric with an empty sampler.
inline MetricId parse_metric_id(std::string_view full) {
  const auto pos = full.rfind("::");
  if (pos == std::string_view::npos) return {std::string(full), ""};
  return {std::string(full.substr(0, pos)), std::string(full.substr(pos + 2))};
}

}  // namespace hpas::metrics

template <>
struct std::hash<hpas::metrics::MetricId> {
  std::size_t operator()(const hpas::metrics::MetricId& id) const noexcept {
    const std::size_t h1 = std::hash<std::string>{}(id.metric);
    const std::size_t h2 = std::hash<std::string>{}(id.sampler);
    return h1 ^ (h2 + 0x9e3779b97f4a7c15ULL + (h1 << 6) + (h1 >> 2));
  }
};
