// A timestamped series of samples for one metric on one node.
#pragma once

#include <span>
#include <vector>

namespace hpas::metrics {

/// Append-only (timestamp, value) series. Timestamps are seconds (sim time
/// or wall time since collection start) and must be non-decreasing --
/// enforced, because downstream feature extraction assumes ordered samples.
class TimeSeries {
 public:
  void append(double timestamp, double value);

  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  std::span<const double> values() const { return values_; }
  std::span<const double> timestamps() const { return timestamps_; }

  double value_at(std::size_t i) const;
  double timestamp_at(std::size_t i) const;

  /// Values with timestamps in [t0, t1); used to window out warmup.
  std::vector<double> values_between(double t0, double t1) const;

  /// First-difference series (v[i+1]-v[i]); converts cumulative counters
  /// (e.g. NIC flit counts) into per-interval rates. Empty for size < 2.
  std::vector<double> deltas() const;

  void clear();

 private:
  std::vector<double> timestamps_;
  std::vector<double> values_;
};

}  // namespace hpas::metrics
