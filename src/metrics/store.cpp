#include "metrics/store.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace hpas::metrics {

void MetricStore::record(const MetricId& id, double timestamp, double value) {
  series_[id].append(timestamp, value);
}

bool MetricStore::contains(const MetricId& id) const {
  return series_.count(id) > 0;
}

const TimeSeries& MetricStore::series(const MetricId& id) const {
  const auto it = series_.find(id);
  require(it != series_.end(), "MetricStore: unknown metric " + id.full_name());
  return it->second;
}

std::vector<MetricId> MetricStore::metric_ids() const {
  std::vector<MetricId> ids;
  ids.reserve(series_.size());
  for (const auto& [id, ts] : series_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

void MetricStore::clear() { series_.clear(); }

}  // namespace hpas::metrics
