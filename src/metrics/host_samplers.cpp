#include "metrics/host_samplers.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace hpas::metrics {
namespace {

double find_sample(const std::vector<Sample>& set, const std::string& metric) {
  for (const Sample& s : set)
    if (s.id.metric == metric) return s.value;
  throw ConfigError("cpu_utilization_between: missing metric " + metric);
}

}  // namespace

ProcStatSampler::ProcStatSampler(std::string path) : path_(std::move(path)) {}

std::vector<Sample> ProcStatSampler::sample() {
  std::ifstream in(path_);
  if (!in) throw SystemError("cannot open " + path_);
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag != "cpu") continue;  // aggregate line only
    double user = 0, nice = 0, sys = 0, idle = 0, iowait = 0;
    ls >> user >> nice >> sys >> idle >> iowait;
    return {
        {{"user", name()}, user},  {{"nice", name()}, nice},
        {{"sys", name()}, sys},    {{"idle", name()}, idle},
        {{"iowait", name()}, iowait},
    };
  }
  throw SystemError("no aggregate cpu line in " + path_);
}

MemInfoSampler::MemInfoSampler(std::string path) : path_(std::move(path)) {}

std::vector<Sample> MemInfoSampler::sample() {
  std::ifstream in(path_);
  if (!in) throw SystemError("cannot open " + path_);
  std::vector<Sample> out;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string key;
    double kb = 0;
    ls >> key >> kb;
    if (!key.empty() && key.back() == ':') key.pop_back();
    if (key == "MemTotal") out.push_back({{"MemTotal", name()}, kb});
    if (key == "MemFree") out.push_back({{"Memfree", name()}, kb});
    if (key == "Cached") out.push_back({{"Cached", name()}, kb});
    if (key == "Active") out.push_back({{"Active", name()}, kb});
  }
  require(!out.empty(), "no recognized fields in " + path_);
  return out;
}

VmStatSampler::VmStatSampler(std::string path) : path_(std::move(path)) {}

std::vector<Sample> VmStatSampler::sample() {
  std::ifstream in(path_);
  if (!in) throw SystemError("cannot open " + path_);
  std::vector<Sample> out;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string key;
    double value = 0;
    ls >> key >> value;
    if (key == "pgfault" || key == "pgmajfault" || key == "pgpgin" ||
        key == "pgpgout") {
      out.push_back({{key, name()}, value});
    }
  }
  return out;
}

double cpu_utilization_between(const std::vector<Sample>& before,
                               const std::vector<Sample>& after) {
  const double busy_before = find_sample(before, "user") +
                             find_sample(before, "nice") +
                             find_sample(before, "sys");
  const double busy_after = find_sample(after, "user") +
                            find_sample(after, "nice") +
                            find_sample(after, "sys");
  double total_before = busy_before + find_sample(before, "idle") +
                        find_sample(before, "iowait");
  double total_after = busy_after + find_sample(after, "idle") +
                       find_sample(after, "iowait");
  const double total = total_after - total_before;
  if (total <= 0.0) return 0.0;
  return (busy_after - busy_before) / total;
}

}  // namespace hpas::metrics
