// Statistical feature extraction from monitoring time series.
//
// The paper's diagnosis framework (Sec. 5.1, following Tuncer et al.)
// computes statistical features over windows of each collected metric and
// feeds them to tree-based classifiers. We extract, per metric series:
// mean, stddev, min, max, 5th/25th/50th/75th/95th percentiles, skewness,
// kurtosis, and the linear slope over the window (the slope is what
// separates memleak's monotone growth from memeater's flat plateau).
#pragma once

#include <string>
#include <vector>

#include "metrics/store.hpp"

namespace hpas::metrics {

/// Names of the per-series statistics, in extraction order.
const std::vector<std::string>& feature_statistic_names();

/// Number of statistics extracted per metric series.
std::size_t features_per_metric();

/// Extracts the feature vector for one series window.
std::vector<double> extract_series_features(std::span<const double> values);

/// Extracts a flat feature vector for a whole store: for each metric id
/// (sorted by full name -- deterministic), the per-series statistics over
/// values in [t0, t1). Metrics missing from the window contribute zeros so
/// vectors from different runs align.
///
/// `feature_names` (optional out) receives "metric::sampler#stat" labels.
std::vector<double> extract_features(
    const MetricStore& store, const std::vector<MetricId>& ids, double t0,
    double t1, std::vector<std::string>* feature_names = nullptr);

}  // namespace hpas::metrics
