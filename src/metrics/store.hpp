// Storage for collected monitoring data of one node/run.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "metrics/metric_id.hpp"
#include "metrics/time_series.hpp"

namespace hpas::metrics {

/// All time series collected for one entity (one node, one run).
/// Metric ids are created lazily on first append.
class MetricStore {
 public:
  void record(const MetricId& id, double timestamp, double value);

  bool contains(const MetricId& id) const;
  const TimeSeries& series(const MetricId& id) const;  ///< throws if absent

  /// All metric ids, sorted by full name for deterministic iteration.
  std::vector<MetricId> metric_ids() const;

  std::size_t metric_count() const { return series_.size(); }
  void clear();

 private:
  std::unordered_map<MetricId, TimeSeries> series_;
};

}  // namespace hpas::metrics
