#include "metrics/trace_counters.hpp"

namespace hpas::metrics {

TraceCounters count_trace(const trace::TraceFile& file) {
  TraceCounters counters;
  counters.total = static_cast<std::uint64_t>(file.records.size());
  counters.dropped = file.dropped;
  for (const trace::TraceRecord& r : file.records) {
    const auto kind = static_cast<std::size_t>(r.kind);
    if (kind < counters.by_kind.size()) ++counters.by_kind[kind];
  }
  return counters;
}

Json trace_counters_json(const TraceCounters& counters) {
  Json doc = Json::object();
  doc.set("total", static_cast<double>(counters.total));
  doc.set("dropped", static_cast<double>(counters.dropped));
  Json kinds = Json::object();
  for (std::size_t i = 0; i < counters.by_kind.size(); ++i) {
    if (counters.by_kind[i] == 0) continue;
    kinds.set(
        std::string(trace::record_kind_name(static_cast<trace::RecordKind>(i))),
        static_cast<double>(counters.by_kind[i]));
  }
  doc.set("by_kind", std::move(kinds));
  return doc;
}

}  // namespace hpas::metrics
