// CSV import/export for MetricStore, for offline analysis and plotting.
#pragma once

#include <iosfwd>
#include <string>

#include "metrics/store.hpp"

namespace hpas::metrics {

/// Writes a wide CSV: first column "timestamp", one column per metric
/// (full "metric::sampler" names), one row per collection epoch. All series
/// are expected to share timestamps (the collector guarantees this);
/// missing values are left empty.
void write_csv(std::ostream& os, const MetricStore& store);

/// Convenience wrapper writing to a file; throws SystemError on failure.
void write_csv_file(const std::string& path, const MetricStore& store);

}  // namespace hpas::metrics
