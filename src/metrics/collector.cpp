#include "metrics/collector.hpp"

#include "common/error.hpp"

namespace hpas::metrics {

Collector::Collector(MetricStore* store) : store_(store) {
  require(store != nullptr, "Collector: store must not be null");
}

void Collector::add_sampler(std::shared_ptr<Sampler> sampler) {
  require(sampler != nullptr, "Collector: sampler must not be null");
  samplers_.push_back(std::move(sampler));
}

void Collector::collect(double timestamp) {
  for (const auto& sampler : samplers_) {
    for (const Sample& s : sampler->sample()) {
      if (store_enabled_) store_->record(s.id, timestamp, s.value);
      if (sink_ != nullptr) sink_->on_sample(s.id, timestamp, s.value);
    }
  }
}

}  // namespace hpas::metrics
