#include "metrics/csv.hpp"

#include <fstream>
#include <map>
#include <ostream>

#include "common/error.hpp"

namespace hpas::metrics {

void write_csv(std::ostream& os, const MetricStore& store) {
  const auto ids = store.metric_ids();
  os << "timestamp";
  for (const auto& id : ids) os << ',' << id.full_name();
  os << '\n';

  // Union of all timestamps, then per-series cursors.
  std::map<double, std::size_t> stamp_rows;
  for (const auto& id : ids) {
    const auto& ts = store.series(id);
    for (std::size_t i = 0; i < ts.size(); ++i) stamp_rows.emplace(ts.timestamp_at(i), 0);
  }
  std::vector<std::size_t> cursor(ids.size(), 0);
  for (const auto& [stamp, unused] : stamp_rows) {
    os << stamp;
    for (std::size_t c = 0; c < ids.size(); ++c) {
      const auto& ts = store.series(ids[c]);
      os << ',';
      if (cursor[c] < ts.size() && ts.timestamp_at(cursor[c]) == stamp) {
        os << ts.value_at(cursor[c]);
        ++cursor[c];
      }
    }
    os << '\n';
  }
}

void write_csv_file(const std::string& path, const MetricStore& store) {
  std::ofstream out(path);
  if (!out) throw SystemError("cannot open for writing: " + path);
  write_csv(out, store);
  if (!out) throw SystemError("write failed: " + path);
}

}  // namespace hpas::metrics
