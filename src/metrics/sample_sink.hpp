// SampleSink: streaming observer for monitoring samples.
//
// A Collector normally appends every sample to its MetricStore; a sink
// sees the same (id, timestamp, value) stream as it is produced. The
// dataset factory attaches one per scenario and disables storage, so
// features are folded online and the store never materializes -- peak
// memory stays O(metrics x window) regardless of scenario duration.
//
// Sinks are observation-only: they must not mutate the world or the
// collector, so attaching one cannot perturb simulation determinism.
#pragma once

#include "metrics/metric_id.hpp"

namespace hpas::metrics {

class SampleSink {
 public:
  virtual ~SampleSink() = default;

  /// Called once per sample, in collection order (samplers in
  /// registration order, samples in each sampler's emission order,
  /// timestamps non-decreasing) -- the exact order MetricStore::record
  /// would have seen.
  virtual void on_sample(const MetricId& id, double timestamp,
                         double value) = 0;
};

}  // namespace hpas::metrics
