// Sampler interface: the LDMS-plugin equivalent.
//
// A sampler, when polled, emits a set of (metric, value) pairs. Samplers
// exist for the host OS (/proc/stat, /proc/meminfo) and for the simulated
// cluster (each sim node exposes procstat/meminfo/spapi/aries_nic_mmr
// samplers backed by the resource models' counters).
#pragma once

#include <string>
#include <vector>

#include "metrics/metric_id.hpp"

namespace hpas::metrics {

struct Sample {
  MetricId id;
  double value = 0.0;
};

class Sampler {
 public:
  virtual ~Sampler() = default;

  /// The sampler name that appears after "::" in metric names.
  virtual std::string name() const = 0;

  /// Polls current values. Counter-style metrics report cumulative values
  /// (monotone); gauge-style metrics report instantaneous values, matching
  /// /proc semantics.
  virtual std::vector<Sample> sample() = 0;
};

}  // namespace hpas::metrics
