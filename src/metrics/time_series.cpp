#include "metrics/time_series.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace hpas::metrics {

void TimeSeries::append(double timestamp, double value) {
  require(timestamps_.empty() || timestamp >= timestamps_.back(),
          "TimeSeries: timestamps must be non-decreasing");
  timestamps_.push_back(timestamp);
  values_.push_back(value);
}

double TimeSeries::value_at(std::size_t i) const {
  require(i < values_.size(), "TimeSeries: index out of range");
  return values_[i];
}

double TimeSeries::timestamp_at(std::size_t i) const {
  require(i < timestamps_.size(), "TimeSeries: index out of range");
  return timestamps_[i];
}

std::vector<double> TimeSeries::values_between(double t0, double t1) const {
  const auto lo = std::lower_bound(timestamps_.begin(), timestamps_.end(), t0);
  const auto hi = std::lower_bound(timestamps_.begin(), timestamps_.end(), t1);
  const auto lo_idx = static_cast<std::size_t>(lo - timestamps_.begin());
  const auto hi_idx = static_cast<std::size_t>(hi - timestamps_.begin());
  return {values_.begin() + static_cast<std::ptrdiff_t>(lo_idx),
          values_.begin() + static_cast<std::ptrdiff_t>(hi_idx)};
}

std::vector<double> TimeSeries::deltas() const {
  if (values_.size() < 2) return {};
  std::vector<double> out;
  out.reserve(values_.size() - 1);
  for (std::size_t i = 1; i < values_.size(); ++i)
    out.push_back(values_[i] - values_[i - 1]);
  return out;
}

void TimeSeries::clear() {
  timestamps_.clear();
  values_.clear();
}

}  // namespace hpas::metrics
