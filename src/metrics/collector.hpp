// Collector: polls a set of samplers and appends to a MetricStore.
//
// The driving cadence is external: the simulator schedules collect() every
// simulated second (the paper collects 2121 metrics at 1 Hz per node);
// native tooling calls it from a wall-clock loop.
#pragma once

#include <memory>
#include <vector>

#include "metrics/sample_sink.hpp"
#include "metrics/sampler.hpp"
#include "metrics/store.hpp"

namespace hpas::metrics {

class Collector {
 public:
  explicit Collector(MetricStore* store);

  /// Registers a sampler; the collector shares ownership so samplers can
  /// also be held by the models that feed them.
  void add_sampler(std::shared_ptr<Sampler> sampler);

  /// Polls every sampler once, tagging all values with `timestamp`.
  void collect(double timestamp);

  /// Streams every collected sample to `sink` in collection order, in
  /// addition to (or, with set_store_enabled(false), instead of) the
  /// store. Non-owning; nullptr detaches.
  void set_sink(SampleSink* sink) { sink_ = sink; }

  /// When disabled, collect() skips MetricStore::record entirely -- the
  /// store stays empty and per-collector memory stays O(1). Used by the
  /// streaming dataset path; storage is on by default.
  void set_store_enabled(bool enabled) { store_enabled_ = enabled; }

  std::size_t sampler_count() const { return samplers_.size(); }

 private:
  MetricStore* store_;  // non-owning; outlives the collector by contract
  SampleSink* sink_ = nullptr;  // non-owning streaming observer
  bool store_enabled_ = true;
  std::vector<std::shared_ptr<Sampler>> samplers_;
};

}  // namespace hpas::metrics
