// Collector: polls a set of samplers and appends to a MetricStore.
//
// The driving cadence is external: the simulator schedules collect() every
// simulated second (the paper collects 2121 metrics at 1 Hz per node);
// native tooling calls it from a wall-clock loop.
#pragma once

#include <memory>
#include <vector>

#include "metrics/sampler.hpp"
#include "metrics/store.hpp"

namespace hpas::metrics {

class Collector {
 public:
  explicit Collector(MetricStore* store);

  /// Registers a sampler; the collector shares ownership so samplers can
  /// also be held by the models that feed them.
  void add_sampler(std::shared_ptr<Sampler> sampler);

  /// Polls every sampler once, tagging all values with `timestamp`.
  void collect(double timestamp);

  std::size_t sampler_count() const { return samplers_.size(); }

 private:
  MetricStore* store_;  // non-owning; outlives the collector by contract
  std::vector<std::shared_ptr<Sampler>> samplers_;
};

}  // namespace hpas::metrics
