// Samplers that read the real host's /proc, mirroring LDMS's procstat,
// meminfo and vmstat plugins. These power the native spot-checks (e.g.
// verifying that the real cpuoccupy generator consumes the requested CPU
// percentage, paper Fig. 2) and make the monitoring layer usable outside
// the simulator.
#pragma once

#include <string>

#include "metrics/sampler.hpp"

namespace hpas::metrics {

/// Reads the aggregate "cpu" line of /proc/stat. Metrics: user, nice, sys,
/// idle, iowait (cumulative jiffies), named exactly as the paper references
/// them (e.g. "user::procstat").
class ProcStatSampler final : public Sampler {
 public:
  /// `path` overridable for testing with a synthetic file.
  explicit ProcStatSampler(std::string path = "/proc/stat");

  std::string name() const override { return "procstat"; }
  std::vector<Sample> sample() override;

 private:
  std::string path_;
};

/// Reads /proc/meminfo. Metrics: MemTotal, Memfree, Cached, Active (kB).
/// Note "Memfree" (not "MemFree") -- the paper's WBAS case study references
/// the metric as "Memfree::meminfo", so we keep that spelling.
class MemInfoSampler final : public Sampler {
 public:
  explicit MemInfoSampler(std::string path = "/proc/meminfo");

  std::string name() const override { return "meminfo"; }
  std::vector<Sample> sample() override;

 private:
  std::string path_;
};

/// Reads /proc/vmstat. Metrics: pgfault, pgmajfault, pgpgin, pgpgout
/// (cumulative).
class VmStatSampler final : public Sampler {
 public:
  explicit VmStatSampler(std::string path = "/proc/vmstat");

  std::string name() const override { return "vmstat"; }
  std::vector<Sample> sample() override;

 private:
  std::string path_;
};

/// Utility: total CPU utilization fraction [0,1] between two procstat
/// sample sets (user+nice+sys over total), as used in Fig. 2.
double cpu_utilization_between(const std::vector<Sample>& before,
                               const std::vector<Sample>& after);

}  // namespace hpas::metrics
