#include "sim/cluster.hpp"

namespace hpas::sim {

std::unique_ptr<World> make_voltrino_world(const VoltrinoPreset& preset) {
  Topology topo = Topology::two_tier(preset.switches, preset.nodes_per_switch,
                                     preset.nic_bw, preset.inter_switch_bw);
  return std::make_unique<World>(preset.node, std::move(topo), preset.fs);
}

std::unique_ptr<World> make_chameleon_world(const ChameleonPreset& preset) {
  Topology topo = Topology::star(preset.nodes, preset.nic_bw);
  return std::make_unique<World>(preset.node, std::move(topo), preset.fs);
}

std::unique_ptr<World> make_dragonfly_world(const DragonflyPreset& preset) {
  Topology topo = Topology::dragonfly(
      preset.groups, preset.routers_per_group, preset.nodes_per_router,
      preset.nic_bw, preset.local_bw, preset.global_bw);
  return std::make_unique<World>(preset.node, std::move(topo), preset.fs);
}

}  // namespace hpas::sim
