#include "sim/maxmin.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace hpas::sim {
namespace {

void validate_inputs(double capacity, std::span<const double> demands,
                     std::span<const double> weights) {
  require(capacity >= 0.0, "max_min: negative capacity");
  require(demands.size() == weights.size(), "max_min: size mismatch");
  // Validate once up front; the round loop used to re-check every entry
  // each round, turning an O(n) scan into O(n^2) require calls.
  for (std::size_t i = 0; i < demands.size(); ++i) {
    require(demands[i] >= 0.0 && weights[i] > 0.0,
            "max_min: demands must be >= 0, weights > 0");
  }
}

}  // namespace

std::vector<double> max_min_allocate(double capacity,
                                     std::span<const double> demands) {
  const std::vector<double> weights(demands.size(), 1.0);
  return max_min_allocate_weighted(capacity, demands, weights);
}

std::vector<double> max_min_allocate_weighted(
    double capacity, std::span<const double> demands,
    std::span<const double> weights) {
  validate_inputs(capacity, demands, weights);
  const std::size_t n = demands.size();
  std::vector<double> alloc(n, 0.0);
  if (n == 0) return alloc;

  // Iteratively freeze consumers whose demand is below their fair share
  // and redistribute; terminates in <= n rounds. The rounds walk a
  // shrinking index list compacted in ascending order, so every sum and
  // subtraction happens in exactly the sequence the original all-index
  // scan used -- the allocations are bit-identical, only the dead work
  // on already-frozen entries is gone.
  std::vector<std::size_t> active(n);
  for (std::size_t i = 0; i < n; ++i) active[i] = i;
  std::vector<std::size_t> still;
  still.reserve(n);
  double remaining = capacity;
  for (std::size_t round = 0; round < n; ++round) {
    double active_weight = 0.0;
    for (const std::size_t i : active) active_weight += weights[i];
    if (active_weight <= 0.0 || remaining <= 0.0) break;

    const double level = remaining / active_weight;  // per unit weight
    bool froze_any = false;
    still.clear();
    for (const std::size_t i : active) {
      if (demands[i] <= level * weights[i]) {
        alloc[i] = demands[i];
        remaining -= demands[i];
        froze_any = true;
      } else {
        still.push_back(i);
      }
    }
    if (!froze_any) {
      // Everyone still active is saturated: split the remainder by weight.
      for (const std::size_t i : active) alloc[i] = level * weights[i];
      remaining = 0.0;
      break;
    }
    active.swap(still);
    if (active.empty()) break;
  }
  return alloc;
}

void max_min_allocate_into(double capacity, std::span<const double> demands,
                           std::span<double> alloc, MaxMinScratch& scratch) {
  require(capacity >= 0.0, "max_min: negative capacity");
  require(alloc.size() == demands.size(), "max_min: size mismatch");
  const std::size_t n = demands.size();
  for (std::size_t i = 0; i < n; ++i) {
    require(demands[i] >= 0.0, "max_min: demands must be >= 0, weights > 0");
    alloc[i] = 0.0;
  }
  if (n == 0) return;

  // Unweighted specialization of the loop above: a weight of 1.0
  // multiplies exactly and a sequential sum of 1.0s is the exact
  // (double-representable) count, so comparing against `level` and
  // dividing by the count reproduces the weighted solver bit-for-bit.
  scratch.active.resize(n);
  for (std::size_t i = 0; i < n; ++i) scratch.active[i] = i;
  scratch.next.clear();
  double remaining = capacity;
  for (std::size_t round = 0; round < n; ++round) {
    if (scratch.active.empty() || remaining <= 0.0) break;
    const double level =
        remaining / static_cast<double>(scratch.active.size());
    bool froze_any = false;
    scratch.next.clear();
    for (const std::size_t i : scratch.active) {
      if (demands[i] <= level) {
        alloc[i] = demands[i];
        remaining -= demands[i];
        froze_any = true;
      } else {
        scratch.next.push_back(i);
      }
    }
    if (!froze_any) {
      for (const std::size_t i : scratch.active) alloc[i] = level;
      remaining = 0.0;
      break;
    }
    scratch.active.swap(scratch.next);
  }
}

std::vector<double> max_min_allocate_weighted_sorted(
    double capacity, std::span<const double> demands,
    std::span<const double> weights) {
  validate_inputs(capacity, demands, weights);
  const std::size_t n = demands.size();
  std::vector<double> alloc(n, 0.0);
  if (n == 0) return alloc;

  // Sort by normalized demand: once consumer k saturates at the current
  // water level, every consumer after it saturates too, so one pass
  // suffices. Ties break by index for determinism.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) {
              const double ka = demands[a] / weights[a];
              const double kb = demands[b] / weights[b];
              if (ka != kb) return ka < kb;
              return a < b;
            });

  double remaining = capacity;
  double active_weight = 0.0;
  for (std::size_t i = 0; i < n; ++i) active_weight += weights[i];
  for (std::size_t p = 0; p < n; ++p) {
    if (remaining <= 0.0 || active_weight <= 0.0) break;
    const double level = remaining / active_weight;
    const std::size_t i = order[p];
    if (demands[i] <= level * weights[i]) {
      alloc[i] = demands[i];
      remaining -= demands[i];
      active_weight -= weights[i];
    } else {
      // This and every later consumer is saturated at the final level.
      for (std::size_t q = p; q < n; ++q)
        alloc[order[q]] = level * weights[order[q]];
      break;
    }
  }
  return alloc;
}

}  // namespace hpas::sim
