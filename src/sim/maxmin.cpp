#include "sim/maxmin.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace hpas::sim {

std::vector<double> max_min_allocate(double capacity,
                                     std::span<const double> demands) {
  const std::vector<double> weights(demands.size(), 1.0);
  return max_min_allocate_weighted(capacity, demands, weights);
}

std::vector<double> max_min_allocate_weighted(
    double capacity, std::span<const double> demands,
    std::span<const double> weights) {
  require(capacity >= 0.0, "max_min: negative capacity");
  require(demands.size() == weights.size(), "max_min: size mismatch");
  const std::size_t n = demands.size();
  std::vector<double> alloc(n, 0.0);
  if (n == 0) return alloc;

  std::vector<bool> frozen(n, false);
  double remaining = capacity;
  // Iteratively freeze consumers whose demand is below their fair share
  // and redistribute; terminates in <= n rounds.
  for (std::size_t round = 0; round < n; ++round) {
    double active_weight = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      require(demands[i] >= 0.0 && weights[i] > 0.0,
              "max_min: demands must be >= 0, weights > 0");
      if (!frozen[i]) active_weight += weights[i];
    }
    if (active_weight <= 0.0 || remaining <= 0.0) break;

    const double level = remaining / active_weight;  // per unit weight
    bool froze_any = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (frozen[i]) continue;
      if (demands[i] <= level * weights[i]) {
        alloc[i] = demands[i];
        remaining -= demands[i];
        frozen[i] = true;
        froze_any = true;
      }
    }
    if (!froze_any) {
      // Everyone still active is saturated: split the remainder by weight.
      for (std::size_t i = 0; i < n; ++i) {
        if (!frozen[i]) alloc[i] = level * weights[i];
      }
      remaining = 0.0;
      break;
    }
  }
  return alloc;
}

}  // namespace hpas::sim
