#include "sim/world.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "common/error.hpp"
#include "common/log.hpp"
#include "sim/samplers.hpp"
#include "trace/tracer.hpp"

namespace hpas::sim {
namespace {

/// Deferred-integration chunk log bound. When an update would push the
/// log past this, every domain is settled first and the log truncated, so
/// memory stays O(1) in simulated time. The bound only affects *when*
/// replay happens, never its arithmetic.
constexpr std::size_t kMaxChunkLog = 1024;

bool env_full_recompute() {
  const char* env = std::getenv("HPAS_FULL_RECOMPUTE");
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}

int env_sim_shards() {
  const char* env = std::getenv("HPAS_SIM_SHARDS");
  if (env == nullptr || env[0] == '\0') return 1;
  return std::atoi(env);
}

/// Minimum work items (domains, tasks) per shard before a per-epoch
/// fork/join pays for its barrier. Purely a performance heuristic: the
/// serial and sharded paths run identical arithmetic in identical
/// per-accumulator order, so which one executes is unobservable.
constexpr std::size_t kFanoutGrain = 8;

}  // namespace

World::World(NodeConfig node_config, Topology topology, FsConfig fs_config)
    : network_(std::move(topology)), fs_(fs_config) {
  const int n = network_.topology().num_nodes;
  nodes_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    nodes_.push_back(std::make_unique<Node>(i, node_config));
  node_tasks_.resize(static_cast<std::size_t>(n));
  node_dirty_.assign(static_cast<std::size_t>(n), 0);
  node_cursor_.assign(static_cast<std::size_t>(n), 0);
  node_active_.assign(static_cast<std::size_t>(n), 0);
  node_shard_.assign(static_cast<std::size_t>(n), 0);
  shard_node_begin_ = {0, n};
  shard_eta_.assign(1, 0.0);
  full_recompute_ = env_full_recompute();
  const int shards = env_sim_shards();
  if (shards > 1) set_shards(shards);
  oom_ = [](World& world, Task& requester) {
    log_warn("sim: OOM on node ", requester.node(), "; killing '",
             requester.name(), "'");
    world.kill_task(&requester);
  };
}

Node& World::node(int id) {
  require(id >= 0 && id < num_nodes(), "World: node id out of range");
  return *nodes_[static_cast<std::size_t>(id)];
}

const Node& World::node(int id) const {
  require(id >= 0 && id < num_nodes(), "World: node id out of range");
  return *nodes_[static_cast<std::size_t>(id)];
}

Task* World::spawn_task(const std::string& name, int node_id, int core,
                        const TaskProfile& profile, const Phase& initial,
                        Task::NextPhaseFn next_phase) {
  require(node_id >= 0 && node_id < num_nodes(),
          "spawn_task: node id out of range");
  require(core >= 0 && core < node(node_id).config().cores,
          "spawn_task: core out of range");
  auto task = std::make_unique<Task>(name, node_id, core, profile,
                                     std::move(next_phase));
  const std::uint32_t trace_id = next_trace_id_++;
  task->set_tracing(tracer_, trace_id);
  task->set_world(this);
  if (tracer_) {
    tracer_->set_label(trace_id, name);
    tracer_->emit(trace::RecordKind::kTaskSpawn, trace_id,
                  static_cast<std::uint16_t>(node_id),
                  static_cast<std::uint64_t>(core));
  }
  task->set_phase(initial);
  Task* raw = task.get();
  tasks_.push_back(std::move(task));
  task_ptrs_.push_back(raw);
  node_tasks_[static_cast<std::size_t>(node_id)].push_back(raw);
  update_event();
  return raw;
}

void World::kill_task(Task* task) {
  require(task != nullptr, "kill_task: null task");
  if (tracer_) {
    tracer_->emit(trace::RecordKind::kTaskKill, task->trace_id(),
                  static_cast<std::uint16_t>(task->node()), 0,
                  task->allocated_bytes());
  }
  if (task->allocated_bytes() > 0.0) {
    node(task->node()).adjust_memory(-task->allocated_bytes());
    task->set_allocated_bytes(0.0);
  }
  // set_phase(done) settles the victim's counter domain through the
  // chunk log; the not-yet-logged interval since the last update is
  // deliberately dropped for the victim (a killed task accrues nothing
  // for the partial interval it died in -- the original eager loop had
  // the same semantics because the erase happened before its update).
  task->set_phase(Phase::done());
  task->killed_ = true;
  task_ptrs_.erase(std::remove(task_ptrs_.begin(), task_ptrs_.end(), task),
                   task_ptrs_.end());
  auto& residents = node_tasks_[static_cast<std::size_t>(task->node())];
  residents.erase(std::remove(residents.begin(), residents.end(), task),
                  residents.end());
  if (!in_update_) update_event();
}

bool World::allocate_memory(Task* task, double delta_bytes) {
  require(task != nullptr, "allocate_memory: null task");
  Node& host = node(task->node());
  if (!host.adjust_memory(delta_bytes)) {
    if (tracer_) {
      tracer_->emit(trace::RecordKind::kOom, task->trace_id(),
                    static_cast<std::uint16_t>(task->node()), 0, delta_bytes,
                    host.memory_free());
    }
    if (oom_) oom_(*this, *task);
    return false;
  }
  task->set_allocated_bytes(task->allocated_bytes() + delta_bytes);
  if (tracer_) {
    tracer_->emit(trace::RecordKind::kMemoryAlloc, task->trace_id(),
                  static_cast<std::uint16_t>(task->node()), 0, delta_bytes,
                  host.memory_used());
  }
  return true;
}

// ---------------------------------------------------------------------------
// Deferred counter integration.
//
// advance_tasks() moves every active task's remaining-work eagerly (the
// completion scan needs it each event) but only *logs* the dt chunk; the
// counter arithmetic below runs later, when a domain is next observed.
// Replay walks chunks outermost and a domain's members innermost, in
// task_ptrs_ order -- the exact fold order the eager loop used for every
// shared accumulator -- and advances each task's shadow
// (sync_remaining_, sync_latency_) through the same advance_step calls,
// so progressed/eff_dt and every += reproduce bit-for-bit.
//
// The invariant that makes membership-by-current-phase exact: any phase
// change (and any profile mutation or rate reinstall) settles the domains
// it touches *first*, so within a domain's pending replay range no
// member's phase, profile, or rates ever changed.
// ---------------------------------------------------------------------------

void World::apply_counter_chunk(Task& task, double dt) {
  const double before = task.sync_remaining_;
  const TaskRates rates = task.rates_;
  Task::advance_step(dt, rates.progress, task.completion_tolerance(),
                     task.sync_remaining_, task.sync_latency_);
  const double progressed = before - task.sync_remaining_;
  const double eff_dt =
      rates.progress > 0.0 ? progressed / rates.progress : 0.0;

  NodeCounters& c = nodes_[static_cast<std::size_t>(task.node_)]->counters();
  TaskCounters& t = task.counters_;
  switch (task.phase_.kind) {
    case PhaseKind::kCompute:
    case PhaseKind::kStream: {
      if (task.profile_.account_user) {
        c.cpu_user_seconds += rates.cpu_share * dt;
      } else {
        c.cpu_sys_seconds += rates.cpu_share * dt;
      }
      c.instructions += rates.instr_rate * eff_dt;
      c.l1_misses += rates.l1_miss_rate * eff_dt;
      c.l2_misses += rates.l2_miss_rate * eff_dt;
      c.l3_misses += rates.l3_miss_rate * eff_dt;
      c.dram_bytes += rates.dram_rate * eff_dt;
      t.cpu_seconds += rates.cpu_share * dt;
      t.instructions += rates.instr_rate * eff_dt;
      t.l2_misses += rates.l2_miss_rate * eff_dt;
      t.l3_misses += rates.l3_miss_rate * eff_dt;
      t.dram_bytes += rates.dram_rate * eff_dt;
      break;
    }
    case PhaseKind::kMessage: {
      t.bytes_sent += progressed;
      if (defer_nic_) {
        // Sharded replay: the network domain must not write into node
        // domains mid-epoch. Buffer the deposit as an epoch message; the
        // coordinator drains the list at the barrier in this exact order.
        nic_messages_.push_back(
            NicMessage{task.node_, task.phase_.peer_node, progressed});
      } else {
        c.nic_tx_bytes += progressed;
        if (task.phase_.peer_node >= 0) {
          nodes_[static_cast<std::size_t>(task.phase_.peer_node)]
              ->counters()
              .nic_rx_bytes += progressed;
        }
      }
      break;
    }
    case PhaseKind::kIo: {
      FsCounters& f = fs_.counters();
      t.io_work += progressed;
      switch (task.phase_.io_kind) {
        case IoKind::kMetadata: f.metadata_ops += progressed; break;
        case IoKind::kRead: f.bytes_read += progressed; break;
        case IoKind::kWrite: f.bytes_written += progressed; break;
      }
      break;
    }
    default:
      break;  // kSleep advances the shadow but writes no counters
  }
}

void World::sync_node_domain(int id) {
  const auto uid = static_cast<std::size_t>(id);
  std::uint32_t& cursor = node_cursor_[uid];
  const auto end = static_cast<std::uint32_t>(chunk_dt_.size());
  if (cursor == end) return;
  if (node_active_[uid] == 0) {
    // No compute/stream/sleep resident since the last settle (every
    // membership change settles first), so the range is a no-op.
    cursor = end;
    return;
  }
  const std::vector<Task*>& residents = node_tasks_[uid];
  for (std::uint32_t k = cursor; k < end; ++k) {
    const double dt = chunk_dt_[k];
    for (Task* task : residents) {
      const PhaseKind kind = task->phase_.kind;
      if (kind == PhaseKind::kCompute || kind == PhaseKind::kStream ||
          kind == PhaseKind::kSleep) {
        apply_counter_chunk(*task, dt);
      }
    }
  }
  cursor = end;
}

void World::sync_network_domain(bool defer_nic) {
  const auto end = static_cast<std::uint32_t>(chunk_dt_.size());
  if (net_cursor_ == end) return;
  if (message_tasks_ == 0) {
    net_cursor_ = end;
    return;
  }
  defer_nic_ = defer_nic;
  for (std::uint32_t k = net_cursor_; k < end; ++k) {
    const double dt = chunk_dt_[k];
    for (Task* task : task_ptrs_) {
      if (task->phase_.kind == PhaseKind::kMessage)
        apply_counter_chunk(*task, dt);
    }
  }
  defer_nic_ = false;
  net_cursor_ = end;
}

void World::sync_fs_domain() {
  const auto end = static_cast<std::uint32_t>(chunk_dt_.size());
  if (fs_cursor_ == end) return;
  if (io_tasks_ == 0) {
    fs_cursor_ = end;
    return;
  }
  for (std::uint32_t k = fs_cursor_; k < end; ++k) {
    const double dt = chunk_dt_[k];
    for (Task* task : task_ptrs_) {
      if (task->phase_.kind == PhaseKind::kIo) apply_counter_chunk(*task, dt);
    }
  }
  fs_cursor_ = end;
}

void World::sync_all_domains() {
  if (!chunk_dt_.empty()) {
    if (worth_fanout(static_cast<std::size_t>(num_nodes()))) {
      // Epoch fork: every shard settles its own node domains; the network
      // and filesystem domains ride on the first and last shard. NIC
      // deposits cross domains, so they travel as epoch messages drained
      // after the join.
      const int fs_shard = shards_ - 1;
      sim_.for_each_shard([this, fs_shard](int s) {
        const auto us = static_cast<std::size_t>(s);
        for (int id = shard_node_begin_[us]; id < shard_node_begin_[us + 1];
             ++id) {
          sync_node_domain(id);
        }
        if (s == 0) sync_network_domain(/*defer_nic=*/true);
        if (s == fs_shard) sync_fs_domain();
      });
      drain_nic_messages();
    } else {
      for (int i = 0; i < num_nodes(); ++i) sync_node_domain(i);
      sync_network_domain();
      sync_fs_domain();
    }
  }
  chunk_dt_.clear();
  std::fill(node_cursor_.begin(), node_cursor_.end(), 0u);
  net_cursor_ = 0;
  fs_cursor_ = 0;
}

void World::sync_domain_of(PhaseKind kind, int node_id) {
  switch (kind) {
    case PhaseKind::kCompute:
    case PhaseKind::kStream:
    case PhaseKind::kSleep:
      sync_node_domain(node_id);
      break;
    case PhaseKind::kMessage:
      sync_network_domain();
      break;
    case PhaseKind::kIo:
      sync_fs_domain();
      break;
    default:
      break;  // idle/done belong to no counter domain
  }
}

void World::note_domain_entry(PhaseKind kind, int node_id, int delta) {
  switch (kind) {
    case PhaseKind::kCompute:
    case PhaseKind::kStream:
    case PhaseKind::kSleep:
      node_active_[static_cast<std::size_t>(node_id)] += delta;
      break;
    case PhaseKind::kMessage:
      message_tasks_ += delta;
      break;
    case PhaseKind::kIo:
      io_tasks_ += delta;
      break;
    default:
      break;
  }
}

void World::mark_node_dirty(int id) {
  if (node_dirty_[static_cast<std::size_t>(id)]) return;
  node_dirty_[static_cast<std::size_t>(id)] = 1;
  dirty_nodes_.push_back(id);
}

void World::mark_all_dirty() {
  for (int i = 0; i < num_nodes(); ++i) mark_node_dirty(i);
  net_dirty_ = true;
  fs_dirty_ = true;
}

void World::on_task_phase_change(Task& task, const Phase& next) {
  const PhaseKind old_kind = task.phase_.kind;
  sync_domain_of(old_kind, task.node_);
  sync_domain_of(next.kind, task.node_);
  note_domain_entry(old_kind, task.node_, -1);
  note_domain_entry(next.kind, task.node_, +1);
  mark_node_dirty(task.node_);
  if (old_kind == PhaseKind::kMessage || next.kind == PhaseKind::kMessage)
    net_dirty_ = true;
  if (old_kind == PhaseKind::kIo || next.kind == PhaseKind::kIo)
    fs_dirty_ = true;
}

void World::on_task_phase_installed(Task& task) {
  task.sync_remaining_ = task.remaining_;
  task.sync_latency_ = task.latency_left_;
}

void World::on_task_profile_mutation(Task& task) {
  // Settle the pending range with the *old* profile (the eager loop would
  // have integrated it before the mutation took effect), then make the
  // next recompute re-solve everything the profile feeds.
  sync_domain_of(task.phase_.kind, task.node_);
  mark_node_dirty(task.node_);
  if (task.phase_.kind == PhaseKind::kMessage) net_dirty_ = true;
  if (task.phase_.kind == PhaseKind::kIo) fs_dirty_ = true;
}

void World::set_full_recompute(bool on) {
  if (on == full_recompute_) return;
  sync_all_domains();
  full_recompute_ = on;
}

void World::set_shards(int shards) {
  const int n = num_nodes();
  if (shards < 1) shards = 1;
  if (shards > n) shards = n;
  if (shards == shards_) return;
  // Settle under the old partitioning first: a repartition must never
  // split a pending replay range between owners.
  sync_all_domains();
  shards_ = shards;
  sim_.configure_shards(shards);
  shard_node_begin_.assign(static_cast<std::size_t>(shards) + 1, 0);
  for (int s = 0; s <= shards; ++s) {
    shard_node_begin_[static_cast<std::size_t>(s)] = static_cast<int>(
        static_cast<long long>(n) * s / shards);
  }
  for (int s = 0; s < shards; ++s) {
    for (int id = shard_node_begin_[static_cast<std::size_t>(s)];
         id < shard_node_begin_[static_cast<std::size_t>(s) + 1]; ++id) {
      node_shard_[static_cast<std::size_t>(id)] = s;
    }
  }
  shard_eta_.assign(static_cast<std::size_t>(shards), 0.0);
}

bool World::worth_fanout(std::size_t items) const {
  return shards_ > 1 && !full_recompute_ &&
         items >= kFanoutGrain * static_cast<std::size_t>(shards_);
}

void World::drain_nic_messages() {
  // List order is the serial (chunk outer, task_ptrs_ inner) fold order,
  // so each NIC counter receives the exact += sequence of inline
  // application.
  for (const NicMessage& m : nic_messages_) {
    nodes_[static_cast<std::size_t>(m.src_node)]->counters().nic_tx_bytes +=
        m.bytes;
    if (m.peer_node >= 0) {
      nodes_[static_cast<std::size_t>(m.peer_node)]->counters().nic_rx_bytes +=
          m.bytes;
    }
  }
  nic_messages_.clear();
}

// ---------------------------------------------------------------------------

void World::advance_tasks(double dt) {
  // dt == 0 still runs: Task::advance clamps within-tolerance residues to
  // zero so handle_completions sees them.
  if (dt < 0.0) return;
  if (chunk_dt_.size() >= kMaxChunkLog) sync_all_domains();
  chunk_dt_.push_back(dt);
  if (worth_fanout(task_ptrs_.size())) {
    // Each task is advanced exactly once by its node's owning shard;
    // advance() touches only task-local state, so partitioning by node
    // instead of task_ptrs_ order is unobservable.
    sim_.for_each_shard([this, dt](int s) {
      const auto us = static_cast<std::size_t>(s);
      for (int id = shard_node_begin_[us]; id < shard_node_begin_[us + 1];
           ++id) {
        for (Task* task : node_tasks_[static_cast<std::size_t>(id)]) {
          if (task->active()) task->advance(dt);
        }
      }
    });
  } else {
    for (Task* task : task_ptrs_) {
      if (!task->active()) continue;
      task->advance(dt);
    }
  }
  // Reference mode: integrate every counter immediately, exactly like the
  // original eager loop (the replay arithmetic is the same; the chunk is
  // just consumed on the spot).
  if (full_recompute_) sync_all_domains();
}

void World::handle_completions() {
  // Controllers may finish tasks or wake others; iterate to a fixed point
  // but bound the passes to avoid a buggy controller looping forever.
  for (int pass = 0; pass < 64; ++pass) {
    bool any = false;
    // Snapshot: controllers can spawn/kill during iteration. (Reused
    // buffer; the killed_ flag replaces the old O(n) membership re-scan.)
    completion_scratch_ = task_ptrs_;
    for (Task* task : completion_scratch_) {
      if (task->killed_) continue;  // killed by an earlier controller
      if (!task->active()) continue;
      if (task->remaining() <= 0.0 && task->latency_left() <= 0.0) {
        task->set_phase(task->next_phase());
        any = true;
      }
    }
    if (!any) return;
  }
  throw InvariantError("World: phase-completion cascade did not settle");
}

void World::recompute_rates() {
  if (full_recompute_) mark_all_dirty();

  // Each dirty domain settles its deferred counters (with the rates that
  // were in effect) before new rates are installed. Clean domains keep
  // their installed rates -- bit-identical, because the solvers are
  // deterministic functions of inputs that have not changed.
  const std::size_t dirty_domains = dirty_nodes_.size() +
                                    (net_dirty_ ? 1u : 0u) +
                                    (fs_dirty_ ? 1u : 0u);
  if (worth_fanout(dirty_domains)) {
    // Epoch fork: domains are solved in parallel. Every solver is a
    // deterministic function of inputs no other shard writes (a node's
    // residents; the message/IO task sets, whose phases are frozen during
    // the region), and the dirty-node iteration order only groups work --
    // domains share no accumulators, so per-domain results are identical
    // to the serial loop's.
    const int fs_shard = shards_ - 1;
    sim_.for_each_shard([this, fs_shard](int s) {
      for (const int id : dirty_nodes_) {
        if (shard_of(id) != s) continue;
        sync_node_domain(id);
        nodes_[static_cast<std::size_t>(id)]->compute_rates(
            node_tasks_[static_cast<std::size_t>(id)]);
      }
      if (s == 0 && net_dirty_) {
        sync_network_domain(/*defer_nic=*/true);
        flow_scratch_.clear();
        for (Task* task : task_ptrs_) {
          if (task->phase().kind == PhaseKind::kMessage) {
            flow_scratch_.push_back(
                Flow{task, task->node(), task->phase().peer_node, 0.0});
          }
        }
        if (!flow_scratch_.empty()) network_.compute_rates(flow_scratch_);
      }
      if (s == fs_shard && fs_dirty_) {
        sync_fs_domain();
        fs_.compute_rates(task_ptrs_);
      }
    });
    drain_nic_messages();
    for (const int id : dirty_nodes_)
      node_dirty_[static_cast<std::size_t>(id)] = 0;
    dirty_nodes_.clear();
    net_dirty_ = false;
    fs_dirty_ = false;
  } else {
    for (const int id : dirty_nodes_) {
      sync_node_domain(id);
      nodes_[static_cast<std::size_t>(id)]->compute_rates(
          node_tasks_[static_cast<std::size_t>(id)]);
      node_dirty_[static_cast<std::size_t>(id)] = 0;
    }
    dirty_nodes_.clear();

    if (net_dirty_) {
      sync_network_domain();
      flow_scratch_.clear();
      for (Task* task : task_ptrs_) {
        if (task->phase().kind == PhaseKind::kMessage) {
          flow_scratch_.push_back(
              Flow{task, task->node(), task->phase().peer_node, 0.0});
        }
      }
      if (!flow_scratch_.empty()) network_.compute_rates(flow_scratch_);
      net_dirty_ = false;
    }

    if (fs_dirty_) {
      sync_fs_domain();
      fs_.compute_rates(task_ptrs_);
      fs_dirty_ = false;
    }
  }

  if (tracer_ && tracer_->enabled()) trace_rates();
}

/// Emits the rate picture the max-min models just installed: one
/// aggregate record, one per node with active residents (CPU share and
/// DRAM bandwidth totals -- the membw/cachecopy contention channel), and
/// one per active task (progress rate). This is what lets trace_diff say
/// "share 0.42 vs 0.39 on node 7" instead of "a CSV changed".
void World::trace_rates() {
  tracer_->emit(trace::RecordKind::kRateRecompute, 0, 0, task_ptrs_.size());
  agg_scratch_.assign(static_cast<std::size_t>(num_nodes()), RateAgg{});
  for (const Task* task : task_ptrs_) {
    if (!task->active()) continue;
    RateAgg& a = agg_scratch_[static_cast<std::size_t>(task->node())];
    ++a.active;
    a.cpu_share += task->rates().cpu_share;
    a.dram_rate += task->rates().dram_rate;
  }
  for (std::size_t i = 0; i < agg_scratch_.size(); ++i) {
    if (agg_scratch_[i].active == 0) continue;
    tracer_->emit(trace::RecordKind::kNodeRates,
                  static_cast<std::uint32_t>(i), agg_scratch_[i].active, 0,
                  agg_scratch_[i].cpu_share, agg_scratch_[i].dram_rate);
  }
  for (const Task* task : task_ptrs_) {
    if (!task->active()) continue;
    tracer_->emit(trace::RecordKind::kTaskRate, task->trace_id(),
                  static_cast<std::uint16_t>(task->phase().kind), 0,
                  task->rates().progress, task->rates().cpu_share);
  }
}

void World::schedule_next_completion() {
  sim_.cancel(pending_completion_);
  pending_completion_ = EventHandle{};
  double eta = std::numeric_limits<double>::infinity();
  if (worth_fanout(task_ptrs_.size())) {
    // min over IEEE doubles is exact and commutative, so scanning each
    // shard's residents and min-reducing the per-shard results is
    // bit-identical to the serial fold over task_ptrs_.
    shard_eta_.assign(static_cast<std::size_t>(shards_),
                      std::numeric_limits<double>::infinity());
    sim_.for_each_shard([this](int s) {
      double local = std::numeric_limits<double>::infinity();
      for (int id = shard_node_begin_[static_cast<std::size_t>(s)];
           id < shard_node_begin_[static_cast<std::size_t>(s) + 1]; ++id) {
        for (const Task* task : node_tasks_[static_cast<std::size_t>(id)])
          local = std::min(local, task->eta());
      }
      shard_eta_[static_cast<std::size_t>(s)] = local;
    });
    for (const double e : shard_eta_) eta = std::min(eta, e);
  } else {
    for (const Task* task : task_ptrs_) eta = std::min(eta, task->eta());
  }
  if (!std::isfinite(eta)) return;
  // Event times quantize to the double grid at `now`; a very fast task
  // (e.g. a loopback message at ~1e12 B/s) can have an eta below one ulp,
  // which would schedule an event at exactly `now` and spin forever.
  // Land at least a few ulps in the future so advance() always makes
  // progress through the residue.
  const double now = sim_.now();
  const double ulp =
      std::nextafter(now, std::numeric_limits<double>::infinity()) - now;
  const double min_step = std::max(4.0 * ulp, 1e-15);
  double target = now + std::max(eta, min_step);
  if (target <= now) target = std::nextafter(now, 1e300);
  pending_completion_ =
      sim_.schedule_at(target, [this] { update_event(); });
}

void World::update_event() {
  if (in_update_) return;  // controllers triggering re-entrant updates
  in_update_ = true;
  advance_tasks(sim_.now() - last_update_);
  last_update_ = sim_.now();
  handle_completions();
  recompute_rates();
  in_update_ = false;
  schedule_next_completion();
}

void World::update() {
  // Public entry point: external callers may have mutated state the
  // hooks cannot see, so behave exactly like the original full loop --
  // re-solve every domain and settle every counter.
  mark_all_dirty();
  if (in_update_) return;  // the enclosing update's recompute covers it
  update_event();
  sync_all_domains();
}

void World::enable_monitoring(double period_s, metrics::SampleSink* sink,
                              int sink_node, bool store_samples) {
  require(period_s > 0.0, "enable_monitoring: period must be positive");
  require(stores_.empty(), "enable_monitoring: already enabled");
  require(sink == nullptr || (sink_node >= 0 && sink_node < num_nodes()),
          "enable_monitoring: sink_node out of range");
  for (int i = 0; i < num_nodes(); ++i) {
    stores_.push_back(std::make_unique<metrics::MetricStore>());
    auto collector = std::make_unique<metrics::Collector>(stores_.back().get());
    attach_node_samplers(*collector, *this, i);
    collector->set_store_enabled(store_samples);
    if (sink != nullptr && i == sink_node) collector->set_sink(sink);
    collectors_.push_back(std::move(collector));
  }
  sample_all(period_s);
}

void World::sample_all(double period_s) {
  // Bring rates and counters up to date, then poll every node's samplers.
  update_event();
  sync_all_domains();
  for (const auto& collector : collectors_) collector->collect(sim_.now());
  if (tracer_) {
    tracer_->emit(trace::RecordKind::kSample, 0, 0, collectors_.size(),
                  period_s);
  }
  sim_.schedule_in(period_s, [this, period_s] { sample_all(period_s); });
}

void World::attach_tracer(trace::Tracer* tracer) {
  tracer_ = tracer;
  sim_.set_tracer(tracer);
  // Adopt tasks that already exist (attach-before-spawn gives a complete
  // stream; this keeps late attachment consistent rather than silent).
  for (Task* task : task_ptrs_) {
    task->set_tracing(tracer_, task->trace_id());
    if (tracer_) tracer_->set_label(task->trace_id(), task->name());
  }
}

metrics::MetricStore& World::node_store(int id) {
  require(id >= 0 && static_cast<std::size_t>(id) < stores_.size(),
          "node_store: monitoring not enabled or id out of range");
  return *stores_[static_cast<std::size_t>(id)];
}

void World::run_until(double t) {
  sim_.run_until(t);
  // Callers read counters after run_until; settle the deferred ranges so
  // they observe exactly what the eager loop would have produced.
  sync_all_domains();
}

}  // namespace hpas::sim
