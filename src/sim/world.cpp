#include "sim/world.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/log.hpp"
#include "sim/samplers.hpp"
#include "trace/tracer.hpp"

namespace hpas::sim {

World::World(NodeConfig node_config, Topology topology, FsConfig fs_config)
    : network_(std::move(topology)), fs_(fs_config) {
  const int n = network_.topology().num_nodes;
  nodes_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    nodes_.push_back(std::make_unique<Node>(i, node_config));
  oom_ = [](World& world, Task& requester) {
    log_warn("sim: OOM on node ", requester.node(), "; killing '",
             requester.name(), "'");
    world.kill_task(&requester);
  };
}

Node& World::node(int id) {
  require(id >= 0 && id < num_nodes(), "World: node id out of range");
  return *nodes_[static_cast<std::size_t>(id)];
}

const Node& World::node(int id) const {
  require(id >= 0 && id < num_nodes(), "World: node id out of range");
  return *nodes_[static_cast<std::size_t>(id)];
}

Task* World::spawn_task(const std::string& name, int node_id, int core,
                        const TaskProfile& profile, const Phase& initial,
                        Task::NextPhaseFn next_phase) {
  require(node_id >= 0 && node_id < num_nodes(),
          "spawn_task: node id out of range");
  require(core >= 0 && core < node(node_id).config().cores,
          "spawn_task: core out of range");
  auto task = std::make_unique<Task>(name, node_id, core, profile,
                                     std::move(next_phase));
  const std::uint32_t trace_id = next_trace_id_++;
  task->set_tracing(tracer_, trace_id);
  if (tracer_) {
    tracer_->set_label(trace_id, name);
    tracer_->emit(trace::RecordKind::kTaskSpawn, trace_id,
                  static_cast<std::uint16_t>(node_id),
                  static_cast<std::uint64_t>(core));
  }
  task->set_phase(initial);
  Task* raw = task.get();
  tasks_.push_back(std::move(task));
  task_ptrs_.push_back(raw);
  update();
  return raw;
}

void World::kill_task(Task* task) {
  require(task != nullptr, "kill_task: null task");
  if (tracer_) {
    tracer_->emit(trace::RecordKind::kTaskKill, task->trace_id(),
                  static_cast<std::uint16_t>(task->node()), 0,
                  task->allocated_bytes());
  }
  if (task->allocated_bytes() > 0.0) {
    node(task->node()).adjust_memory(-task->allocated_bytes());
    task->set_allocated_bytes(0.0);
  }
  task->set_phase(Phase::done());
  task_ptrs_.erase(std::remove(task_ptrs_.begin(), task_ptrs_.end(), task),
                   task_ptrs_.end());
  if (!in_update_) update();
}

bool World::allocate_memory(Task* task, double delta_bytes) {
  require(task != nullptr, "allocate_memory: null task");
  Node& host = node(task->node());
  if (!host.adjust_memory(delta_bytes)) {
    if (tracer_) {
      tracer_->emit(trace::RecordKind::kOom, task->trace_id(),
                    static_cast<std::uint16_t>(task->node()), 0, delta_bytes,
                    host.memory_free());
    }
    if (oom_) oom_(*this, *task);
    return false;
  }
  task->set_allocated_bytes(task->allocated_bytes() + delta_bytes);
  if (tracer_) {
    tracer_->emit(trace::RecordKind::kMemoryAlloc, task->trace_id(),
                  static_cast<std::uint16_t>(task->node()), 0, delta_bytes,
                  host.memory_used());
  }
  return true;
}

void World::advance_tasks(double dt) {
  // dt == 0 still runs: Task::advance clamps within-tolerance residues to
  // zero so handle_completions sees them.
  if (dt < 0.0) return;
  for (Task* task : task_ptrs_) {
    if (!task->active()) continue;
    const double before = task->remaining();
    const TaskRates rates = task->rates();
    task->advance(dt);
    const double progressed = before - task->remaining();
    const double eff_dt =
        rates.progress > 0.0 ? progressed / rates.progress : 0.0;

    NodeCounters& c = node(task->node()).counters();
    TaskCounters& t = task->counters();
    switch (task->phase().kind) {
      case PhaseKind::kCompute:
      case PhaseKind::kStream: {
        if (task->profile().account_user) {
          c.cpu_user_seconds += rates.cpu_share * dt;
        } else {
          c.cpu_sys_seconds += rates.cpu_share * dt;
        }
        c.instructions += rates.instr_rate * eff_dt;
        c.l1_misses += rates.l1_miss_rate * eff_dt;
        c.l2_misses += rates.l2_miss_rate * eff_dt;
        c.l3_misses += rates.l3_miss_rate * eff_dt;
        c.dram_bytes += rates.dram_rate * eff_dt;
        t.cpu_seconds += rates.cpu_share * dt;
        t.instructions += rates.instr_rate * eff_dt;
        t.l2_misses += rates.l2_miss_rate * eff_dt;
        t.l3_misses += rates.l3_miss_rate * eff_dt;
        t.dram_bytes += rates.dram_rate * eff_dt;
        break;
      }
      case PhaseKind::kMessage: {
        c.nic_tx_bytes += progressed;
        t.bytes_sent += progressed;
        if (task->phase().peer_node >= 0)
          node(task->phase().peer_node).counters().nic_rx_bytes += progressed;
        break;
      }
      case PhaseKind::kIo: {
        FsCounters& f = fs_.counters();
        t.io_work += progressed;
        switch (task->phase().io_kind) {
          case IoKind::kMetadata: f.metadata_ops += progressed; break;
          case IoKind::kRead: f.bytes_read += progressed; break;
          case IoKind::kWrite: f.bytes_written += progressed; break;
        }
        break;
      }
      default:
        break;
    }
  }
}

void World::handle_completions() {
  // Controllers may finish tasks or wake others; iterate to a fixed point
  // but bound the passes to avoid a buggy controller looping forever.
  for (int pass = 0; pass < 64; ++pass) {
    bool any = false;
    // Snapshot: controllers can spawn/kill during iteration.
    const std::vector<Task*> snapshot = task_ptrs_;
    for (Task* task : snapshot) {
      if (std::find(task_ptrs_.begin(), task_ptrs_.end(), task) ==
          task_ptrs_.end())
        continue;  // killed by an earlier controller this pass
      if (!task->active()) continue;
      if (task->remaining() <= 0.0 && task->latency_left() <= 0.0) {
        task->set_phase(task->next_phase());
        any = true;
      }
    }
    if (!any) return;
  }
  throw InvariantError("World: phase-completion cascade did not settle");
}

void World::recompute_rates() {
  for (const auto& n : nodes_) n->compute_rates(task_ptrs_);

  std::vector<Flow> flows;
  for (Task* task : task_ptrs_) {
    if (task->phase().kind == PhaseKind::kMessage) {
      flows.push_back(Flow{task, task->node(), task->phase().peer_node, 0.0});
    }
  }
  if (!flows.empty()) network_.compute_rates(flows);

  fs_.compute_rates(task_ptrs_);

  if (tracer_ && tracer_->enabled()) trace_rates();
}

/// Emits the rate picture the max-min models just installed: one
/// aggregate record, one per node with active residents (CPU share and
/// DRAM bandwidth totals -- the membw/cachecopy contention channel), and
/// one per active task (progress rate). This is what lets trace_diff say
/// "share 0.42 vs 0.39 on node 7" instead of "a CSV changed".
void World::trace_rates() {
  tracer_->emit(trace::RecordKind::kRateRecompute, 0, 0, task_ptrs_.size());
  struct NodeAgg {
    std::uint16_t active = 0;
    double cpu_share = 0.0;
    double dram_rate = 0.0;
  };
  std::vector<NodeAgg> agg(static_cast<std::size_t>(num_nodes()));
  for (const Task* task : task_ptrs_) {
    if (!task->active()) continue;
    NodeAgg& a = agg[static_cast<std::size_t>(task->node())];
    ++a.active;
    a.cpu_share += task->rates().cpu_share;
    a.dram_rate += task->rates().dram_rate;
  }
  for (std::size_t i = 0; i < agg.size(); ++i) {
    if (agg[i].active == 0) continue;
    tracer_->emit(trace::RecordKind::kNodeRates,
                  static_cast<std::uint32_t>(i), agg[i].active, 0,
                  agg[i].cpu_share, agg[i].dram_rate);
  }
  for (const Task* task : task_ptrs_) {
    if (!task->active()) continue;
    tracer_->emit(trace::RecordKind::kTaskRate, task->trace_id(),
                  static_cast<std::uint16_t>(task->phase().kind), 0,
                  task->rates().progress, task->rates().cpu_share);
  }
}

void World::schedule_next_completion() {
  sim_.cancel(pending_completion_);
  pending_completion_ = EventHandle{};
  double eta = std::numeric_limits<double>::infinity();
  for (const Task* task : task_ptrs_) eta = std::min(eta, task->eta());
  if (!std::isfinite(eta)) return;
  // Event times quantize to the double grid at `now`; a very fast task
  // (e.g. a loopback message at ~1e12 B/s) can have an eta below one ulp,
  // which would schedule an event at exactly `now` and spin forever.
  // Land at least a few ulps in the future so advance() always makes
  // progress through the residue.
  const double now = sim_.now();
  const double ulp =
      std::nextafter(now, std::numeric_limits<double>::infinity()) - now;
  const double min_step = std::max(4.0 * ulp, 1e-15);
  double target = now + std::max(eta, min_step);
  if (target <= now) target = std::nextafter(now, 1e300);
  pending_completion_ =
      sim_.schedule_at(target, [this] { update(); });
}

void World::update() {
  if (in_update_) return;  // controllers triggering re-entrant updates
  in_update_ = true;
  advance_tasks(sim_.now() - last_update_);
  last_update_ = sim_.now();
  handle_completions();
  recompute_rates();
  in_update_ = false;
  schedule_next_completion();
}

void World::enable_monitoring(double period_s) {
  require(period_s > 0.0, "enable_monitoring: period must be positive");
  require(stores_.empty(), "enable_monitoring: already enabled");
  for (int i = 0; i < num_nodes(); ++i) {
    stores_.push_back(std::make_unique<metrics::MetricStore>());
    auto collector = std::make_unique<metrics::Collector>(stores_.back().get());
    attach_node_samplers(*collector, *this, i);
    collectors_.push_back(std::move(collector));
  }
  sample_all(period_s);
}

void World::sample_all(double period_s) {
  // Bring counters up to date, then poll every node's samplers.
  update();
  for (const auto& collector : collectors_) collector->collect(sim_.now());
  if (tracer_) {
    tracer_->emit(trace::RecordKind::kSample, 0, 0, collectors_.size(),
                  period_s);
  }
  sim_.schedule_in(period_s, [this, period_s] { sample_all(period_s); });
}

void World::attach_tracer(trace::Tracer* tracer) {
  tracer_ = tracer;
  sim_.set_tracer(tracer);
  // Adopt tasks that already exist (attach-before-spawn gives a complete
  // stream; this keeps late attachment consistent rather than silent).
  for (Task* task : task_ptrs_) {
    task->set_tracing(tracer_, task->trace_id());
    if (tracer_) tracer_->set_label(task->trace_id(), task->name());
  }
}

metrics::MetricStore& World::node_store(int id) {
  require(id >= 0 && static_cast<std::size_t>(id) < stores_.size(),
          "node_store: monitoring not enabled or id out of range");
  return *stores_[static_cast<std::size_t>(id)];
}

void World::run_until(double t) { sim_.run_until(t); }

}  // namespace hpas::sim
