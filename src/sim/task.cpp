#include "sim/task.hpp"

#include <limits>

#include "common/error.hpp"
#include "sim/world.hpp"
#include "trace/tracer.hpp"

namespace hpas::sim {

Task::Task(std::string name, int node, int core, TaskProfile profile,
           NextPhaseFn next_phase)
    : name_(std::move(name)),
      node_(node),
      core_(core),
      profile_(profile),
      next_phase_(std::move(next_phase)) {
  require(next_phase_ != nullptr, "Task: controller must not be null");
  require(profile_.cpu_demand > 0.0 && profile_.cpu_demand <= 1.0,
          "Task: cpu_demand must be in (0,1]");
}

TaskProfile& Task::mutable_profile() {
  if (world_ != nullptr) world_->on_task_profile_mutation(*this);
  return profile_;
}

void Task::set_phase(const Phase& phase) {
  // Settle deferred counter integration for the domains this transition
  // touches *before* the phase (and thus domain membership and rates)
  // changes, and mark them dirty for the next rate recompute.
  if (world_ != nullptr) world_->on_task_phase_change(*this, phase);
  phase_ = phase;
  remaining_ = phase.work;
  latency_left_ =
      (phase.kind == PhaseKind::kMessage) ? profile_.msg_latency_s : 0.0;
  rates_ = TaskRates{};
  if (world_ != nullptr) world_->on_task_phase_installed(*this);
  if (tracer_) {
    // a: peer node for messages, io kind for I/O, 0 otherwise.
    std::uint64_t a = 0;
    if (phase.kind == PhaseKind::kMessage) {
      a = static_cast<std::uint64_t>(static_cast<std::int64_t>(phase.peer_node));
    } else if (phase.kind == PhaseKind::kIo) {
      a = static_cast<std::uint64_t>(phase.io_kind);
    }
    tracer_->emit(trace::RecordKind::kPhaseTransition, trace_id_,
                  static_cast<std::uint16_t>(phase.kind), a, phase.work);
  }
}

double Task::completion_tolerance() const {
  // Work units span instructions (1e9) to seconds (1e0); an absolute
  // epsilon cannot cover both, and a too-small epsilon leaves a residue
  // whose eta underflows the simulator clock's double resolution. Use a
  // tolerance relative to the phase's total work.
  return std::max(1e-9, 1e-9 * phase_.work);
}

bool Task::advance(double dt) {
  if (phase_.kind == PhaseKind::kDone || phase_.kind == PhaseKind::kIdle)
    return false;
  return advance_step(dt, rates_.progress, completion_tolerance(), remaining_,
                      latency_left_);
}

double Task::eta() const {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  if (phase_.kind == PhaseKind::kDone || phase_.kind == PhaseKind::kIdle)
    return kInf;
  if (remaining_ <= completion_tolerance()) return latency_left_;
  if (rates_.progress <= 0.0) return kInf;
  return latency_left_ + remaining_ / rates_.progress;
}

}  // namespace hpas::sim
