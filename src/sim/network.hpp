// Interconnect model: topology graph + max-min fair flow rates.
//
// Vertices are compute nodes and switches; edges are *trunks* -- an
// aggregate of physical links with a per-direction capacity. Modeling the
// Aries adaptive routing exactly (per-packet spreading over redundant
// paths) is unnecessary for HPAS's purposes: its observable effect is that
// traffic between two switch groups behaves as if it shared one fat pipe
// whose capacity is the sum of the parallel links. We therefore fold
// redundant links and adaptive routing into the trunk capacity
// (DESIGN.md, substitution table), and allocate per-flow rates with
// progressive-filling max-min fairness over the trunks of each flow's
// (deterministic, shortest) path.
//
// This reproduces the two properties Fig. 6 hinges on: bandwidth
// reduction under netoccupy is real but *limited* (the shared trunk is
// fatter than one NIC), and contention only appears on shared paths.
#pragma once

#include <vector>

#include "sim/task.hpp"

namespace hpas::sim {

struct Trunk {
  int a = 0;               ///< vertex id
  int b = 0;               ///< vertex id
  double capacity = 0.0;   ///< bytes/s per direction
};

struct Topology {
  int num_nodes = 0;     ///< vertices [0, num_nodes) are compute nodes
  int num_switches = 0;  ///< vertices [num_nodes, num_nodes+num_switches)
  std::vector<Trunk> trunks;

  int vertex_count() const { return num_nodes + num_switches; }
  int switch_vertex(int s) const { return num_nodes + s; }

  /// Two-tier "Aries-like" topology: `switches` groups of
  /// `nodes_per_switch` nodes; every node connects to its switch with
  /// `nic_bw`; all switch pairs are connected by a trunk of
  /// `inter_switch_bw` (redundant links + adaptive routing folded in).
  static Topology two_tier(int switches, int nodes_per_switch, double nic_bw,
                           double inter_switch_bw);

  /// Single-switch star (the Chameleon Cloud cluster of the paper).
  static Topology star(int nodes, double nic_bw);

  /// Dragonfly-lite (the topology of the congestion studies the paper
  /// builds on, e.g. Bhatele et al.): `groups` groups of
  /// `routers_per_group` routers, `nodes_per_router` nodes per router.
  /// Routers within a group are all-to-all with `local_bw` trunks; each
  /// pair of groups is joined by one `global_bw` trunk between gateway
  /// routers chosen round-robin, so different group pairs stress
  /// different gateways -- the source of dragonfly's characteristic
  /// hot-spot contention.
  static Topology dragonfly(int groups, int routers_per_group,
                            int nodes_per_router, double nic_bw,
                            double local_bw, double global_bw);
};

/// One active transfer, derived from a task in a kMessage phase.
struct Flow {
  Task* task = nullptr;
  int src = 0;
  int dst = 0;
  double rate = 0.0;  ///< assigned by compute_rates
};

class Network {
 public:
  explicit Network(Topology topology);

  const Topology& topology() const { return topo_; }

  /// Assigns max-min fair rates to `flows` and installs each rate as the
  /// owning task's progress rate. Flows between a node and itself get an
  /// effectively unbounded (loopback) rate. Allocation-free once warm:
  /// working state lives in reusable scratch buffers.
  void compute_rates(std::vector<Flow>& flows);

  /// The precomputed shortest path (sequence of trunk indices) between
  /// two compute nodes; exposed for tests.
  const std::vector<int>& path(int src_node, int dst_node) const;

 private:
  void build_paths();

  Topology topo_;
  // paths_[src * num_nodes + dst] = trunk indices along the route.
  std::vector<std::vector<int>> paths_;

  // Progressive-filling scratch, reused across compute_rates calls.
  std::vector<double> residual_;
  std::vector<std::vector<std::size_t>> flow_links_;
  std::vector<char> frozen_;
  std::vector<int> active_on_link_;
};

}  // namespace hpas::sim
