#include "sim/node.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "sim/maxmin.hpp"

namespace hpas::sim {
namespace {

constexpr double kCacheLineBytes = 64.0;

bool consumes_cpu(const Task& task) {
  const PhaseKind k = task.phase().kind;
  return k == PhaseKind::kCompute || k == PhaseKind::kStream;
}

bool occupies_cache(const Task& task) {
  // Cache pressure comes from tasks actively touching memory.
  return consumes_cpu(task);
}

double interpolate_mpki(double base, double max, double residency) {
  return base + (max - base) * (1.0 - residency);
}

}  // namespace

Node::Node(int id, NodeConfig config) : id_(id), config_(config) {
  require(config.cores > 0, "Node: cores must be positive");
  require(config.mem_bw_peak > 0 && config.core_bw_limit > 0,
          "Node: bandwidths must be positive");
}

bool Node::adjust_memory(double delta_bytes) {
  const double next = memory_used_ + delta_bytes;
  if (next < 0.0) {
    memory_used_ = 0.0;
    return true;
  }
  if (next + config_.os_base_memory > config_.memory_bytes) return false;
  memory_used_ = next;
  if (delta_bytes > 0.0) counters_.pages_faulted += delta_bytes / 4096.0;
  return true;
}

void Node::compute_rates(const std::vector<Task*>& tasks) {
  // --- Gather this node's CPU-consuming tasks. -------------------------
  mine_.clear();
  for (Task* task : tasks) {
    if (task->node() == id_ && consumes_cpu(*task)) mine_.push_back(task);
  }
  const std::vector<Task*>& mine = mine_;

  // Per-core scratch, indexed by logical core id. Cores are validated at
  // spawn, but tests call this directly with hand-built tasks, so grow on
  // demand rather than trusting core < config_.cores.
  std::size_t max_core = static_cast<std::size_t>(config_.cores);
  for (const Task* task : mine) {
    max_core = std::max(max_core, static_cast<std::size_t>(task->core()) + 1);
  }
  core_demand_.assign(max_core, 0.0);
  ws_l1_core_.assign(max_core, 0.0);
  ws_l2_core_.assign(max_core, 0.0);

  // --- 1. Per-core proportional CPU shares. ----------------------------
  for (const Task* task : mine)
    core_demand_[static_cast<std::size_t>(task->core())] +=
        task->profile().cpu_demand;
  auto cpu_share = [&](const Task& task) {
    const double total = core_demand_[static_cast<std::size_t>(task.core())];
    const double d = task.profile().cpu_demand;
    if (total <= 1.0) return d;
    // Oversubscribed: the core delivers up to smt_aggregate_throughput
    // core-equivalents, split proportionally to demand.
    const double capacity = std::min(total, config_.smt_aggregate_throughput);
    return d * std::max(1.0, capacity) / total;
  };

  // --- 2. Cache pressure per level. -------------------------------------
  // Private levels (L1/L2): sum of working sets of cache-occupying tasks
  // sharing the core. Shared level (L3): node-wide sum.
  double ws_l3_total = 0.0;
  for (const Task* task : mine) {
    if (!occupies_cache(*task)) continue;
    const double ws = task->profile().working_set_bytes;
    const auto core = static_cast<std::size_t>(task->core());
    ws_l1_core_[core] += std::min(ws, config_.l1_bytes);
    ws_l2_core_[core] += std::min(ws, config_.l2_bytes);
    ws_l3_total += std::min(ws, config_.l3_bytes);
  }
  auto residency = [](double capacity, double total_ws) {
    if (total_ws <= capacity) return 1.0;
    return capacity / total_ws;
  };

  // --- 3a. Per-task MPKI at each level (residency + miss chain). -------
  // Miss chain: extra misses at an upper level become extra *accesses*
  // to the level below, so each level's MPKI scales with the increase
  // of the level above (on top of its own residency-driven miss-ratio
  // change). This is what lets an L1/L2-sized cachecopy raise a
  // victim's L3 MPKI (paper Fig. 3).
  mpki1_.assign(mine.size(), 0.0);
  mpki2_.assign(mine.size(), 0.0);
  mpki3_.assign(mine.size(), 0.0);
  std::vector<double>&mpki1 = mpki1_, &mpki2 = mpki2_, &mpki3 = mpki3_;
  for (std::size_t i = 0; i < mine.size(); ++i) {
    const Task& task = *mine[i];
    const TaskProfile& p = task.profile();
    if (task.phase().kind == PhaseKind::kStream) continue;
    const auto core = static_cast<std::size_t>(task.core());
    const double res1 = residency(config_.l1_bytes, ws_l1_core_[core]);
    const double res2 = residency(config_.l2_bytes, ws_l2_core_[core]);
    const double res3 = residency(config_.l3_bytes, ws_l3_total);
    const double m1 = interpolate_mpki(p.m1_base, p.m1_max, res1);
    const double m1_scale = p.m1_base > 0.0 ? m1 / p.m1_base : 1.0;
    const double m2 = std::min(
        m1, interpolate_mpki(p.m2_base, p.m2_max, res2) * m1_scale);
    const double m2_scale = p.m2_base > 0.0 ? m2 / p.m2_base : 1.0;
    const double m3 = std::min(
        m2, interpolate_mpki(p.m3_base, p.m3_max, res3) * m2_scale);
    mpki1[i] = m1;
    mpki2[i] = m2;
    mpki3[i] = m3;
  }

  // --- 3b. Memory-controller utilization (uncongested estimate). -------
  auto ips_for = [&](const Task& task, double m1, double m2, double m3,
                     double lat_mem, double share) {
    const double cpi0 = config_.freq_hz / task.profile().ips_peak;
    const double stall_cycles =
        (m1 * config_.lat_l2_cycles + m2 * config_.lat_l3_cycles +
         m3 * lat_mem) /
        1000.0 * config_.stall_exposed_fraction;
    return config_.freq_hz / (cpi0 + stall_cycles) * share;
  };
  double total_demand_estimate = 0.0;
  for (std::size_t i = 0; i < mine.size(); ++i) {
    const Task& task = *mine[i];
    const double share = cpu_share(task);
    if (task.phase().kind == PhaseKind::kStream) {
      total_demand_estimate +=
          std::min(task.profile().stream_bw_demand, config_.core_bw_limit) *
          (share / task.profile().cpu_demand);
    } else {
      const double ips = ips_for(task, mpki1[i], mpki2[i], mpki3[i],
                                 config_.lat_mem_cycles, share);
      total_demand_estimate += ips * mpki3[i] / 1000.0 * kCacheLineBytes;
    }
  }
  const double rho =
      std::min(1.0, total_demand_estimate / config_.mem_bw_peak);
  const double lat_mem_eff =
      config_.lat_mem_cycles *
      (1.0 + config_.mem_congestion_coeff * rho * rho * rho);

  // --- 3c. Final instruction rates and DRAM demands (congested). -------
  mem_demand_.assign(mine.size(), 0.0);
  cpu_rate_.assign(mine.size(), 0.0);
  std::vector<double>& mem_demand = mem_demand_;
  std::vector<double>& cpu_rate = cpu_rate_;  // work-units/s pre-BW
  for (std::size_t i = 0; i < mine.size(); ++i) {
    Task& task = *mine[i];
    const TaskProfile& p = task.profile();
    const double share = cpu_share(task);
    TaskRates& r = task.rates();
    r = TaskRates{};
    r.cpu_share = share;

    if (task.phase().kind == PhaseKind::kStream) {
      // Streaming phases: progress is bytes; demand capped by the
      // single-core ceiling and scaled by the CPU share actually granted.
      const double scale = share / p.cpu_demand;
      mem_demand[i] =
          std::min(p.stream_bw_demand, config_.core_bw_limit) * scale;
      cpu_rate[i] = mem_demand[i];
      continue;
    }

    const double ips =
        ips_for(task, mpki1[i], mpki2[i], mpki3[i], lat_mem_eff, share);
    r.instr_rate = ips;  // refined below by the bandwidth throttle
    r.l1_miss_rate = ips * mpki1[i] / 1000.0;
    r.l2_miss_rate = ips * mpki2[i] / 1000.0;
    r.l3_miss_rate = ips * mpki3[i] / 1000.0;
    mem_demand[i] = std::min(ips * mpki3[i] / 1000.0 * kCacheLineBytes,
                             config_.core_bw_limit);
    cpu_rate[i] = ips;
  }

  // --- 4. Max-min fair DRAM bandwidth; throttle under-allocated tasks. --
  bw_alloc_.resize(mine.size());
  max_min_allocate_into(config_.mem_bw_peak, mem_demand, bw_alloc_,
                        mm_scratch_);
  const std::vector<double>& alloc = bw_alloc_;
  for (std::size_t i = 0; i < mine.size(); ++i) {
    Task& task = *mine[i];
    TaskRates& r = task.rates();
    const double factor =
        mem_demand[i] > 0.0 ? alloc[i] / mem_demand[i] : 1.0;
    if (task.phase().kind == PhaseKind::kStream) {
      r.progress = alloc[i];
      r.dram_rate = alloc[i];
      // A streaming kernel still retires instructions -- roughly a store
      // plus half a bookkeeping op per 8-byte element for a MOVNT loop.
      // The stores bypass the caches, so (unlike cachecopy) it adds no
      // miss traffic; this is exactly why membw and cpuoccupy look alike
      // to instruction/miss counters (paper Fig. 10's confusion block).
      r.instr_rate = alloc[i] / 8.0 * 1.5;
    } else {
      r.progress = cpu_rate[i] * factor;
      r.instr_rate = r.progress;
      r.l1_miss_rate *= factor;
      r.l2_miss_rate *= factor;
      r.l3_miss_rate *= factor;
      r.dram_rate = alloc[i];
    }
  }

  // --- Sleep phases tick at rate 1 (seconds of work per second). -------
  for (Task* task : tasks) {
    if (task->node() != id_) continue;
    if (task->phase().kind == PhaseKind::kSleep) {
      task->rates() = TaskRates{};
      task->rates().progress = 1.0;
    }
  }
}

double Node::cpu_utilization(const std::vector<Task*>& tasks) const {
  double busy = 0.0;
  for (const Task* task : tasks) {
    if (task->node() == id_) busy += task->rates().cpu_share;
  }
  return std::min(1.0, busy / static_cast<double>(config_.cores));
}

}  // namespace hpas::sim
