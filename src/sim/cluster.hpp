// Cluster presets matching the paper's two evaluation systems.
#pragma once

#include <memory>

#include "sim/world.hpp"

namespace hpas::sim {

/// Voltrino-like preset (paper Sec. 4): Cray XC40m partition with Haswell
/// Xeon E5-2698 v3 nodes -- 32 cores, 32 KiB / 256 KiB / 40 MiB caches,
/// 125 GB memory -- an Aries-like two-tier interconnect with 4 nodes per
/// switch and fat (redundant, adaptively routed) inter-switch trunks, and
/// a Lustre-like filesystem with a dedicated metadata server.
struct VoltrinoPreset {
  int switches = 2;
  int nodes_per_switch = 4;
  double nic_bw = 10.0e9;           ///< bytes/s injection per node
  double inter_switch_bw = 18.0e9;  ///< aggregate redundant trunk
  NodeConfig node;                  ///< Haswell defaults from NodeConfig
  FsConfig fs{.metadata_ops_per_s = 30000.0,
              .disk_write_bw = 5.0e9,
              .disk_read_bw = 5.5e9,
              .dedicated_mds = true,
              .metadata_disk_cost_s = 0.0};
};

/// Chameleon-like preset: 24-core E5-2670 v3 nodes (smaller 30 MiB L3),
/// star topology, and the paper's NFS appliance -- one storage server
/// with a single ST9250610NS disk and *no* dedicated metadata server.
struct ChameleonPreset {
  int nodes = 6;
  double nic_bw = 1.25e9;  ///< 10 GbE
  NodeConfig node{.cores = 24,
                  .freq_hz = 2.3e9,
                  .cpi0 = 1.0,
                  .l1_bytes = 32.0 * 1024,
                  .l2_bytes = 256.0 * 1024,
                  .l3_bytes = 30.0 * 1024 * 1024,
                  .lat_l2_cycles = 12.0,
                  .lat_l3_cycles = 40.0,
                  .lat_mem_cycles = 200.0,
                  .stall_exposed_fraction = 0.4,
                  .memory_bytes = 125.0 * 1024 * 1024 * 1024,
                  .mem_bw_peak = 22.0e9,
                  .core_bw_limit = 12.5e9,
                  .os_base_memory = 2.0 * 1024 * 1024 * 1024};
  FsConfig fs{.metadata_ops_per_s = 3000.0,
              .disk_write_bw = 300.0e6,
              .disk_read_bw = 330.0e6,
              .dedicated_mds = false,
              .metadata_disk_cost_s = 1.0e-4};
};

/// Large-system preset for scaling studies: a dragonfly with
/// groups x routers_per_group x nodes_per_router compute nodes (defaults
/// give 8*8*16 = 1024, the "dragonfly1k" system of the sharded-engine
/// benchmarks; bump `groups` to ~78 for a 10k-node machine). Node and
/// filesystem parameters reuse the Voltrino-like Haswell/Lustre models --
/// the preset exists to exercise topology scale, not new hardware.
struct DragonflyPreset {
  int groups = 8;
  int routers_per_group = 8;
  int nodes_per_router = 16;
  double nic_bw = 10.0e9;     ///< bytes/s injection per node
  double local_bw = 15.0e9;   ///< intra-group router-router trunk
  double global_bw = 25.0e9;  ///< inter-group gateway trunk
  NodeConfig node;            ///< Haswell defaults from NodeConfig
  FsConfig fs{.metadata_ops_per_s = 120000.0,
              .disk_write_bw = 40.0e9,
              .disk_read_bw = 44.0e9,
              .dedicated_mds = true,
              .metadata_disk_cost_s = 0.0};

  int num_nodes() const {
    return groups * routers_per_group * nodes_per_router;
  }
};

std::unique_ptr<World> make_voltrino_world(const VoltrinoPreset& preset = {});
std::unique_ptr<World> make_chameleon_world(const ChameleonPreset& preset = {});
std::unique_ptr<World> make_dragonfly_world(const DragonflyPreset& preset = {});

}  // namespace hpas::sim
