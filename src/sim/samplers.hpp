// Simulated-node samplers, mirroring the LDMS plugin set of the paper
// (Sec. 4: procstat, meminfo, vmstat, spapiHASW, aries_nic_mmr).
//
// Metric names follow the paper's "<metric>::<sampler>" convention so
// experiment output and the ML feature names read identically to the
// paper, e.g. "user::procstat", "Memfree::meminfo",
// "L2_RQSTS:MISS::spapiHASW",
// "AR_NIC_NETMON_ORB_EVENT_CNTR_REQ_FLITS::aries_nic_mmr".
#pragma once

#include "metrics/collector.hpp"

namespace hpas::sim {

class World;

/// Registers the full sampler set for one node on a collector.
void attach_node_samplers(metrics::Collector& collector, World& world,
                          int node_id);

}  // namespace hpas::sim
