#include "sim/network.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/error.hpp"

namespace hpas::sim {

Topology Topology::two_tier(int switches, int nodes_per_switch, double nic_bw,
                            double inter_switch_bw) {
  require(switches >= 1 && nodes_per_switch >= 1,
          "two_tier: need at least one switch and node");
  Topology topo;
  topo.num_nodes = switches * nodes_per_switch;
  topo.num_switches = switches;
  for (int s = 0; s < switches; ++s) {
    for (int n = 0; n < nodes_per_switch; ++n) {
      topo.trunks.push_back(
          {s * nodes_per_switch + n, topo.switch_vertex(s), nic_bw});
    }
  }
  for (int s1 = 0; s1 < switches; ++s1) {
    for (int s2 = s1 + 1; s2 < switches; ++s2) {
      topo.trunks.push_back(
          {topo.switch_vertex(s1), topo.switch_vertex(s2), inter_switch_bw});
    }
  }
  return topo;
}

Topology Topology::star(int nodes, double nic_bw) {
  return two_tier(1, nodes, nic_bw, nic_bw);
}

Topology Topology::dragonfly(int groups, int routers_per_group,
                             int nodes_per_router, double nic_bw,
                             double local_bw, double global_bw) {
  require(groups >= 1 && routers_per_group >= 1 && nodes_per_router >= 1,
          "dragonfly: all dimensions must be positive");
  Topology topo;
  topo.num_nodes = groups * routers_per_group * nodes_per_router;
  topo.num_switches = groups * routers_per_group;

  const auto router_vertex = [&](int group, int router) {
    return topo.switch_vertex(group * routers_per_group + router);
  };

  // Node <-> router links.
  for (int g = 0; g < groups; ++g) {
    for (int r = 0; r < routers_per_group; ++r) {
      for (int n = 0; n < nodes_per_router; ++n) {
        const int node =
            (g * routers_per_group + r) * nodes_per_router + n;
        topo.trunks.push_back({node, router_vertex(g, r), nic_bw});
      }
    }
  }
  // Intra-group all-to-all local links.
  for (int g = 0; g < groups; ++g) {
    for (int r1 = 0; r1 < routers_per_group; ++r1) {
      for (int r2 = r1 + 1; r2 < routers_per_group; ++r2) {
        topo.trunks.push_back(
            {router_vertex(g, r1), router_vertex(g, r2), local_bw});
      }
    }
  }
  // One global link per group pair, gateways assigned round-robin.
  for (int g1 = 0; g1 < groups; ++g1) {
    for (int g2 = g1 + 1; g2 < groups; ++g2) {
      const int gateway1 = g2 % routers_per_group;
      const int gateway2 = g1 % routers_per_group;
      topo.trunks.push_back(
          {router_vertex(g1, gateway1), router_vertex(g2, gateway2),
           global_bw});
    }
  }
  return topo;
}

Network::Network(Topology topology) : topo_(std::move(topology)) {
  require(topo_.num_nodes >= 1, "Network: need at least one node");
  build_paths();
}

void Network::build_paths() {
  const int v = topo_.vertex_count();
  // Adjacency: vertex -> (neighbor, trunk index).
  std::vector<std::vector<std::pair<int, int>>> adj(
      static_cast<std::size_t>(v));
  for (std::size_t t = 0; t < topo_.trunks.size(); ++t) {
    const Trunk& trunk = topo_.trunks[t];
    adj[static_cast<std::size_t>(trunk.a)].push_back(
        {trunk.b, static_cast<int>(t)});
    adj[static_cast<std::size_t>(trunk.b)].push_back(
        {trunk.a, static_cast<int>(t)});
  }
  // Deterministic tie-break: explore lower vertex ids first.
  for (auto& neighbors : adj)
    std::sort(neighbors.begin(), neighbors.end());

  paths_.assign(
      static_cast<std::size_t>(topo_.num_nodes) *
          static_cast<std::size_t>(topo_.num_nodes),
      {});
  for (int src = 0; src < topo_.num_nodes; ++src) {
    // BFS from src over all vertices.
    std::vector<int> prev_vertex(static_cast<std::size_t>(v), -1);
    std::vector<int> prev_trunk(static_cast<std::size_t>(v), -1);
    std::vector<bool> seen(static_cast<std::size_t>(v), false);
    std::queue<int> frontier;
    frontier.push(src);
    seen[static_cast<std::size_t>(src)] = true;
    while (!frontier.empty()) {
      const int u = frontier.front();
      frontier.pop();
      for (const auto& [w, trunk] : adj[static_cast<std::size_t>(u)]) {
        if (seen[static_cast<std::size_t>(w)]) continue;
        seen[static_cast<std::size_t>(w)] = true;
        prev_vertex[static_cast<std::size_t>(w)] = u;
        prev_trunk[static_cast<std::size_t>(w)] = trunk;
        frontier.push(w);
      }
    }
    for (int dst = 0; dst < topo_.num_nodes; ++dst) {
      if (dst == src) continue;
      require(seen[static_cast<std::size_t>(dst)],
              "Network: topology is disconnected");
      std::vector<int> trunks;
      for (int at = dst; at != src;
           at = prev_vertex[static_cast<std::size_t>(at)]) {
        trunks.push_back(prev_trunk[static_cast<std::size_t>(at)]);
      }
      std::reverse(trunks.begin(), trunks.end());
      paths_[static_cast<std::size_t>(src) *
                 static_cast<std::size_t>(topo_.num_nodes) +
             static_cast<std::size_t>(dst)] = std::move(trunks);
    }
  }
}

const std::vector<int>& Network::path(int src_node, int dst_node) const {
  require(src_node >= 0 && src_node < topo_.num_nodes && dst_node >= 0 &&
              dst_node < topo_.num_nodes,
          "Network: node id out of range");
  return paths_[static_cast<std::size_t>(src_node) *
                    static_cast<std::size_t>(topo_.num_nodes) +
                static_cast<std::size_t>(dst_node)];
}

void Network::compute_rates(std::vector<Flow>& flows) {
  constexpr double kLoopbackRate = 1.0e12;  // intra-node copies: ~free
  // Directed link resources: trunk t, direction a->b is 2t, b->a is 2t+1.
  const std::size_t num_links = topo_.trunks.size() * 2;
  residual_.resize(num_links);
  for (std::size_t t = 0; t < topo_.trunks.size(); ++t) {
    residual_[2 * t] = topo_.trunks[t].capacity;
    residual_[2 * t + 1] = topo_.trunks[t].capacity;
  }

  // Expand each flow's path into directed link ids. The outer scratch
  // vector only grows; the inner vectors keep their capacity across
  // calls, so steady-state recomputes allocate nothing.
  if (flow_links_.size() < flows.size()) flow_links_.resize(flows.size());
  frozen_.assign(flows.size(), 0);
  for (std::size_t f = 0; f < flows.size(); ++f) {
    Flow& flow = flows[f];
    flow_links_[f].clear();
    if (flow.src == flow.dst) {
      flow.rate = kLoopbackRate;
      frozen_[f] = 1;
      continue;
    }
    int at = flow.src;
    for (const int t : path(flow.src, flow.dst)) {
      const Trunk& trunk = topo_.trunks[static_cast<std::size_t>(t)];
      const bool forward = (trunk.a == at);
      flow_links_[f].push_back(2 * static_cast<std::size_t>(t) +
                               (forward ? 0 : 1));
      at = forward ? trunk.b : trunk.a;
    }
  }

  // Progressive filling: repeatedly find the bottleneck link (smallest
  // per-flow share), fix its flows at that share, remove them, repeat.
  while (true) {
    double bottleneck_share = std::numeric_limits<double>::infinity();
    std::size_t bottleneck_link = num_links;
    active_on_link_.assign(num_links, 0);
    for (std::size_t f = 0; f < flows.size(); ++f) {
      if (frozen_[f]) continue;
      for (const std::size_t l : flow_links_[f]) ++active_on_link_[l];
    }
    for (std::size_t l = 0; l < num_links; ++l) {
      if (active_on_link_[l] == 0) continue;
      const double share = residual_[l] / active_on_link_[l];
      if (share < bottleneck_share) {
        bottleneck_share = share;
        bottleneck_link = l;
      }
    }
    if (bottleneck_link == num_links) break;  // no active flows left

    for (std::size_t f = 0; f < flows.size(); ++f) {
      if (frozen_[f]) continue;
      if (std::find(flow_links_[f].begin(), flow_links_[f].end(),
                    bottleneck_link) == flow_links_[f].end())
        continue;
      flows[f].rate = bottleneck_share;
      frozen_[f] = 1;
      for (const std::size_t l : flow_links_[f])
        residual_[l] = std::max(0.0, residual_[l] - bottleneck_share);
    }
  }

  for (Flow& flow : flows) {
    if (flow.task != nullptr) {
      flow.task->rates() = TaskRates{};
      flow.task->rates().progress = flow.rate;
    }
  }
}

}  // namespace hpas::sim
