// Node model: cores + cache hierarchy + memory (capacity and bandwidth).
//
// The node assigns rates to its resident tasks:
//   1. CPU  -- per-core proportional share among the tasks pinned there;
//   2. Cache -- per-level shared-capacity pressure: a task's residency at
//      level l is cap_l / sum(working sets of the level's sharers),
//      clamped to 1. L1/L2 are private per logical core (two tasks pinned
//      to one core model the paper's hyperthread colocation, Fig. 3);
//      L3 is shared node-wide. Residency interpolates each task's MPKI
//      between its fully-resident (base) and fully-evicted (max) values;
//   3. CPI  -- CPI_0 plus miss stalls at each level, giving the
//      instruction rate;
//   4. Memory bandwidth -- every task's DRAM traffic (L3 misses x line
//      size, plus explicit streaming demand) competes max-min fairly for
//      the node's peak bandwidth; under-allocation throttles the
//      instruction (or streaming) rate proportionally.
//
// These four couplings are exactly the channels through which cpuoccupy,
// cachecopy and membw hurt their victims in the paper's Figs. 2-4 and 8.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/maxmin.hpp"
#include "sim/task.hpp"

namespace hpas::sim {

struct NodeConfig {
  int cores = 32;              ///< logical cores usable for pinning
  double freq_hz = 2.3e9;      ///< clock; IPS = freq / CPI
  double cpi0 = 1.0;           ///< no-stall CPI reference for ips_peak

  // Cache capacities (Voltrino's Haswell E5-2698 v3 by default).
  double l1_bytes = 32.0 * 1024;
  double l2_bytes = 256.0 * 1024;
  double l3_bytes = 40.0 * 1024 * 1024;

  // Miss service latencies in cycles and the fraction not hidden by MLP.
  double lat_l2_cycles = 12.0;
  double lat_l3_cycles = 40.0;
  double lat_mem_cycles = 200.0;
  double stall_exposed_fraction = 0.4;

  double memory_bytes = 125.0 * 1024 * 1024 * 1024;  ///< 125 GB per node
  double mem_bw_peak = 22.0e9;   ///< node-level DRAM bandwidth (bytes/s)
  double core_bw_limit = 12.5e9; ///< single-core streaming ceiling
  double os_base_memory = 2.0 * 1024 * 1024 * 1024;  ///< kernel + services

  /// Memory-controller congestion: at utilization rho, the effective
  /// memory latency becomes lat_mem x (1 + coeff x rho^3). This is the
  /// channel through which membw hurts colocated miss-bound applications
  /// even when their own (small) bandwidth demands are still met --
  /// bandwidth saturation shows up as queueing latency first (Fig. 4 vs
  /// Fig. 8 behaviour).
  double mem_congestion_coeff = 2.5;

  /// Aggregate throughput of one oversubscribed core, in core-equivalents.
  /// 1.0 = plain proportional time sharing (two full-demand tasks get
  /// 0.5 each). Real SMT siblings retire more combined work (~1.2-1.3 on
  /// Haswell), so a colocated anomaly steals less than half of its
  /// victim -- the reason the paper's Fig. 8/12 slowdowns are milder
  /// than strict time slicing predicts (see bench/ablation_smt).
  double smt_aggregate_throughput = 1.0;
};

/// Cumulative counters backing the LDMS-like samplers.
struct NodeCounters {
  double cpu_user_seconds = 0.0;  ///< core-seconds in user accounting
  double cpu_sys_seconds = 0.0;
  double instructions = 0.0;
  double l1_misses = 0.0;
  double l2_misses = 0.0;
  double l3_misses = 0.0;
  double dram_bytes = 0.0;
  double nic_tx_bytes = 0.0;
  double nic_rx_bytes = 0.0;
  double pages_faulted = 0.0;  ///< cumulative pages first-touched
};

class Node {
 public:
  Node(int id, NodeConfig config);

  int id() const { return id_; }
  const NodeConfig& config() const { return config_; }

  NodeCounters& counters() { return counters_; }
  const NodeCounters& counters() const { return counters_; }

  /// Memory capacity accounting. Gauge, not a rate.
  double memory_used() const { return memory_used_ + config_.os_base_memory; }
  double memory_free() const { return config_.memory_bytes - memory_used(); }
  /// Adjusts usage; returns false when the request would exceed capacity
  /// (caller decides OOM policy).
  bool adjust_memory(double delta_bytes);

  /// Computes and installs TaskRates for every task in `tasks` that is
  /// resident on this node and in a compute/stream/sleep phase. Message
  /// and I/O phases are rated by the network/storage models. Tasks on
  /// other nodes are ignored, so callers may pass either the full task
  /// set or a pre-filtered resident list. Allocation-free: all working
  /// state lives in per-node scratch buffers.
  void compute_rates(const std::vector<Task*>& tasks);

  /// Instantaneous total CPU utilization [0,1] across the node's cores
  /// given currently cached task rates (used by scheduler policies).
  double cpu_utilization(const std::vector<Task*>& tasks) const;

 private:
  struct LevelPressure;  // implementation detail (node.cpp)

  int id_;
  NodeConfig config_;
  NodeCounters counters_;
  double memory_used_ = 0.0;

  // Rate-solver scratch, reused across compute_rates calls so the
  // per-event hot path performs no heap allocation once warm.
  std::vector<Task*> mine_;
  std::vector<double> core_demand_, ws_l1_core_, ws_l2_core_;
  std::vector<double> mpki1_, mpki2_, mpki3_;
  std::vector<double> mem_demand_, cpu_rate_, bw_alloc_;
  MaxMinScratch mm_scratch_;
};

}  // namespace hpas::sim
