// EventFn: a small-buffer-optimized, move-only `void()` callable.
//
// The event engine schedules millions of callbacks per sweep, and with
// std::function every capture larger than the library's tiny SSO buffer
// (16 bytes on libstdc++) costs one heap allocation at schedule time and
// another when the priority queue copies the event out on pop. The
// captures actually used by the simulator are small but not *that*
// small -- World's completion closure is one pointer, the monitoring
// closure a pointer plus a double, and the injector-failure closure a
// vector plus a count (~40 bytes) -- so a 48-byte inline buffer covers
// every scheduling site in the tree without any allocation. Larger
// callables still work; they fall back to a single heap cell.
//
// Move-only on purpose: the engine never copies events (the old engine
// copied the std::function out of priority_queue::top() on every pop),
// and captured state such as cancellation bookkeeping must not be
// duplicated silently.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace hpas::sim {

class EventFn {
 public:
  /// Captures up to this many bytes are stored inline (no allocation).
  static constexpr std::size_t kInlineBytes = 48;

  EventFn() noexcept = default;
  EventFn(std::nullptr_t) noexcept {}  // NOLINT: implicit like std::function

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        !std::is_same_v<D, std::nullptr_t> &&
                                        std::is_invocable_r_v<void, D&>>>
  EventFn(F&& fn) {  // NOLINT: implicit like std::function
    if constexpr (sizeof(D) <= kInlineBytes &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      ops_ = &inline_ops<D>;
    } else {
      *reinterpret_cast<D**>(storage_) = new D(std::forward<F>(fn));
      ops_ = &heap_ops<D>;
    }
  }

  EventFn(EventFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
  }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(other.storage_, storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }
  friend bool operator==(const EventFn& fn, std::nullptr_t) noexcept {
    return fn.ops_ == nullptr;
  }

  void operator()() { ops_->invoke(storage_); }

 private:
  struct Ops {
    void (*invoke)(unsigned char* storage);
    /// Move-constructs the callable from `from` into `to` and destroys
    /// the source (a destructive move, which lets the inline case be a
    /// plain move + destroy and the heap case a pointer copy).
    void (*relocate)(unsigned char* from, unsigned char* to) /*noexcept*/;
    void (*destroy)(unsigned char* storage);
  };

  template <typename D>
  static constexpr Ops inline_ops = {
      [](unsigned char* s) { (*std::launder(reinterpret_cast<D*>(s)))(); },
      [](unsigned char* from, unsigned char* to) {
        D* src = std::launder(reinterpret_cast<D*>(from));
        ::new (static_cast<void*>(to)) D(std::move(*src));
        src->~D();
      },
      [](unsigned char* s) { std::launder(reinterpret_cast<D*>(s))->~D(); },
  };

  template <typename D>
  static constexpr Ops heap_ops = {
      [](unsigned char* s) { (**reinterpret_cast<D**>(s))(); },
      [](unsigned char* from, unsigned char* to) {
        *reinterpret_cast<D**>(to) = *reinterpret_cast<D**>(from);
      },
      [](unsigned char* s) { delete *reinterpret_cast<D**>(s); },
  };

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace hpas::sim
