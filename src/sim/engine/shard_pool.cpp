#include "sim/engine/shard_pool.hpp"

#include "common/error.hpp"

namespace hpas::sim {

ShardPool::ShardPool(int shards) : shards_(shards < 1 ? 1 : shards) {
  workers_.reserve(static_cast<std::size_t>(shards_ - 1));
  for (int s = 1; s < shards_; ++s)
    workers_.emplace_back([this, s] { worker_loop(s); });
}

ShardPool::~ShardPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ShardPool::worker_loop(int shard) {
  std::uint64_t seen = 0;
  while (true) {
    const std::function<void(int)>* fn = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock,
                    [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      fn = fn_;
    }
    std::exception_ptr error;
    try {
      (*fn)(shard);
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (error && !first_error_) first_error_ = error;
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

void ShardPool::run(const std::function<void(int)>& fn) {
  if (shards_ == 1) {
    fn(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    require(fn_ == nullptr, "ShardPool: run() is not reentrant");
    fn_ = &fn;
    remaining_ = shards_ - 1;
    ++generation_;
  }
  work_cv_.notify_all();

  // Shard 0 runs on the caller; its exception still waits for the
  // barrier so no worker is left touching shared state.
  std::exception_ptr error;
  try {
    fn(0);
  } catch (...) {
    error = std::current_exception();
  }

  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return remaining_ == 0; });
    fn_ = nullptr;
    if (!error && first_error_) error = first_error_;
    first_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace hpas::sim
