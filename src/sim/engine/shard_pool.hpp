// ShardPool: the parallel-execution substrate of the sharded event loop.
//
// A fixed team of worker threads that executes one closure per *shard*
// (shard 0 runs on the calling thread) and joins at a barrier before
// returning. The World uses it to advance independent rate domains --
// node groups, the network, the filesystem -- in parallel inside one
// simulator epoch (one fired event): fork at the start of the region,
// barrier before anything order-sensitive (trace emission, membership
// changes, cross-domain message drains) happens.
//
// Determinism contract: the pool provides *structure*, never ordering.
// Every closure must write only shard-owned state; anything that crosses
// shards is buffered as an epoch message and drained by the caller after
// run() returns, in a deterministic order. run() establishes
// happens-before both ways (caller -> workers at fork, workers -> caller
// at join), so the drained messages are safely visible.
//
// A pool of one shard spawns no threads and runs the closure inline --
// the exact serial execution, which is what `--sim-shards 1` falls back
// to.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hpas::sim {

class ShardPool {
 public:
  /// Creates a pool for `shards` shards (clamped to >= 1). `shards - 1`
  /// worker threads are spawned; shard 0 always executes on the thread
  /// that calls run().
  explicit ShardPool(int shards);
  ~ShardPool();

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  int shards() const { return shards_; }

  /// Executes `fn(shard)` once for every shard in [0, shards()) and
  /// returns after all of them finished (full barrier). The first
  /// exception thrown by any shard is rethrown here after the barrier;
  /// the other shards still run to completion, so the caller's state is
  /// never torn mid-region. Not reentrant: run() must not be called from
  /// inside a shard closure.
  void run(const std::function<void(int)>& fn);

 private:
  void worker_loop(int shard);

  int shards_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_cv_;   ///< caller -> workers: new generation
  std::condition_variable done_cv_;   ///< workers -> caller: all finished
  const std::function<void(int)>* fn_ = nullptr;
  std::uint64_t generation_ = 0;  ///< bumped per run(); workers chase it
  int remaining_ = 0;             ///< workers still running this generation
  bool stop_ = false;
  std::exception_ptr first_error_;
};

}  // namespace hpas::sim
