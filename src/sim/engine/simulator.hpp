// Discrete-event simulation engine.
//
// HPAS's evaluation substrate is a *fluid* DES: resource models assign
// continuous rates to tasks, and events fire when a task's current phase
// completes, when an anomaly starts/stops, or when the monitoring layer
// samples. The engine below is a classic time-ordered event queue with
// deterministic FIFO tie-breaking (same timestamp => insertion order), so
// every simulation is bit-reproducible.
//
// Internals are built for the sweep hot path:
//   * events live in a binary heap over a plain vector, and callbacks are
//     EventFn (48-byte small-buffer closures), so the common schedule /
//     fire cycle performs no heap allocation and no callable copies;
//   * cancellation is O(1) through a generation-checked slot map (the old
//     engine kept a cancelled-id blacklist scanned linearly on every
//     pop); cancelled events stay queued as tombstones and are skipped
//     when popped, exactly like before;
//   * tombstones are compacted out of the heap only when they outnumber
//     live events past a high threshold, so short runs -- everything the
//     golden traces pin down -- never observe a compaction.
//
// Sharded execution: the event loop itself stays strictly serial -- the
// (time, seq) total order is the simulation's definition of causality --
// but each fired event is an *epoch*: a synchronization interval whose
// interior work (rate-domain advancement, deferred counter replay) has no
// cross-domain ordering constraints and may fan out across a ShardPool
// owned by the engine. configure_shards() sizes that pool; epochs() counts
// fired events so callers can align work to epoch boundaries. With one
// shard the pool is absent and everything runs inline -- byte-for-byte
// today's serial behaviour.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/cancel.hpp"
#include "sim/engine/event_fn.hpp"
#include "sim/engine/shard_pool.hpp"

namespace hpas::trace {
class Tracer;
}

namespace hpas::sim {

/// Handle used to cancel a scheduled event. Cancellation is lazy: the
/// event stays queued but is skipped when popped. The (slot, generation)
/// pair makes cancel O(1) and immune to slot reuse: a handle to an event
/// that already fired simply misses its generation.
class EventHandle {
 public:
  EventHandle() = default;
  bool valid() const { return id_ != 0; }

 private:
  friend class Simulator;
  EventHandle(std::uint64_t id, std::uint32_t slot, std::uint32_t gen)
      : id_(id), slot_(slot), gen_(gen) {}
  std::uint64_t id_ = 0;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

class Simulator {
 public:
  double now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (must be >= now()).
  EventHandle schedule_at(double t, EventFn fn);

  /// Schedules `fn` after `dt` seconds (must be >= 0).
  EventHandle schedule_in(double dt, EventFn fn);

  /// Cancels a pending event; cancelling an already-fired or invalid
  /// handle is a no-op.
  void cancel(EventHandle handle);

  /// Runs the next pending event; returns false when the queue is empty.
  /// Throws CancelledError when an attached cancellation token fired --
  /// this is the engine's cancellation checkpoint: a runaway scenario is
  /// interrupted *between* events, never inside one, so the world it
  /// leaves behind is consistent (partial traces and metric stores stay
  /// readable).
  bool step();

  /// Runs events with time <= t, then advances the clock to exactly t.
  void run_until(double t);

  /// Runs until the queue drains.
  void run();

  /// Number of *live* pending events. Cancelled tombstones still queued
  /// are not counted (they are bookkeeping, not work).
  std::size_t pending_events() const { return live_; }

  /// Cancelled events still physically in the queue; exposed so stress
  /// tests can assert compaction keeps this bounded.
  std::size_t queued_tombstones() const { return tombstones_; }

  /// Tombstone population threshold under which the heap is never
  /// compacted; stress tests bound queued_tombstones() against this
  /// (per engine instance -- every shard of a sharded sweep owns its own
  /// Simulator and its own floor).
  static std::size_t compaction_floor();

  /// Number of events fired so far. Each fired event is one conservative
  /// epoch of the sharded executor: all parallel domain work forked
  /// inside it joined before the next event fires.
  std::uint64_t epochs() const { return epochs_; }

  /// Sizes the engine's shard pool (clamped to >= 1). One shard destroys
  /// the pool and restores pure serial execution. Must not be called from
  /// inside a parallel region.
  void configure_shards(int shards);
  int shards() const { return pool_ ? pool_->shards() : 1; }

  /// Runs `fn(shard)` for every shard and barriers; inline when the pool
  /// is absent (one shard). This is the fork/join primitive of the
  /// epoch-synchronized executor -- see ShardPool for the determinism
  /// contract.
  void for_each_shard(const std::function<void(int)>& fn) {
    if (pool_) {
      pool_->run(fn);
    } else {
      fn(0);
    }
  }

  /// Attaches a structured tracer (nullptr detaches). Every schedule /
  /// fire / cancel then emits a record; the engine also keeps the
  /// tracer's clock mirror current so other emitters stamp correctly.
  /// Null (the default) costs nothing on the hot path.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }
  trace::Tracer* tracer() const { return tracer_; }

  /// Attaches a cooperative cancellation token (nullptr detaches, the
  /// default). The token is polled once per event in step(); when another
  /// thread (watchdog, shutdown controller) cancels it, the next step()
  /// throws CancelledError carrying the token's reason. Null costs one
  /// predicted branch on the hot path.
  void set_cancel_token(const CancelToken* token) { cancel_ = token; }
  const CancelToken* cancel_token() const { return cancel_; }

 private:
  struct Event {
    double time;
    std::uint64_t seq;  ///< tie-break: FIFO among equal timestamps
    std::uint64_t id;
    std::uint32_t slot;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  enum class SlotState : std::uint8_t { kFree, kPending, kCancelled };
  struct Slot {
    std::uint32_t gen = 0;
    SlotState state = SlotState::kFree;
  };

  /// Pops the earliest event out of the heap (moves the callable).
  Event take_top();
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  /// Rebuilds the heap without its tombstones once they dominate; (time,
  /// seq) is a strict total order, so the surviving fire order is
  /// unchanged.
  void maybe_compact();

  double now_ = 0.0;
  trace::Tracer* tracer_ = nullptr;
  const CancelToken* cancel_ = nullptr;
  std::uint64_t epochs_ = 0;
  std::unique_ptr<ShardPool> pool_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_id_ = 1;
  std::vector<Event> heap_;  ///< binary heap ordered by Later
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_ = 0;
  std::size_t tombstones_ = 0;
};

}  // namespace hpas::sim
