// Discrete-event simulation engine.
//
// HPAS's evaluation substrate is a *fluid* DES: resource models assign
// continuous rates to tasks, and events fire when a task's current phase
// completes, when an anomaly starts/stops, or when the monitoring layer
// samples. The engine below is a classic time-ordered event queue with
// deterministic FIFO tie-breaking (same timestamp => insertion order), so
// every simulation is bit-reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/cancel.hpp"

namespace hpas::trace {
class Tracer;
}

namespace hpas::sim {

/// Handle used to cancel a scheduled event. Cancellation is lazy: the
/// event stays queued but is skipped when popped.
class EventHandle {
 public:
  EventHandle() = default;
  bool valid() const { return id_ != 0; }

 private:
  friend class Simulator;
  explicit EventHandle(std::uint64_t id) : id_(id) {}
  std::uint64_t id_ = 0;
};

class Simulator {
 public:
  double now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (must be >= now()).
  EventHandle schedule_at(double t, std::function<void()> fn);

  /// Schedules `fn` after `dt` seconds (must be >= 0).
  EventHandle schedule_in(double dt, std::function<void()> fn);

  /// Cancels a pending event; cancelling an already-fired or invalid
  /// handle is a no-op.
  void cancel(EventHandle handle);

  /// Runs the next pending event; returns false when the queue is empty.
  /// Throws CancelledError when an attached cancellation token fired --
  /// this is the engine's cancellation checkpoint: a runaway scenario is
  /// interrupted *between* events, never inside one, so the world it
  /// leaves behind is consistent (partial traces and metric stores stay
  /// readable).
  bool step();

  /// Runs events with time <= t, then advances the clock to exactly t.
  void run_until(double t);

  /// Runs until the queue drains.
  void run();

  std::size_t pending_events() const;

  /// Attaches a structured tracer (nullptr detaches). Every schedule /
  /// fire / cancel then emits a record; the engine also keeps the
  /// tracer's clock mirror current so other emitters stamp correctly.
  /// Null (the default) costs nothing on the hot path.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }
  trace::Tracer* tracer() const { return tracer_; }

  /// Attaches a cooperative cancellation token (nullptr detaches, the
  /// default). The token is polled once per event in step(); when another
  /// thread (watchdog, shutdown controller) cancels it, the next step()
  /// throws CancelledError carrying the token's reason. Null costs one
  /// predicted branch on the hot path.
  void set_cancel_token(const CancelToken* token) { cancel_ = token; }
  const CancelToken* cancel_token() const { return cancel_; }

 private:
  struct Event {
    double time;
    std::uint64_t seq;  ///< tie-break: FIFO among equal timestamps
    std::uint64_t id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  double now_ = 0.0;
  trace::Tracer* tracer_ = nullptr;
  const CancelToken* cancel_ = nullptr;
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::vector<std::uint64_t> cancelled_;  // sorted-on-demand id blacklist
  std::size_t cancelled_dirty_ = 0;

  bool is_cancelled(std::uint64_t id);
};

}  // namespace hpas::sim
