#include "sim/engine/simulator.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "trace/tracer.hpp"

namespace hpas::sim {
namespace {

// Compaction is deliberately lazy: the golden traces pin down runs whose
// tombstone population never comes close to this, so they execute on the
// exact same queue the pre-slot-map engine had.
constexpr std::size_t kCompactionFloor = 1024;

}  // namespace

std::size_t Simulator::compaction_floor() { return kCompactionFloor; }

void Simulator::configure_shards(int shards) {
  if (shards < 1) shards = 1;
  if (shards == this->shards()) return;
  pool_ = shards == 1 ? nullptr : std::make_unique<ShardPool>(shards);
}

std::uint32_t Simulator::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  slots_.push_back(Slot{});
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Simulator::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.state = SlotState::kFree;
  ++s.gen;  // invalidate outstanding handles before the slot is reused
  free_slots_.push_back(slot);
}

EventHandle Simulator::schedule_at(double t, EventFn fn) {
  require(t >= now_, "Simulator: cannot schedule in the past");
  require(fn != nullptr, "Simulator: event function must not be null");
  const std::uint64_t id = next_id_++;
  const std::uint32_t slot = acquire_slot();
  slots_[slot].state = SlotState::kPending;
  heap_.push_back(Event{t, next_seq_++, id, slot, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++live_;
  if (tracer_)
    tracer_->emit(trace::RecordKind::kEventScheduled, 0, 0, id, t);
  return EventHandle(id, slot, slots_[slot].gen);
}

EventHandle Simulator::schedule_in(double dt, EventFn fn) {
  require(dt >= 0.0, "Simulator: negative delay");
  return schedule_at(now_ + dt, std::move(fn));
}

void Simulator::cancel(EventHandle handle) {
  if (!handle.valid()) return;
  // The trace records every cancel request against a once-valid handle,
  // including requests that arrive after the event fired (the World
  // cancels its pending-completion handle unconditionally).
  if (tracer_)
    tracer_->emit(trace::RecordKind::kEventCancelled, 0, 0, handle.id_);
  if (handle.slot_ >= slots_.size()) return;
  Slot& s = slots_[handle.slot_];
  if (s.gen != handle.gen_ || s.state != SlotState::kPending) return;
  s.state = SlotState::kCancelled;
  --live_;
  ++tombstones_;
  maybe_compact();
}

void Simulator::maybe_compact() {
  if (tombstones_ <= kCompactionFloor || tombstones_ <= live_) return;
  std::size_t kept = 0;
  for (Event& ev : heap_) {
    if (slots_[ev.slot].state == SlotState::kCancelled) {
      release_slot(ev.slot);
      continue;
    }
    heap_[kept++] = std::move(ev);
  }
  heap_.resize(kept);
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  tombstones_ = 0;
}

Simulator::Event Simulator::take_top() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  return ev;
}

bool Simulator::step() {
  if (cancel_ != nullptr && cancel_->cancelled())
    throw CancelledError(cancel_->reason());
  while (!heap_.empty()) {
    Event ev = take_top();
    if (slots_[ev.slot].state == SlotState::kCancelled) {
      release_slot(ev.slot);
      --tombstones_;
      continue;
    }
    // Release before firing: the callback may schedule new events, and
    // the bumped generation keeps stale handles from touching them.
    release_slot(ev.slot);
    --live_;
    ++epochs_;
    now_ = ev.time;
    if (tracer_) {
      tracer_->set_time(now_);
      tracer_->emit(trace::RecordKind::kEventFired, 0, 0, ev.id);
    }
    ev.fn();
    return true;
  }
  return false;
}

void Simulator::run_until(double t) {
  require(t >= now_, "Simulator: run_until into the past");
  // The front-of-heap check intentionally sees tombstones too -- this is
  // the pre-optimization engine's boundary behaviour, which the golden
  // traces depend on.
  while (!heap_.empty() && heap_.front().time <= t) {
    if (!step()) break;
  }
  now_ = t;
  if (tracer_) tracer_->set_time(t);
}

void Simulator::run() {
  while (step()) {
  }
}

}  // namespace hpas::sim
