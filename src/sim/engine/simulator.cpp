#include "sim/engine/simulator.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "trace/tracer.hpp"

namespace hpas::sim {

EventHandle Simulator::schedule_at(double t, std::function<void()> fn) {
  require(t >= now_, "Simulator: cannot schedule in the past");
  require(fn != nullptr, "Simulator: event function must not be null");
  const std::uint64_t id = next_id_++;
  queue_.push(Event{t, next_seq_++, id, std::move(fn)});
  if (tracer_)
    tracer_->emit(trace::RecordKind::kEventScheduled, 0, 0, id, t);
  return EventHandle(id);
}

EventHandle Simulator::schedule_in(double dt, std::function<void()> fn) {
  require(dt >= 0.0, "Simulator: negative delay");
  return schedule_at(now_ + dt, std::move(fn));
}

void Simulator::cancel(EventHandle handle) {
  if (!handle.valid()) return;
  if (tracer_)
    tracer_->emit(trace::RecordKind::kEventCancelled, 0, 0, handle.id_);
  cancelled_.push_back(handle.id_);
  ++cancelled_dirty_;
  if (cancelled_dirty_ > 64) {
    std::sort(cancelled_.begin(), cancelled_.end());
    cancelled_.erase(std::unique(cancelled_.begin(), cancelled_.end()),
                     cancelled_.end());
    cancelled_dirty_ = 0;
  }
}

bool Simulator::is_cancelled(std::uint64_t id) {
  return std::find(cancelled_.begin(), cancelled_.end(), id) !=
         cancelled_.end();
}

bool Simulator::step() {
  if (cancel_ != nullptr && cancel_->cancelled())
    throw CancelledError(cancel_->reason());
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (is_cancelled(ev.id)) continue;
    now_ = ev.time;
    if (tracer_) {
      tracer_->set_time(now_);
      tracer_->emit(trace::RecordKind::kEventFired, 0, 0, ev.id);
    }
    ev.fn();
    return true;
  }
  return false;
}

void Simulator::run_until(double t) {
  require(t >= now_, "Simulator: run_until into the past");
  while (!queue_.empty() && queue_.top().time <= t) {
    if (!step()) break;
  }
  now_ = t;
  if (tracer_) tracer_->set_time(t);
}

void Simulator::run() {
  while (step()) {
  }
}

std::size_t Simulator::pending_events() const { return queue_.size(); }

}  // namespace hpas::sim
