// Shared filesystem model: metadata server + storage server (Sec. 3.5).
//
// The paper targets "a common shared filesystem architecture, where there
// are one or a few metadata servers [...] and the actual contents of the
// files are located in storage nodes". We model:
//   * a metadata service with an aggregate operation rate, shared max-min
//     fairly among clients with outstanding metadata work;
//   * a storage (disk) service modeled in *disk-time*: one second of
//     service per second, where writing/reading b bytes costs
//     b / disk_bw seconds and -- when the deployment has no dedicated
//     metadata server, like the paper's Chameleon NFS appliance -- each
//     metadata operation also costs `metadata_disk_cost_s` of disk time.
//
// That last coupling is what makes iometadata degrade IOR bandwidth in
// Fig. 7 ("the iometadata anomaly also affects the bandwidth, since the CC
// filesystem does not have a separate metadata server").
#pragma once

#include <vector>

#include "sim/maxmin.hpp"
#include "sim/task.hpp"

namespace hpas::sim {

struct FsConfig {
  double metadata_ops_per_s = 3000.0;  ///< aggregate metadata service rate
  double disk_write_bw = 300.0e6;      ///< bytes/s of the storage node disk
  double disk_read_bw = 330.0e6;
  bool dedicated_mds = false;  ///< true: metadata does not consume disk time
  double metadata_disk_cost_s = 1.0e-4;  ///< disk time per metadata op
};

/// Cumulative filesystem counters.
struct FsCounters {
  double metadata_ops = 0.0;
  double bytes_read = 0.0;
  double bytes_written = 0.0;
};

class Filesystem {
 public:
  explicit Filesystem(FsConfig config);

  const FsConfig& config() const { return config_; }
  FsCounters& counters() { return counters_; }
  const FsCounters& counters() const { return counters_; }

  /// Assigns progress rates to every task currently in a kIo phase.
  /// Rates: bytes/s for read/write, operations/s for metadata.
  /// Allocation-free once warm (reusable scratch buffers).
  void compute_rates(const std::vector<Task*>& tasks);

 private:
  FsConfig config_;
  FsCounters counters_;

  // Disk-time solver scratch, reused across compute_rates calls.
  std::vector<Task*> io_tasks_;
  std::vector<double> disk_demand_, disk_alloc_;
  MaxMinScratch mm_scratch_;
};

}  // namespace hpas::sim
