// World: the top-level simulated HPC system.
//
// Owns the event engine, the nodes, the interconnect, the shared
// filesystem, all tasks, and the per-node monitoring stores. Implements
// the fluid-DES main loop:
//
//   update():
//     1. advance every task by (now - last_update) at its cached rates,
//        accumulating node/filesystem counters;
//     2. for each task whose phase completed, ask its controller for the
//        next phase (controllers may also wake other, kIdle tasks);
//     3. recompute all rates (per-node CPU/cache/memory, network flows,
//        filesystem shares);
//     4. schedule the next update at the earliest phase completion.
//
// External changes (task spawn, anomaly start, memory allocation) call
// update() after mutating state, so rates are always consistent with the
// task set. Everything is deterministic: one seeded RNG, FIFO event
// tie-breaks, no wall-clock dependence.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "metrics/collector.hpp"
#include "metrics/store.hpp"
#include "sim/engine/simulator.hpp"
#include "sim/network.hpp"
#include "sim/node.hpp"
#include "sim/storage.hpp"
#include "sim/task.hpp"

namespace hpas::sim {

class World {
 public:
  /// Homogeneous cluster: `node_config` replicated over the topology's
  /// compute nodes.
  World(NodeConfig node_config, Topology topology, FsConfig fs_config);

  Simulator& simulator() { return sim_; }
  double now() const { return sim_.now(); }

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  Node& node(int id);
  const Node& node(int id) const;
  Network& network() { return network_; }
  Filesystem& filesystem() { return fs_; }

  /// Creates a task pinned to (node, core) with `initial` as its first
  /// phase. The returned pointer stays valid for the lifetime of the
  /// World. Triggers a rate recompute.
  Task* spawn_task(const std::string& name, int node, int core,
                   const TaskProfile& profile, const Phase& initial,
                   Task::NextPhaseFn next_phase);

  /// Immediately terminates a task (releases CPU/cache/bandwidth; its
  /// memory allocation is returned to the node).
  void kill_task(Task* task);

  const std::vector<Task*>& tasks() const { return task_ptrs_; }

  /// Adjusts a task's memory footprint on its node. On overcommit the
  /// OOM handler decides the victim (default: kill the requesting task,
  /// mirroring the paper's "applications are killed when they run out of
  /// memory"). Returns false when the allocation failed.
  bool allocate_memory(Task* task, double delta_bytes);

  using OomHandler = std::function<void(World&, Task& requester)>;
  void set_oom_handler(OomHandler handler) { oom_ = std::move(handler); }

  /// Starts LDMS-like monitoring: per-node procstat / meminfo / vmstat /
  /// spapiHASW / aries_nic_mmr samplers collected every `period_s`.
  void enable_monitoring(double period_s);
  metrics::MetricStore& node_store(int id);

  /// Attaches a structured tracer to the whole substrate: the engine's
  /// event lifecycle, task spawn/kill/phase transitions, rate
  /// recomputations, memory traffic and monitoring samples all emit into
  /// it. Attach before spawning tasks for a complete stream (already-live
  /// tasks are adopted, but their history starts now). nullptr detaches.
  void attach_tracer(trace::Tracer* tracer);
  trace::Tracer* tracer() const { return tracer_; }

  /// Attaches a cooperative cancellation token to the event engine (see
  /// Simulator::set_cancel_token): run_until() then throws CancelledError
  /// between events once the token fires. nullptr detaches.
  void set_cancel_token(const CancelToken* token) {
    sim_.set_cancel_token(token);
  }

  /// Re-derives all rates and reschedules the next completion. Called
  /// automatically by spawn/kill/allocate and by phase completions; call
  /// manually after mutating task profiles or phases from outside.
  void update();

  void run_until(double t);
  void run_for(double dt) { run_until(now() + dt); }

 private:
  void advance_tasks(double dt);
  void handle_completions();
  void recompute_rates();
  void trace_rates();
  void schedule_next_completion();
  void sample_all(double period_s);

  Simulator sim_;
  std::vector<std::unique_ptr<Node>> nodes_;
  Network network_;
  Filesystem fs_;
  std::vector<std::unique_ptr<Task>> tasks_;
  std::vector<Task*> task_ptrs_;  ///< live (non-destroyed) tasks
  double last_update_ = 0.0;
  EventHandle pending_completion_;
  OomHandler oom_;
  bool in_update_ = false;
  trace::Tracer* tracer_ = nullptr;
  std::uint32_t next_trace_id_ = 1;  ///< task subject ids, stable per world

  std::vector<std::unique_ptr<metrics::MetricStore>> stores_;
  std::vector<std::unique_ptr<metrics::Collector>> collectors_;
};

}  // namespace hpas::sim
