// World: the top-level simulated HPC system.
//
// Owns the event engine, the nodes, the interconnect, the shared
// filesystem, all tasks, and the per-node monitoring stores. Implements
// the fluid-DES main loop:
//
//   update():
//     1. advance every task by (now - last_update) at its cached rates,
//        accumulating node/filesystem counters;
//     2. for each task whose phase completed, ask its controller for the
//        next phase (controllers may also wake other, kIdle tasks);
//     3. recompute all rates (per-node CPU/cache/memory, network flows,
//        filesystem shares);
//     4. schedule the next update at the earliest phase completion.
//
// External changes (task spawn, anomaly start, memory allocation) call
// update() after mutating state, so rates are always consistent with the
// task set. Everything is deterministic: one seeded RNG, FIFO event
// tie-breaks, no wall-clock dependence.
//
// The loop above is the *semantic* model; the implementation is
// incremental (see DESIGN.md, "Incremental rate recomputation"):
//   * rate recomputation is dirty-set driven -- spawn, kill, phase
//     transitions and profile mutations mark only the affected node(s),
//     the network flow set, or the filesystem, and recompute_rates()
//     re-solves just those domains. Clean domains keep their installed
//     rates, which are identical because the solvers are deterministic
//     functions of unchanged inputs;
//   * counter integration is lazy -- advance_tasks still moves every
//     active task's remaining-work eagerly (completion times feed event
//     scheduling), but the node/network/filesystem counter accumulation
//     is deferred: each update logs its dt chunk, and a per-domain cursor
//     replays pending chunks through the exact same arithmetic when the
//     domain is next observed (rate change, phase change, sampling, or
//     run_until returning). Replay preserves the per-chunk fold order of
//     every shared accumulator, so all observables are bit-identical to
//     eager integration.
// Setting HPAS_FULL_RECOMPUTE=1 (or set_full_recompute(true)) restores
// the original recompute-everything-per-event behaviour; the equivalence
// tests byte-compare traces across both modes.
//
// Sharded execution (see DESIGN.md, "Rate-domain sharding"): the counter
// domains above double as *rate domains* -- per-node groups, the network,
// the filesystem -- that are data-independent within one engine epoch
// (one fired event). set_shards(S) partitions the nodes into S contiguous
// groups and fans the per-epoch domain work (task advancement, deferred
// counter replay, rate re-solving, completion-eta scanning) across the
// engine's ShardPool under conservative epoch synchronization: fork after
// the event fires, barrier before anything order-sensitive (controllers,
// trace emission, membership changes) runs. The one cross-domain
// interaction -- a message flow depositing NIC byte counters on its
// endpoint nodes -- is buffered as an epoch-aligned message and drained
// at the barrier in the serial fold order, so every accumulator sees the
// exact += sequence of serial execution and the trace/CSV bytes are
// independent of the shard count. Shard count 1 (the default) and
// HPAS_FULL_RECOMPUTE=1 both run today's serial loop verbatim; the
// environment variable HPAS_SIM_SHARDS sets the initial shard count.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "metrics/collector.hpp"
#include "metrics/store.hpp"
#include "sim/engine/simulator.hpp"
#include "sim/network.hpp"
#include "sim/node.hpp"
#include "sim/storage.hpp"
#include "sim/task.hpp"

namespace hpas::sim {

class World {
 public:
  /// Homogeneous cluster: `node_config` replicated over the topology's
  /// compute nodes.
  World(NodeConfig node_config, Topology topology, FsConfig fs_config);

  Simulator& simulator() { return sim_; }
  double now() const { return sim_.now(); }

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  Node& node(int id);
  const Node& node(int id) const;
  Network& network() { return network_; }
  Filesystem& filesystem() { return fs_; }

  /// Creates a task pinned to (node, core) with `initial` as its first
  /// phase. The returned pointer stays valid for the lifetime of the
  /// World. Triggers a rate recompute.
  Task* spawn_task(const std::string& name, int node, int core,
                   const TaskProfile& profile, const Phase& initial,
                   Task::NextPhaseFn next_phase);

  /// Immediately terminates a task (releases CPU/cache/bandwidth; its
  /// memory allocation is returned to the node).
  void kill_task(Task* task);

  const std::vector<Task*>& tasks() const { return task_ptrs_; }

  /// Adjusts a task's memory footprint on its node. On overcommit the
  /// OOM handler decides the victim (default: kill the requesting task,
  /// mirroring the paper's "applications are killed when they run out of
  /// memory"). Returns false when the allocation failed.
  bool allocate_memory(Task* task, double delta_bytes);

  using OomHandler = std::function<void(World&, Task& requester)>;
  void set_oom_handler(OomHandler handler) { oom_ = std::move(handler); }

  /// Starts LDMS-like monitoring: per-node procstat / meminfo / vmstat /
  /// spapiHASW / aries_nic_mmr samplers collected every `period_s`.
  ///
  /// `sink` (optional, non-owning) streams node `sink_node`'s samples in
  /// collection order, including the t=0 sample taken inside this call.
  /// With `store_samples == false` the per-node MetricStores stay empty
  /// (node_store() returns an empty store) -- the streaming dataset path
  /// uses this so monitoring memory is O(1) in scenario duration.
  void enable_monitoring(double period_s,
                         metrics::SampleSink* sink = nullptr,
                         int sink_node = 0, bool store_samples = true);
  metrics::MetricStore& node_store(int id);

  /// Attaches a structured tracer to the whole substrate: the engine's
  /// event lifecycle, task spawn/kill/phase transitions, rate
  /// recomputations, memory traffic and monitoring samples all emit into
  /// it. Attach before spawning tasks for a complete stream (already-live
  /// tasks are adopted, but their history starts now). nullptr detaches.
  void attach_tracer(trace::Tracer* tracer);
  trace::Tracer* tracer() const { return tracer_; }

  /// Attaches a cooperative cancellation token to the event engine (see
  /// Simulator::set_cancel_token): run_until() then throws CancelledError
  /// between events once the token fires. nullptr detaches.
  void set_cancel_token(const CancelToken* token) {
    sim_.set_cancel_token(token);
  }

  /// Re-derives all rates and reschedules the next completion. Called
  /// automatically by spawn/kill/allocate and by phase completions; call
  /// manually after mutating task state from outside in ways the World
  /// cannot observe. Conservatively marks every domain dirty and settles
  /// all deferred counter integration, exactly like the original
  /// full-recompute loop.
  void update();

  void run_until(double t);
  void run_for(double dt) { run_until(now() + dt); }

  /// Forces the original recompute-every-domain, integrate-every-counter
  /// behaviour on each update. The observable outputs are bit-identical
  /// either way (that is tested); this exists as the reference mode for
  /// equivalence tests and the engine microbenchmark. Also enabled by the
  /// environment variable HPAS_FULL_RECOMPUTE=1 at construction.
  void set_full_recompute(bool on);
  bool full_recompute() const { return full_recompute_; }

  /// Partitions the simulation into `shards` rate-domain groups advanced
  /// in parallel under conservative epoch synchronization. Every
  /// observable -- trace bytes, counters, CSVs -- is bit-identical at any
  /// shard count (that is tested); sharding only changes wall-clock
  /// time. Clamped to [1, num_nodes]; 1 restores pure serial execution.
  /// Also settable at construction via HPAS_SIM_SHARDS.
  void set_shards(int shards);
  int shards() const { return shards_; }

  /// Incremental-engine hooks, invoked by Task (and kept public for it;
  /// not useful to call directly). They settle deferred counter
  /// integration for the domains a mutation touches and mark those
  /// domains dirty.
  void on_task_phase_change(Task& task, const Phase& next);
  void on_task_phase_installed(Task& task);
  void on_task_profile_mutation(Task& task);

 private:
  void update_event();  ///< incremental update (internal event path)
  void advance_tasks(double dt);
  void handle_completions();
  void recompute_rates();
  void trace_rates();
  void schedule_next_completion();
  void sample_all(double period_s);

  // --- deferred counter integration -----------------------------------
  void apply_counter_chunk(Task& task, double dt);
  /// With `defer_nic` the replayed NIC byte deposits stay buffered in
  /// nic_messages_ (epoch messages) instead of being applied inline;
  /// the caller drains them after the shard barrier.
  void sync_network_domain(bool defer_nic = false);
  void sync_node_domain(int id);
  void sync_fs_domain();
  void sync_all_domains();  ///< settles every cursor, truncates the log
  void sync_domain_of(PhaseKind kind, int node_id);
  void mark_node_dirty(int id);
  void mark_all_dirty();
  void note_domain_entry(PhaseKind kind, int node_id, int delta);

  // --- sharded execution ------------------------------------------------
  /// Applies buffered NIC epoch messages in their recorded order -- the
  /// serial (chunk, task) fold order -- so every counter sees the exact
  /// += sequence of serial execution.
  void drain_nic_messages();
  int shard_of(int node) const {
    return node_shard_[static_cast<std::size_t>(node)];
  }
  /// True when the per-epoch work is worth a fork/join (enough domains or
  /// tasks per shard); the serial and sharded paths compute bit-identical
  /// results, so this is purely a performance heuristic.
  bool worth_fanout(std::size_t items) const;

  Simulator sim_;
  std::vector<std::unique_ptr<Node>> nodes_;
  Network network_;
  Filesystem fs_;
  std::vector<std::unique_ptr<Task>> tasks_;
  std::vector<Task*> task_ptrs_;  ///< live (non-destroyed) tasks
  double last_update_ = 0.0;
  EventHandle pending_completion_;
  OomHandler oom_;
  bool in_update_ = false;
  trace::Tracer* tracer_ = nullptr;
  std::uint32_t next_trace_id_ = 1;  ///< task subject ids, stable per world

  // --- incremental engine state ----------------------------------------
  bool full_recompute_ = false;
  std::vector<std::vector<Task*>> node_tasks_;  ///< residents, spawn order
  std::vector<char> node_dirty_;
  std::vector<int> dirty_nodes_;
  bool net_dirty_ = false;
  bool fs_dirty_ = false;
  /// dt of every advance_tasks call not yet folded into all counters.
  std::vector<double> chunk_dt_;
  std::vector<std::uint32_t> node_cursor_;  ///< per-node replay cursor
  std::uint32_t net_cursor_ = 0;
  std::uint32_t fs_cursor_ = 0;
  /// Active members per counter domain; a domain with no members can
  /// skip its replay range outright.
  std::vector<int> node_active_;
  int message_tasks_ = 0;
  int io_tasks_ = 0;

  // --- sharding state ---------------------------------------------------
  int shards_ = 1;
  std::vector<int> node_shard_;        ///< node id -> owning shard
  std::vector<int> shard_node_begin_;  ///< shard s owns [begin[s], begin[s+1])
  /// One cross-domain epoch message: the network domain depositing
  /// transferred bytes on its endpoint nodes' NIC counters.
  struct NicMessage {
    int src_node;
    int peer_node;  ///< -1: no receive side
    double bytes;
  };
  std::vector<NicMessage> nic_messages_;
  bool defer_nic_ = false;  ///< set inside sharded regions only
  std::vector<double> shard_eta_;  ///< per-shard completion-eta minima

  // Hot-path scratch (no per-event allocation once warm).
  std::vector<Task*> completion_scratch_;
  std::vector<Flow> flow_scratch_;
  struct RateAgg {
    std::uint16_t active = 0;
    double cpu_share = 0.0;
    double dram_rate = 0.0;
  };
  std::vector<RateAgg> agg_scratch_;

  std::vector<std::unique_ptr<metrics::MetricStore>> stores_;
  std::vector<std::unique_ptr<metrics::Collector>> collectors_;
};

}  // namespace hpas::sim
