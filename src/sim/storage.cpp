#include "sim/storage.hpp"

#include <limits>

#include "common/error.hpp"
#include "sim/maxmin.hpp"

namespace hpas::sim {

Filesystem::Filesystem(FsConfig config) : config_(config) {
  require(config.metadata_ops_per_s > 0, "Filesystem: mds rate must be > 0");
  require(config.disk_write_bw > 0 && config.disk_read_bw > 0,
          "Filesystem: disk bandwidths must be > 0");
  require(config.metadata_disk_cost_s >= 0,
          "Filesystem: metadata disk cost must be >= 0");
}

void Filesystem::compute_rates(const std::vector<Task*>& tasks) {
  constexpr double kInf = std::numeric_limits<double>::infinity();

  io_tasks_.clear();
  for (Task* task : tasks) {
    if (task->phase().kind == PhaseKind::kIo) io_tasks_.push_back(task);
  }
  const std::vector<Task*>& io_tasks = io_tasks_;
  if (io_tasks.empty()) return;

  // --- 1. Metadata service: equal shares among greedy metadata clients.
  std::size_t meta_clients = 0;
  for (const Task* task : io_tasks) {
    if (task->phase().io_kind == IoKind::kMetadata) ++meta_clients;
  }
  const double meta_share =
      meta_clients > 0
          ? config_.metadata_ops_per_s / static_cast<double>(meta_clients)
          : 0.0;

  // --- 2. Disk time (capacity: 1 second of service per second).
  // Readers/writers are greedy; metadata clients demand only what their
  // MDS share can generate (zero when the MDS is dedicated hardware).
  disk_demand_.assign(io_tasks.size(), 0.0);
  std::vector<double>& disk_demand = disk_demand_;
  for (std::size_t i = 0; i < io_tasks.size(); ++i) {
    switch (io_tasks[i]->phase().io_kind) {
      case IoKind::kRead:
      case IoKind::kWrite:
        disk_demand[i] = kInf;
        break;
      case IoKind::kMetadata:
        disk_demand[i] = config_.dedicated_mds
                             ? 0.0
                             : meta_share * config_.metadata_disk_cost_s;
        break;
    }
  }
  // max_min_allocate requires strictly positive weights and finite math;
  // replace infinities with a demand far above capacity.
  for (double& d : disk_demand) {
    if (d == kInf) d = 1.0e6;
  }
  disk_alloc_.resize(io_tasks.size());
  max_min_allocate_into(1.0, disk_demand, disk_alloc_, mm_scratch_);
  const std::vector<double>& disk_alloc = disk_alloc_;

  // --- 3. Convert disk-time allocations into progress rates.
  for (std::size_t i = 0; i < io_tasks.size(); ++i) {
    Task& task = *io_tasks[i];
    task.rates() = TaskRates{};
    switch (task.phase().io_kind) {
      case IoKind::kWrite:
        task.rates().progress = disk_alloc[i] * config_.disk_write_bw;
        break;
      case IoKind::kRead:
        task.rates().progress = disk_alloc[i] * config_.disk_read_bw;
        break;
      case IoKind::kMetadata: {
        double rate = meta_share;
        if (!config_.dedicated_mds && config_.metadata_disk_cost_s > 0.0) {
          rate = std::min(rate, disk_alloc[i] / config_.metadata_disk_cost_s);
        }
        task.rates().progress = rate;
        break;
      }
    }
  }
}

}  // namespace hpas::sim
