// Task: the unit of execution in the simulated cluster.
//
// A task is pinned to one logical core of one node and is always in
// exactly one *phase*:
//   kCompute  -- retire `work` instructions (rate set by the CPU/cache/
//                memory models: shares, MPKI, bandwidth throttling);
//   kStream   -- move `work` bytes to/from DRAM with a non-temporal
//                access pattern (membw, STREAM);
//   kMessage  -- transfer `work` bytes to a peer node over the
//                interconnect (rate set by the network model), after a
//                fixed per-message startup latency;
//   kIo       -- perform `work` units against the shared filesystem
//                (bytes for read/write, operations for metadata);
//   kSleep    -- idle for `work` seconds (rate 1);
//   kIdle     -- blocked, waiting for an external wake (BSP barriers);
//   kDone     -- finished; the task no longer consumes resources.
//
// When a phase's remaining work reaches zero the World asks the task's
// controller callback for the next phase. Controllers (applications,
// anomaly injectors) are state machines in src/apps and src/simanom.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>

namespace hpas::trace {
class Tracer;
}

namespace hpas::sim {

class Task;
class World;

enum class PhaseKind { kIdle, kCompute, kStream, kMessage, kIo, kSleep, kDone };

enum class IoKind { kMetadata, kRead, kWrite };

struct Phase {
  PhaseKind kind = PhaseKind::kIdle;
  double work = 0.0;  ///< instructions | bytes | ops | seconds
  int peer_node = -1;              ///< kMessage: destination node id
  IoKind io_kind = IoKind::kWrite; ///< kIo only

  static Phase compute(double instructions) {
    return {PhaseKind::kCompute, instructions, -1, IoKind::kWrite};
  }
  static Phase stream(double bytes) {
    return {PhaseKind::kStream, bytes, -1, IoKind::kWrite};
  }
  static Phase message(int dst_node, double bytes) {
    return {PhaseKind::kMessage, bytes, dst_node, IoKind::kWrite};
  }
  static Phase io(IoKind kind, double amount) {
    return {PhaseKind::kIo, amount, -1, kind};
  }
  static Phase sleep(double seconds) {
    return {PhaseKind::kSleep, seconds, -1, IoKind::kWrite};
  }
  static Phase idle() { return {PhaseKind::kIdle, 0.0, -1, IoKind::kWrite}; }
  static Phase done() { return {PhaseKind::kDone, 0.0, -1, IoKind::kWrite}; }
};

/// Resource behaviour of a task, the simulated analogue of an application's
/// (or anomaly's) microarchitectural profile. The three m-pairs give the
/// misses-per-kilo-instruction leaving each cache level when the task's
/// working set is fully resident (base) versus fully evicted (max); the
/// cache model interpolates with the task's current residency.
struct TaskProfile {
  double ips_peak = 2.0e9;   ///< instructions/s on a dedicated core at CPI_0
  double cpu_demand = 1.0;   ///< fraction of one core requested (<=1)
  double working_set_bytes = 1.0 * 1024 * 1024;
  double m1_base = 5.0, m1_max = 60.0;   ///< L1 misses/KI (= L2 accesses)
  double m2_base = 2.0, m2_max = 30.0;   ///< L2 misses/KI (= L3 accesses)
  double m3_base = 0.5, m3_max = 20.0;   ///< L3 misses/KI (= DRAM accesses)
  double stream_bw_demand = 0.0;  ///< bytes/s wanted in kStream phases
  double msg_latency_s = 15e-6;   ///< per-message startup latency
  bool account_user = true;  ///< procstat bucket: user (apps) vs sys
};

/// Cumulative per-task resource usage, the simulated analogue of
/// per-process accounting (/proc/<pid>/stat, perf attribution). Node
/// counters aggregate these across residents; keeping both allows
/// experiments to ask "how much did the *victim* miss" (Fig. 3) without
/// the anomaly polluting the measurement.
struct TaskCounters {
  double cpu_seconds = 0.0;
  double instructions = 0.0;
  double l2_misses = 0.0;
  double l3_misses = 0.0;
  double dram_bytes = 0.0;
  double bytes_sent = 0.0;
  double io_work = 0.0;  ///< bytes or metadata ops, per the phase kind
};

/// Rates assigned by the resource models at the last recompute; consumed
/// by World::advance to progress work and accumulate node counters.
struct TaskRates {
  double progress = 0.0;     ///< work units/s in the current phase
  double cpu_share = 0.0;    ///< cores actually consumed
  double instr_rate = 0.0;   ///< instructions/s (compute phases)
  double l1_miss_rate = 0.0; ///< misses/s
  double l2_miss_rate = 0.0;
  double l3_miss_rate = 0.0;
  double dram_rate = 0.0;    ///< bytes/s to/from memory
};

class Task {
 public:
  /// `next_phase` is the controller: called when a phase completes; must
  /// return the next phase (possibly kDone). May inspect/mutate other
  /// tasks (e.g. barrier release) -- the World recomputes afterwards.
  using NextPhaseFn = std::function<Phase(Task&)>;

  Task(std::string name, int node, int core, TaskProfile profile,
       NextPhaseFn next_phase);

  const std::string& name() const { return name_; }
  int node() const { return node_; }
  int core() const { return core_; }
  const TaskProfile& profile() const { return profile_; }
  /// Mutable access to the profile. When the task is owned by a World,
  /// this first settles the task's deferred counter integration and marks
  /// its resource domains dirty, so the mutation cannot be applied
  /// retroactively to already-elapsed simulated time.
  TaskProfile& mutable_profile();

  const Phase& phase() const { return phase_; }
  double remaining() const { return remaining_; }
  double latency_left() const { return latency_left_; }
  bool active() const {
    return phase_.kind != PhaseKind::kDone && phase_.kind != PhaseKind::kIdle;
  }
  bool done() const { return phase_.kind == PhaseKind::kDone; }

  /// Installs a new phase (resets remaining work and message latency).
  /// Used by the World on completion and by controllers to wake idle
  /// tasks.
  void set_phase(const Phase& phase);

  /// Controller invocation; called by the World only.
  Phase next_phase() { return next_phase_(*this); }

  /// Advances the current phase by dt at the cached rates. Returns true
  /// if the phase just completed.
  bool advance(double dt);

  /// The single source of truth for phase-progress arithmetic, shared by
  /// advance() and the World's deferred counter integration. Replaying
  /// the same (dt, progress) sequence through this function reproduces
  /// the remaining/latency trajectory bit-for-bit, which is what makes
  /// lazy counter integration exact. Returns true when the phase is
  /// complete after the step.
  static bool advance_step(double dt, double progress, double tolerance,
                           double& remaining, double& latency_left) {
    // Message startup latency elapses before bytes flow.
    if (latency_left > 0.0) {
      const double lat = std::min(latency_left, dt);
      latency_left -= lat;
      dt -= lat;
      if (dt <= 0.0) return remaining <= 0.0 && latency_left <= 1e-15;
    }
    remaining -= progress * dt;
    if (remaining <= tolerance) {
      remaining = 0.0;
      return true;
    }
    return false;
  }

  TaskRates& rates() { return rates_; }
  const TaskRates& rates() const { return rates_; }

  TaskCounters& counters() { return counters_; }
  const TaskCounters& counters() const { return counters_; }

  /// Time until this task's phase completes at current rates; +inf when
  /// blocked or starved.
  double eta() const;

  /// Memory footprint on the node; maintained by controllers through
  /// World::allocate_memory.
  double allocated_bytes() const { return allocated_bytes_; }
  void set_allocated_bytes(double bytes) { allocated_bytes_ = bytes; }

  /// Structured tracing: the World wires every task to its tracer and
  /// assigns a stable subject id, so set_phase() can emit transition
  /// records. A null tracer (the default) disables emission.
  void set_tracing(trace::Tracer* tracer, std::uint32_t trace_id) {
    tracer_ = tracer;
    trace_id_ = trace_id;
  }
  std::uint32_t trace_id() const { return trace_id_; }

  /// Wires the task to its owning World. A wired task notifies the World
  /// around phase changes and profile mutations, which is how the
  /// incremental engine tracks dirty resource domains and settles lazy
  /// counter integration at exactly the right boundaries. Null (the
  /// default, for standalone model tests) disables the hooks.
  void set_world(World* world) { world_ = world; }

  /// True once World::kill_task removed the task from the live set; lets
  /// the completion loop skip corpses in O(1).
  bool killed() const { return killed_; }

 private:
  friend class World;

  /// Work-relative slack under which a phase counts as finished.
  double completion_tolerance() const;

  std::string name_;
  int node_;
  int core_;
  TaskProfile profile_;
  NextPhaseFn next_phase_;
  Phase phase_ = Phase::idle();
  double remaining_ = 0.0;
  double latency_left_ = 0.0;
  double allocated_bytes_ = 0.0;
  TaskRates rates_;
  TaskCounters counters_;
  trace::Tracer* tracer_ = nullptr;
  std::uint32_t trace_id_ = 0;
  World* world_ = nullptr;
  bool killed_ = false;

  // Deferred-integration shadow of (remaining_, latency_left_): the
  // trajectory as of this task's counter domain cursor. The World replays
  // logged time chunks through advance_step to move these forward,
  // reproducing the eagerly-advanced values bit-for-bit.
  double sync_remaining_ = 0.0;
  double sync_latency_ = 0.0;
};

}  // namespace hpas::sim
