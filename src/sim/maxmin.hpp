// Max-min fair allocation primitives.
//
// Contention in every HPAS resource model reduces to one question: given a
// capacity and a set of demands (some finite, some effectively greedy),
// what does each consumer get under max-min fairness? This is the
// water-filling algorithm; the multi-link variant (progressive filling
// over a network of links) lives in network.cpp on top of this.
#pragma once

#include <span>
#include <vector>

namespace hpas::sim {

/// Single-resource max-min fairness (water-filling).
///
/// Returns per-demand allocations such that (1) alloc[i] <= demand[i],
/// (2) sum(alloc) <= capacity, (3) no allocation can be raised without
/// lowering a smaller one. Demands may be infinite (greedy consumers).
/// Weighted variant: shares are proportional to weight while unsaturated.
std::vector<double> max_min_allocate(double capacity,
                                     std::span<const double> demands);

std::vector<double> max_min_allocate_weighted(double capacity,
                                              std::span<const double> demands,
                                              std::span<const double> weights);

}  // namespace hpas::sim
