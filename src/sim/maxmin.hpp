// Max-min fair allocation primitives.
//
// Contention in every HPAS resource model reduces to one question: given a
// capacity and a set of demands (some finite, some effectively greedy),
// what does each consumer get under max-min fairness? This is the
// water-filling algorithm; the multi-link variant (progressive filling
// over a network of links) lives in network.cpp on top of this.
#pragma once

#include <span>
#include <vector>

namespace hpas::sim {

/// Single-resource max-min fairness (water-filling).
///
/// Returns per-demand allocations such that (1) alloc[i] <= demand[i],
/// (2) sum(alloc) <= capacity, (3) no allocation can be raised without
/// lowering a smaller one. Demands may be infinite (greedy consumers).
/// Weighted variant: shares are proportional to weight while unsaturated.
std::vector<double> max_min_allocate(double capacity,
                                     std::span<const double> demands);

std::vector<double> max_min_allocate_weighted(double capacity,
                                              std::span<const double> demands,
                                              std::span<const double> weights);

/// Reusable workspace for the allocation-free variant below. Holding one
/// of these per caller (Node, Filesystem) keeps the per-event rate
/// recompute free of heap allocation.
struct MaxMinScratch {
  std::vector<std::size_t> active;
  std::vector<std::size_t> next;
};

/// Unweighted water-filling into a caller-provided output span (resized
/// state must already be demands.size(); contents are overwritten). The
/// arithmetic — including the order of every sum and subtraction — is
/// bit-identical to max_min_allocate: weights of 1.0 multiply exactly and
/// a sequential sum of 1.0s is the exact consumer count.
void max_min_allocate_into(double capacity, std::span<const double> demands,
                           std::span<double> alloc, MaxMinScratch& scratch);

/// O(n log n) single-pass solver: sorts consumers by demand/weight and
/// freezes them in that order, raising the water level as each one
/// saturates below it. Produces the same allocation as
/// max_min_allocate_weighted up to floating-point reassociation (the
/// freeze-round solver subtracts frozen demands in index order, this one
/// in sorted order), so results agree to ~1e-12 relative — see the
/// property tests. The round-based solver stays the default in the rate
/// models because the golden traces pin its exact bit pattern.
std::vector<double> max_min_allocate_weighted_sorted(
    double capacity, std::span<const double> demands,
    std::span<const double> weights);

}  // namespace hpas::sim
