#include "sim/samplers.hpp"

#include <memory>

#include "sim/world.hpp"

namespace hpas::sim {
namespace {

using metrics::Sample;
using metrics::Sampler;

// /proc/stat counts jiffies; LDMS reports the raw counters. We use
// centiseconds (USER_HZ = 100) to stay unit-faithful.
constexpr double kJiffiesPerSecond = 100.0;

class SimProcStat final : public Sampler {
 public:
  SimProcStat(World& world, int node) : world_(world), node_(node) {}
  std::string name() const override { return "procstat"; }
  std::vector<Sample> sample() override {
    const Node& n = world_.node(node_);
    const double cores = n.config().cores;
    const double user = n.counters().cpu_user_seconds * kJiffiesPerSecond;
    const double sys = n.counters().cpu_sys_seconds * kJiffiesPerSecond;
    const double total = world_.now() * cores * kJiffiesPerSecond;
    return {
        {{"user", name()}, user},
        {{"sys", name()}, sys},
        {{"idle", name()}, std::max(0.0, total - user - sys)},
    };
  }

 private:
  World& world_;
  int node_;
};

class SimMemInfo final : public Sampler {
 public:
  SimMemInfo(World& world, int node) : world_(world), node_(node) {}
  std::string name() const override { return "meminfo"; }
  std::vector<Sample> sample() override {
    const Node& n = world_.node(node_);
    // /proc/meminfo reports kB.
    return {
        {{"MemTotal", name()}, n.config().memory_bytes / 1024.0},
        {{"Memfree", name()}, n.memory_free() / 1024.0},
    };
  }

 private:
  World& world_;
  int node_;
};

class SimVmStat final : public Sampler {
 public:
  SimVmStat(World& world, int node) : world_(world), node_(node) {}
  std::string name() const override { return "vmstat"; }
  std::vector<Sample> sample() override {
    const Node& n = world_.node(node_);
    return {{{"pgfault", name()}, n.counters().pages_faulted}};
  }

 private:
  World& world_;
  int node_;
};

class SimSpapi final : public Sampler {
 public:
  SimSpapi(World& world, int node) : world_(world), node_(node) {}
  std::string name() const override { return "spapiHASW"; }
  std::vector<Sample> sample() override {
    const NodeCounters& c = world_.node(node_).counters();
    return {
        {{"INST_RETIRED:ANY", name()}, c.instructions},
        {{"L1D:REPLACEMENT", name()}, c.l1_misses},
        {{"L2_RQSTS:MISS", name()}, c.l2_misses},
        {{"LLC_MISSES", name()}, c.l3_misses},
        {{"DRAM_BYTES", name()}, c.dram_bytes},
    };
  }

 private:
  World& world_;
  int node_;
};

class SimAriesNic final : public Sampler {
 public:
  SimAriesNic(World& world, int node) : world_(world), node_(node) {}
  std::string name() const override { return "aries_nic_mmr"; }
  std::vector<Sample> sample() override {
    const NodeCounters& c = world_.node(node_).counters();
    // Aries flits carry 32 bytes of payload; the ORB request counter
    // tracks outbound traffic.
    return {
        {{"AR_NIC_NETMON_ORB_EVENT_CNTR_REQ_FLITS", name()},
         c.nic_tx_bytes / 32.0},
        {{"AR_NIC_NETMON_ORB_EVENT_CNTR_RSP_FLITS", name()},
         c.nic_rx_bytes / 32.0},
    };
  }

 private:
  World& world_;
  int node_;
};

}  // namespace

void attach_node_samplers(metrics::Collector& collector, World& world,
                          int node_id) {
  collector.add_sampler(std::make_shared<SimProcStat>(world, node_id));
  collector.add_sampler(std::make_shared<SimMemInfo>(world, node_id));
  collector.add_sampler(std::make_shared<SimVmStat>(world, node_id));
  collector.add_sampler(std::make_shared<SimSpapi>(world, node_id));
  collector.add_sampler(std::make_shared<SimAriesNic>(world, node_id));
}

}  // namespace hpas::sim
