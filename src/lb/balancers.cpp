#include "lb/balancers.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/error.hpp"

namespace hpas::lb {

std::vector<int> LbObjOnly::assign(const ObjectLoads& objects,
                                   const CoreCapacities& capacities) const {
  require(!capacities.empty(), "LbObjOnly: need at least one core");
  std::vector<int> assignment(objects.size());
  for (std::size_t i = 0; i < objects.size(); ++i)
    assignment[i] = static_cast<int>(i % capacities.size());
  return assignment;
}

std::vector<int> GreedyRefineLb::assign(const ObjectLoads& objects,
                                        const CoreCapacities& capacities) const {
  require(!capacities.empty(), "GreedyRefineLb: need at least one core");
  std::vector<std::size_t> order(objects.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return objects[a] > objects[b];  // heaviest first
                   });

  std::vector<double> core_time(capacities.size(), 0.0);
  std::vector<int> assignment(objects.size(), 0);
  for (const std::size_t obj : order) {
    // Place on the core whose projected finish time stays smallest.
    std::size_t best = 0;
    double best_time = std::numeric_limits<double>::infinity();
    for (std::size_t core = 0; core < capacities.size(); ++core) {
      if (capacities[core] <= 0.0) continue;
      const double t = core_time[core] + objects[obj] / capacities[core];
      if (t < best_time) {
        best_time = t;
        best = core;
      }
    }
    assignment[obj] = static_cast<int>(best);
    core_time[best] = best_time;
  }
  return assignment;
}

double iteration_time(const std::vector<int>& assignment,
                      const ObjectLoads& objects,
                      const CoreCapacities& capacities) {
  require(assignment.size() == objects.size(),
          "iteration_time: assignment size mismatch");
  std::vector<double> core_load(capacities.size(), 0.0);
  for (std::size_t i = 0; i < objects.size(); ++i) {
    const auto core = static_cast<std::size_t>(assignment[i]);
    require(core < capacities.size(), "iteration_time: core out of range");
    core_load[core] += objects[i];
  }
  double worst = 0.0;
  for (std::size_t core = 0; core < capacities.size(); ++core) {
    if (core_load[core] <= 0.0) continue;
    if (capacities[core] <= 0.0)
      return std::numeric_limits<double>::infinity();
    worst = std::max(worst, core_load[core] / capacities[core]);
  }
  return worst;
}

RefineResult refine_assignment(const std::vector<int>& previous,
                               const ObjectLoads& objects,
                               const CoreCapacities& capacities,
                               double tolerance) {
  require(previous.size() == objects.size(),
          "refine_assignment: assignment size mismatch");
  require(tolerance >= 1.0, "refine_assignment: tolerance must be >= 1");

  RefineResult result{previous, 0};
  std::vector<double> core_load(capacities.size(), 0.0);
  double total_load = 0.0, total_capacity = 0.0;
  for (std::size_t i = 0; i < objects.size(); ++i) {
    const auto core = static_cast<std::size_t>(previous[i]);
    require(core < capacities.size(), "refine_assignment: core out of range");
    core_load[core] += objects[i];
    total_load += objects[i];
  }
  for (const double cap : capacities) total_capacity += cap;
  if (total_capacity <= 0.0 || objects.empty()) return result;
  const double ideal_time = total_load / total_capacity;
  const double threshold = ideal_time * tolerance;

  auto core_time = [&](std::size_t core) {
    if (capacities[core] <= 0.0)
      return core_load[core] > 0.0
                 ? std::numeric_limits<double>::infinity()
                 : 0.0;
    return core_load[core] / capacities[core];
  };

  // Objects grouped per core, lightest first: migrating the smallest
  // object that fixes the overload minimizes migration volume.
  std::vector<std::vector<std::size_t>> per_core(capacities.size());
  for (std::size_t i = 0; i < objects.size(); ++i)
    per_core[static_cast<std::size_t>(previous[i])].push_back(i);
  for (auto& members : per_core) {
    std::stable_sort(members.begin(), members.end(),
                     [&](std::size_t a, std::size_t b) {
                       return objects[a] < objects[b];
                     });
  }

  const int max_migrations = static_cast<int>(objects.size()) * 4;
  while (result.migrations < max_migrations) {
    // Most overloaded core above threshold.
    std::size_t hot = capacities.size();
    double hot_time = threshold;
    for (std::size_t core = 0; core < capacities.size(); ++core) {
      const double t = core_time(core);
      if (t > hot_time && !per_core[core].empty()) {
        hot_time = t;
        hot = core;
      }
    }
    if (hot == capacities.size()) break;  // balanced within tolerance

    // Move its lightest object to the core with the least projected time.
    const std::size_t object = per_core[hot].front();
    std::size_t best = hot;
    double best_time = std::numeric_limits<double>::infinity();
    for (std::size_t core = 0; core < capacities.size(); ++core) {
      if (core == hot || capacities[core] <= 0.0) continue;
      const double t = (core_load[core] + objects[object]) / capacities[core];
      if (t < best_time) {
        best_time = t;
        best = core;
      }
    }
    if (best == hot || best_time >= hot_time) break;  // no improving move

    per_core[hot].erase(per_core[hot].begin());
    // Keep the receiver's list sorted lightest-first in case it becomes
    // the hot core later.
    per_core[best].insert(
        std::lower_bound(per_core[best].begin(), per_core[best].end(), object,
                         [&](std::size_t a, std::size_t b) {
                           return objects[a] < objects[b];
                         }),
        object);
    core_load[hot] -= objects[object];
    core_load[best] += objects[object];
    result.assignment[object] = static_cast<int>(best);
    ++result.migrations;
  }
  return result;
}

std::vector<double> spread_cpuoccupy(double total_pct, int cores) {
  require(cores >= 1, "spread_cpuoccupy: need at least one core");
  require(total_pct >= 0.0 &&
              total_pct <= 100.0 * static_cast<double>(cores),
          "spread_cpuoccupy: intensity out of range");
  std::vector<double> demand(static_cast<std::size_t>(cores), 0.0);
  double left = total_pct / 100.0;
  for (std::size_t core = 0; core < demand.size() && left > 0.0; ++core) {
    demand[core] = std::min(1.0, left);
    left -= demand[core];
  }
  return demand;
}

CoreCapacities capacities_from_background(const std::vector<double>& demand) {
  CoreCapacities caps(demand.size());
  for (std::size_t i = 0; i < demand.size(); ++i)
    caps[i] = 1.0 / (1.0 + demand[i]);
  return caps;
}

}  // namespace hpas::lb
