#include "lb/stencil.hpp"

#include "common/error.hpp"

namespace hpas::lb {

StencilExperiment::StencilExperiment(StencilConfig config) : config_(config) {
  require(config.cores >= 1 && config.blocks >= 1,
          "StencilExperiment: cores and blocks must be positive");
  Rng rng(config_.seed);
  blocks_.reserve(static_cast<std::size_t>(config_.blocks));
  for (int b = 0; b < config_.blocks; ++b) {
    const double jitter =
        rng.uniform(-config_.block_imbalance, config_.block_imbalance);
    blocks_.push_back(config_.block_time_s * (1.0 + jitter));
  }
}

double StencilExperiment::time_per_iteration(const LoadBalancer& balancer,
                                             double intensity_pct) const {
  const auto background = spread_cpuoccupy(intensity_pct, config_.cores);
  const auto capacities = capacities_from_background(background);

  // GreedyRefineLB decides on *measured* capacities; execution then
  // happens on the true ones. Derive the probe noise deterministically
  // from the intensity so sweeps are reproducible.
  CoreCapacities measured(capacities);
  Rng rng(config_.seed ^ static_cast<std::uint64_t>(intensity_pct * 16.0));
  for (double& cap : measured) {
    cap *= 1.0 + rng.uniform(-config_.measurement_noise,
                             config_.measurement_noise);
  }

  const auto assignment = balancer.assign(blocks_, measured);
  return iteration_time(assignment, blocks_, capacities);
}

}  // namespace hpas::lb
