// The 3D stencil experiment driver of Fig. 13.
//
// A Charm++-examples-style 3D Jacobi stencil over-decomposed into blocks;
// per LB epoch the balancer reassigns blocks, then the runtime executes
// iterations whose wall time is the slowest core. GreedyRefineLB measures
// capacities (with configurable measurement noise -- real instrumentation
// is imperfect); LBObjOnly never looks.
#pragma once

#include "common/rng.hpp"
#include "lb/balancers.hpp"

namespace hpas::lb {

struct StencilConfig {
  int cores = 32;
  int blocks = 128;               ///< over-decomposition: 4 blocks/core
  double block_time_s = 0.0016;   ///< seconds per block per iteration
  double block_imbalance = 0.10;  ///< +-10% per-block load variation
  double measurement_noise = 0.03;  ///< relative capacity-probe error
  int iterations_per_epoch = 50;
  std::uint64_t seed = 0x53544e43;  // "STNC"
};

class StencilExperiment {
 public:
  explicit StencilExperiment(StencilConfig config = {});

  /// Runs one LB epoch under a cpuoccupy background of `intensity_pct`
  /// (in % of one CPU, 0..100*cores) and returns the average time per
  /// iteration.
  double time_per_iteration(const LoadBalancer& balancer,
                            double intensity_pct) const;

 private:
  StencilConfig config_;
  ObjectLoads blocks_;  ///< fixed per experiment (seeded)
};

}  // namespace hpas::lb
