// Charm++-style object load balancers (paper Sec. 5.3, Fig. 13).
//
// A Charm++ program over-decomposes its work into migratable objects;
// the runtime's load balancer assigns objects to cores each LB epoch.
// The paper contrasts:
//   * LBObjOnly      -- uses only object properties (sizes); blind to
//                       background load, so it deals objects evenly;
//   * GreedyRefineLB -- measures each core's *available* capacity first
//                       and greedily assigns the heaviest objects to the
//                       least-loaded core (relative to capacity).
//
// Background load comes from cpuoccupy; a core running the anomaly at
// demand d gives a colocated worker thread a 1/(1+d) proportional share.
#pragma once

#include <string>
#include <vector>

namespace hpas::lb {

/// One migratable object: seconds of work per iteration on a dedicated
/// (unloaded) core.
using ObjectLoads = std::vector<double>;

/// Per-core available capacity in [0,1]: the fraction of a dedicated core
/// a worker thread pinned there would receive.
using CoreCapacities = std::vector<double>;

class LoadBalancer {
 public:
  virtual ~LoadBalancer() = default;
  virtual std::string name() const = 0;

  /// assignment[i] = core index for object i.
  virtual std::vector<int> assign(const ObjectLoads& objects,
                                  const CoreCapacities& capacities) const = 0;
};

/// Deals objects round-robin by index -- equal counts per core, ignoring
/// both object weight differences and core capacities.
class LbObjOnly final : public LoadBalancer {
 public:
  std::string name() const override { return "LBObjOnly"; }
  std::vector<int> assign(const ObjectLoads& objects,
                          const CoreCapacities& capacities) const override;
};

/// Greedy list scheduling on measured capacities: heaviest object first,
/// each placed on the core with the minimal projected completion time
/// (assigned load / capacity).
class GreedyRefineLb final : public LoadBalancer {
 public:
  std::string name() const override { return "GreedyRefineLB"; }
  std::vector<int> assign(const ObjectLoads& objects,
                          const CoreCapacities& capacities) const override;
};

/// Iteration wall time of an assignment: the slowest core's
/// (sum of assigned object loads) / capacity. A core with zero capacity
/// and nonzero load yields +inf.
double iteration_time(const std::vector<int>& assignment,
                      const ObjectLoads& objects,
                      const CoreCapacities& capacities);

/// RefineLB-style incremental rebalancing (the "Refine" in Charm++'s
/// GreedyRefineLB): keep the existing placement and migrate objects off
/// overloaded cores until every core's projected time is within
/// `tolerance` x the ideal, preferring the fewest migrations. Returns
/// the new assignment and the migration count -- the knob a runtime
/// trades balance quality against migration cost with.
struct RefineResult {
  std::vector<int> assignment;
  int migrations = 0;
};

RefineResult refine_assignment(const std::vector<int>& previous,
                               const ObjectLoads& objects,
                               const CoreCapacities& capacities,
                               double tolerance = 1.05);

/// Distributes a cpuoccupy intensity given in "% of one CPU" (0..100*n)
/// across cores the way the paper drives Fig. 13: floor(pct/100) cores
/// fully occupied, one core with the remainder. Returns per-core anomaly
/// demand in [0,1].
std::vector<double> spread_cpuoccupy(double total_pct, int cores);

/// Converts per-core anomaly demand into worker-thread capacities under
/// proportional-share scheduling: capacity = 1 / (1 + demand).
CoreCapacities capacities_from_background(const std::vector<double>& demand);

}  // namespace hpas::lb
