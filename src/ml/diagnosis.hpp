// End-to-end anomaly-diagnosis pipeline (paper Sec. 5.1).
//
// Generates labeled training data by running applications on the
// simulated cluster with and without injected anomalies, extracting
// statistical features from the monitoring windows, and evaluating
// tree-based classifiers with stratified k-fold cross-validation --
// the same offline-training / runtime-diagnosis workflow as the paper's
// framework (Tuncer et al.).
//
// Deliberate fidelity detail: the paper observes that cpuoccupy, membw
// and cachecopy get confused with each other, likely "due to the lack of
// metrics representing memory bandwidth in the monitoring data". We
// therefore EXCLUDE the simulator's DRAM-traffic counter from the feature
// set by default, reproducing that monitoring limitation (and the
// confusion block of Fig. 10). Setting `include_bandwidth_metrics`
// recovers it -- an ablation the paper suggests implicitly.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "metrics/metric_id.hpp"
#include "metrics/sample_sink.hpp"
#include "metrics/store.hpp"
#include "ml/dataset.hpp"
#include "ml/random_forest.hpp"

namespace hpas::sim {
class World;
}
namespace hpas::apps {
class BspApp;
}

namespace hpas::ml {

struct DiagnosisDataOptions {
  /// Classes, index = label. Paper Fig. 9/10 uses exactly these six.
  std::vector<std::string> classes = {"none",      "memleak", "memeater",
                                      "cpuoccupy", "membw",   "cachecopy"};
  /// Anomaly-intensity variants per (app, class) pair.
  int variants_per_app = 5;
  double run_duration_s = 60.0;   ///< simulated monitoring window per run
  double warmup_s = 5.0;          ///< discarded from the feature window
  bool include_bandwidth_metrics = false;  ///< see header comment
  /// Relative sensor noise applied to the simulated counters. The
  /// simulator is exact; production LDMS series carry heavy run-to-run
  /// and phase variation. 0.5 calibrates the synthetic dataset's
  /// difficulty to the paper's production data (RF overall F1 ~ 0.94
  /// with the cpuoccupy/membw/cachecopy classes weakest); see
  /// bench/ablation_diagnosis for the sweep.
  double measurement_noise = 0.5;
  std::uint64_t seed = 0x44494147;  // "DIAG"
};

/// One planned (app, anomaly, intensity) training run. The plan carries
/// its own pre-split sensor-noise RNG, so executing a run is a pure
/// function of the plan -- runs can execute in any order, on any thread,
/// and still produce the exact bytes the serial sweep would.
struct DiagnosisRunPlan {
  std::string app;
  std::string anomaly;  ///< class name; "none" for the clean runs
  int label = 0;        ///< index into DiagnosisDataOptions::classes
  double intensity = 1.0;
  Rng noise_rng;        ///< per-run sensor-noise stream
};

/// Consumes the options seed *serially* (split order matters) and returns
/// the full class x app x variant run list in dataset order.
std::vector<DiagnosisRunPlan> plan_diagnosis_runs(
    const DiagnosisDataOptions& options);

/// Executes one planned run: simulates the scenario on a fresh world and
/// extracts its feature vector. Thread-safe (no shared state).
std::vector<double> run_diagnosis_scenario(const DiagnosisRunPlan& plan,
                                           const DiagnosisDataOptions& options);

/// The metric channels feeding the classifier, in feature order (see the
/// header comment for why DRAM_BYTES is excluded by default).
std::vector<metrics::MetricId> diagnosis_feature_metrics(
    bool include_bandwidth);

/// True for metrics used as-is (gauges); counters are differenced into
/// per-interval rates before feature extraction.
bool diagnosis_metric_is_gauge(const metrics::MetricId& id);

/// A diagnosis scenario that has been set up (world built, monitoring
/// enabled, anomaly injected, application placed) but not yet advanced.
/// Callers run `world->run_until(options.run_duration_s)` and then
/// extract features however they observe samples (batch store or
/// streaming sink).
struct DiagnosisScenario {
  std::unique_ptr<sim::World> world;
  std::unique_ptr<apps::BspApp> app;

  DiagnosisScenario();
  DiagnosisScenario(DiagnosisScenario&&) noexcept;
  DiagnosisScenario& operator=(DiagnosisScenario&&) noexcept;
  ~DiagnosisScenario();
};

/// Sets up one planned run without advancing time: the single source of
/// truth for the scenario construction both extraction modes share. With
/// the defaults this is exactly the batch pipeline's setup; the streaming
/// dataset factory passes a SampleSink (observing node 0, including the
/// t=0 sample) and store_samples = false so the MetricStore never
/// materializes. The simulated world is bit-identical either way -- the
/// sink is observation-only.
DiagnosisScenario begin_diagnosis_scenario(const DiagnosisRunPlan& plan,
                                           const DiagnosisDataOptions& options,
                                           metrics::SampleSink* sink = nullptr,
                                           bool store_samples = true);

/// Feature names in extraction order (metric x statistic).
std::vector<std::string> diagnosis_feature_names(
    const DiagnosisDataOptions& options);

/// Runs the full sweep (classes x apps x variants simulated runs) and
/// returns the labeled feature dataset. Deterministic for a given
/// options value. Equivalent to executing plan_diagnosis_runs() in order;
/// runner::generate_diagnosis_dataset_parallel() fans the same plan
/// across a thread pool with bit-identical results.
Dataset generate_diagnosis_dataset(const DiagnosisDataOptions& options = {});

/// Cross-validated evaluation result for one classifier.
struct DiagnosisScores {
  std::string classifier;
  std::vector<double> per_class_f1;  ///< indexed like options.classes
  double overall_f1 = 0.0;           ///< macro-F1 across classes
  std::vector<std::vector<double>> confusion;  ///< row-normalized
};

/// Trains and evaluates DecisionTree, AdaBoost and RandomForest with
/// stratified `k`-fold CV (paper: 3-fold); returns scores in that order.
std::vector<DiagnosisScores> evaluate_classifiers(const Dataset& data,
                                                  int k_folds = 3,
                                                  std::uint64_t seed = 7);

/// Extracts the diagnosis feature vector for one monitoring window,
/// using exactly the training pipeline's conventions (counters are
/// differenced into rates, gauges used raw, optional sensor noise).
/// Pass rng = nullptr for noise-free extraction.
std::vector<double> extract_window_features(const metrics::MetricStore& store,
                                            double t0, double t1,
                                            bool include_bandwidth_metrics,
                                            double noise, Rng* rng);

/// The runtime phase of the paper's framework (Sec. 5.1: "At runtime, we
/// generate statistical features from resource usage and performance
/// counter data. Using these features, the machine learning model
/// predicts the root cause ... occurring at certain times.").
///
/// Slides a window over live monitoring data and emits one class
/// prediction per hop.
class OnlineDiagnoser {
 public:
  struct Options {
    double window_s = 45.0;
    double hop_s = 15.0;
    bool include_bandwidth_metrics = false;  ///< must match training
  };

  /// Trains a RandomForest on `training` (typically from
  /// generate_diagnosis_dataset) and keeps its class names. (No default
  /// for `options`: nested-class member initializers cannot appear in a
  /// default argument of the enclosing class.)
  OnlineDiagnoser(const Dataset& training, Options options);

  struct WindowDiagnosis {
    double t0 = 0.0;
    double t1 = 0.0;
    int label = 0;
  };

  /// Diagnoses every complete window in [start, end).
  std::vector<WindowDiagnosis> diagnose(const metrics::MetricStore& store,
                                        double start, double end) const;

  const std::vector<std::string>& class_names() const { return classes_; }
  const char* class_name(int label) const;

 private:
  Options options_;
  std::vector<std::string> classes_;
  std::shared_ptr<RandomForest> model_;
};

}  // namespace hpas::ml
