#include "ml/diagnosis.hpp"

#include <algorithm>

#include "apps/bsp_app.hpp"
#include "apps/profiles.hpp"
#include "common/error.hpp"
#include "metrics/features.hpp"
#include "ml/adaboost.hpp"
#include "ml/decision_tree.hpp"
#include "ml/evaluation.hpp"
#include "ml/random_forest.hpp"
#include "sim/cluster.hpp"
#include "simanom/injectors.hpp"

namespace hpas::ml {
namespace {

using metrics::MetricId;

/// Gauge metrics are used as-is; counters are differenced into rates
/// before feature extraction (standard practice for /proc-style data).
bool is_gauge(const MetricId& id) {
  return id.sampler == "meminfo";
}

/// The monitoring channels fed to the classifier: exactly the counters
/// the paper names (procstat, meminfo, vmstat, the spapiHASW events used
/// in Table 2, and the Aries flit counter). DRAM_BYTES is the
/// memory-bandwidth counter the paper's deployment lacks; L1-level
/// counters are likewise not part of the paper's metric set.
std::vector<MetricId> feature_metrics(bool include_bandwidth) {
  std::vector<MetricId> ids = {
      {"user", "procstat"},
      {"sys", "procstat"},
      {"idle", "procstat"},
      {"Memfree", "meminfo"},
      {"pgfault", "vmstat"},
      {"INST_RETIRED:ANY", "spapiHASW"},
      {"L2_RQSTS:MISS", "spapiHASW"},
      {"LLC_MISSES", "spapiHASW"},
      {"AR_NIC_NETMON_ORB_EVENT_CNTR_REQ_FLITS", "aries_nic_mmr"},
  };
  if (include_bandwidth) ids.push_back({"DRAM_BYTES", "spapiHASW"});
  return ids;
}

}  // namespace

std::vector<double> extract_window_features(const metrics::MetricStore& store,
                                            double t0, double t1,
                                            bool include_bandwidth_metrics,
                                            double noise, Rng* rng) {
  std::vector<double> features;
  for (const MetricId& id : feature_metrics(include_bandwidth_metrics)) {
    std::vector<double> window;
    if (store.contains(id)) window = store.series(id).values_between(t0, t1);
    if (!is_gauge(id) && window.size() >= 2) {
      std::vector<double> rates;
      rates.reserve(window.size() - 1);
      for (std::size_t i = 1; i < window.size(); ++i)
        rates.push_back(window[i] - window[i - 1]);
      window = std::move(rates);
    }
    if (rng != nullptr && noise > 0.0) {
      for (double& v : window) v *= 1.0 + rng->normal(0.0, noise);
    }
    const auto f = metrics::extract_series_features(window);
    features.insert(features.end(), f.begin(), f.end());
  }
  return features;
}

std::vector<metrics::MetricId> diagnosis_feature_metrics(
    bool include_bandwidth) {
  return feature_metrics(include_bandwidth);
}

bool diagnosis_metric_is_gauge(const metrics::MetricId& id) {
  return is_gauge(id);
}

DiagnosisScenario::DiagnosisScenario() = default;
DiagnosisScenario::DiagnosisScenario(DiagnosisScenario&&) noexcept = default;
DiagnosisScenario& DiagnosisScenario::operator=(DiagnosisScenario&&) noexcept =
    default;
DiagnosisScenario::~DiagnosisScenario() = default;

DiagnosisScenario begin_diagnosis_scenario(const DiagnosisRunPlan& plan,
                                           const DiagnosisDataOptions& options,
                                           metrics::SampleSink* sink,
                                           bool store_samples) {
  const std::string& anomaly = plan.anomaly;
  const double intensity = plan.intensity;
  DiagnosisScenario scenario;
  scenario.world = sim::make_voltrino_world();
  sim::World& world = *scenario.world;
  world.enable_monitoring(1.0, sink, /*sink_node=*/0, store_samples);

  if (anomaly != "none") {
    // The busy anomalies (cpuoccupy/cachecopy/membw) colocate with rank 0
    // -- the orphan-process pattern of the paper's experiments -- which is
    // also what makes them partially confusable: all three present as one
    // stolen core plus a slowed application. The footprint anomalies
    // (memeater/memleak) take a free core. Each class spans its full
    // intensity range ("can be configured for various intensities"),
    // which is what gives the class-conditional distributions realistic
    // overlap.
    const double duration = options.run_duration_s;
    if (anomaly == "cpuoccupy") {
      simanom::inject_cpuoccupy(world, 0, 0, 100.0 * intensity, duration);
    } else if (anomaly == "cachecopy") {
      // Cycle the targeted level with the intensity knob: the suite is
      // exercised at L1, L2 and L3 working sets.
      const auto level = static_cast<simanom::SimCacheLevel>(
          1 + static_cast<int>(intensity * 977.0) % 3);
      simanom::inject_cachecopy(world, 0, 0, level,
                                std::clamp(intensity, 0.4, 1.5), duration);
    } else if (anomaly == "membw") {
      simanom::inject_membw(world, 0, 0, duration,
                            std::clamp(intensity, 0.3, 1.0));
    } else {
      simanom::inject_by_name(world, anomaly, /*node=*/0, /*core=*/8,
                              duration, intensity);
    }
  }

  apps::AppSpec spec = apps::app_by_name(plan.app);
  spec.iterations = 1000000;  // runs past the window; we only observe
  scenario.app = std::make_unique<apps::BspApp>(
      world, spec,
      apps::BspApp::Placement{
          .nodes = {0, 4}, .ranks_per_node = 4, .first_core = 0});
  return scenario;
}

namespace {

double intensity_for_variant(const std::string& anomaly, int variant,
                             int variants, Rng& rng) {
  // Spread intensities over a plausible operational range, with jitter so
  // no two samples are identical.
  const double frac =
      variants > 1 ? static_cast<double>(variant) /
                         static_cast<double>(variants - 1)
                   : 0.5;
  const double jitter = rng.uniform(-0.05, 0.05);
  if (anomaly == "cpuoccupy")
    return std::clamp(0.3 + 0.7 * frac + jitter, 0.1, 1.0);  // 30..100%
  if (anomaly == "cachecopy") return 0.6 + 0.8 * frac + jitter;  // ws mult
  if (anomaly == "membw")
    return std::clamp(0.4 + 0.6 * frac + jitter, 0.3, 1.0);  // duty
  if (anomaly == "memleak" || anomaly == "memeater")
    return 0.5 + 1.5 * frac + jitter;  // chunk-size scale
  return 1.0 + jitter;
}

}  // namespace

std::vector<DiagnosisRunPlan> plan_diagnosis_runs(
    const DiagnosisDataOptions& options) {
  require(!options.classes.empty() && options.classes[0] == "none",
          "plan_diagnosis_runs: class 0 must be 'none'");
  // The split()/uniform() consumption order below must stay exactly the
  // historical serial-sweep order: the plan IS the dataset's random tape,
  // and every executor (serial or pooled) replays it bit-identically.
  Rng rng(options.seed);
  std::vector<DiagnosisRunPlan> plan;
  for (std::size_t label = 0; label < options.classes.size(); ++label) {
    const std::string& anomaly = options.classes[label];
    for (const auto& app : apps::proxy_apps()) {
      for (int variant = 0; variant < options.variants_per_app; ++variant) {
        DiagnosisRunPlan run{.app = app.name,
                             .anomaly = anomaly,
                             .label = static_cast<int>(label),
                             .intensity = 0.0,
                             .noise_rng = rng.split()};
        run.intensity = intensity_for_variant(
            anomaly, variant, options.variants_per_app, rng);
        plan.push_back(std::move(run));
      }
    }
  }
  return plan;
}

std::vector<double> run_diagnosis_scenario(const DiagnosisRunPlan& plan,
                                           const DiagnosisDataOptions& options) {
  DiagnosisScenario scenario = begin_diagnosis_scenario(plan, options);
  scenario.world->run_until(options.run_duration_s);

  // Sensor noise: real LDMS data is jittery; the simulator is exact.
  Rng noise_rng = plan.noise_rng;  // private copy: the plan stays reusable
  return extract_window_features(
      scenario.world->node_store(0), options.warmup_s,
      options.run_duration_s + 0.5, options.include_bandwidth_metrics,
      options.measurement_noise, &noise_rng);
}

std::vector<std::string> diagnosis_feature_names(
    const DiagnosisDataOptions& options) {
  std::vector<std::string> names;
  for (const MetricId& id :
       feature_metrics(options.include_bandwidth_metrics)) {
    for (const auto& stat : metrics::feature_statistic_names())
      names.push_back(id.full_name() + "#" + stat);
  }
  return names;
}

Dataset generate_diagnosis_dataset(const DiagnosisDataOptions& options) {
  Dataset data;
  data.class_names = options.classes;
  data.feature_names = diagnosis_feature_names(options);
  for (const DiagnosisRunPlan& run : plan_diagnosis_runs(options))
    data.add(run_diagnosis_scenario(run, options), run.label);
  return data;
}

std::vector<DiagnosisScores> evaluate_classifiers(const Dataset& data,
                                                  int k_folds,
                                                  std::uint64_t seed) {
  require(data.size() > 0, "evaluate_classifiers: empty dataset");
  Rng rng(seed);
  const auto folds = stratified_k_fold(data, k_folds, rng);

  struct Model {
    std::string name;
    std::function<std::function<int(std::span<const double>)>(
        const Dataset&)> train;
  };
  const std::vector<Model> models = {
      {"DecisionTree",
       [](const Dataset& train) {
         auto tree = std::make_shared<DecisionTree>(TreeOptions{
             .max_depth = 12, .min_samples_leaf = 2, .min_samples_split = 4});
         tree->fit(train);
         return [tree](std::span<const double> x) {
           return tree->predict(x);
         };
       }},
      {"AdaBoost",
       [](const Dataset& train) {
         auto model = std::make_shared<AdaBoost>(
             AdaBoostOptions{.num_rounds = 40, .base_max_depth = 3});
         model->fit(train);
         return [model](std::span<const double> x) {
           return model->predict(x);
         };
       }},
      {"RandomForest",
       [](const Dataset& train) {
         auto forest = std::make_shared<RandomForest>(ForestOptions{
             .num_trees = 50, .max_depth = 14, .min_samples_leaf = 1});
         forest->fit(train);
         return [forest](std::span<const double> x) {
           return forest->predict(x);
         };
       }},
  };

  std::vector<DiagnosisScores> results;
  for (const auto& model : models) {
    ConfusionMatrix confusion(data.num_classes());
    for (const auto& fold : folds) {
      const Dataset train = data.select(fold.train_indices);
      const auto predict = model.train(train);
      for (const std::size_t i : fold.test_indices) {
        confusion.add(data.labels[i], predict(data.row(i)));
      }
    }
    DiagnosisScores scores;
    scores.classifier = model.name;
    for (int c = 0; c < data.num_classes(); ++c)
      scores.per_class_f1.push_back(confusion.f1(c));
    scores.overall_f1 = confusion.macro_f1();
    scores.confusion = confusion.row_normalized();
    results.push_back(std::move(scores));
  }
  return results;
}

OnlineDiagnoser::OnlineDiagnoser(const Dataset& training, Options options)
    : options_(options), classes_(training.class_names) {
  require(options.window_s > 0.0 && options.hop_s > 0.0,
          "OnlineDiagnoser: window and hop must be positive");
  require(training.size() > 0, "OnlineDiagnoser: empty training set");
  model_ = std::make_shared<RandomForest>(
      ForestOptions{.num_trees = 50, .max_depth = 14});
  model_->fit(training);
}

const char* OnlineDiagnoser::class_name(int label) const {
  require(label >= 0 && static_cast<std::size_t>(label) < classes_.size(),
          "OnlineDiagnoser: label out of range");
  return classes_[static_cast<std::size_t>(label)].c_str();
}

std::vector<OnlineDiagnoser::WindowDiagnosis> OnlineDiagnoser::diagnose(
    const metrics::MetricStore& store, double start, double end) const {
  std::vector<WindowDiagnosis> out;
  for (double t0 = start; t0 + options_.window_s <= end;
       t0 += options_.hop_s) {
    const double t1 = t0 + options_.window_s;
    const auto features = extract_window_features(
        store, t0, t1, options_.include_bandwidth_metrics, 0.0, nullptr);
    out.push_back({t0, t1, model_->predict(features)});
  }
  return out;
}

}  // namespace hpas::ml
