// AdaBoost.SAMME (multi-class) over shallow CART trees; one of the three
// classifiers compared in the paper's diagnosis use case (Fig. 9).
#pragma once

#include <span>
#include <vector>

#include "ml/decision_tree.hpp"

namespace hpas::ml {

struct AdaBoostOptions {
  int num_rounds = 50;
  int base_max_depth = 3;  ///< shallow base learners
  std::size_t min_samples_leaf = 1;
};

class AdaBoost {
 public:
  explicit AdaBoost(AdaBoostOptions options = {});

  void fit(const Dataset& data);

  int predict(std::span<const double> x) const;

  bool trained() const { return !stages_.empty(); }
  std::size_t stage_count() const { return stages_.size(); }

 private:
  struct Stage {
    DecisionTree tree;
    double alpha = 0.0;
  };

  AdaBoostOptions options_;
  int num_classes_ = 0;
  std::vector<Stage> stages_;
};

}  // namespace hpas::ml
