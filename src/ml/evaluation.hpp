// Classifier evaluation: confusion matrix, per-class F1, macro-F1 --
// the metrics reported in the paper's Figs. 9 and 10.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hpas::ml {

class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(int num_classes);

  void add(int true_label, int predicted_label);
  void merge(const ConfusionMatrix& other);

  int num_classes() const { return static_cast<int>(counts_.size()); }
  std::size_t count(int true_label, int predicted_label) const;
  std::size_t total() const;

  double accuracy() const;
  double precision(int cls) const;  ///< 0 when the class was never predicted
  double recall(int cls) const;     ///< 0 when the class never occurred
  double f1(int cls) const;
  double macro_f1() const;

  /// Row-normalized matrix (each row sums to 1), the form of Fig. 10.
  std::vector<std::vector<double>> row_normalized() const;

  /// Pretty-prints the row-normalized matrix with class names.
  void print(std::ostream& os, const std::vector<std::string>& names) const;

 private:
  std::vector<std::vector<std::size_t>> counts_;  // [true][pred]
};

}  // namespace hpas::ml
