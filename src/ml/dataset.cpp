#include "ml/dataset.hpp"

#include "common/error.hpp"

namespace hpas::ml {

void Dataset::add(std::span<const double> x, int y) {
  require(labels.empty() || x.size() == stride_,
          "Dataset: inconsistent feature dimension");
  require(y >= 0 && y < num_classes(), "Dataset: label out of range");
  if (labels.empty()) stride_ = x.size();
  values_.insert(values_.end(), x.begin(), x.end());
  labels.push_back(y);
}

Dataset Dataset::select(const std::vector<std::size_t>& indices) const {
  Dataset out;
  out.class_names = class_names;
  out.feature_names = feature_names;
  out.stride_ = stride_;
  out.values_.reserve(indices.size() * stride_);
  out.labels.reserve(indices.size());
  for (const std::size_t i : indices) {
    require(i < size(), "Dataset::select: index out of range");
    const auto r = row(i);
    out.values_.insert(out.values_.end(), r.begin(), r.end());
    out.labels.push_back(labels[i]);
  }
  return out;
}

std::vector<Fold> stratified_k_fold(const Dataset& data, int k, Rng& rng) {
  require(k >= 2, "stratified_k_fold: k must be >= 2");
  require(data.size() >= static_cast<std::size_t>(k),
          "stratified_k_fold: too few samples");

  // Group indices by class, shuffle within each class, then deal them
  // round-robin into folds.
  std::vector<std::vector<std::size_t>> by_class(
      static_cast<std::size_t>(data.num_classes()));
  for (std::size_t i = 0; i < data.size(); ++i)
    by_class[static_cast<std::size_t>(data.labels[i])].push_back(i);

  std::vector<std::vector<std::size_t>> fold_test(
      static_cast<std::size_t>(k));
  for (auto& members : by_class) {
    rng.shuffle(members);
    for (std::size_t j = 0; j < members.size(); ++j)
      fold_test[j % static_cast<std::size_t>(k)].push_back(members[j]);
  }

  std::vector<Fold> folds(static_cast<std::size_t>(k));
  for (std::size_t f = 0; f < folds.size(); ++f) {
    folds[f].test_indices = fold_test[f];
    for (std::size_t g = 0; g < folds.size(); ++g) {
      if (g == f) continue;
      folds[f].train_indices.insert(folds[f].train_indices.end(),
                                    fold_test[g].begin(), fold_test[g].end());
    }
  }
  return folds;
}

}  // namespace hpas::ml
