#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace hpas::ml {
namespace {

double gini_from_counts(const std::vector<double>& counts, double total) {
  if (total <= 0.0) return 0.0;
  double sum_sq = 0.0;
  for (const double c : counts) sum_sq += c * c;
  return 1.0 - sum_sq / (total * total);
}

}  // namespace

DecisionTree::DecisionTree(TreeOptions options) : options_(options) {}

int DecisionTree::make_leaf(const Dataset& data,
                            const std::vector<std::size_t>& rows,
                            const std::vector<double>& weights) {
  Node leaf;
  leaf.class_weights.assign(static_cast<std::size_t>(num_classes_), 0.0);
  double total = 0.0;
  for (const std::size_t r : rows) {
    const double w = weights.empty() ? 1.0 : weights[r];
    leaf.class_weights[static_cast<std::size_t>(data.labels[r])] += w;
    total += w;
  }
  if (total > 0.0) {
    for (double& w : leaf.class_weights) w /= total;
  }
  nodes_.push_back(std::move(leaf));
  return static_cast<int>(nodes_.size()) - 1;
}

int DecisionTree::build(const Dataset& data, std::vector<std::size_t>& rows,
                        const std::vector<double>& weights, int depth,
                        Rng* rng) {
  // Stop: depth, size, or purity.
  bool pure = true;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    if (data.labels[rows[i]] != data.labels[rows[0]]) {
      pure = false;
      break;
    }
  }
  if (pure || depth >= options_.max_depth ||
      rows.size() < options_.min_samples_split) {
    return make_leaf(data, rows, weights);
  }

  // Candidate features (all, or a random subset for forests).
  std::vector<std::size_t> candidates(data.num_features());
  std::iota(candidates.begin(), candidates.end(), std::size_t{0});
  if (options_.max_features > 0 &&
      options_.max_features < candidates.size()) {
    require(rng != nullptr, "DecisionTree: rng required for max_features");
    rng->shuffle(candidates);
    candidates.resize(options_.max_features);
  }

  // Totals for the parent.
  std::vector<double> total_counts(static_cast<std::size_t>(num_classes_), 0.0);
  double total_weight = 0.0;
  for (const std::size_t r : rows) {
    const double w = weights.empty() ? 1.0 : weights[r];
    total_counts[static_cast<std::size_t>(data.labels[r])] += w;
    total_weight += w;
  }
  const double parent_gini = gini_from_counts(total_counts, total_weight);

  // Best split search.
  int best_feature = -1;
  double best_threshold = 0.0;
  double best_gain = 1e-12;
  std::vector<std::size_t> order(rows);
  for (const std::size_t f : candidates) {
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return data.at(a, f) < data.at(b, f);
    });
    std::vector<double> left_counts(static_cast<std::size_t>(num_classes_), 0.0);
    double left_weight = 0.0;
    for (std::size_t i = 0; i + 1 < order.size(); ++i) {
      const std::size_t r = order[i];
      const double w = weights.empty() ? 1.0 : weights[r];
      left_counts[static_cast<std::size_t>(data.labels[r])] += w;
      left_weight += w;
      const double v = data.at(r, f);
      const double v_next = data.at(order[i + 1], f);
      if (v == v_next) continue;  // no threshold between equal values
      const std::size_t n_left = i + 1;
      const std::size_t n_right = order.size() - n_left;
      if (n_left < options_.min_samples_leaf ||
          n_right < options_.min_samples_leaf)
        continue;
      std::vector<double> right_counts(total_counts);
      for (std::size_t c = 0; c < right_counts.size(); ++c)
        right_counts[c] -= left_counts[c];
      const double right_weight = total_weight - left_weight;
      const double child_gini =
          (left_weight * gini_from_counts(left_counts, left_weight) +
           right_weight * gini_from_counts(right_counts, right_weight)) /
          total_weight;
      const double gain = parent_gini - child_gini;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (v + v_next);
      }
    }
  }

  if (best_feature < 0) return make_leaf(data, rows, weights);

  // Gini importance: impurity decrease weighted by how much of the
  // training mass reaches this split.
  importances_[static_cast<std::size_t>(best_feature)] +=
      best_gain * total_weight;

  std::vector<std::size_t> left_rows, right_rows;
  for (const std::size_t r : rows) {
    if (data.at(r, static_cast<std::size_t>(best_feature)) <=
        best_threshold) {
      left_rows.push_back(r);
    } else {
      right_rows.push_back(r);
    }
  }
  require(!left_rows.empty() && !right_rows.empty(),
          "DecisionTree: degenerate split");

  const int me = static_cast<int>(nodes_.size());
  nodes_.emplace_back();  // placeholder; children indices filled below
  nodes_[static_cast<std::size_t>(me)].feature = best_feature;
  nodes_[static_cast<std::size_t>(me)].threshold = best_threshold;
  const int left = build(data, left_rows, weights, depth + 1, rng);
  const int right = build(data, right_rows, weights, depth + 1, rng);
  nodes_[static_cast<std::size_t>(me)].left = left;
  nodes_[static_cast<std::size_t>(me)].right = right;
  return me;
}

void DecisionTree::fit(const Dataset& data,
                       const std::vector<std::size_t>& indices,
                       const std::vector<double>& weights, Rng* rng) {
  require(data.size() > 0, "DecisionTree: empty dataset");
  require(weights.empty() || weights.size() == data.size(),
          "DecisionTree: weights size mismatch");
  nodes_.clear();
  num_classes_ = data.num_classes();
  importances_.assign(data.num_features(), 0.0);
  std::vector<std::size_t> rows = indices;
  if (rows.empty()) {
    rows.resize(data.size());
    std::iota(rows.begin(), rows.end(), std::size_t{0});
  }
  build(data, rows, weights, 0, rng);
  double total_importance = 0.0;
  for (const double imp : importances_) total_importance += imp;
  if (total_importance > 0.0) {
    for (double& imp : importances_) imp /= total_importance;
  }
}

std::vector<double> DecisionTree::predict_proba(
    std::span<const double> x) const {
  require(trained(), "DecisionTree: not trained");
  int at = 0;
  while (nodes_[static_cast<std::size_t>(at)].feature >= 0) {
    const Node& n = nodes_[static_cast<std::size_t>(at)];
    at = (x[static_cast<std::size_t>(n.feature)] <= n.threshold) ? n.left
                                                                 : n.right;
  }
  return nodes_[static_cast<std::size_t>(at)].class_weights;
}

int DecisionTree::predict(std::span<const double> x) const {
  const auto proba = predict_proba(x);
  return static_cast<int>(std::max_element(proba.begin(), proba.end()) -
                          proba.begin());
}

int DecisionTree::depth() const {
  // Iterative depth computation over the node array.
  if (nodes_.empty()) return 0;
  std::vector<std::pair<int, int>> stack{{0, 1}};
  int max_depth = 0;
  while (!stack.empty()) {
    const auto [at, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    const Node& n = nodes_[static_cast<std::size_t>(at)];
    if (n.feature >= 0) {
      stack.push_back({n.left, d + 1});
      stack.push_back({n.right, d + 1});
    }
  }
  return max_depth;
}

}  // namespace hpas::ml
