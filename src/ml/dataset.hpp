// Labeled dataset container and cross-validation splits for the anomaly
// diagnosis pipeline (paper Sec. 5.1: statistical features from
// monitoring windows, labels = anomaly classes, 3-fold cross-validation).
//
// Rows live in ONE contiguous row-major buffer (stride = num_features):
// no per-row heap allocation on ingest, cache-friendly column scans in
// the tree learners, and a trivially CRC-able byte image for the dataset
// factory's shard import/export. row(i) hands out a span view; iteration
// semantics are unchanged from the historical vector-of-vectors layout.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace hpas::ml {

struct Dataset {
  std::vector<int> labels;  ///< class index per sample
  std::vector<std::string> class_names;
  std::vector<std::string> feature_names;  ///< optional

  std::size_t size() const { return labels.size(); }
  std::size_t num_features() const { return stride_; }
  int num_classes() const { return static_cast<int>(class_names.size()); }

  /// Row `i` as a view into the contiguous buffer.
  std::span<const double> row(std::size_t i) const {
    return {values_.data() + i * stride_, stride_};
  }
  double at(std::size_t r, std::size_t c) const {
    return values_[r * stride_ + c];
  }

  /// The whole row-major buffer (size() * num_features() doubles).
  const std::vector<double>& values() const { return values_; }

  /// Appends one row. The first add fixes the feature dimension.
  void add(std::span<const double> x, int y);
  void add(std::initializer_list<double> x, int y) {
    add(std::span<const double>(x.begin(), x.size()), y);
  }

  /// Subset by row indices.
  Dataset select(const std::vector<std::size_t>& indices) const;

 private:
  std::vector<double> values_;  ///< row-major, size() * stride_
  std::size_t stride_ = 0;
};

/// One train/test split.
struct Fold {
  std::vector<std::size_t> train_indices;
  std::vector<std::size_t> test_indices;
};

/// Stratified k-fold: every fold's test set preserves (as closely as
/// integer counts allow) the class proportions of the whole set. The
/// shuffle is seeded -- identical folds on every run.
std::vector<Fold> stratified_k_fold(const Dataset& data, int k, Rng& rng);

}  // namespace hpas::ml
