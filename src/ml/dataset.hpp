// Labeled dataset container and cross-validation splits for the anomaly
// diagnosis pipeline (paper Sec. 5.1: statistical features from
// monitoring windows, labels = anomaly classes, 3-fold cross-validation).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace hpas::ml {

struct Dataset {
  std::vector<std::vector<double>> features;  ///< row-major samples
  std::vector<int> labels;                    ///< class index per sample
  std::vector<std::string> class_names;
  std::vector<std::string> feature_names;     ///< optional

  std::size_t size() const { return features.size(); }
  std::size_t num_features() const {
    return features.empty() ? 0 : features.front().size();
  }
  int num_classes() const { return static_cast<int>(class_names.size()); }

  void add(std::vector<double> x, int y);

  /// Subset by row indices.
  Dataset select(const std::vector<std::size_t>& indices) const;
};

/// One train/test split.
struct Fold {
  std::vector<std::size_t> train_indices;
  std::vector<std::size_t> test_indices;
};

/// Stratified k-fold: every fold's test set preserves (as closely as
/// integer counts allow) the class proportions of the whole set. The
/// shuffle is seeded -- identical folds on every run.
std::vector<Fold> stratified_k_fold(const Dataset& data, int k, Rng& rng);

}  // namespace hpas::ml
