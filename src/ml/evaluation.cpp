#include "ml/evaluation.hpp"

#include <iomanip>
#include <ostream>

#include "common/error.hpp"

namespace hpas::ml {

ConfusionMatrix::ConfusionMatrix(int num_classes)
    : counts_(static_cast<std::size_t>(num_classes),
              std::vector<std::size_t>(static_cast<std::size_t>(num_classes),
                                       0)) {
  require(num_classes >= 1, "ConfusionMatrix: need at least one class");
}

void ConfusionMatrix::add(int true_label, int predicted_label) {
  require(true_label >= 0 && true_label < num_classes() &&
              predicted_label >= 0 && predicted_label < num_classes(),
          "ConfusionMatrix: label out of range");
  ++counts_[static_cast<std::size_t>(true_label)]
           [static_cast<std::size_t>(predicted_label)];
}

void ConfusionMatrix::merge(const ConfusionMatrix& other) {
  require(other.num_classes() == num_classes(),
          "ConfusionMatrix: class count mismatch");
  for (std::size_t t = 0; t < counts_.size(); ++t)
    for (std::size_t p = 0; p < counts_.size(); ++p)
      counts_[t][p] += other.counts_[t][p];
}

std::size_t ConfusionMatrix::count(int true_label, int predicted_label) const {
  return counts_[static_cast<std::size_t>(true_label)]
                [static_cast<std::size_t>(predicted_label)];
}

std::size_t ConfusionMatrix::total() const {
  std::size_t sum = 0;
  for (const auto& row : counts_)
    for (const std::size_t c : row) sum += c;
  return sum;
}

double ConfusionMatrix::accuracy() const {
  const std::size_t all = total();
  if (all == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) correct += counts_[i][i];
  return static_cast<double>(correct) / static_cast<double>(all);
}

double ConfusionMatrix::precision(int cls) const {
  const auto c = static_cast<std::size_t>(cls);
  std::size_t predicted = 0;
  for (const auto& row : counts_) predicted += row[c];
  if (predicted == 0) return 0.0;
  return static_cast<double>(counts_[c][c]) / static_cast<double>(predicted);
}

double ConfusionMatrix::recall(int cls) const {
  const auto c = static_cast<std::size_t>(cls);
  std::size_t actual = 0;
  for (const std::size_t v : counts_[c]) actual += v;
  if (actual == 0) return 0.0;
  return static_cast<double>(counts_[c][c]) / static_cast<double>(actual);
}

double ConfusionMatrix::f1(int cls) const {
  const double p = precision(cls);
  const double r = recall(cls);
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

double ConfusionMatrix::macro_f1() const {
  double sum = 0.0;
  for (int c = 0; c < num_classes(); ++c) sum += f1(c);
  return sum / static_cast<double>(num_classes());
}

std::vector<std::vector<double>> ConfusionMatrix::row_normalized() const {
  std::vector<std::vector<double>> out(
      counts_.size(), std::vector<double>(counts_.size(), 0.0));
  for (std::size_t t = 0; t < counts_.size(); ++t) {
    std::size_t row_total = 0;
    for (const std::size_t c : counts_[t]) row_total += c;
    if (row_total == 0) continue;
    for (std::size_t p = 0; p < counts_.size(); ++p) {
      out[t][p] = static_cast<double>(counts_[t][p]) /
                  static_cast<double>(row_total);
    }
  }
  return out;
}

void ConfusionMatrix::print(std::ostream& os,
                            const std::vector<std::string>& names) const {
  require(names.size() == counts_.size(),
          "ConfusionMatrix::print: name count mismatch");
  const auto norm = row_normalized();
  os << std::setw(12) << "true\\pred";
  for (const auto& name : names) os << std::setw(11) << name;
  os << '\n';
  for (std::size_t t = 0; t < norm.size(); ++t) {
    os << std::setw(12) << names[t];
    for (std::size_t p = 0; p < norm.size(); ++p) {
      os << std::setw(11) << std::fixed << std::setprecision(2) << norm[t][p];
    }
    os << '\n';
  }
}

}  // namespace hpas::ml
