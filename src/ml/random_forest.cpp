#include "ml/random_forest.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace hpas::ml {

RandomForest::RandomForest(ForestOptions options) : options_(options) {
  require(options.num_trees >= 1, "RandomForest: need at least one tree");
}

void RandomForest::fit(const Dataset& data) {
  require(data.size() > 0, "RandomForest: empty dataset");
  trees_.clear();
  num_classes_ = data.num_classes();
  Rng rng(options_.seed);

  std::size_t max_features = options_.max_features;
  if (max_features == 0) {
    max_features = static_cast<std::size_t>(
        std::lround(std::sqrt(static_cast<double>(data.num_features()))));
    max_features = std::max<std::size_t>(max_features, 1);
  }

  for (int t = 0; t < options_.num_trees; ++t) {
    // Bootstrap sample (with replacement) of the full training set.
    std::vector<std::size_t> sample(data.size());
    for (auto& idx : sample)
      idx = static_cast<std::size_t>(rng.next_below(data.size()));

    TreeOptions tree_options;
    tree_options.max_depth = options_.max_depth;
    tree_options.min_samples_leaf = options_.min_samples_leaf;
    tree_options.max_features = max_features;
    DecisionTree tree(tree_options);
    Rng tree_rng = rng.split();
    tree.fit(data, sample, {}, &tree_rng);
    trees_.push_back(std::move(tree));
  }
}

std::vector<double> RandomForest::predict_proba(
    std::span<const double> x) const {
  require(trained(), "RandomForest: not trained");
  std::vector<double> votes(static_cast<std::size_t>(num_classes_), 0.0);
  for (const auto& tree : trees_) {
    const auto proba = tree.predict_proba(x);
    for (std::size_t c = 0; c < votes.size(); ++c) votes[c] += proba[c];
  }
  const double total = static_cast<double>(trees_.size());
  for (double& v : votes) v /= total;
  return votes;
}

std::vector<double> RandomForest::feature_importances() const {
  require(trained(), "RandomForest: not trained");
  std::vector<double> total(trees_.front().feature_importances().size(), 0.0);
  for (const auto& tree : trees_) {
    const auto& imp = tree.feature_importances();
    for (std::size_t f = 0; f < total.size(); ++f) total[f] += imp[f];
  }
  double sum = 0.0;
  for (const double v : total) sum += v;
  if (sum > 0.0) {
    for (double& v : total) v /= sum;
  }
  return total;
}

int RandomForest::predict(std::span<const double> x) const {
  const auto proba = predict_proba(x);
  return static_cast<int>(std::max_element(proba.begin(), proba.end()) -
                          proba.begin());
}

}  // namespace hpas::ml
