// Random forest: bagged CART trees with sqrt-feature subsampling.
// The paper's best-performing diagnosis model (overall F1 ~ 0.94, Fig. 9).
#pragma once

#include <span>
#include <vector>

#include "ml/decision_tree.hpp"

namespace hpas::ml {

struct ForestOptions {
  int num_trees = 100;
  int max_depth = 16;
  std::size_t min_samples_leaf = 1;
  /// 0 = sqrt(num_features), the standard default.
  std::size_t max_features = 0;
  std::uint64_t seed = 0x464f5245;  // "FORE"
};

class RandomForest {
 public:
  explicit RandomForest(ForestOptions options = {});

  void fit(const Dataset& data);

  int predict(std::span<const double> x) const;
  std::vector<double> predict_proba(std::span<const double> x) const;

  bool trained() const { return !trees_.empty(); }
  std::size_t tree_count() const { return trees_.size(); }

  /// Mean of the member trees' gini importances (normalized to sum 1).
  std::vector<double> feature_importances() const;

 private:
  ForestOptions options_;
  int num_classes_ = 0;
  std::vector<DecisionTree> trees_;
};

}  // namespace hpas::ml
