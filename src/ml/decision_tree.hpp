// CART decision tree (gini impurity), the base learner of the paper's
// diagnosis framework. Supports sample weights (AdaBoost) and per-split
// feature subsampling (random forest).
#pragma once

#include <span>
#include <vector>

#include "common/rng.hpp"
#include "ml/dataset.hpp"

namespace hpas::ml {

struct TreeOptions {
  int max_depth = 16;
  std::size_t min_samples_leaf = 1;
  std::size_t min_samples_split = 2;
  /// Number of features examined per split; 0 = all (plain CART),
  /// otherwise a uniform random subset per split (random forest).
  std::size_t max_features = 0;
};

class DecisionTree {
 public:
  explicit DecisionTree(TreeOptions options = {});

  /// Fits on `data` restricted to `indices` (empty = all rows).
  /// `weights` are per-row sample weights over the *whole* dataset
  /// (empty = uniform). `rng` is required when max_features > 0.
  void fit(const Dataset& data,
           const std::vector<std::size_t>& indices = {},
           const std::vector<double>& weights = {}, Rng* rng = nullptr);

  int predict(std::span<const double> x) const;
  /// Per-class weight distribution at the reached leaf (sums to 1).
  std::vector<double> predict_proba(std::span<const double> x) const;

  bool trained() const { return !nodes_.empty(); }
  std::size_t node_count() const { return nodes_.size(); }
  int depth() const;

  /// Gini importance per feature: total weighted impurity decrease
  /// contributed by splits on that feature, normalized to sum to 1
  /// (all zeros for a single-leaf tree). The diagnosis pipeline uses
  /// this to report which monitoring metrics drive each prediction.
  const std::vector<double>& feature_importances() const {
    return importances_;
  }

 private:
  struct Node {
    int feature = -1;         ///< -1 = leaf
    double threshold = 0.0;   ///< go left when x[feature] <= threshold
    int left = -1;
    int right = -1;
    std::vector<double> class_weights;  ///< leaves only (normalized)
  };

  int build(const Dataset& data, std::vector<std::size_t>& rows,
            const std::vector<double>& weights, int depth, Rng* rng);
  int make_leaf(const Dataset& data, const std::vector<std::size_t>& rows,
                const std::vector<double>& weights);

  TreeOptions options_;
  int num_classes_ = 0;
  std::vector<Node> nodes_;  // nodes_[0] is the root
  std::vector<double> importances_;
};

}  // namespace hpas::ml
