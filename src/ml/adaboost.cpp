#include "ml/adaboost.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace hpas::ml {

AdaBoost::AdaBoost(AdaBoostOptions options) : options_(options) {
  require(options.num_rounds >= 1, "AdaBoost: need at least one round");
}

void AdaBoost::fit(const Dataset& data) {
  require(data.size() > 0, "AdaBoost: empty dataset");
  stages_.clear();
  num_classes_ = data.num_classes();
  const double k = static_cast<double>(num_classes_);
  const std::size_t n = data.size();

  std::vector<double> weights(n, 1.0 / static_cast<double>(n));

  for (int round = 0; round < options_.num_rounds; ++round) {
    TreeOptions tree_options;
    tree_options.max_depth = options_.base_max_depth;
    tree_options.min_samples_leaf = options_.min_samples_leaf;
    DecisionTree tree(tree_options);
    tree.fit(data, {}, weights);

    // Weighted training error.
    double err = 0.0;
    std::vector<bool> wrong(n, false);
    for (std::size_t i = 0; i < n; ++i) {
      if (tree.predict(data.row(i)) != data.labels[i]) {
        wrong[i] = true;
        err += weights[i];
      }
    }
    // SAMME requires err < (K-1)/K to make the stage better than chance.
    constexpr double kEps = 1e-10;
    if (err >= (k - 1.0) / k - kEps) {
      if (stages_.empty()) {
        // Keep one stage so predict() works even on hopeless data.
        stages_.push_back({std::move(tree), 1.0});
      }
      break;
    }
    err = std::max(err, kEps);
    const double alpha = std::log((1.0 - err) / err) + std::log(k - 1.0);

    // Reweight: misclassified samples gain weight exp(alpha).
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (wrong[i]) weights[i] *= std::exp(alpha);
      total += weights[i];
    }
    for (double& w : weights) w /= total;

    stages_.push_back({std::move(tree), alpha});
    if (err <= kEps) break;  // perfect stage: no signal left to boost
  }
}

int AdaBoost::predict(std::span<const double> x) const {
  require(trained(), "AdaBoost: not trained");
  std::vector<double> votes(static_cast<std::size_t>(num_classes_), 0.0);
  for (const auto& stage : stages_) {
    votes[static_cast<std::size_t>(stage.tree.predict(x))] += stage.alpha;
  }
  return static_cast<int>(std::max_element(votes.begin(), votes.end()) -
                          votes.begin());
}

}  // namespace hpas::ml
