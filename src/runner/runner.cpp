#include "runner/runner.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>

#include "apps/bsp_app.hpp"
#include "apps/profiles.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "metrics/csv.hpp"
#include "runner/thread_pool.hpp"
#include "sim/cluster.hpp"
#include "simanom/injectors.hpp"
#include "trace/export.hpp"
#include "trace/tracer.hpp"

namespace hpas::runner {
namespace {

/// Anomaly placement mirrors the paper's node-sharing experiment (see
/// bench/fig08): the busy anomalies (cpuoccupy, cachecopy) share rank 0's
/// core -- the orphan-process / hyperthread scenario -- while the
/// footprint and I/O anomalies take the first core the app does not use.
/// netoccupy streams between two non-app nodes across the inter-switch
/// trunk the app's halo exchange crosses.
std::vector<sim::Task*> inject_anomaly(sim::World& world,
                                       const ScenarioSpec& spec,
                                       Rng& stream) {
  if (spec.anomaly == "none") return {};
  const double duration = spec.duration_s;
  const double intensity = spec.intensity;
  const int busy_core = 0;
  const int free_core = spec.ranks_per_node;

  if (spec.anomaly == "cpuoccupy") {
    return {simanom::inject_cpuoccupy(
        world, 0, busy_core, 100.0 * std::min(intensity, 1.0), duration)};
  }
  if (spec.anomaly == "cachecopy") {
    return {simanom::inject_cachecopy(world, 0, busy_core,
                                      simanom::SimCacheLevel::kL3, intensity,
                                      duration)};
  }
  if (spec.anomaly == "membw") {
    return {simanom::inject_membw(world, 0, free_core, duration,
                                  std::clamp(intensity, 0.05, 1.0))};
  }
  if (spec.anomaly == "netoccupy") {
    const int n = world.num_nodes();
    int src = 1 % n;
    int dst = (1 + n / 2) % n;
    if (src == dst) { src = 0; dst = n - 1; }
    return simanom::inject_netoccupy(world, src, dst, /*ntasks=*/2,
                                     intensity * 100.0 * 1024 * 1024,
                                     duration);
  }
  if (spec.anomaly == "os_jitter") {
    // The jitter daemon's gap sequence is the scenario's random stream in
    // action: same seed => same storm, regardless of the worker thread.
    return {simanom::inject_os_jitter(world, 0, free_core,
                                      /*burst_s=*/0.002 * intensity,
                                      /*mean_gap_s=*/0.05, duration,
                                      stream.next())};
  }
  return simanom::inject_by_name(world, spec.anomaly, /*node=*/0, free_core,
                                 duration, intensity);
}

void append_stats_members(Json& obj, const std::vector<double>& xs) {
  obj.set("count", static_cast<double>(xs.size()));
  if (xs.empty()) return;
  const double m = mean(xs);
  const double cv = m != 0.0 ? 100.0 * stddev(xs) / m : 0.0;
  obj.set("median_s", median(xs));
  obj.set("p95_s", percentile(xs, 95.0));
  obj.set("cv_pct", cv);
}

}  // namespace

ScenarioResult run_scenario(const ScenarioSpec& spec, bool capture_trace) {
  ScenarioResult result;
  result.spec = spec;

  auto world = spec.system == "chameleon" ? sim::make_chameleon_world()
                                          : sim::make_voltrino_world();
  const int num_nodes = world->num_nodes();
  if (spec.app_nodes > num_nodes)
    throw ConfigError("run_scenario: app_nodes exceeds the " + spec.system +
                      " preset's " + std::to_string(num_nodes) + " nodes");

  // Tracing attaches before monitoring/injection so the captured stream
  // covers every event the scenario generates.
  std::optional<trace::TraceCapture> capture;
  if (capture_trace) {
    capture.emplace();
    world->attach_tracer(&capture->tracer());
  }
  world->enable_monitoring(spec.sample_period_s);

  Rng stream(spec.seed);
  const auto injected = inject_anomaly(*world, spec, stream);
  if (spec.injector_fail_at_s > 0.0 && !injected.empty()) {
    simanom::schedule_injector_failure(*world, injected,
                                       spec.injector_fail_at_s,
                                       spec.injector_fail_tasks);
  }

  if (spec.app != "none") {
    apps::AppSpec app_spec = apps::app_by_name(spec.app);
    apps::BspApp::Placement placement;
    const int stride = num_nodes / spec.app_nodes;
    for (int i = 0; i < spec.app_nodes; ++i)
      placement.nodes.push_back(i * stride);
    placement.ranks_per_node = spec.ranks_per_node;
    placement.first_core = 0;
    if (spec.run_to_completion) {
      apps::BspApp app(*world, app_spec, placement);
      result.app_elapsed_s = app.run_to_completion();
      result.app_iterations = app.completed_iterations();
    } else {
      app_spec.iterations = 1000000;  // runs past the window; we observe
      apps::BspApp app(*world, app_spec, placement);
      world->run_until(spec.duration_s);
      result.app_elapsed_s = app.finished() ? app.elapsed() : spec.duration_s;
      result.app_iterations = app.completed_iterations();
    }
  } else {
    world->run_until(spec.duration_s);
  }

  std::ostringstream csv;
  metrics::write_csv(csv, world->node_store(0));
  result.metrics_csv = csv.str();
  if (capture) {
    const trace::TraceFile file = capture->take();
    result.trace_records = static_cast<std::uint64_t>(file.records.size());
    std::ostringstream bin(std::ios::binary);
    trace::write_binary(bin, file);
    result.trace_bin = bin.str();
  }
  result.ran = true;
  return result;
}

SweepResult run_sweep(const SweepGrid& grid, const SweepOptions& options) {
  SweepResult result;
  result.grid_name = grid.name;
  result.scenarios.resize(grid.scenarios.size());

  WorkStealingPool pool(
      {.threads = options.threads, .queue_capacity = options.queue_capacity});
  for (std::size_t i = 0; i < grid.scenarios.size(); ++i) {
    // Each task owns slot i exclusively; no result ordering depends on
    // scheduling, so thread count cannot leak into the output.
    pool.submit([&result, &grid, &pool, &options, i] {
      try {
        result.scenarios[i] =
            run_scenario(grid.scenarios[i], options.capture_traces);
      } catch (const std::exception& e) {
        result.scenarios[i].spec = grid.scenarios[i];
        result.scenarios[i].ran = true;
        result.scenarios[i].error = e.what();
        pool.request_cancel();
      }
    });
    if (pool.cancelled()) break;
  }
  pool.wait_idle();

  // Slots cancelled before starting keep ran == false; give them their
  // spec so reports stay readable.
  for (std::size_t i = 0; i < result.scenarios.size(); ++i) {
    if (!result.scenarios[i].ran)
      result.scenarios[i].spec = grid.scenarios[i];
  }
  return result;
}

bool SweepResult::ok() const {
  for (const ScenarioResult& s : scenarios)
    if (!s.ran || !s.error.empty()) return false;
  return true;
}

std::string SweepResult::first_error() const {
  for (const ScenarioResult& s : scenarios) {
    if (!s.error.empty()) return s.spec.name + ": " + s.error;
    if (!s.ran) return s.spec.name + ": cancelled";
  }
  return {};
}

Json SweepResult::summary_json() const {
  Json doc = Json::object();
  doc.set("grid", grid_name);
  doc.set("scenario_count", static_cast<double>(scenarios.size()));

  Json rows = Json::array();
  for (const ScenarioResult& s : scenarios) {
    Json row = Json::object();
    row.set("name", s.spec.name);
    row.set("app", s.spec.app);
    row.set("anomaly", s.spec.anomaly);
    row.set("intensity", s.spec.intensity);
    // 64-bit seeds do not round-trip through JSON doubles; keep exact.
    row.set("seed", std::to_string(s.spec.seed));
    // Emitted only for degraded-injector scenarios so baseline summaries
    // stay byte-identical to the pinned golden files.
    if (s.spec.injector_fail_at_s > 0.0) {
      row.set("injector_fail_at_s", s.spec.injector_fail_at_s);
      row.set("injector_fail_tasks",
              static_cast<double>(s.spec.injector_fail_tasks));
    }
    if (!s.error.empty()) row.set("error", s.error);
    row.set("app_time_s", s.app_elapsed_s);
    row.set("iterations", static_cast<double>(s.app_iterations));
    if (!s.trace_bin.empty())
      row.set("trace_records", static_cast<double>(s.trace_records));
    rows.push_back(std::move(row));
  }
  doc.set("scenarios", std::move(rows));

  // Aggregates in the spirit of a bench harness: median / p95 / %CV of
  // the app execution times, per anomaly (first-appearance order) and
  // overall.
  std::vector<std::string> anomaly_order;
  std::vector<double> all_times;
  for (const ScenarioResult& s : scenarios) {
    if (!s.ran || !s.error.empty() || s.spec.app == "none") continue;
    if (std::find(anomaly_order.begin(), anomaly_order.end(),
                  s.spec.anomaly) == anomaly_order.end())
      anomaly_order.push_back(s.spec.anomaly);
    all_times.push_back(s.app_elapsed_s);
  }
  Json groups = Json::array();
  for (const std::string& anomaly : anomaly_order) {
    std::vector<double> times;
    for (const ScenarioResult& s : scenarios) {
      if (s.ran && s.error.empty() && s.spec.app != "none" &&
          s.spec.anomaly == anomaly)
        times.push_back(s.app_elapsed_s);
    }
    Json group = Json::object();
    group.set("anomaly", anomaly);
    append_stats_members(group, times);
    groups.push_back(std::move(group));
  }
  doc.set("by_anomaly", std::move(groups));

  Json overall = Json::object();
  append_stats_members(overall, all_times);
  doc.set("overall", std::move(overall));
  return doc;
}

namespace {

/// Writes `bytes` to `<path>.tmp` and renames it over `path`, so readers
/// never observe a partially written file and a failure (full disk,
/// cancelled sweep) leaves the target untouched. The temporary is removed
/// on any error before the SystemError propagates.
void write_file_atomic(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw SystemError("cannot open for writing: " + tmp);
    out << bytes;
    out.flush();
    if (!out) {
      out.close();
      std::error_code ignored;
      std::filesystem::remove(tmp, ignored);
      throw SystemError("write failed: " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    throw SystemError("cannot rename " + tmp + " to " + path + ": " +
                      ec.message());
  }
}

}  // namespace

void write_outputs(const SweepResult& result, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) throw SystemError("cannot create output directory: " + dir);

  for (const ScenarioResult& s : result.scenarios) {
    if (!s.ran || !s.error.empty()) continue;
    write_file_atomic(dir + "/" + s.spec.name + ".csv", s.metrics_csv);
    if (!s.trace_bin.empty())
      write_file_atomic(dir + "/" + s.spec.name + ".trace.bin", s.trace_bin);
  }
  write_file_atomic(dir + "/summary.json", result.summary_json().dump(2));
}

}  // namespace hpas::runner
