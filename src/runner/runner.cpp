#include "runner/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "apps/bsp_app.hpp"
#include "apps/profiles.hpp"
#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "metrics/csv.hpp"
#include "runner/journal.hpp"
#include "runner/thread_pool.hpp"
#include "runner/watchdog.hpp"
#include "sim/cluster.hpp"
#include "simanom/injectors.hpp"
#include "trace/export.hpp"
#include "trace/tracer.hpp"

namespace hpas::runner {
namespace {

/// Anomaly placement mirrors the paper's node-sharing experiment (see
/// bench/fig08): the busy anomalies (cpuoccupy, cachecopy) share rank 0's
/// core -- the orphan-process / hyperthread scenario -- while the
/// footprint and I/O anomalies take the first core the app does not use.
/// netoccupy streams between two non-app nodes across the inter-switch
/// trunk the app's halo exchange crosses.
std::vector<sim::Task*> inject_anomaly(sim::World& world,
                                       const ScenarioSpec& spec,
                                       Rng& stream) {
  if (spec.anomaly == "none") return {};
  const double duration = spec.duration_s;
  const double intensity = spec.intensity;
  const int busy_core = 0;
  const int free_core = spec.ranks_per_node;

  if (spec.anomaly == "cpuoccupy") {
    return {simanom::inject_cpuoccupy(
        world, 0, busy_core, 100.0 * std::min(intensity, 1.0), duration)};
  }
  if (spec.anomaly == "cachecopy") {
    return {simanom::inject_cachecopy(world, 0, busy_core,
                                      simanom::SimCacheLevel::kL3, intensity,
                                      duration)};
  }
  if (spec.anomaly == "membw") {
    return {simanom::inject_membw(world, 0, free_core, duration,
                                  std::clamp(intensity, 0.05, 1.0))};
  }
  if (spec.anomaly == "netoccupy") {
    const int n = world.num_nodes();
    int src = 1 % n;
    int dst = (1 + n / 2) % n;
    if (src == dst) { src = 0; dst = n - 1; }
    return simanom::inject_netoccupy(world, src, dst, /*ntasks=*/2,
                                     intensity * 100.0 * 1024 * 1024,
                                     duration);
  }
  if (spec.anomaly == "os_jitter") {
    // The jitter daemon's gap sequence is the scenario's random stream in
    // action: same seed => same storm, regardless of the worker thread.
    return {simanom::inject_os_jitter(world, 0, free_core,
                                      /*burst_s=*/0.002 * intensity,
                                      /*mean_gap_s=*/0.05, duration,
                                      stream.next())};
  }
  return simanom::inject_by_name(world, spec.anomaly, /*node=*/0, free_core,
                                 duration, intensity);
}

void append_stats_members(Json& obj, const std::vector<double>& xs) {
  obj.set("count", static_cast<double>(xs.size()));
  if (xs.empty()) return;
  const double m = mean(xs);
  const double cv = m != 0.0 ? 100.0 * stddev(xs) / m : 0.0;
  obj.set("median_s", median(xs));
  obj.set("p95_s", percentile(xs, 95.0));
  obj.set("cv_pct", cv);
}

/// Writes `bytes` to `<path>.tmp` and renames it over `path`, so readers
/// never observe a partially written file and a failure (full disk,
/// cancelled sweep) leaves the target untouched. The temporary is removed
/// on any error before the SystemError propagates.
void write_file_atomic(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw SystemError("cannot open for writing: " + tmp);
    out << bytes;
    out.flush();
    if (!out) {
      out.close();
      std::error_code ignored;
      std::filesystem::remove(tmp, ignored);
      throw SystemError("write failed: " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    throw SystemError("cannot rename " + tmp + " to " + path + ": " +
                      ec.message());
  }
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return in.good() || in.eof();
}

/// A crashed sweep can leave `*.tmp` siblings from interrupted atomic
/// writes; they are never valid outputs, so --resume sweeps them first.
std::size_t remove_orphaned_tmp_files(const std::string& dir) {
  std::size_t removed = 0;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    if (entry.path().extension() != ".tmp") continue;
    std::error_code ignored;
    if (std::filesystem::remove(entry.path(), ignored)) ++removed;
  }
  return removed;
}

JournalStatus to_journal_status(ScenarioStatus status) {
  switch (status) {
    case ScenarioStatus::kDone: return JournalStatus::kDone;
    case ScenarioStatus::kTimeout: return JournalStatus::kTimeout;
    case ScenarioStatus::kFailed: return JournalStatus::kFailed;
    case ScenarioStatus::kNotRun:
    case ScenarioStatus::kCancelled: break;
  }
  return JournalStatus::kCancelled;
}

JournalRecord make_journal_record(const ScenarioResult& s) {
  JournalRecord rec;
  rec.key_hash = scenario_key_hash(s.spec);
  rec.status = to_journal_status(s.status);
  rec.name = s.spec.name;
  rec.output = s.spec.name + ".csv";
  if (s.status == ScenarioStatus::kDone) rec.csv_crc = crc32(s.metrics_csv);
  if (!s.trace_bin.empty()) rec.trace_crc = crc32(s.trace_bin);
  rec.trace_records = s.trace_records;
  rec.app_iterations = static_cast<std::uint64_t>(s.app_iterations);
  rec.app_elapsed_s = s.app_elapsed_s;
  rec.wall_seconds = s.wall_seconds;
  rec.error = s.error;
  return rec;
}

}  // namespace

const char* scenario_status_name(ScenarioStatus status) {
  switch (status) {
    case ScenarioStatus::kNotRun: return "not_run";
    case ScenarioStatus::kDone: return "done";
    case ScenarioStatus::kFailed: return "failed";
    case ScenarioStatus::kTimeout: return "timeout";
    case ScenarioStatus::kCancelled: return "cancelled";
  }
  return "unknown";
}

ScenarioResult run_scenario(const ScenarioSpec& spec, bool capture_trace,
                            const CancelToken* cancel, int sim_shards,
                            const std::function<void(sim::World&)>& inspect,
                            metrics::SampleSink* sink, bool store_samples) {
  ScenarioResult result;
  result.spec = spec;

  auto world = spec.system == "chameleon"     ? sim::make_chameleon_world()
               : spec.system == "dragonfly1k" ? sim::make_dragonfly_world()
                                              : sim::make_voltrino_world();
  if (sim_shards > 0) world->set_shards(sim_shards);
  const int num_nodes = world->num_nodes();
  if (spec.app_nodes > num_nodes)
    throw ConfigError("run_scenario: app_nodes exceeds the " + spec.system +
                      " preset's " + std::to_string(num_nodes) + " nodes");

  // Tracing attaches before monitoring/injection so the captured stream
  // covers every event the scenario generates.
  std::optional<trace::TraceCapture> capture;
  if (capture_trace) {
    capture.emplace();
    world->attach_tracer(&capture->tracer());
  }
  world->enable_monitoring(spec.sample_period_s, sink, /*sink_node=*/0,
                           store_samples);
  world->set_cancel_token(cancel);

  try {
    Rng stream(spec.seed);
    const auto injected = inject_anomaly(*world, spec, stream);
    if (spec.injector_fail_at_s > 0.0 && !injected.empty()) {
      simanom::schedule_injector_failure(*world, injected,
                                         spec.injector_fail_at_s,
                                         spec.injector_fail_tasks);
    }

    if (spec.app != "none") {
      apps::AppSpec app_spec = apps::app_by_name(spec.app);
      apps::BspApp::Placement placement;
      const int stride = num_nodes / spec.app_nodes;
      for (int i = 0; i < spec.app_nodes; ++i)
        placement.nodes.push_back(i * stride);
      placement.ranks_per_node = spec.ranks_per_node;
      placement.first_core = 0;
      if (spec.run_to_completion) {
        apps::BspApp app(*world, app_spec, placement);
        result.app_elapsed_s = app.run_to_completion();
        result.app_iterations = app.completed_iterations();
      } else {
        app_spec.iterations = 1000000;  // runs past the window; we observe
        apps::BspApp app(*world, app_spec, placement);
        world->run_until(spec.duration_s);
        result.app_elapsed_s =
            app.finished() ? app.elapsed() : spec.duration_s;
        result.app_iterations = app.completed_iterations();
      }
    } else {
      world->run_until(spec.duration_s);
    }
    result.status = ScenarioStatus::kDone;
  } catch (const CancelledError& e) {
    // The run stopped at an event boundary; the monitoring samples and
    // trace records collected so far are still consistent, so keep them.
    // A kRunCancelled record closes the truncated trace, making the
    // partial capture self-describing.
    result.status = e.reason() == CancelReason::kTimeout
                        ? ScenarioStatus::kTimeout
                        : ScenarioStatus::kCancelled;
    if (capture) {
      capture->tracer().set_time(world->now());
      capture->tracer().emit(trace::RecordKind::kRunCancelled, 0,
                             static_cast<std::uint16_t>(e.reason()), 0,
                             world->now());
    }
  }

  if (inspect && result.status == ScenarioStatus::kDone) inspect(*world);

  std::ostringstream csv;
  metrics::write_csv(csv, world->node_store(0));
  result.metrics_csv = csv.str();
  if (capture) {
    const trace::TraceFile file = capture->take();
    result.trace_records = static_cast<std::uint64_t>(file.records.size());
    std::ostringstream bin(std::ios::binary);
    trace::write_binary(bin, file);
    result.trace_bin = bin.str();
  }
  result.ran = true;
  return result;
}

SweepResult run_sweep(const SweepGrid& grid, const SweepOptions& options) {
  SweepResult result;
  result.grid_name = grid.name;
  result.scenarios.resize(grid.scenarios.size());

  // --- resume: restore journaled scenarios whose outputs validate -------
  std::vector<char> restored(grid.scenarios.size(), 0);
  std::unique_ptr<JournalWriter> journal;
  std::string out_dir;
  if (!options.journal_path.empty()) {
    out_dir =
        std::filesystem::path(options.journal_path).parent_path().string();
    if (out_dir.empty()) out_dir = ".";
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    if (ec)
      throw SystemError("run_sweep: cannot create output directory: " +
                        out_dir);
    std::vector<JournalRecord> keep;
    if (options.resume) {
      result.tmp_removed = remove_orphaned_tmp_files(out_dir);
      JournalReadResult read = read_journal(options.journal_path);
      result.journal_dropped = read.dropped_frames;
      // Last record per key wins: a re-run after a timeout supersedes the
      // timeout record.
      std::unordered_map<std::uint64_t, const JournalRecord*> by_key;
      for (const JournalRecord& r : read.records) by_key[r.key_hash] = &r;
      for (std::size_t i = 0; i < grid.scenarios.size(); ++i) {
        const ScenarioSpec& spec = grid.scenarios[i];
        const auto it = by_key.find(scenario_key_hash(spec));
        if (it == by_key.end() || it->second->status != JournalStatus::kDone)
          continue;
        const JournalRecord& rec = *it->second;
        // Trust nothing the journal says about outputs until the bytes on
        // disk digest to the journaled CRCs; any mismatch (deleted file,
        // truncated write, manual edit) re-runs the scenario.
        std::string csv;
        if (!read_file(out_dir + "/" + rec.output, csv)) continue;
        if (crc32(csv) != rec.csv_crc) continue;
        std::string trace_bin;
        if (rec.trace_crc != 0) {
          if (!read_file(out_dir + "/" + spec.name + ".trace.bin", trace_bin))
            continue;
          if (crc32(trace_bin) != rec.trace_crc) continue;
        }
        ScenarioResult& s = result.scenarios[i];
        s.spec = spec;
        s.ran = true;
        s.status = ScenarioStatus::kDone;
        s.resumed = true;
        s.app_elapsed_s = rec.app_elapsed_s;
        s.app_iterations = static_cast<int>(rec.app_iterations);
        s.wall_seconds = rec.wall_seconds;
        s.metrics_csv = std::move(csv);
        s.trace_bin = std::move(trace_bin);
        s.trace_records = rec.trace_records;
        restored[i] = 1;
        keep.push_back(rec);
        ++result.resumed;
      }
    }
    // Rewriting with only the validated records self-heals a torn tail
    // and drops stale failure/timeout records for scenarios about to
    // re-run.
    journal = std::make_unique<JournalWriter>(options.journal_path,
                                              /*truncate=*/true);
    for (const JournalRecord& rec : keep) journal->append(rec);
  }

  WorkStealingPool pool(
      {.threads = options.threads, .queue_capacity = options.queue_capacity});

  // --- cancellation plumbing -------------------------------------------
  // Tokens of in-flight scenarios, by grid index. The relay thread fans a
  // hard-cancel or deadline into every registered token; a task re-checks
  // the flags right after registering so a cancel landing between "relay
  // fanned out" and "task registered" is never lost.
  std::mutex active_mu;
  std::unordered_map<std::size_t, std::shared_ptr<CancelToken>> active;
  std::atomic<bool> cancel_all{false};
  std::atomic<int> cancel_all_reason{static_cast<int>(CancelReason::kNone)};
  std::atomic<bool> interrupted{false};

  auto cancel_active = [&](CancelReason reason) {
    cancel_all_reason.store(static_cast<int>(reason),
                            std::memory_order_relaxed);
    cancel_all.store(true, std::memory_order_release);
    std::lock_guard<std::mutex> lock(active_mu);
    for (auto& [index, token] : active) token->cancel(reason);
  };

  std::optional<Watchdog> watchdog;
  if (options.scenario_timeout_s > 0.0) watchdog.emplace();

  // The relay turns external wall-clock conditions (shutdown tokens, the
  // sweep deadline) into pool/token cancellations. Polling at 10ms keeps
  // it dependency-free; shutdown latency is bounded by the poll period
  // plus one simulator event.
  std::atomic<bool> relay_stop{false};
  std::thread relay;
  const bool need_relay = options.deadline_s > 0.0 ||
                          options.graceful != nullptr ||
                          options.hard != nullptr;
  if (need_relay) {
    relay = std::thread([&] {
      const auto start = std::chrono::steady_clock::now();
      bool drained = false;
      bool aborted = false;
      while (!relay_stop.load(std::memory_order_acquire)) {
        if (!drained && options.graceful != nullptr &&
            options.graceful->cancelled()) {
          drained = true;
          interrupted.store(true, std::memory_order_relaxed);
          pool.request_cancel();  // stop dequeuing; running tasks finish
        }
        if (!aborted) {
          const bool hard =
              options.hard != nullptr && options.hard->cancelled();
          const bool past_deadline =
              options.deadline_s > 0.0 &&
              std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - start)
                      .count() >= options.deadline_s;
          if (hard || past_deadline) {
            aborted = true;
            interrupted.store(true, std::memory_order_relaxed);
            pool.request_cancel();
            cancel_active(hard ? CancelReason::kShutdown
                               : CancelReason::kDeadline);
          }
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    });
  }

  std::mutex journal_mu;
  std::atomic<std::size_t> executed{0};
  for (std::size_t i = 0; i < grid.scenarios.size(); ++i) {
    if (restored[i]) continue;
    // Each task owns slot i exclusively; no result ordering depends on
    // scheduling, so thread count cannot leak into the output.
    pool.submit([&, i] {
      auto token = std::make_shared<CancelToken>();
      {
        std::lock_guard<std::mutex> lock(active_mu);
        active.emplace(i, token);
      }
      if (cancel_all.load(std::memory_order_acquire))
        token->cancel(static_cast<CancelReason>(
            cancel_all_reason.load(std::memory_order_relaxed)));
      std::uint64_t wd_id = 0;
      if (watchdog)
        wd_id = watchdog->arm(options.scenario_timeout_s,
                              [token] { token->cancel(CancelReason::kTimeout); });
      const auto t0 = std::chrono::steady_clock::now();
      ScenarioResult& slot = result.scenarios[i];
      try {
        slot = run_scenario(grid.scenarios[i], options.capture_traces,
                            token.get(), options.sim_shards);
      } catch (const std::exception& e) {
        slot.spec = grid.scenarios[i];
        slot.ran = true;
        slot.status = ScenarioStatus::kFailed;
        slot.error = e.what();
        pool.request_cancel();
      }
      if (watchdog) watchdog->disarm(wd_id);
      {
        std::lock_guard<std::mutex> lock(active_mu);
        active.erase(i);
      }
      slot.wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      executed.fetch_add(1, std::memory_order_relaxed);
      if (journal) {
        // Checkpoint order: outputs first, then the journal record, so a
        // "done" record always refers to files that already exist. A
        // crash between the two re-runs the scenario -- safe, just not
        // free.
        if (slot.status == ScenarioStatus::kDone)
          write_file_atomic(out_dir + "/" + slot.spec.name + ".csv",
                            slot.metrics_csv);
        if (!slot.trace_bin.empty())
          write_file_atomic(out_dir + "/" + slot.spec.name + ".trace.bin",
                            slot.trace_bin);
        std::lock_guard<std::mutex> lock(journal_mu);
        journal->append(make_journal_record(slot));
      }
    });
    if (pool.cancelled()) break;
  }
  pool.wait_idle();
  relay_stop.store(true, std::memory_order_release);
  if (relay.joinable()) relay.join();

  // Slots cancelled before starting keep ran == false; give them their
  // spec so reports stay readable.
  for (std::size_t i = 0; i < result.scenarios.size(); ++i) {
    if (!result.scenarios[i].ran)
      result.scenarios[i].spec = grid.scenarios[i];
  }
  result.executed = executed.load();
  result.interrupted = interrupted.load();
  return result;
}

bool SweepResult::ok() const {
  for (const ScenarioResult& s : scenarios)
    if (s.status != ScenarioStatus::kDone) return false;
  return true;
}

std::size_t SweepResult::count(ScenarioStatus status) const {
  std::size_t n = 0;
  for (const ScenarioResult& s : scenarios)
    if (s.status == status) ++n;
  return n;
}

std::string SweepResult::first_error() const {
  for (const ScenarioResult& s : scenarios) {
    if (!s.error.empty()) return s.spec.name + ": " + s.error;
    if (s.status != ScenarioStatus::kDone)
      return s.spec.name + ": " + scenario_status_name(s.status);
  }
  return {};
}

Json SweepResult::summary_json() const {
  Json doc = Json::object();
  doc.set("grid", grid_name);
  doc.set("scenario_count", static_cast<double>(scenarios.size()));

  Json rows = Json::array();
  for (const ScenarioResult& s : scenarios) {
    Json row = Json::object();
    row.set("name", s.spec.name);
    row.set("app", s.spec.app);
    row.set("anomaly", s.spec.anomaly);
    row.set("intensity", s.spec.intensity);
    // 64-bit seeds do not round-trip through JSON doubles; keep exact.
    row.set("seed", std::to_string(s.spec.seed));
    // Emitted only for degraded-injector scenarios so baseline summaries
    // stay byte-identical to the pinned golden files.
    if (s.spec.injector_fail_at_s > 0.0) {
      row.set("injector_fail_at_s", s.spec.injector_fail_at_s);
      row.set("injector_fail_tasks",
              static_cast<double>(s.spec.injector_fail_tasks));
    }
    if (!s.error.empty()) row.set("error", s.error);
    // Same byte-stability rule: only non-completed scenarios carry a
    // status, so a clean sweep's summary is unchanged.
    if (s.status != ScenarioStatus::kDone)
      row.set("status", scenario_status_name(s.status));
    row.set("app_time_s", s.app_elapsed_s);
    row.set("iterations", static_cast<double>(s.app_iterations));
    if (!s.trace_bin.empty())
      row.set("trace_records", static_cast<double>(s.trace_records));
    rows.push_back(std::move(row));
  }
  doc.set("scenarios", std::move(rows));

  // Aggregates in the spirit of a bench harness: median / p95 / %CV of
  // the app execution times, per anomaly (first-appearance order) and
  // overall. Only completed scenarios contribute -- a timed-out run's
  // partial app time would poison the statistics.
  std::vector<std::string> anomaly_order;
  std::vector<double> all_times;
  for (const ScenarioResult& s : scenarios) {
    if (s.status != ScenarioStatus::kDone || s.spec.app == "none") continue;
    if (std::find(anomaly_order.begin(), anomaly_order.end(),
                  s.spec.anomaly) == anomaly_order.end())
      anomaly_order.push_back(s.spec.anomaly);
    all_times.push_back(s.app_elapsed_s);
  }
  Json groups = Json::array();
  for (const std::string& anomaly : anomaly_order) {
    std::vector<double> times;
    for (const ScenarioResult& s : scenarios) {
      if (s.status == ScenarioStatus::kDone && s.spec.app != "none" &&
          s.spec.anomaly == anomaly)
        times.push_back(s.app_elapsed_s);
    }
    Json group = Json::object();
    group.set("anomaly", anomaly);
    append_stats_members(group, times);
    groups.push_back(std::move(group));
  }
  doc.set("by_anomaly", std::move(groups));

  Json overall = Json::object();
  append_stats_members(overall, all_times);
  doc.set("overall", std::move(overall));
  return doc;
}

void write_outputs(const SweepResult& result, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) throw SystemError("cannot create output directory: " + dir);

  for (const ScenarioResult& s : result.scenarios) {
    if (s.status == ScenarioStatus::kDone)
      write_file_atomic(dir + "/" + s.spec.name + ".csv", s.metrics_csv);
    // Truncated traces of timed-out/cancelled scenarios are still written:
    // they end in kRunCancelled and are the primary debugging artifact for
    // "why did this grid point hang".
    if (s.ran && !s.trace_bin.empty())
      write_file_atomic(dir + "/" + s.spec.name + ".trace.bin", s.trace_bin);
  }
  write_file_atomic(dir + "/summary.json", result.summary_json().dump(2));
}

}  // namespace hpas::runner
