#include "runner/diagnosis_sweep.hpp"

#include <utility>
#include <vector>

namespace hpas::runner {

ml::Dataset generate_diagnosis_dataset_parallel(
    const ml::DiagnosisDataOptions& options, WorkStealingPool& pool) {
  const std::vector<ml::DiagnosisRunPlan> plan =
      ml::plan_diagnosis_runs(options);

  std::vector<std::vector<double>> features(plan.size());
  parallel_for(pool, plan.size(), [&](std::size_t i) {
    features[i] = ml::run_diagnosis_scenario(plan[i], options);
  });

  ml::Dataset data;
  data.class_names = options.classes;
  data.feature_names = ml::diagnosis_feature_names(options);
  for (std::size_t i = 0; i < plan.size(); ++i)
    data.add(std::move(features[i]), plan[i].label);
  return data;
}

ml::Dataset generate_diagnosis_dataset_parallel(
    const ml::DiagnosisDataOptions& options, int threads) {
  WorkStealingPool pool({.threads = threads});
  return generate_diagnosis_dataset_parallel(options, pool);
}

}  // namespace hpas::runner
