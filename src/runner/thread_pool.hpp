// Work-stealing thread pool for the experiment runner.
//
// Scheduling discipline: each worker owns a deque; it pops its own work
// LIFO and steals FIFO from siblings when empty (the classic work-stealing
// split between cache-hot local work and cold stolen work). Experiment
// tasks are whole simulations -- milliseconds to seconds each -- so the
// queues are guarded by one mutex rather than lock-free Chase-Lev deques;
// contention on the lock is unmeasurable at this granularity and the
// simple design is easy to prove correct under TSan.
//
// Determinism contract: the pool makes NO ordering guarantees. Callers
// (see runner.cpp) must make each task a pure function of its inputs and
// write results into a pre-assigned slot, so the observable output is
// independent of interleaving and thread count.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hpas::runner {

struct PoolOptions {
  int threads = 0;  ///< 0 = std::thread::hardware_concurrency()
  /// Maximum queued-but-not-started tasks; submit() blocks above this
  /// (bounded-queue backpressure so a huge grid never materializes fully).
  std::size_t queue_capacity = 256;
};

class WorkStealingPool {
 public:
  explicit WorkStealingPool(PoolOptions opts = {});
  ~WorkStealingPool();  ///< cancels pending work and joins the workers

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  int thread_count() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task. Blocks while `queue_capacity` tasks are already
  /// queued (backpressure). After request_cancel() the task is dropped.
  void submit(std::function<void()> fn);

  /// Blocks until every submitted task has finished (or been dropped by a
  /// cancellation).
  void wait_idle();

  /// Drops all queued tasks and makes future submits no-ops. Running
  /// tasks are not interrupted (they hold simulators mid-step); they
  /// finish normally. Used to stop a sweep at the first failure.
  /// Cancellation is sticky for the pool's lifetime: construct a fresh
  /// pool per sweep.
  void request_cancel();
  bool cancelled() const;

  static int default_thread_count();

 private:
  void worker_loop(std::size_t self);
  bool try_pop(std::size_t self, std::function<void()>& out);

  mutable std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable space_ready_;
  std::condition_variable idle_;
  std::vector<std::deque<std::function<void()>>> queues_;  // one per worker
  std::size_t next_queue_ = 0;  ///< round-robin submission target
  std::size_t queued_ = 0;      ///< tasks sitting in a deque
  std::size_t in_flight_ = 0;   ///< queued + currently running
  bool cancel_ = false;
  bool stop_ = false;
  std::size_t capacity_;
  std::vector<std::thread> workers_;
};

/// Runs fn(0..n-1) across the pool and blocks until all complete. If any
/// call throws, the pool is cancelled (queued iterations are dropped,
/// running ones finish) and the exception of the *lowest-indexed* failure
/// is rethrown -- deterministic error reporting at any thread count.
void parallel_for(WorkStealingPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

}  // namespace hpas::runner
