// Watchdog: one monitor thread enforcing many wall-clock deadlines.
//
// The sweep arms one timer per in-flight scenario (`--scenario-timeout`).
// When a timer expires before being disarmed, the watchdog fires its
// callback exactly once from the monitor thread -- the sweep's callback
// cancels the scenario's CancelToken, and the simulator's cooperative
// checkpoint turns that into a CancelledError at the next event boundary.
// The watchdog never kills anything itself; it only rings the bell.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <thread>

namespace hpas::runner {

class Watchdog {
 public:
  Watchdog();
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Arms a one-shot timer: `on_expire` runs on the monitor thread if
  /// `timeout_s` elapses before disarm(). Returns a handle for disarm().
  std::uint64_t arm(double timeout_s, std::function<void()> on_expire);

  /// Cancels a pending timer. Safe to call with a handle that already
  /// fired or was already disarmed (no-op). Does not wait for a callback
  /// that is currently executing.
  void disarm(std::uint64_t id);

  /// Timers that expired and fired their callback (for reporting).
  std::uint64_t expired_count() const;

 private:
  struct Entry {
    std::chrono::steady_clock::time_point deadline;
    std::function<void()> on_expire;
  };

  void monitor_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::uint64_t, Entry> armed_;
  std::uint64_t next_id_ = 1;
  std::uint64_t expired_ = 0;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace hpas::runner
