// Parallel diagnosis-dataset generation.
//
// The ML training sweep (classes x apps x variants, paper Sec. 5.1) is
// embarrassingly parallel once the run plan -- including every run's
// pre-split sensor-noise RNG -- is fixed up front. This fans the plan
// across a WorkStealingPool and reassembles features in plan order, so the
// resulting Dataset is bit-identical to ml::generate_diagnosis_dataset()
// at any thread count.
#pragma once

#include "ml/dataset.hpp"
#include "ml/diagnosis.hpp"
#include "runner/thread_pool.hpp"

namespace hpas::runner {

ml::Dataset generate_diagnosis_dataset_parallel(
    const ml::DiagnosisDataOptions& options, WorkStealingPool& pool);

/// Convenience overload constructing a pool with `threads` workers.
ml::Dataset generate_diagnosis_dataset_parallel(
    const ml::DiagnosisDataOptions& options, int threads);

}  // namespace hpas::runner
