#include "runner/thread_pool.hpp"

#include <exception>
#include <limits>
#include <utility>

#include "common/error.hpp"

namespace hpas::runner {

int WorkStealingPool::default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

WorkStealingPool::WorkStealingPool(PoolOptions opts)
    : capacity_(opts.queue_capacity) {
  require(opts.threads >= 0, "WorkStealingPool: threads must be >= 0");
  require(opts.queue_capacity >= 1, "WorkStealingPool: capacity must be >= 1");
  const int n = opts.threads == 0 ? default_thread_count() : opts.threads;
  queues_.resize(static_cast<std::size_t>(n));
  workers_.reserve(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < static_cast<std::size_t>(n); ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

WorkStealingPool::~WorkStealingPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_ready_.notify_all();
  space_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void WorkStealingPool::submit(std::function<void()> fn) {
  std::unique_lock<std::mutex> lock(mu_);
  space_ready_.wait(lock, [this] {
    return queued_ < capacity_ || cancel_ || stop_;
  });
  if (cancel_ || stop_) return;  // dropped; see request_cancel()
  queues_[next_queue_].push_back(std::move(fn));
  next_queue_ = (next_queue_ + 1) % queues_.size();
  ++queued_;
  ++in_flight_;
  lock.unlock();
  work_ready_.notify_one();
}

bool WorkStealingPool::try_pop(std::size_t self,
                               std::function<void()>& out) {
  // Own deque: LIFO (newest first, cache-hot). Steal: FIFO from the
  // oldest end of sibling deques, scanning from the next worker onward.
  if (!queues_[self].empty()) {
    out = std::move(queues_[self].back());
    queues_[self].pop_back();
    return true;
  }
  for (std::size_t k = 1; k < queues_.size(); ++k) {
    std::size_t victim = (self + k) % queues_.size();
    if (!queues_[victim].empty()) {
      out = std::move(queues_[victim].front());
      queues_[victim].pop_front();
      return true;
    }
  }
  return false;
}

void WorkStealingPool::worker_loop(std::size_t self) {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    std::function<void()> task;
    work_ready_.wait(lock, [&] { return stop_ || try_pop(self, task); });
    if (task == nullptr) {
      if (stop_) return;
      continue;
    }
    --queued_;
    lock.unlock();
    space_ready_.notify_one();
    task();
    task = nullptr;
    lock.lock();
    --in_flight_;
    if (in_flight_ == 0) idle_.notify_all();
  }
}

void WorkStealingPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void WorkStealingPool::request_cancel() {
  std::size_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    cancel_ = true;
    for (auto& q : queues_) {
      dropped += q.size();
      q.clear();
    }
    queued_ = 0;
    in_flight_ -= dropped;
    if (in_flight_ == 0) idle_.notify_all();
  }
  space_ready_.notify_all();
}

bool WorkStealingPool::cancelled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cancel_;
}

void parallel_for(WorkStealingPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  std::mutex err_mu;
  std::exception_ptr first_error;
  std::size_t first_error_index = std::numeric_limits<std::size_t>::max();

  for (std::size_t i = 0; i < n; ++i) {
    pool.submit([&, i] {
      try {
        fn(i);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(err_mu);
          if (i < first_error_index) {
            first_error_index = i;
            first_error = std::current_exception();
          }
        }
        pool.request_cancel();
      }
    });
    // Submitting after a cancellation is a no-op; stop generating work.
    if (pool.cancelled()) break;
  }
  pool.wait_idle();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace hpas::runner
