// Crash-safe sweep journal: the checkpoint log behind `hpas sweep --resume`.
//
// `run_sweep` appends one CRC32-framed, fsync'd record per finished
// scenario (completed, timed out, failed, or hard-cancelled). A record
// carries everything resume needs to reconstruct the scenario's
// ScenarioResult without re-running it: the scenario *key hash* (a stable
// digest of every spec field that affects the output), the output file
// name, CRC32 digests of the CSV/trace bytes on disk, and the scalar
// results (app time, iterations) that live only in summary.json.
//
// Frame format (all integers little-endian):
//
//   file   := magic "HPASJNL1" frame*
//   frame  := len:u32 payload[len] crc:u32        crc = CRC32(payload)
//
// Append + fsync per record means a SIGKILL can tear at most the last
// frame; read_journal() returns the valid prefix and reports the torn
// tail instead of throwing, because a damaged tail is the *expected*
// post-crash state, not an error. Resume rewrites the journal with the
// validated prefix, so the file is self-healing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runner/grid.hpp"

namespace hpas::runner {

enum class JournalStatus : std::uint8_t {
  kDone = 1,       ///< scenario completed; outputs on disk are authoritative
  kTimeout = 2,    ///< cancelled by the per-scenario watchdog deadline
  kFailed = 3,     ///< run_scenario threw; `error` holds the message
  kCancelled = 4,  ///< hard shutdown / sweep deadline interrupted it
};

const char* journal_status_name(JournalStatus status);

struct JournalRecord {
  std::uint64_t key_hash = 0;  ///< scenario_key_hash() of the spec
  JournalStatus status = JournalStatus::kDone;
  std::string name;    ///< spec.name (for human-readable reports)
  std::string output;  ///< CSV file name relative to the journal's dir
  std::uint32_t csv_crc = 0;    ///< CRC32 of the CSV bytes (kDone only)
  std::uint32_t trace_crc = 0;  ///< CRC32 of the trace bytes; 0 = no trace
  std::uint64_t trace_records = 0;
  std::uint64_t app_iterations = 0;
  double app_elapsed_s = 0.0;  ///< simulated result (feeds summary.json)
  double wall_seconds = 0.0;   ///< host execution time (diagnostics only)
  std::string error;           ///< non-empty for kFailed
  /// Optional trailing extension used by `hpas search`: the scenario's
  /// final objective value, journaled so resume can reuse evaluations as
  /// an exact cache without recomputing probe-based objectives. Encoded
  /// only when set, so sweep journals keep their exact legacy bytes; the
  /// decoder accepts both layouts.
  bool has_objective = false;
  double objective = 0.0;
};

/// Stable digest of every ScenarioSpec field that affects the scenario's
/// output (including the derived seed). Resume matches journal records to
/// grid entries by this hash, so editing the grid invalidates exactly the
/// scenarios whose parameters changed -- renames included, because the
/// name decides the output path.
std::uint64_t scenario_key_hash(const ScenarioSpec& spec);

/// Append-only journal writer. Every append() writes one frame with a
/// single write() and fsyncs the file, so a record is either fully
/// durable or (after a crash mid-frame) detectably torn. Not internally
/// synchronized: the sweep serializes appends under its own mutex.
class JournalWriter {
 public:
  /// Opens `path`, truncating and writing a fresh header when `truncate`
  /// is true (or when the file does not exist); otherwise appends after
  /// the existing content. Throws SystemError when the file cannot be
  /// opened or the header cannot be written.
  JournalWriter(const std::string& path, bool truncate);
  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  void append(const JournalRecord& record);

  const std::string& path() const { return path_; }

 private:
  int fd_ = -1;
  std::string path_;
};

struct JournalReadResult {
  std::vector<JournalRecord> records;  ///< the valid prefix, oldest first
  /// Frames dropped at the tail: a torn last write, a flipped bit caught
  /// by the CRC, or trailing garbage. Reading stops at the first damaged
  /// frame (later frames could be misaligned).
  std::size_t dropped_frames = 0;
  std::string damage;  ///< empty when clean; else why reading stopped
};

/// Reads the valid record prefix of a journal. A missing file reads as
/// empty (fresh sweep); a damaged tail is reported, not thrown -- that is
/// the normal state after a crash. Throws SystemError only when an
/// existing file cannot be read at all.
JournalReadResult read_journal(const std::string& path);

}  // namespace hpas::runner
