// Deterministic parallel experiment runner.
//
// Fans a SweepGrid across a WorkStealingPool: every scenario gets its own
// isolated Simulator/World (no shared mutable state between tasks) and a
// per-scenario counter-based RNG stream, runs to completion, and deposits
// its result in a slot pre-assigned by grid index. Aggregation then reads
// the slots in grid order, which is what makes the output -- per-scenario
// metric CSVs plus a JSON summary with median / p95 / %CV -- byte-identical
// at any thread count, including 1. The first failing scenario cancels the
// remaining queued work (running scenarios finish) and is reported
// deterministically (lowest grid index wins).
//
// Crash safety rides on top of the same structure: with a journal path
// set, every finished scenario writes its outputs to disk immediately and
// appends a fsync'd journal record (see journal.hpp), so a killed sweep
// resumes from the last completed scenario instead of the beginning. A
// Watchdog bounds each scenario's wall time, and two CancelTokens let the
// CLI drain (graceful) or abort (hard) the sweep from a signal handler.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/cancel.hpp"
#include "common/json.hpp"
#include "runner/grid.hpp"

namespace hpas::sim {
class World;
}
namespace hpas::metrics {
class SampleSink;
}

namespace hpas::runner {

/// Terminal state of one grid slot.
enum class ScenarioStatus : int {
  kNotRun = 0,    ///< dropped from the queue by a cancellation
  kDone = 1,      ///< completed; outputs are authoritative
  kFailed = 2,    ///< run_scenario threw (error holds the message)
  kTimeout = 3,   ///< watchdog hit --scenario-timeout mid-run
  kCancelled = 4, ///< interrupted mid-run by shutdown or --deadline
};

const char* scenario_status_name(ScenarioStatus status);

struct SweepOptions {
  int threads = 1;                   ///< 0 = hardware concurrency
  std::size_t queue_capacity = 256;  ///< backpressure bound
  bool capture_traces = false;       ///< record a per-scenario trace
  /// Engine shards per scenario world (World::set_shards); 0 keeps the
  /// default (serial, or HPAS_SIM_SHARDS). An execution parameter like
  /// `threads`: outputs are bit-identical at any value, so it is *not*
  /// part of scenario identity and never enters the journal key hash.
  int sim_shards = 0;
  /// Wall-clock budget per scenario, seconds; 0 disables the watchdog.
  /// An over-budget scenario is cancelled cooperatively, journaled as
  /// timeout, and the sweep moves on.
  double scenario_timeout_s = 0.0;
  /// Wall-clock budget for the whole sweep, seconds; 0 = none. Past the
  /// deadline, queued scenarios are dropped and running ones cancelled.
  double deadline_s = 0.0;
  /// Path of the checkpoint journal (conventionally <out>/sweep.journal).
  /// Empty disables journaling; set, it also turns on incremental output
  /// writes (each completed scenario's files land before its record).
  std::string journal_path;
  /// With a journal: replay it first, restore scenarios whose on-disk
  /// outputs validate against their journaled digests, and run the rest.
  bool resume = false;
  /// Drain request (first Ctrl-C): stop dequeuing new scenarios, let
  /// running ones finish and be journaled. Observed, never cancelled, by
  /// the sweep. May be null.
  const CancelToken* graceful = nullptr;
  /// Abort request (second Ctrl-C): additionally cancel running
  /// scenarios cooperatively; they journal as cancelled. May be null.
  const CancelToken* hard = nullptr;
};

struct ScenarioResult {
  ScenarioSpec spec;
  bool ran = false;          ///< false when cancelled before starting
  ScenarioStatus status = ScenarioStatus::kNotRun;
  bool resumed = false;      ///< restored from the journal, not re-run
  std::string error;         ///< non-empty when the scenario threw
  double app_elapsed_s = 0.0;  ///< simulated app wall time (0 if no app)
  int app_iterations = 0;
  double wall_seconds = 0.0; ///< host execution time (not in summaries)
  std::string metrics_csv;   ///< node-0 monitoring series, CSV bytes
  std::string trace_bin;     ///< serialized trace (empty unless captured)
  std::uint64_t trace_records = 0;  ///< record count in trace_bin
};

struct SweepResult {
  std::string grid_name;
  std::vector<ScenarioResult> scenarios;  ///< in grid order

  std::size_t executed = 0;   ///< scenarios actually run this invocation
  std::size_t resumed = 0;    ///< scenarios restored from the journal
  std::size_t tmp_removed = 0;      ///< orphaned *.tmp files swept on resume
  std::size_t journal_dropped = 0;  ///< damaged journal frames discarded
  bool interrupted = false;   ///< a shutdown/deadline cut the sweep short

  bool ok() const;  ///< every scenario completed (status kDone)
  /// Scenarios with the given terminal status.
  std::size_t count(ScenarioStatus status) const;
  /// First error in grid order, or empty.
  std::string first_error() const;

  /// Deterministic summary: per-scenario rows plus per-anomaly and overall
  /// aggregate statistics (median / p95 / coefficient of variation %) of
  /// the app execution times. Contains nothing execution-dependent (no
  /// wall-clock, no thread count) -- byte-identical across runs. Rows gain
  /// a "status" member only when the scenario did not complete, so clean
  /// sweeps stay byte-identical to the pinned golden summaries.
  Json summary_json() const;
};

/// Runs one scenario in isolation. Exposed for tests; run_sweep() calls
/// exactly this for every grid entry. With `capture_trace` the scenario's
/// world runs under a lossless TraceCapture (attached before monitoring
/// and injection, so the stream is complete) and the result carries the
/// serialized binary trace.
///
/// `cancel` (optional) is checked between simulator events: once it
/// fires, the run stops at the next event boundary with status kTimeout
/// or kCancelled (per the token's reason), keeps the metrics collected so
/// far, and -- when tracing -- ends the truncated trace with one
/// kRunCancelled record so partial captures are self-describing.
///
/// `sim_shards` > 0 shards the scenario's engine (World::set_shards);
/// 0 keeps the world's default. Pure execution knob -- all outputs are
/// bit-identical at any shard count.
///
/// `inspect` (optional) is invoked on the scenario's world after a
/// *completed* run, before the world is torn down -- the hook behind
/// probe-based search objectives (WBAS capacity ranks, classifier
/// confidence). It must be deterministic and must not advance the
/// simulation if the scenario's outputs are to stay reproducible.
///
/// `sink` (optional) observes node 0's monitoring samples as they are
/// collected (including the t=0 sample) -- the streaming dataset
/// factory's extraction hook. With `store_samples` false the per-node
/// MetricStores stay empty (result.metrics_csv is then header-only), so
/// a sink-only scenario runs in O(1) monitoring memory regardless of
/// duration. Observation-only: the simulated world is bit-identical with
/// or without a sink.
ScenarioResult run_scenario(
    const ScenarioSpec& spec, bool capture_trace = false,
    const CancelToken* cancel = nullptr, int sim_shards = 0,
    const std::function<void(sim::World&)>& inspect = {},
    metrics::SampleSink* sink = nullptr, bool store_samples = true);

/// Runs the whole grid across `options.threads` workers.
SweepResult run_sweep(const SweepGrid& grid, const SweepOptions& options = {});

/// Writes `<dir>/<scenario>.csv` for every completed scenario (plus
/// `<dir>/<scenario>.trace.bin` when a trace was captured -- including
/// truncated traces of timed-out/cancelled scenarios) and
/// `<dir>/summary.json`; creates `dir` if needed. Each file is written to
/// a temporary sibling and renamed into place, so a failure mid-sweep
/// never leaves a partially written output behind. Throws SystemError on
/// I/O failure.
void write_outputs(const SweepResult& result, const std::string& dir);

}  // namespace hpas::runner
