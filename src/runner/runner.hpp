// Deterministic parallel experiment runner.
//
// Fans a SweepGrid across a WorkStealingPool: every scenario gets its own
// isolated Simulator/World (no shared mutable state between tasks) and a
// per-scenario counter-based RNG stream, runs to completion, and deposits
// its result in a slot pre-assigned by grid index. Aggregation then reads
// the slots in grid order, which is what makes the output -- per-scenario
// metric CSVs plus a JSON summary with median / p95 / %CV -- byte-identical
// at any thread count, including 1. The first failing scenario cancels the
// remaining queued work (running scenarios finish) and is reported
// deterministically (lowest grid index wins).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "runner/grid.hpp"

namespace hpas::runner {

struct SweepOptions {
  int threads = 1;                   ///< 0 = hardware concurrency
  std::size_t queue_capacity = 256;  ///< backpressure bound
  bool capture_traces = false;       ///< record a per-scenario trace
};

struct ScenarioResult {
  ScenarioSpec spec;
  bool ran = false;          ///< false when cancelled before starting
  std::string error;         ///< non-empty when the scenario threw
  double app_elapsed_s = 0.0;  ///< simulated app wall time (0 if no app)
  int app_iterations = 0;
  std::string metrics_csv;   ///< node-0 monitoring series, CSV bytes
  std::string trace_bin;     ///< serialized trace (empty unless captured)
  std::uint64_t trace_records = 0;  ///< record count in trace_bin
};

struct SweepResult {
  std::string grid_name;
  std::vector<ScenarioResult> scenarios;  ///< in grid order

  bool ok() const;
  /// First error in grid order, or empty.
  std::string first_error() const;

  /// Deterministic summary: per-scenario rows plus per-anomaly and overall
  /// aggregate statistics (median / p95 / coefficient of variation %) of
  /// the app execution times. Contains nothing execution-dependent (no
  /// wall-clock, no thread count) -- byte-identical across runs.
  Json summary_json() const;
};

/// Runs one scenario in isolation. Exposed for tests; run_sweep() calls
/// exactly this for every grid entry. With `capture_trace` the scenario's
/// world runs under a lossless TraceCapture (attached before monitoring
/// and injection, so the stream is complete) and the result carries the
/// serialized binary trace.
ScenarioResult run_scenario(const ScenarioSpec& spec,
                            bool capture_trace = false);

/// Runs the whole grid across `options.threads` workers.
SweepResult run_sweep(const SweepGrid& grid, const SweepOptions& options = {});

/// Writes `<dir>/<scenario>.csv` for every completed scenario (plus
/// `<dir>/<scenario>.trace.bin` when a trace was captured) and
/// `<dir>/summary.json`; creates `dir` if needed. Each file is written to
/// a temporary sibling and renamed into place, so a failure mid-sweep
/// never leaves a partially written output behind. Throws SystemError on
/// I/O failure.
void write_outputs(const SweepResult& result, const std::string& dir);

}  // namespace hpas::runner
