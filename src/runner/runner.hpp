// Deterministic parallel experiment runner.
//
// Fans a SweepGrid across a WorkStealingPool: every scenario gets its own
// isolated Simulator/World (no shared mutable state between tasks) and a
// per-scenario counter-based RNG stream, runs to completion, and deposits
// its result in a slot pre-assigned by grid index. Aggregation then reads
// the slots in grid order, which is what makes the output -- per-scenario
// metric CSVs plus a JSON summary with median / p95 / %CV -- byte-identical
// at any thread count, including 1. The first failing scenario cancels the
// remaining queued work (running scenarios finish) and is reported
// deterministically (lowest grid index wins).
#pragma once

#include <string>
#include <vector>

#include "common/json.hpp"
#include "runner/grid.hpp"

namespace hpas::runner {

struct SweepOptions {
  int threads = 1;                   ///< 0 = hardware concurrency
  std::size_t queue_capacity = 256;  ///< backpressure bound
};

struct ScenarioResult {
  ScenarioSpec spec;
  bool ran = false;          ///< false when cancelled before starting
  std::string error;         ///< non-empty when the scenario threw
  double app_elapsed_s = 0.0;  ///< simulated app wall time (0 if no app)
  int app_iterations = 0;
  std::string metrics_csv;   ///< node-0 monitoring series, CSV bytes
};

struct SweepResult {
  std::string grid_name;
  std::vector<ScenarioResult> scenarios;  ///< in grid order

  bool ok() const;
  /// First error in grid order, or empty.
  std::string first_error() const;

  /// Deterministic summary: per-scenario rows plus per-anomaly and overall
  /// aggregate statistics (median / p95 / coefficient of variation %) of
  /// the app execution times. Contains nothing execution-dependent (no
  /// wall-clock, no thread count) -- byte-identical across runs.
  Json summary_json() const;
};

/// Runs one scenario in isolation. Exposed for tests; run_sweep() calls
/// exactly this for every grid entry.
ScenarioResult run_scenario(const ScenarioSpec& spec);

/// Runs the whole grid across `options.threads` workers.
SweepResult run_sweep(const SweepGrid& grid, const SweepOptions& options = {});

/// Writes `<dir>/<scenario>.csv` for every completed scenario plus
/// `<dir>/summary.json`; creates `dir` if needed. Throws SystemError on
/// I/O failure.
void write_outputs(const SweepResult& result, const std::string& dir);

}  // namespace hpas::runner
