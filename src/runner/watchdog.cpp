#include "runner/watchdog.hpp"

#include <algorithm>
#include <utility>
#include <vector>

namespace hpas::runner {

Watchdog::Watchdog() : thread_([this] { monitor_loop(); }) {}

Watchdog::~Watchdog() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

std::uint64_t Watchdog::arm(double timeout_s, std::function<void()> on_expire) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_s));
  std::uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_id_++;
    armed_.emplace(id, Entry{deadline, std::move(on_expire)});
  }
  cv_.notify_all();
  return id;
}

void Watchdog::disarm(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.erase(id);
}

std::uint64_t Watchdog::expired_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return expired_;
}

void Watchdog::monitor_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    const auto now = std::chrono::steady_clock::now();
    // Collect expired callbacks, then run them unlocked so a callback may
    // arm/disarm without deadlocking.
    std::vector<std::function<void()>> due;
    auto nearest = now + std::chrono::hours(24);
    for (auto it = armed_.begin(); it != armed_.end();) {
      if (it->second.deadline <= now) {
        due.push_back(std::move(it->second.on_expire));
        it = armed_.erase(it);
        ++expired_;
      } else {
        nearest = std::min(nearest, it->second.deadline);
        ++it;
      }
    }
    if (!due.empty()) {
      lock.unlock();
      for (auto& fn : due) fn();
      lock.lock();
      continue;  // state changed while unlocked; recompute
    }
    cv_.wait_until(lock, nearest);
  }
}

}  // namespace hpas::runner
