// Declarative scenario grids for the experiment runner.
//
// A grid file (JSON) names axes -- applications, anomalies, intensities,
// repeats -- plus shared scalars (system preset, duration, sampling
// period, base seed). expand_grid() takes the cartesian product in a
// fixed order (app x anomaly x intensity x repeat) and assigns every
// scenario a counter-based RNG seed derived from (base_seed, index), so
// scenario i's random stream is a pure function of the grid text: it does
// not depend on which worker thread runs it, or on whether scenarios
// before it ran at all.
//
// Example (bench/fig08 as a grid):
//   {
//     "name": "fig08",
//     "system": "voltrino",
//     "seed": 42,
//     "apps": ["CoMD", "MILC"],
//     "anomalies": ["none", "cpuoccupy", "cachecopy"],
//     "intensities": [1.0],
//     "repeats": 1,
//     "duration_s": 1000000,
//     "sample_period_s": 1.0,
//     "run_to_completion": true
//   }
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace hpas::runner {

/// One fully-resolved experiment: everything run_scenario() needs.
struct ScenarioSpec {
  std::string name;                ///< unique, filesystem-safe
  std::string system = "voltrino"; ///< "voltrino" | "chameleon"
  std::string app = "none";        ///< proxy app name, or "none"
  std::string anomaly = "none";    ///< one of the eight, or "none"
  double intensity = 1.0;
  double duration_s = 60.0;        ///< anomaly/monitoring window length
  double sample_period_s = 1.0;    ///< LDMS-like collection period
  int app_nodes = 2;               ///< nodes the app spans
  int ranks_per_node = 4;
  /// true: run the app to completion (fig08 semantics; duration_s bounds
  /// the anomaly). false: observe a fixed monitoring window of
  /// duration_s simulated seconds (diagnosis semantics).
  bool run_to_completion = false;
  /// Degraded-injector modelling (mirrors the native --on-error story):
  /// at this simulated time the injector loses `injector_fail_tasks` of
  /// its tasks (-1 = all), each emitting a kInjectorFailure trace record.
  /// 0 disables the failure (the default -- and the byte-stable baseline).
  double injector_fail_at_s = 0.0;
  int injector_fail_tasks = -1;
  std::uint64_t seed = 0;          ///< per-scenario counter-derived stream
};

struct SweepGrid {
  std::string name = "sweep";
  std::uint64_t base_seed = 0x48504153;  // "HPAS"
  std::vector<ScenarioSpec> scenarios;
};

/// Counter-based per-scenario seed: a splitmix64 hash of (base, index).
/// Any (base, index) pair maps to an independent stream; no sequential
/// state is consumed, which is what keeps parallel expansion exact.
std::uint64_t derive_scenario_seed(std::uint64_t base, std::uint64_t index);

/// Expands a grid document into the full scenario list. Validates every
/// axis value (unknown app/anomaly/system, non-positive durations or
/// intensities, repeats < 1) and throws ConfigError with the offending
/// value on error.
SweepGrid expand_grid(const Json& spec);

/// Reads and expands a grid file; throws SystemError when unreadable and
/// ConfigError when invalid.
SweepGrid load_grid_file(const std::string& path);

/// ScenarioSpec <-> JSON round-trip, shared by the search frontier files
/// and the experiment server's wire protocol. Every field is explicit;
/// the 64-bit seed travels as a decimal string because it does not
/// round-trip through JSON doubles. spec_from_json() applies the struct's
/// defaults for absent members and throws ConfigError when the document
/// is not an object (or a member has the wrong type).
Json spec_to_json(const ScenarioSpec& spec);
ScenarioSpec spec_from_json(const Json& doc);

}  // namespace hpas::runner
