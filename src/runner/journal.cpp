#include "runner/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "faultline/faultline.hpp"

namespace hpas::runner {
namespace {

constexpr char kMagic[8] = {'H', 'P', 'A', 'S', 'J', 'N', 'L', '1'};

/// All journal bytes leave through here: a short-write retry loop over
/// the faultline journal domain, so injected short writes, EIO/ENOSPC,
/// and torn-write crash points hit exactly the path real disks fail on.
void write_all(int fd, const std::string& path, const char* data,
               std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t w = faultline::write(faultline::Domain::kJournal, fd,
                                       data + done, size - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw SystemError("journal: write failed on " + path + ": " +
                        std::strerror(errno));
    }
    done += static_cast<std::size_t>(w);
  }
}

// --- little-endian payload serialization -------------------------------

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
}

void put_f64(std::string& out, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

void put_string(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

// Bounds-checked cursor over a payload. Failed reads set `ok` false and
// return zeros, so the caller can decode unconditionally and check once.
struct Cursor {
  const unsigned char* p;
  std::size_t n;
  std::size_t off = 0;
  bool ok = true;

  bool take(std::size_t k) {
    if (!ok || n - off < k) {
      ok = false;
      return false;
    }
    return true;
  }
  std::uint8_t u8() {
    if (!take(1)) return 0;
    return p[off++];
  }
  std::uint32_t u32() {
    if (!take(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(p[off + static_cast<std::size_t>(i)])
           << (8 * i);
    off += 4;
    return v;
  }
  std::uint64_t u64() {
    if (!take(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(p[off + static_cast<std::size_t>(i)])
           << (8 * i);
    off += 8;
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string str() {
    const std::uint32_t len = u32();
    if (!take(len)) return {};
    std::string s(reinterpret_cast<const char*>(p + off), len);
    off += len;
    return s;
  }
};

std::string encode_record(const JournalRecord& r) {
  std::string payload;
  put_u64(payload, r.key_hash);
  put_u8(payload, static_cast<std::uint8_t>(r.status));
  put_string(payload, r.name);
  put_string(payload, r.output);
  put_u32(payload, r.csv_crc);
  put_u32(payload, r.trace_crc);
  put_u64(payload, r.trace_records);
  put_u64(payload, r.app_iterations);
  put_f64(payload, r.app_elapsed_s);
  put_f64(payload, r.wall_seconds);
  put_string(payload, r.error);
  if (r.has_objective) {
    // Trailing extension (see JournalRecord): absent in sweep records,
    // so their frames stay byte-identical to the legacy format.
    put_u8(payload, 1);
    put_f64(payload, r.objective);
  }
  return payload;
}

bool decode_record(const unsigned char* data, std::size_t n,
                   JournalRecord& out) {
  Cursor c{data, n};
  out.key_hash = c.u64();
  const std::uint8_t status = c.u8();
  out.name = c.str();
  out.output = c.str();
  out.csv_crc = c.u32();
  out.trace_crc = c.u32();
  out.trace_records = c.u64();
  out.app_iterations = c.u64();
  out.app_elapsed_s = c.f64();
  out.wall_seconds = c.f64();
  out.error = c.str();
  out.has_objective = false;
  out.objective = 0.0;
  if (c.ok && c.off < n) {
    // Trailing objective extension; anything else trailing is corruption.
    const std::uint8_t flag = c.u8();
    if (flag != 1) return false;
    out.objective = c.f64();
    out.has_objective = true;
  }
  if (!c.ok || c.off != n) return false;
  if (status < 1 || status > 4) return false;
  out.status = static_cast<JournalStatus>(status);
  return true;
}

void mix(std::uint64_t& h, std::uint64_t v) {
  // splitmix64 finalizer as the combining step: full-avalanche per field,
  // so adjacent grid points (intensity 1.0 vs 1.5) land far apart.
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
}

void mix_string(std::uint64_t& h, const std::string& s) {
  mix(h, s.size());
  mix(h, crc32(s));
}

void mix_double(std::uint64_t& h, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  mix(h, bits);
}

}  // namespace

const char* journal_status_name(JournalStatus status) {
  switch (status) {
    case JournalStatus::kDone: return "done";
    case JournalStatus::kTimeout: return "timeout";
    case JournalStatus::kFailed: return "failed";
    case JournalStatus::kCancelled: return "cancelled";
  }
  return "unknown";
}

std::uint64_t scenario_key_hash(const ScenarioSpec& spec) {
  std::uint64_t h = 0x48504153'4a4e4c31ULL;  // "HPASJNL1"
  mix_string(h, spec.name);
  mix_string(h, spec.system);
  mix_string(h, spec.app);
  mix_string(h, spec.anomaly);
  mix_double(h, spec.intensity);
  mix_double(h, spec.duration_s);
  mix_double(h, spec.sample_period_s);
  mix(h, static_cast<std::uint64_t>(spec.app_nodes));
  mix(h, static_cast<std::uint64_t>(spec.ranks_per_node));
  mix(h, spec.run_to_completion ? 1u : 0u);
  mix_double(h, spec.injector_fail_at_s);
  mix(h, static_cast<std::uint64_t>(spec.injector_fail_tasks));
  mix(h, spec.seed);
  return h;
}

JournalWriter::JournalWriter(const std::string& path, bool truncate)
    : path_(path) {
  int flags = O_WRONLY | O_CREAT | O_CLOEXEC;
  flags |= truncate ? O_TRUNC : O_APPEND;
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0)
    throw SystemError("journal: cannot open " + path + ": " +
                      std::strerror(errno));
  // A fresh (or truncated) file needs the header; an appended-to file
  // already has one. off_t of the current end distinguishes them.
  const off_t end = ::lseek(fd_, 0, SEEK_END);
  if (end == 0) {
    try {
      write_all(fd_, path, kMagic, sizeof(kMagic));
    } catch (const SystemError&) {
      ::close(fd_);
      fd_ = -1;
      throw;
    }
    faultline::fsync(faultline::Domain::kJournal, fd_);
  }
}

JournalWriter::~JournalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

void JournalWriter::append(const JournalRecord& record) {
  const std::string payload = encode_record(record);
  std::string frame;
  frame.reserve(payload.size() + 8);
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  frame.append(payload);
  put_u32(frame, crc32(payload));
  // One write() per frame: either the whole record lands or the reader
  // sees a short tail it can discard. fsync makes "journaled" mean
  // "survives SIGKILL and power loss", which is the resume contract.
  write_all(fd_, path_, frame.data(), frame.size());
  if (faultline::fsync(faultline::Domain::kJournal, fd_) != 0)
    throw SystemError("journal: fsync failed on " + path_ + ": " +
                      std::strerror(errno));
}

JournalReadResult read_journal(const std::string& path) {
  JournalReadResult result;
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    if (::access(path.c_str(), F_OK) == 0)
      throw SystemError("journal: cannot read " + path);
    return result;  // no journal yet: a fresh sweep
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string bytes = buf.str();
  if (bytes.size() < sizeof(kMagic) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    result.damage = "bad or truncated journal header";
    return result;
  }

  const auto* data = reinterpret_cast<const unsigned char*>(bytes.data());
  std::size_t off = sizeof(kMagic);
  const std::size_t size = bytes.size();
  // Sanity cap on frame length: no real record approaches this, so a
  // huge length means we are reading garbage, not a record.
  constexpr std::uint32_t kMaxFrame = 1u << 20;
  while (off < size) {
    if (size - off < 4) {
      result.dropped_frames = 1;
      result.damage = "torn frame length at tail";
      break;
    }
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i)
      len |= static_cast<std::uint32_t>(data[off + static_cast<std::size_t>(i)])
             << (8 * i);
    if (len > kMaxFrame) {
      result.dropped_frames = 1;
      result.damage = "implausible frame length (corrupt journal)";
      break;
    }
    if (size - off < 8 + static_cast<std::size_t>(len)) {
      result.dropped_frames = 1;
      result.damage = "torn frame payload at tail";
      break;
    }
    const unsigned char* payload = data + off + 4;
    std::uint32_t stored_crc = 0;
    for (int i = 0; i < 4; ++i)
      stored_crc |= static_cast<std::uint32_t>(
                        payload[len + static_cast<std::size_t>(i)])
                    << (8 * i);
    if (crc32(payload, len) != stored_crc) {
      result.dropped_frames = 1;
      result.damage = "frame CRC mismatch";
      break;
    }
    JournalRecord record;
    if (!decode_record(payload, len, record)) {
      result.dropped_frames = 1;
      result.damage = "undecodable frame payload";
      break;
    }
    result.records.push_back(std::move(record));
    off += 8 + static_cast<std::size_t>(len);
  }
  return result;
}

}  // namespace hpas::runner
