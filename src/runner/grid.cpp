#include "runner/grid.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "anomalies/suite.hpp"
#include "apps/profiles.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace hpas::runner {
namespace {

std::vector<std::string> string_axis(const Json& spec, const char* key,
                                     std::vector<std::string> fallback) {
  const Json* axis = spec.find(key);
  if (axis == nullptr) return fallback;
  std::vector<std::string> out;
  for (const Json& v : axis->as_array()) out.push_back(v.as_string());
  if (out.empty())
    throw ConfigError(std::string("grid: '") + key + "' must be non-empty");
  return out;
}

std::vector<double> number_axis(const Json& spec, const char* key,
                                std::vector<double> fallback) {
  const Json* axis = spec.find(key);
  if (axis == nullptr) return fallback;
  std::vector<double> out;
  for (const Json& v : axis->as_array()) out.push_back(v.as_number());
  if (out.empty())
    throw ConfigError(std::string("grid: '") + key + "' must be non-empty");
  return out;
}

/// Scenario names double as output file names; "x1.25" style intensity
/// suffixes keep them unique and shell-safe.
std::string scenario_name(std::size_t index, const ScenarioSpec& s,
                          int repeat) {
  char buf[160];
  std::snprintf(buf, sizeof buf, "s%04zu_%s_%s_x%.2f_r%d", index,
                s.app.c_str(), s.anomaly.c_str(), s.intensity, repeat);
  return buf;
}

}  // namespace

std::uint64_t derive_scenario_seed(std::uint64_t base, std::uint64_t index) {
  // One golden-ratio step per index decorrelates adjacent counters before
  // the splitmix64 finalizer mixes the result.
  return SplitMix64(base ^ (index * 0x9e3779b97f4a7c15ULL)).next();
}

SweepGrid expand_grid(const Json& spec) {
  if (!spec.is_object()) throw ConfigError("grid: document must be an object");

  SweepGrid grid;
  grid.name = spec.string_or("name", "sweep");
  grid.base_seed =
      static_cast<std::uint64_t>(spec.number_or("seed", 0x48504153));

  ScenarioSpec base;
  base.system = spec.string_or("system", "voltrino");
  if (base.system != "voltrino" && base.system != "chameleon" &&
      base.system != "dragonfly1k")
    throw ConfigError("grid: unknown system '" + base.system +
                      "' (expected voltrino, chameleon or dragonfly1k)");
  base.duration_s = spec.number_or("duration_s", 60.0);
  base.sample_period_s = spec.number_or("sample_period_s", 1.0);
  base.app_nodes = static_cast<int>(spec.number_or("app_nodes", 2));
  base.ranks_per_node = static_cast<int>(spec.number_or("ranks_per_node", 4));
  base.run_to_completion = spec.bool_or("run_to_completion", false);
  base.injector_fail_at_s = spec.number_or("injector_fail_at_s", 0.0);
  base.injector_fail_tasks =
      static_cast<int>(spec.number_or("injector_fail_tasks", -1));
  if (base.injector_fail_at_s < 0.0)
    throw ConfigError("grid: injector_fail_at_s must be non-negative");
  if (base.duration_s <= 0.0)
    throw ConfigError("grid: duration_s must be positive");
  if (base.sample_period_s <= 0.0)
    throw ConfigError("grid: sample_period_s must be positive");
  if (base.app_nodes < 1 || base.ranks_per_node < 1)
    throw ConfigError("grid: app_nodes and ranks_per_node must be >= 1");

  std::vector<std::string> app_axis;
  for (const auto& app : apps::proxy_apps()) app_axis.push_back(app.name);
  app_axis = string_axis(spec, "apps", std::move(app_axis));
  for (const std::string& app : app_axis) {
    if (app != "none") apps::app_by_name(app);  // throws on unknown names
  }

  const std::vector<std::string> anomaly_axis =
      string_axis(spec, "anomalies", {"none"});
  for (const std::string& anomaly : anomaly_axis) {
    // "os_jitter" is the simulated-only ninth generator (paper Sec. 3.1's
    // low-utilization cpuoccupy variant); its gap sequence consumes the
    // scenario's counter-based RNG stream.
    if (anomaly != "none" && anomaly != "os_jitter" &&
        !anomalies::is_known_anomaly(anomaly))
      throw ConfigError("grid: unknown anomaly '" + anomaly + "'");
  }

  const std::vector<double> intensity_axis =
      number_axis(spec, "intensities", {1.0});
  for (const double x : intensity_axis) {
    if (x <= 0.0) throw ConfigError("grid: intensities must be positive");
  }

  const int repeats = static_cast<int>(spec.number_or("repeats", 1));
  if (repeats < 1) throw ConfigError("grid: repeats must be >= 1");

  // Fixed expansion order -- part of the reproducibility contract: the
  // scenario index (and with it the derived seed) is a function of the
  // grid text alone.
  std::uint64_t index = 0;
  for (const std::string& app : app_axis) {
    for (const std::string& anomaly : anomaly_axis) {
      for (const double intensity : intensity_axis) {
        for (int rep = 0; rep < repeats; ++rep) {
          ScenarioSpec s = base;
          s.app = app;
          s.anomaly = anomaly;
          s.intensity = intensity;
          s.seed = derive_scenario_seed(grid.base_seed, index);
          s.name = scenario_name(index, s, rep);
          grid.scenarios.push_back(std::move(s));
          ++index;
        }
      }
    }
  }
  return grid;
}

SweepGrid load_grid_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw SystemError("cannot read grid file: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  try {
    return expand_grid(Json::parse(text.str()));
  } catch (const ConfigError& e) {
    throw ConfigError(path + ": " + e.what());
  }
}

Json spec_to_json(const ScenarioSpec& spec) {
  Json doc = Json::object();
  doc.set("name", spec.name);
  doc.set("system", spec.system);
  doc.set("app", spec.app);
  doc.set("anomaly", spec.anomaly);
  doc.set("intensity", spec.intensity);
  doc.set("duration_s", spec.duration_s);
  doc.set("sample_period_s", spec.sample_period_s);
  doc.set("app_nodes", static_cast<double>(spec.app_nodes));
  doc.set("ranks_per_node", static_cast<double>(spec.ranks_per_node));
  doc.set("run_to_completion", spec.run_to_completion);
  doc.set("injector_fail_at_s", spec.injector_fail_at_s);
  doc.set("injector_fail_tasks",
          static_cast<double>(spec.injector_fail_tasks));
  // 64-bit seeds do not round-trip through JSON doubles; keep exact.
  doc.set("seed", std::to_string(spec.seed));
  return doc;
}

ScenarioSpec spec_from_json(const Json& doc) {
  if (!doc.is_object())
    throw ConfigError("scenario spec must be a JSON object");
  ScenarioSpec spec;
  spec.name = doc.string_or("name", spec.name);
  spec.system = doc.string_or("system", spec.system);
  spec.app = doc.string_or("app", spec.app);
  spec.anomaly = doc.string_or("anomaly", spec.anomaly);
  spec.intensity = doc.number_or("intensity", spec.intensity);
  spec.duration_s = doc.number_or("duration_s", spec.duration_s);
  spec.sample_period_s =
      doc.number_or("sample_period_s", spec.sample_period_s);
  spec.app_nodes = static_cast<int>(
      doc.number_or("app_nodes", static_cast<double>(spec.app_nodes)));
  spec.ranks_per_node = static_cast<int>(doc.number_or(
      "ranks_per_node", static_cast<double>(spec.ranks_per_node)));
  spec.run_to_completion =
      doc.bool_or("run_to_completion", spec.run_to_completion);
  spec.injector_fail_at_s =
      doc.number_or("injector_fail_at_s", spec.injector_fail_at_s);
  spec.injector_fail_tasks = static_cast<int>(doc.number_or(
      "injector_fail_tasks", static_cast<double>(spec.injector_fail_tasks)));
  spec.seed = std::strtoull(doc.string_or("seed", "0").c_str(), nullptr, 10);
  return spec;
}

}  // namespace hpas::runner
