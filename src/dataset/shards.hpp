// Sharded, checksummed, crash-safe dataset output.
//
// A dataset directory holds:
//
//   shard-NNN.hpasds   CRC-framed binary rows (see below), one file per
//                      shard; row i lives in shard i % S at ordinal i / S,
//                      in ordinal (= plan) order -- a pure function of the
//                      plan, so shard bytes are identical at any thread
//                      count and across resume.
//   dataset.journal    the PR-4 sweep journal format, reused verbatim:
//                      one plan-header record (digest of the run plan)
//                      plus periodic per-shard checkpoint records, each
//                      appended only after the shard prefix it describes
//                      has been fsync'd. Resume truncates every shard to
//                      its newest CRC-validating checkpointed prefix and
//                      re-runs the missing rows, which reproduces the
//                      uninterrupted bytes exactly.
//   manifest.json      written last (atomic tmp+rename) by a full
//                      read-back pass: per-shard row counts / byte sizes /
//                      whole-file CRCs, per-feature column CRCs and
//                      online stats (fed in plan order), the label map
//                      and label histogram.
//   dataset.csv        optional plan-order CSV export.
//
// Shard file format (all integers little-endian):
//
//   file   := magic "HPASDST1" u32 version(=1) u32 shard_index
//             u32 shard_count u32 num_features frame*
//   frame  := len:u32 payload[len] crc:u32        crc = CRC32(payload)
//   payload:= row_index:u64 label:u32 feature:f64[num_features]
//
// Writers append through a per-shard plan-order sequencer: out-of-order
// completions park in a pending map whose size is structurally bounded
// by the work-stealing pool's submission backpressure (queue capacity +
// worker count), so reordering memory is O(threads), not O(rows).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace hpas::dataset {

/// Identity + shape of one dataset run; baked into the journal's plan
/// header so --resume refuses a changed plan.
struct DatasetMeta {
  std::uint64_t plan_digest = 0;  ///< digest of every row's key hash
  std::uint64_t rows = 0;
  std::uint32_t num_features = 0;
  std::uint32_t shards = 1;
  std::vector<std::string> class_names;
  std::vector<std::string> feature_names;
};

struct DatasetWriterOptions {
  std::string out_dir;
  /// Rows per shard between durability checkpoints (fsync + journal
  /// record). Batched so the factory never pays fsync-per-row.
  std::uint64_t checkpoint_rows = 1024;
  bool resume = false;
};

std::string shard_file_name(std::uint32_t index);

inline std::uint32_t shard_of_row(std::uint64_t row, std::uint32_t shards) {
  return static_cast<std::uint32_t>(row % shards);
}

/// Rows assigned to shard `s` out of `rows` total over `shards` shards.
std::uint64_t shard_row_count(std::uint64_t rows, std::uint32_t shards,
                              std::uint32_t s);

class DatasetWriter {
 public:
  /// Creates (or, with options.resume, reopens and truncates to the last
  /// durable checkpoints) the dataset directory. Throws ConfigError when
  /// resuming against a different plan digest/shape.
  DatasetWriter(DatasetMeta meta, DatasetWriterOptions options);
  ~DatasetWriter();

  DatasetWriter(const DatasetWriter&) = delete;
  DatasetWriter& operator=(const DatasetWriter&) = delete;

  /// True when `row` survived in a durable checkpointed prefix adopted at
  /// resume -- the factory skips executing it. Immutable after
  /// construction, so callable without synchronization.
  bool row_durable(std::uint64_t row) const;
  std::uint64_t rows_durable() const;

  /// Appends one completed row. Thread-safe; rows may arrive in any
  /// order, bytes land in plan order.
  void append(std::uint64_t row, int label, std::span<const double> features);

  /// Stops early (cancellation): fsyncs and checkpoints every shard's
  /// contiguous prefix, discards parked out-of-order rows, leaves no
  /// manifest. A later --resume completes the dataset byte-identically.
  void abandon();

  /// All rows appended: final checkpoints, then a full read-back
  /// verification pass that aggregates the manifest (and optional CSV).
  /// Returns the manifest path.
  std::string finish(bool write_csv);

 private:
  struct PendingRow {
    int label;
    std::vector<double> features;
  };
  struct Shard {
    std::string path;
    int fd = -1;
    std::uint64_t rows = 0;        ///< rows written (contiguous prefix)
    std::uint64_t bytes = 0;       ///< file bytes (header + frames)
    std::uint32_t crc_state = 0;   ///< incremental CRC over all bytes
    std::uint64_t checkpoint_rows = 0;  ///< rows at last checkpoint
    std::uint64_t durable_rows = 0;     ///< adopted at resume
    std::map<std::uint64_t, PendingRow> pending;  ///< ordinal -> row
  };

  void create_fresh(Shard& shard, std::uint32_t index);
  void adopt_or_reset(Shard& shard, std::uint32_t index,
                      std::uint64_t ckpt_bytes, std::uint64_t ckpt_rows,
                      std::uint32_t ckpt_crc);
  void write_row(Shard& shard, std::uint32_t index, std::uint64_t row,
                 int label, std::span<const double> features);
  void checkpoint(Shard& shard, std::uint32_t index);
  std::uint64_t checkpoint_key(std::uint32_t index) const;

  DatasetMeta meta_;
  DatasetWriterOptions options_;
  std::vector<Shard> shards_;
  std::unique_ptr<class JournalHolder> journal_;
  std::mutex mutex_;
  bool abandoned_ = false;
  bool finished_ = false;
};

/// Re-verifies a dataset directory from disk alone: frame CRCs, shard
/// file CRCs, row counts and ordering, per-feature column CRCs -- all
/// against manifest.json. Returns every mismatch found (empty = intact).
struct VerifyReport {
  bool ok = false;
  std::vector<std::string> errors;
};
VerifyReport verify_dataset(const std::string& dir);

}  // namespace hpas::dataset
