#include "dataset/streaming.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "metrics/features.hpp"

namespace hpas::dataset {

StreamingFeatureExtractor::StreamingFeatureExtractor(
    StreamingExtractorConfig config)
    : config_(std::move(config)) {
  require(config_.metrics.size() == config_.gauge.size(),
          "StreamingFeatureExtractor: gauge flags must parallel metrics");
  require(config_.window_t1 > config_.window_t0,
          "StreamingFeatureExtractor: empty window");
  // The t=0 monitoring sample fires before a sink can observe anything
  // scenario-specific; a window starting at 0 would depend on sink
  // attachment order. Every real window excludes warmup anyway.
  require(config_.window_t0 > 0.0,
          "StreamingFeatureExtractor: window must start after t=0");
  slots_.resize(config_.metrics.size());
  for (std::size_t i = 0; i < config_.metrics.size(); ++i) {
    slots_[i].gauge = config_.gauge[i] != 0;
    const bool inserted = slot_of_.emplace(config_.metrics[i], i).second;
    require(inserted, "StreamingFeatureExtractor: duplicate feature metric");
  }
}

void StreamingFeatureExtractor::fold(Slot& slot, double value) {
  // Same left-fold as common/stats summarize(): sum, min, max in arrival
  // order (so sum/count is bit-equal to the batch mean), plus Welford's
  // online (mean, M2) for the O(1) variance summary.
  SeriesStats& s = slot.stats;
  if (s.count == 0) {
    s.min = value;
    s.max = value;
  } else {
    s.min = std::min(s.min, value);
    s.max = std::max(s.max, value);
  }
  s.sum += value;
  ++s.count;
  const double delta = value - s.mean;
  s.mean += delta / static_cast<double>(s.count);
  s.m2 += delta * (value - s.mean);

  slot.window.push_back(value);
  ++buffered_;
  peak_buffered_ = std::max(peak_buffered_, buffered_);
}

void StreamingFeatureExtractor::on_sample(const metrics::MetricId& id,
                                          double timestamp, double value) {
  ++samples_seen_;
  const auto it = slot_of_.find(id);
  if (it == slot_of_.end()) {
    ++samples_other_metrics_;
    return;
  }
  if (timestamp < config_.window_t0 || timestamp >= config_.window_t1) {
    ++samples_out_of_window_;
    return;
  }
  ++samples_in_window_;
  Slot& slot = slots_[it->second];
  if (slot.gauge) {
    fold(slot, value);
    return;
  }
  // Counter: difference into per-interval rates, reproducing the batch
  // window-then-diff semantics exactly -- n samples yield n-1 diffs, a
  // single sample stays one raw value (handled at finalize), zero stay
  // empty.
  if (!slot.has_first) {
    slot.has_first = true;
    slot.first = value;
    slot.prev = value;
    return;
  }
  const double diff = value - slot.prev;
  slot.prev = value;
  fold(slot, diff);
}

std::vector<double> StreamingFeatureExtractor::finalize(Rng* noise_rng) {
  require(!finalized_, "StreamingFeatureExtractor: finalize called twice");
  finalized_ = true;
  std::vector<double> features;
  features.reserve(slots_.size() * metrics::features_per_metric());
  std::vector<double> single(1);
  for (Slot& slot : slots_) {
    // A counter with exactly one in-window sample never reaches fold()
    // (differencing needs two); the batch extractor keeps the raw value.
    std::vector<double>* window = &slot.window;
    if (!slot.gauge && slot.has_first && slot.window.empty()) {
      single[0] = slot.first;
      window = &single;
    }
    if (noise_rng != nullptr && config_.noise > 0.0) {
      for (double& v : *window) v *= 1.0 + noise_rng->normal(0.0, config_.noise);
    }
    const auto f = metrics::extract_series_features(*window);
    features.insert(features.end(), f.begin(), f.end());
  }
  return features;
}

void StreamingFeatureExtractor::reset() {
  for (Slot& slot : slots_) {
    slot.has_first = false;
    slot.first = 0.0;
    slot.prev = 0.0;
    slot.window.clear();  // keeps capacity: no steady-state allocation
    slot.stats = SeriesStats{};
  }
  samples_seen_ = 0;
  samples_in_window_ = 0;
  samples_out_of_window_ = 0;
  samples_other_metrics_ = 0;
  buffered_ = 0;
  finalized_ = false;
}

const StreamingFeatureExtractor::SeriesStats&
StreamingFeatureExtractor::series_stats(std::size_t metric_index) const {
  require(metric_index < slots_.size(),
          "StreamingFeatureExtractor: metric index out of range");
  return slots_[metric_index].stats;
}

}  // namespace hpas::dataset
