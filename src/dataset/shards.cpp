#include "dataset/shards.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "runner/journal.hpp"

namespace hpas::dataset {
namespace {

constexpr char kShardMagic[8] = {'H', 'P', 'A', 'S', 'D', 'S', 'T', '1'};
constexpr std::uint32_t kShardVersion = 1;
constexpr std::size_t kShardHeaderSize = 24;  // magic + 4 x u32
constexpr char kJournalName[] = "dataset.journal";
constexpr char kManifestName[] = "manifest.json";
constexpr char kCsvName[] = "dataset.csv";
/// Parked out-of-order rows are structurally bounded by the pool's
/// submission backpressure (queue capacity 256 + workers); anything near
/// this cap means the sequencer invariant broke, not a big machine.
constexpr std::size_t kMaxPendingRows = 8192;

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
}

void put_f64(std::string& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

double get_f64(const unsigned char* p) {
  const std::uint64_t bits = get_u64(p);
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

void write_all(int fd, const std::string& path, const char* data,
               std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t w = ::write(fd, data + done, size - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw SystemError("dataset: write failed on " + path + ": " +
                        std::strerror(errno));
    }
    done += static_cast<std::size_t>(w);
  }
}

std::string shard_header_bytes(std::uint32_t index, std::uint32_t shard_count,
                               std::uint32_t num_features) {
  std::string h(kShardMagic, sizeof(kShardMagic));
  put_u32(h, kShardVersion);
  put_u32(h, index);
  put_u32(h, shard_count);
  put_u32(h, num_features);
  return h;
}

void write_file_atomic(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open())
      throw SystemError("dataset: cannot write " + tmp);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out.good()) throw SystemError("dataset: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    throw SystemError("dataset: rename " + tmp + " -> " + path + " failed: " +
                      std::strerror(errno));
}

/// splitmix-style combine (same shape as the journal's key hash).
void mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
}

// --- read-back scan ----------------------------------------------------

struct FeatureAgg {
  std::uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;  // Welford, fed in plan order -> deterministic
  double m2 = 0.0;
};

struct ScanResult {
  std::uint64_t rows = 0;
  std::vector<std::uint64_t> shard_rows;
  std::vector<std::uint64_t> shard_bytes;
  std::vector<std::uint32_t> shard_crc;    // whole-file CRC32
  std::vector<std::uint32_t> feature_crc;  // per-column CRC32, plan order
  std::vector<FeatureAgg> stats;
  std::vector<std::uint64_t> label_counts;
  std::vector<std::string> errors;
};

struct ShardReader {
  std::ifstream in;
  std::string path;
  std::uint32_t crc = 0;  // incremental, over every byte consumed
  std::uint64_t bytes = 0;
  bool exhausted = false;
};

/// Streams every shard, merging rows back into plan order (round-robin,
/// since shard = row % S) and aggregating manifest facts. The merge
/// doubles as verification: every frame CRC, row index, label range and
/// the per-shard byte/row accounting are checked. Stops at the first
/// structural error (frames cannot be realigned past corruption).
ScanResult scan_shards(const std::string& dir, std::uint32_t shards,
                       std::uint32_t num_features, std::size_t num_classes,
                       std::ostream* csv) {
  ScanResult r;
  r.shard_rows.assign(shards, 0);
  r.shard_bytes.assign(shards, 0);
  r.shard_crc.assign(shards, 0);
  r.feature_crc.assign(num_features, crc32_init());
  r.stats.assign(num_features, FeatureAgg{});
  r.label_counts.assign(num_classes, 0);

  std::vector<ShardReader> readers(shards);
  for (std::uint32_t s = 0; s < shards; ++s) {
    ShardReader& rd = readers[s];
    rd.path = dir + "/" + shard_file_name(s);
    rd.in.open(rd.path, std::ios::binary);
    if (!rd.in.is_open()) {
      r.errors.push_back("missing shard file " + shard_file_name(s));
      return r;
    }
    char header[kShardHeaderSize];
    rd.in.read(header, sizeof(header));
    if (rd.in.gcount() != static_cast<std::streamsize>(sizeof(header)) ||
        std::memcmp(header, kShardMagic, sizeof(kShardMagic)) != 0) {
      r.errors.push_back("bad header in " + shard_file_name(s));
      return r;
    }
    const auto* h = reinterpret_cast<const unsigned char*>(header);
    if (get_u32(h + 8) != kShardVersion || get_u32(h + 12) != s ||
        get_u32(h + 16) != shards || get_u32(h + 20) != num_features) {
      r.errors.push_back("header shape mismatch in " + shard_file_name(s));
      return r;
    }
    rd.crc = crc32_init();
    rd.crc = crc32_update(rd.crc, header, sizeof(header));
    rd.bytes = sizeof(header);
  }

  const std::size_t payload_size = 12 + 8 * std::size_t{num_features};
  std::string frame(8 + payload_size, '\0');
  for (std::uint64_t row = 0;; ++row) {
    ShardReader& rd = readers[shard_of_row(row, shards)];
    if (rd.exhausted) break;
    rd.in.read(frame.data(), static_cast<std::streamsize>(frame.size()));
    const auto got = static_cast<std::size_t>(rd.in.gcount());
    if (got == 0) {
      rd.exhausted = true;
      // All shards must run dry within one round-robin cycle; a shard
      // with leftover rows after another hit EOF is a count mismatch.
      break;
    }
    if (got != frame.size()) {
      r.errors.push_back("torn frame at row " + std::to_string(row) + " in " +
                         rd.path);
      return r;
    }
    const auto* p = reinterpret_cast<const unsigned char*>(frame.data());
    const std::uint32_t len = get_u32(p);
    if (len != payload_size) {
      r.errors.push_back("bad frame length at row " + std::to_string(row) +
                         " in " + rd.path);
      return r;
    }
    const unsigned char* payload = p + 4;
    const std::uint32_t stored = get_u32(payload + payload_size);
    if (crc32(payload, payload_size) != stored) {
      r.errors.push_back("frame CRC mismatch at row " + std::to_string(row) +
                         " in " + rd.path);
      return r;
    }
    const std::uint64_t row_index = get_u64(payload);
    if (row_index != row) {
      r.errors.push_back("row index " + std::to_string(row_index) +
                         " out of order (expected " + std::to_string(row) +
                         ") in " + rd.path);
      return r;
    }
    const std::uint32_t label = get_u32(payload + 8);
    if (label >= r.label_counts.size()) {
      r.errors.push_back("label out of range at row " + std::to_string(row));
      return r;
    }
    ++r.label_counts[label];
    rd.crc = crc32_update(rd.crc, frame.data(), frame.size());
    rd.bytes += frame.size();
    ++r.shard_rows[shard_of_row(row, shards)];
    ++r.rows;

    if (csv != nullptr) {
      *csv << row << ',' << label;
    }
    for (std::uint32_t f = 0; f < num_features; ++f) {
      const unsigned char* cell = payload + 12 + 8 * std::size_t{f};
      r.feature_crc[f] = crc32_update(r.feature_crc[f], cell, 8);
      const double v = get_f64(cell);
      FeatureAgg& agg = r.stats[f];
      if (agg.count == 0) {
        agg.min = v;
        agg.max = v;
      } else {
        agg.min = std::min(agg.min, v);
        agg.max = std::max(agg.max, v);
      }
      ++agg.count;
      const double delta = v - agg.mean;
      agg.mean += delta / static_cast<double>(agg.count);
      agg.m2 += delta * (v - agg.mean);
      if (csv != nullptr) *csv << ',' << json_number_to_string(v);
    }
    if (csv != nullptr) *csv << '\n';
  }

  for (std::uint32_t s = 0; s < shards; ++s) {
    ShardReader& rd = readers[s];
    // Trailing bytes past the last complete round-robin row (including a
    // shard that still has rows when an earlier shard ran dry) are a
    // count/order violation.
    rd.in.clear();
    rd.in.seekg(0, std::ios::end);
    const auto file_size = static_cast<std::uint64_t>(rd.in.tellg());
    if (file_size != rd.bytes) {
      r.errors.push_back("unexpected trailing bytes in " + shard_file_name(s));
      return r;
    }
    r.shard_bytes[s] = rd.bytes;
    r.shard_crc[s] = crc32_final(rd.crc);
  }
  return r;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

Json load_json_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) throw SystemError("dataset: cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return Json::parse(buf.str());
}

}  // namespace

/// Owns the runner journal (kept out of the header so shards.hpp does
/// not leak the runner dependency into every includer).
class JournalHolder {
 public:
  JournalHolder(const std::string& path, bool truncate)
      : writer(path, truncate) {}
  runner::JournalWriter writer;
};

std::string shard_file_name(std::uint32_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "shard-%03u.hpasds", index);
  return buf;
}

std::uint64_t shard_row_count(std::uint64_t rows, std::uint32_t shards,
                              std::uint32_t s) {
  return rows / shards + (s < rows % shards ? 1 : 0);
}

std::uint64_t DatasetWriter::checkpoint_key(std::uint32_t index) const {
  std::uint64_t h = meta_.plan_digest;
  mix(h, 0x5348415244ULL);  // "SHARD"
  mix(h, index);
  return h;
}

DatasetWriter::DatasetWriter(DatasetMeta meta, DatasetWriterOptions options)
    : meta_(std::move(meta)), options_(std::move(options)) {
  require(meta_.shards >= 1, "DatasetWriter: need at least one shard");
  require(meta_.num_features > 0, "DatasetWriter: zero-width rows");
  require(meta_.num_features == meta_.feature_names.size(),
          "DatasetWriter: feature name count mismatch");
  require(options_.checkpoint_rows >= 1,
          "DatasetWriter: checkpoint interval must be positive");
  std::filesystem::create_directories(options_.out_dir);
  const std::string journal_path = options_.out_dir + "/" + kJournalName;
  shards_.resize(meta_.shards);

  runner::JournalRecord header;
  header.key_hash = meta_.plan_digest;
  header.status = runner::JournalStatus::kDone;
  header.name = "dataset-plan";
  header.csv_crc = meta_.shards;
  header.trace_crc = meta_.num_features;
  header.trace_records = meta_.rows;

  if (!options_.resume) {
    for (std::uint32_t s = 0; s < meta_.shards; ++s)
      create_fresh(shards_[s], s);
    journal_ = std::make_unique<JournalHolder>(journal_path, true);
    journal_->writer.append(header);
    return;
  }

  // Resume: the journal's valid prefix names, per shard, the newest
  // durable (fsync-before-journal) prefix. A torn tail is the expected
  // post-crash state; the journal is rewritten below, so it self-heals.
  const auto read = runner::read_journal(journal_path);
  std::vector<std::vector<const runner::JournalRecord*>> checkpoints(
      meta_.shards);
  if (!read.records.empty()) {
    const runner::JournalRecord& h = read.records.front();
    if (h.key_hash != meta_.plan_digest || h.name != "dataset-plan" ||
        h.csv_crc != meta_.shards || h.trace_crc != meta_.num_features ||
        h.trace_records != meta_.rows) {
      throw ConfigError(
          "dataset --resume: plan changed since the journal was written "
          "(digest/shape mismatch); use a fresh output directory");
    }
    for (std::size_t i = 1; i < read.records.size(); ++i) {
      const runner::JournalRecord& rec = read.records[i];
      for (std::uint32_t s = 0; s < meta_.shards; ++s) {
        if (rec.key_hash == checkpoint_key(s)) {
          checkpoints[s].push_back(&rec);
          break;
        }
      }
    }
  }
  for (std::uint32_t s = 0; s < meta_.shards; ++s) {
    bool adopted = false;
    for (auto it = checkpoints[s].rbegin(); it != checkpoints[s].rend();
         ++it) {
      adopt_or_reset(shards_[s], s, (*it)->trace_records,
                     (*it)->app_iterations, (*it)->csv_crc);
      if (shards_[s].fd >= 0) {
        adopted = true;
        break;
      }
    }
    if (!adopted) create_fresh(shards_[s], s);
  }
  journal_ = std::make_unique<JournalHolder>(journal_path, true);
  journal_->writer.append(header);
  for (std::uint32_t s = 0; s < meta_.shards; ++s) {
    if (shards_[s].durable_rows > 0) checkpoint(shards_[s], s);
  }
}

DatasetWriter::~DatasetWriter() {
  for (Shard& shard : shards_) {
    if (shard.fd >= 0) ::close(shard.fd);
  }
}

void DatasetWriter::create_fresh(Shard& shard, std::uint32_t index) {
  if (shard.fd >= 0) ::close(shard.fd);
  shard.path = options_.out_dir + "/" + shard_file_name(index);
  shard.fd = ::open(shard.path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                    0644);
  if (shard.fd < 0)
    throw SystemError("dataset: cannot create " + shard.path + ": " +
                      std::strerror(errno));
  const std::string header =
      shard_header_bytes(index, meta_.shards, meta_.num_features);
  write_all(shard.fd, shard.path, header.data(), header.size());
  shard.crc_state = crc32_update(crc32_init(), header.data(), header.size());
  shard.bytes = header.size();
  shard.rows = 0;
  shard.checkpoint_rows = 0;
  shard.durable_rows = 0;
}

void DatasetWriter::adopt_or_reset(Shard& shard, std::uint32_t index,
                                   std::uint64_t ckpt_bytes,
                                   std::uint64_t ckpt_rows,
                                   std::uint32_t ckpt_crc) {
  // Validates one checkpoint candidate against the bytes on disk; on any
  // mismatch the shard is left closed (fd < 0) so the caller can try an
  // older checkpoint or fall back to a fresh file.
  if (shard.fd >= 0) {
    ::close(shard.fd);
    shard.fd = -1;
  }
  shard.path = options_.out_dir + "/" + shard_file_name(index);
  if (ckpt_bytes < kShardHeaderSize) return;
  std::ifstream in(shard.path, std::ios::binary);
  if (!in.is_open()) return;
  std::uint32_t state = crc32_init();
  std::uint64_t left = ckpt_bytes;
  char buf[1 << 16];
  bool header_checked = false;
  while (left > 0) {
    const auto want = static_cast<std::streamsize>(
        std::min<std::uint64_t>(left, sizeof(buf)));
    in.read(buf, want);
    if (in.gcount() != want) return;  // file shorter than the checkpoint
    if (!header_checked) {
      if (std::memcmp(buf, kShardMagic, sizeof(kShardMagic)) != 0) return;
      header_checked = true;
    }
    state = crc32_update(state, buf, static_cast<std::size_t>(want));
    left -= static_cast<std::uint64_t>(want);
  }
  if (crc32_final(state) != ckpt_crc) return;
  in.close();

  // The prefix is intact: drop any non-durable tail and continue from it.
  if (::truncate(shard.path.c_str(), static_cast<off_t>(ckpt_bytes)) != 0)
    throw SystemError("dataset: truncate failed on " + shard.path + ": " +
                      std::strerror(errno));
  shard.fd = ::open(shard.path.c_str(), O_WRONLY | O_CLOEXEC);
  if (shard.fd < 0)
    throw SystemError("dataset: cannot reopen " + shard.path + ": " +
                      std::strerror(errno));
  if (::lseek(shard.fd, 0, SEEK_END) < 0)
    throw SystemError("dataset: seek failed on " + shard.path);
  shard.crc_state = state;
  shard.bytes = ckpt_bytes;
  shard.rows = ckpt_rows;
  shard.checkpoint_rows = ckpt_rows;
  shard.durable_rows = ckpt_rows;
}

bool DatasetWriter::row_durable(std::uint64_t row) const {
  const Shard& shard = shards_[shard_of_row(row, meta_.shards)];
  return row / meta_.shards < shard.durable_rows;
}

std::uint64_t DatasetWriter::rows_durable() const {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) total += shard.durable_rows;
  return total;
}

void DatasetWriter::write_row(Shard& shard, std::uint32_t index,
                              std::uint64_t row, int label,
                              std::span<const double> features) {
  std::string frame;
  frame.reserve(8 + 12 + 8 * features.size());
  put_u32(frame, static_cast<std::uint32_t>(12 + 8 * features.size()));
  const std::size_t payload_begin = frame.size();
  put_u64(frame, row);
  put_u32(frame, static_cast<std::uint32_t>(label));
  for (const double v : features) put_f64(frame, v);
  put_u32(frame, crc32(frame.data() + payload_begin,
                       frame.size() - payload_begin));
  write_all(shard.fd, shard.path, frame.data(), frame.size());
  shard.crc_state = crc32_update(shard.crc_state, frame.data(), frame.size());
  shard.bytes += frame.size();
  ++shard.rows;
  (void)index;
}

void DatasetWriter::checkpoint(Shard& shard, std::uint32_t index) {
  // Durability order is the resume contract: shard bytes reach disk
  // BEFORE the journal record that describes them, so a validated
  // checkpoint always names an intact prefix.
  if (::fsync(shard.fd) != 0)
    throw SystemError("dataset: fsync failed on " + shard.path + ": " +
                      std::strerror(errno));
  runner::JournalRecord rec;
  rec.key_hash = checkpoint_key(index);
  rec.status = runner::JournalStatus::kDone;
  rec.name = "shard-" + std::to_string(index);
  rec.output = shard_file_name(index);
  rec.csv_crc = crc32_final(shard.crc_state);
  rec.trace_records = shard.bytes;
  rec.app_iterations = shard.rows;
  journal_->writer.append(rec);
  shard.checkpoint_rows = shard.rows;
}

void DatasetWriter::append(std::uint64_t row, int label,
                           std::span<const double> features) {
  require(features.size() == meta_.num_features,
          "DatasetWriter: feature width mismatch");
  require(row < meta_.rows, "DatasetWriter: row index out of plan");
  require(label >= 0 &&
              static_cast<std::size_t>(label) < meta_.class_names.size(),
          "DatasetWriter: label out of range");
  const std::uint32_t s = shard_of_row(row, meta_.shards);
  const std::uint64_t ordinal = row / meta_.shards;

  std::lock_guard<std::mutex> lock(mutex_);
  if (abandoned_) return;  // cancellation already sealed the prefix
  require(!finished_, "DatasetWriter: append after finish");
  Shard& shard = shards_[s];
  require(ordinal >= shard.rows, "DatasetWriter: duplicate row append");
  if (ordinal != shard.rows) {
    // Out-of-order completion: park until the plan-order predecessor
    // lands. Bounded by pool backpressure; the cap catches logic bugs.
    require(shard.pending.size() < kMaxPendingRows,
            "DatasetWriter: sequencer reorder bound exceeded");
    shard.pending.emplace(
        ordinal,
        PendingRow{label, std::vector<double>(features.begin(),
                                              features.end())});
    return;
  }
  write_row(shard, s, row, label, features);
  auto next = shard.pending.begin();
  while (next != shard.pending.end() && next->first == shard.rows) {
    write_row(shard, s, next->first * meta_.shards + s, next->second.label,
              next->second.features);
    next = shard.pending.erase(next);
  }
  if (shard.rows - shard.checkpoint_rows >= options_.checkpoint_rows)
    checkpoint(shard, s);
}

void DatasetWriter::abandon() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (abandoned_ || finished_) return;
  abandoned_ = true;
  for (std::uint32_t s = 0; s < meta_.shards; ++s) {
    Shard& shard = shards_[s];
    shard.pending.clear();  // non-contiguous rows are re-run on resume
    if (shard.rows > shard.checkpoint_rows) checkpoint(shard, s);
  }
}

std::string DatasetWriter::finish(bool write_csv) {
  std::lock_guard<std::mutex> lock(mutex_);
  require(!abandoned_ && !finished_, "DatasetWriter: finish after stop");
  for (std::uint32_t s = 0; s < meta_.shards; ++s) {
    Shard& shard = shards_[s];
    require(shard.pending.empty(),
            "DatasetWriter: finish with parked rows (missing predecessors)");
    require(shard.rows == shard_row_count(meta_.rows, meta_.shards, s),
            "DatasetWriter: finish with missing rows");
    if (shard.rows > shard.checkpoint_rows) checkpoint(shard, s);
  }
  finished_ = true;

  // Read-back pass: verifies every byte just written and aggregates the
  // manifest facts in plan order (so the manifest, like the shards, is
  // independent of thread count and resume history).
  std::ofstream csv;
  const std::string csv_path = options_.out_dir + "/" + kCsvName;
  const std::string csv_tmp = csv_path + ".tmp";
  if (write_csv) {
    csv.open(csv_tmp, std::ios::binary | std::ios::trunc);
    if (!csv.is_open()) throw SystemError("dataset: cannot write " + csv_tmp);
    csv << "row,label";
    for (const std::string& name : meta_.feature_names) csv << ',' << name;
    csv << '\n';
  }
  ScanResult scan =
      scan_shards(options_.out_dir, meta_.shards, meta_.num_features,
                  meta_.class_names.size(), write_csv ? &csv : nullptr);
  if (!scan.errors.empty())
    throw SystemError("dataset: read-back verification failed: " +
                      scan.errors.front());
  require(scan.rows == meta_.rows, "dataset: read-back row count mismatch");
  for (std::uint32_t s = 0; s < meta_.shards; ++s) {
    require(scan.shard_crc[s] == crc32_final(shards_[s].crc_state),
            "dataset: read-back CRC diverged from incremental CRC");
  }
  if (write_csv) {
    csv.close();
    if (std::rename(csv_tmp.c_str(), csv_path.c_str()) != 0)
      throw SystemError("dataset: rename " + csv_tmp + " -> " + csv_path +
                        " failed: " + std::strerror(errno));
  }

  Json m = Json::object();
  m.set("format", Json("hpas-dataset-v1"));
  m.set("plan_digest", Json(hex64(meta_.plan_digest)));
  m.set("rows", Json(static_cast<double>(meta_.rows)));
  m.set("num_features", Json(static_cast<double>(meta_.num_features)));
  m.set("shards", Json(static_cast<double>(meta_.shards)));
  Json classes = Json::array();
  for (const std::string& c : meta_.class_names) classes.push_back(Json(c));
  m.set("class_names", std::move(classes));
  Json label_counts = Json::array();
  for (const std::uint64_t c : scan.label_counts)
    label_counts.push_back(Json(static_cast<double>(c)));
  m.set("label_counts", std::move(label_counts));
  Json shard_files = Json::array();
  for (std::uint32_t s = 0; s < meta_.shards; ++s) {
    Json entry = Json::object();
    entry.set("file", Json(shard_file_name(s)));
    entry.set("rows", Json(static_cast<double>(scan.shard_rows[s])));
    entry.set("bytes", Json(static_cast<double>(scan.shard_bytes[s])));
    entry.set("crc32", Json(static_cast<double>(scan.shard_crc[s])));
    shard_files.push_back(std::move(entry));
  }
  m.set("shard_files", std::move(shard_files));
  Json names = Json::array();
  for (const std::string& n : meta_.feature_names) names.push_back(Json(n));
  m.set("feature_names", std::move(names));
  Json feature_crcs = Json::array();
  for (std::uint32_t f = 0; f < meta_.num_features; ++f)
    feature_crcs.push_back(
        Json(static_cast<double>(crc32_final(scan.feature_crc[f]))));
  m.set("feature_crcs", std::move(feature_crcs));
  Json feature_stats = Json::array();
  for (std::uint32_t f = 0; f < meta_.num_features; ++f) {
    const FeatureAgg& agg = scan.stats[f];
    Json st = Json::object();
    st.set("min", Json(agg.min));
    st.set("max", Json(agg.max));
    st.set("mean", Json(agg.mean));
    st.set("stddev",
           Json(agg.count > 1
                    ? std::sqrt(agg.m2 / static_cast<double>(agg.count - 1))
                    : 0.0));
    feature_stats.push_back(std::move(st));
  }
  m.set("feature_stats", std::move(feature_stats));

  const std::string manifest_path = options_.out_dir + "/" + kManifestName;
  write_file_atomic(manifest_path, m.dump(2));
  return manifest_path;
}

VerifyReport verify_dataset(const std::string& dir) {
  VerifyReport report;
  Json manifest;
  try {
    manifest = load_json_file(dir + "/" + kManifestName);
  } catch (const std::exception& e) {
    report.errors.push_back(std::string("manifest unreadable: ") + e.what());
    return report;
  }
  const auto u64_field = [&](std::string_view key) {
    return static_cast<std::uint64_t>(manifest.number_or(key, 0));
  };
  const std::uint64_t rows = u64_field("rows");
  const auto num_features = static_cast<std::uint32_t>(u64_field("num_features"));
  const auto shards = static_cast<std::uint32_t>(u64_field("shards"));
  if (shards == 0 || num_features == 0) {
    report.errors.push_back("manifest missing rows/num_features/shards");
    return report;
  }
  const Json* class_names = manifest.find("class_names");
  const std::size_t num_classes =
      (class_names != nullptr && class_names->is_array())
          ? class_names->as_array().size()
          : 0;
  if (num_classes == 0) {
    report.errors.push_back("manifest missing class_names");
    return report;
  }

  ScanResult scan = scan_shards(dir, shards, num_features, num_classes,
                                nullptr);
  report.errors.insert(report.errors.end(), scan.errors.begin(),
                       scan.errors.end());
  if (!report.errors.empty()) return report;

  if (scan.rows != rows)
    report.errors.push_back("row count mismatch: manifest " +
                            std::to_string(rows) + ", shards " +
                            std::to_string(scan.rows));
  const Json* shard_files_json = manifest.find("shard_files");
  if (shard_files_json == nullptr || !shard_files_json->is_array() ||
      shard_files_json->as_array().size() != shards) {
    report.errors.push_back("manifest shard_files count mismatch");
    return report;
  }
  const auto& shard_files = shard_files_json->as_array();
  for (std::uint32_t s = 0; s < shards; ++s) {
    const Json& entry = shard_files[s];
    if (static_cast<std::uint64_t>(entry.number_or("rows", 0)) !=
        scan.shard_rows[s])
      report.errors.push_back("shard " + std::to_string(s) +
                              " row count mismatch");
    if (static_cast<std::uint64_t>(entry.number_or("bytes", 0)) !=
        scan.shard_bytes[s])
      report.errors.push_back("shard " + std::to_string(s) +
                              " byte size mismatch");
    if (static_cast<std::uint32_t>(entry.number_or("crc32", 0)) !=
        scan.shard_crc[s])
      report.errors.push_back("shard " + std::to_string(s) + " CRC mismatch");
  }
  const Json* feature_crcs_json = manifest.find("feature_crcs");
  if (feature_crcs_json == nullptr || !feature_crcs_json->is_array() ||
      feature_crcs_json->as_array().size() != num_features) {
    report.errors.push_back("manifest feature_crcs count mismatch");
  } else {
    const auto& feature_crcs = feature_crcs_json->as_array();
    for (std::uint32_t f = 0; f < num_features; ++f) {
      if (static_cast<std::uint32_t>(feature_crcs[f].as_number()) !=
          crc32_final(scan.feature_crc[f])) {
        report.errors.push_back("feature column " + std::to_string(f) +
                                " CRC mismatch");
      }
    }
  }
  if (const Json* counts_json = manifest.find("label_counts");
      counts_json != nullptr && counts_json->is_array()) {
    const auto& counts = counts_json->as_array();
    for (std::size_t c = 0; c < counts.size() && c < scan.label_counts.size();
         ++c) {
      if (static_cast<std::uint64_t>(counts[c].as_number()) !=
          scan.label_counts[c])
        report.errors.push_back("label count mismatch for class " +
                                std::to_string(c));
    }
  }
  report.ok = report.errors.empty();
  return report;
}

}  // namespace hpas::dataset
