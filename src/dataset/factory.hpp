// Streaming dataset factory: plans row lists and executes them at scale.
//
// A *plan* is the complete, ordered description of every labeled row the
// dataset will contain -- which scenario to simulate, which class label
// it gets, and a stable per-row key hash. Three planners feed it:
//
//   plan_from_diagnosis  the ML training sweep (classes x apps x
//                        variants), labels = anomaly classes -- the
//                        streaming twin of generate_diagnosis_dataset();
//   plan_from_grid       a sweep grid, cycled until --rows rows (cycle
//                        c re-derives every scenario's seed from
//                        (base_seed, row index), so repeats are fresh
//                        draws, not copies), labels = anomaly names in
//                        first-appearance order;
//   plan_from_space      --rows i.i.d. samples from a typed scenario
//                        space, materialized through the space's
//                        point-identity contract.
//
// Execution fans rows across a WorkStealingPool. Each row simulates a
// fresh world with a StreamingFeatureExtractor attached as the
// monitoring SampleSink and MetricStores disabled, so peak memory per
// in-flight row is O(feature_metrics x window) -- independent of
// scenario duration -- and appends its feature vector to the sharded,
// checksummed DatasetWriter. Every row is a pure function of the plan,
// so shards and manifest are byte-identical at any thread count and
// across --resume.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/cancel.hpp"
#include "dataset/shards.hpp"
#include "ml/diagnosis.hpp"
#include "runner/grid.hpp"

namespace hpas::search {
class ScenarioSpace;
}

namespace hpas::dataset {

/// One planned labeled row.
struct DatasetRowSpec {
  enum class Kind : int { kGrid = 0, kDiagnosis = 1 };
  Kind kind = Kind::kGrid;
  runner::ScenarioSpec spec;   ///< kGrid: the scenario to simulate
  ml::DiagnosisRunPlan diag;   ///< kDiagnosis: the planned training run
  int label = 0;               ///< class index
  std::uint64_t key_hash = 0;  ///< stable row identity (digest input)
};

struct DatasetPlan {
  std::string name = "dataset";
  std::vector<DatasetRowSpec> rows;
  std::vector<std::string> class_names;
  std::vector<std::string> feature_names;
  /// Execution parameters shared by every row.
  ml::DiagnosisDataOptions diag_options;  ///< kDiagnosis rows only
  double warmup_s = 5.0;   ///< kGrid rows: window = [warmup, duration+0.5)
  double noise = 0.5;      ///< kGrid rows: sensor noise (see diagnosis)
  bool include_bandwidth = false;

  /// Stable digest of the whole plan (row count, feature/class shape,
  /// every row's key hash) -- the journal plan-header identity that
  /// --resume validates. Shard count and thread count are layout /
  /// execution knobs and deliberately excluded.
  std::uint64_t digest() const;

  /// The plan's shard-file metadata.
  DatasetMeta meta(std::uint32_t shards) const;
};

/// Diagnosis training sweep as a plan; rows == plan_diagnosis_runs order.
DatasetPlan plan_from_diagnosis(const ml::DiagnosisDataOptions& options);

/// Cycles `grid` until `rows` rows. Labels are the grid's anomaly names
/// in first-appearance order. Scenario seeds are re-derived per row from
/// (grid.base_seed, row index): cycling is oversampling with fresh
/// streams, not duplication.
DatasetPlan plan_from_grid(const runner::SweepGrid& grid, std::uint64_t rows,
                           double warmup_s, double noise,
                           bool include_bandwidth);

/// Samples `rows` points from `space` with one serial Rng stream seeded
/// by the space's base seed and materializes each.
DatasetPlan plan_from_space(const search::ScenarioSpace& space,
                            std::uint64_t rows, double warmup_s, double noise,
                            bool include_bandwidth);

struct DatasetFactoryOptions {
  std::string out_dir;
  std::uint32_t shards = 4;
  int threads = 1;  ///< 0 = hardware concurrency
  std::uint64_t checkpoint_rows = 1024;
  bool resume = false;
  bool write_csv = false;
  /// Drain request: stop starting new rows, checkpoint what finished.
  /// A later --resume completes the dataset byte-identically.
  const CancelToken* graceful = nullptr;
  /// Abort request: additionally cancel rows mid-simulation (their
  /// partial features are discarded, never written).
  const CancelToken* hard = nullptr;
};

struct DatasetFactoryResult {
  std::uint64_t rows_total = 0;
  std::uint64_t rows_executed = 0;  ///< simulated this invocation
  std::uint64_t rows_resumed = 0;   ///< adopted from durable checkpoints
  bool complete = false;            ///< all rows written, manifest present
  bool interrupted = false;         ///< a cancel token cut the run short
  std::string manifest_path;        ///< empty unless complete
  /// Peak retained doubles in any single row's extractor -- the bounded-
  /// memory claim under test (O(metrics x window), not O(duration)).
  std::size_t peak_buffered_values = 0;
  std::uint64_t samples_seen = 0;  ///< total monitoring samples streamed
};

/// Executes the plan. Throws ConfigError when resuming against a changed
/// plan; propagates the lowest-indexed row failure.
DatasetFactoryResult run_dataset_factory(const DatasetPlan& plan,
                                         const DatasetFactoryOptions& options);

}  // namespace hpas::dataset
