// StreamingFeatureExtractor: online, bit-reproducible feature extraction.
//
// The batch diagnosis pipeline materializes a full MetricStore per
// scenario (every sample of every metric for the whole run) and then
// calls ml::extract_window_features over it. This extractor is the
// streaming replacement: it consumes the monitoring sample stream
// incrementally (as a metrics::SampleSink) and keeps, per feature
// metric, only
//
//   * online left-fold accumulators -- count, sum, min, max and a
//     Welford (mean, M2) pair -- updated in O(1) per sample, and
//   * the in-window, post-differencing value buffer: the deterministic
//     "sketch" from which rank statistics (percentiles) and the
//     two-pass central moments are computed at finalize().
//
// Out-of-window samples and non-feature metrics cost O(1) (a counter
// bump), so peak memory is O(feature_metrics x window_samples) --
// independent of scenario duration and of how many metrics the
// samplers emit. finalize() delegates to the *same*
// metrics::extract_series_features the batch path uses, over exactly
// the bytes the batch path would have assembled, which is what makes
// the streamed feature vector bit-identical to the batch one by
// construction (see DESIGN.md, "Streaming feature algebra").
//
// Counter differencing matches the batch semantics exactly:
//   n in-window samples of a counter -> n-1 first differences;
//   a single sample stays a single raw value; none stays empty.
// Sensor noise is applied at finalize(), metric by metric in feature
// order, because the batch extractor consumes one sequential RNG per
// metric while the sink observes samples time-interleaved.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "metrics/metric_id.hpp"
#include "metrics/sample_sink.hpp"

namespace hpas::dataset {

struct StreamingExtractorConfig {
  /// Feature metrics in extraction order (the feature vector layout).
  std::vector<metrics::MetricId> metrics;
  /// Parallel to `metrics`: true = gauge (used raw), false = cumulative
  /// counter (first-differenced into per-interval rates).
  std::vector<char> gauge;
  double window_t0 = 0.0;  ///< window [t0, t1): warmup excluded
  double window_t1 = 0.0;
  /// Relative sensor noise (see DiagnosisDataOptions::measurement_noise);
  /// applied at finalize() when a noise RNG is supplied.
  double noise = 0.0;
};

class StreamingFeatureExtractor final : public metrics::SampleSink {
 public:
  explicit StreamingFeatureExtractor(StreamingExtractorConfig config);

  /// SampleSink: O(1) for ignored samples, amortized O(1) for in-window
  /// feature samples.
  void on_sample(const metrics::MetricId& id, double timestamp,
                 double value) override;

  /// Assembles the feature vector: per metric in feature order, applies
  /// sensor noise from `noise_rng` (nullptr or noise == 0 -> noise-free)
  /// and computes the per-series statistics via
  /// metrics::extract_series_features. Call once per scenario; reset()
  /// rearms the extractor without releasing buffer capacity.
  std::vector<double> finalize(Rng* noise_rng);

  /// Clears all per-metric state for the next scenario, keeping buffer
  /// capacity (no steady-state allocation when reused across rows).
  void reset();

  /// Online left-fold summary of one metric's in-window, post-diff
  /// series. sum/min/max fold in arrival order exactly like the batch
  /// Summary pass, so sum/n is bit-equal to the batch mean; (mean, m2)
  /// are Welford-updated online moments (variance ~ m2/(n-1)).
  struct SeriesStats {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;  ///< Welford running mean
    double m2 = 0.0;    ///< Welford sum of squared deviations
  };
  const SeriesStats& series_stats(std::size_t metric_index) const;

  std::size_t num_metrics() const { return slots_.size(); }
  /// Stream accounting (window counters): everything the sink saw.
  std::uint64_t samples_seen() const { return samples_seen_; }
  std::uint64_t samples_in_window() const { return samples_in_window_; }
  std::uint64_t samples_out_of_window() const {
    return samples_out_of_window_;
  }
  std::uint64_t samples_other_metrics() const {
    return samples_other_metrics_;
  }
  /// Peak retained doubles across all per-metric buffers -- the memory
  /// bound under test: O(metrics x window), never O(duration).
  std::size_t peak_buffered_values() const { return peak_buffered_; }

 private:
  struct Slot {
    bool gauge = false;
    bool has_first = false;
    double first = 0.0;  ///< first in-window counter sample (raw)
    double prev = 0.0;   ///< last counter sample, for differencing
    /// Gauges: raw in-window values. Counters: first differences.
    std::vector<double> window;
    SeriesStats stats;
  };

  void fold(Slot& slot, double value);

  StreamingExtractorConfig config_;
  std::vector<Slot> slots_;
  std::unordered_map<metrics::MetricId, std::size_t> slot_of_;
  std::uint64_t samples_seen_ = 0;
  std::uint64_t samples_in_window_ = 0;
  std::uint64_t samples_out_of_window_ = 0;
  std::uint64_t samples_other_metrics_ = 0;
  std::size_t buffered_ = 0;
  std::size_t peak_buffered_ = 0;
  bool finalized_ = false;
};

}  // namespace hpas::dataset
