#include "dataset/factory.hpp"

#include <algorithm>
#include <atomic>
#include <utility>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "dataset/streaming.hpp"
#include "runner/journal.hpp"
#include "runner/runner.hpp"
#include "runner/thread_pool.hpp"
#include "search/space.hpp"
#include "sim/world.hpp"

namespace hpas::dataset {
namespace {

constexpr std::uint64_t kPlanSeed = 0x4450534554504c4eULL;  // "DPSETPLN"
constexpr std::uint64_t kRowSeed = 0x44535452ULL;           // "DSTR"
constexpr std::uint64_t kNoiseStream = 0x4e6f697365ULL;     // "Noise"

/// splitmix-style combine, same shape as the journal key hash.
void mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
}

void mix_string(std::uint64_t& h, const std::string& s) {
  mix(h, s.size());
  mix(h, crc32(s));
}

void mix_double(std::uint64_t& h, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  __builtin_memcpy(&bits, &v, sizeof(bits));
  mix(h, bits);
}

/// Class label from an anomaly name, growing the label map in
/// first-appearance order (deterministic: plans are built serially).
int label_of(std::vector<std::string>& class_names,
             const std::string& anomaly) {
  for (std::size_t i = 0; i < class_names.size(); ++i)
    if (class_names[i] == anomaly) return static_cast<int>(i);
  class_names.push_back(anomaly);
  return static_cast<int>(class_names.size() - 1);
}

std::vector<std::string> feature_names_for(bool include_bandwidth) {
  ml::DiagnosisDataOptions opts;
  opts.include_bandwidth_metrics = include_bandwidth;
  return ml::diagnosis_feature_names(opts);
}

StreamingExtractorConfig extractor_config(bool include_bandwidth,
                                          double window_t0, double window_t1,
                                          double noise) {
  StreamingExtractorConfig cfg;
  cfg.metrics = ml::diagnosis_feature_metrics(include_bandwidth);
  cfg.gauge.reserve(cfg.metrics.size());
  for (const metrics::MetricId& id : cfg.metrics)
    cfg.gauge.push_back(ml::diagnosis_metric_is_gauge(id) ? 1 : 0);
  cfg.window_t0 = window_t0;
  cfg.window_t1 = window_t1;
  cfg.noise = noise;
  return cfg;
}

}  // namespace

std::uint64_t DatasetPlan::digest() const {
  std::uint64_t h = kPlanSeed;
  mix_string(h, name);
  mix(h, rows.size());
  mix(h, feature_names.size());
  mix(h, class_names.size());
  for (const std::string& c : class_names) mix_string(h, c);
  mix_double(h, warmup_s);
  mix_double(h, noise);
  mix(h, include_bandwidth ? 1 : 0);
  for (const DatasetRowSpec& row : rows) {
    mix(h, static_cast<std::uint64_t>(row.kind));
    mix(h, static_cast<std::uint64_t>(row.label));
    mix(h, row.key_hash);
  }
  return h;
}

DatasetMeta DatasetPlan::meta(std::uint32_t shards) const {
  DatasetMeta meta;
  meta.plan_digest = digest();
  meta.rows = rows.size();
  meta.num_features = static_cast<std::uint32_t>(feature_names.size());
  meta.shards = shards;
  meta.class_names = class_names;
  meta.feature_names = feature_names;
  return meta;
}

DatasetPlan plan_from_diagnosis(const ml::DiagnosisDataOptions& options) {
  DatasetPlan plan;
  plan.name = "diagnosis";
  plan.class_names = options.classes;
  plan.feature_names = ml::diagnosis_feature_names(options);
  plan.diag_options = options;
  plan.warmup_s = options.warmup_s;
  plan.noise = options.measurement_noise;
  plan.include_bandwidth = options.include_bandwidth_metrics;
  std::uint64_t index = 0;
  for (ml::DiagnosisRunPlan& run : ml::plan_diagnosis_runs(options)) {
    DatasetRowSpec row;
    row.kind = DatasetRowSpec::Kind::kDiagnosis;
    row.label = run.label;
    std::uint64_t h = kRowSeed;
    mix(h, options.seed);
    mix(h, index);
    mix_string(h, run.app);
    mix_string(h, run.anomaly);
    mix(h, static_cast<std::uint64_t>(run.label));
    mix_double(h, run.intensity);
    row.key_hash = h;
    row.diag = std::move(run);
    plan.rows.push_back(std::move(row));
    ++index;
  }
  return plan;
}

DatasetPlan plan_from_grid(const runner::SweepGrid& grid, std::uint64_t rows,
                           double warmup_s, double noise,
                           bool include_bandwidth) {
  require(!grid.scenarios.empty(), "plan_from_grid: empty grid");
  if (rows == 0) rows = grid.scenarios.size();
  DatasetPlan plan;
  plan.name = grid.name;
  plan.feature_names = feature_names_for(include_bandwidth);
  plan.warmup_s = warmup_s;
  plan.noise = noise;
  plan.include_bandwidth = include_bandwidth;
  // The label map covers the whole grid up front, so the class list does
  // not depend on how many rows the cycle was cut to.
  for (const runner::ScenarioSpec& spec : grid.scenarios)
    label_of(plan.class_names, spec.anomaly);
  plan.rows.reserve(rows);
  for (std::uint64_t r = 0; r < rows; ++r) {
    DatasetRowSpec row;
    row.kind = DatasetRowSpec::Kind::kGrid;
    row.spec = grid.scenarios[r % grid.scenarios.size()];
    if (row.spec.duration_s + 0.5 <= warmup_s)
      throw ConfigError("plan_from_grid: scenario '" + row.spec.name +
                        "' is shorter than the feature warmup window");
    // Fresh stream per row: cycling the grid oversamples with new draws.
    row.spec.seed = runner::derive_scenario_seed(grid.base_seed, r);
    row.spec.name += "#" + std::to_string(r);
    row.label = label_of(plan.class_names, row.spec.anomaly);
    std::uint64_t h = kRowSeed;
    mix(h, r);
    mix(h, runner::scenario_key_hash(row.spec));
    row.key_hash = h;
    plan.rows.push_back(std::move(row));
  }
  return plan;
}

DatasetPlan plan_from_space(const search::ScenarioSpace& space,
                            std::uint64_t rows, double warmup_s, double noise,
                            bool include_bandwidth) {
  require(rows > 0, "plan_from_space: need at least one row");
  DatasetPlan plan;
  plan.name = space.name();
  plan.feature_names = feature_names_for(include_bandwidth);
  plan.warmup_s = warmup_s;
  plan.noise = noise;
  plan.include_bandwidth = include_bandwidth;
  // The anomaly axis (when present) fixes the label map up front; sampled
  // rows can only draw from it, so the class list is row-count-invariant.
  label_of(plan.class_names, space.base().anomaly);
  for (const search::Dimension& dim : space.dimensions()) {
    if (dim.field == "anomaly")
      for (const std::string& v : dim.values) label_of(plan.class_names, v);
  }
  Rng rng(space.base_seed());
  plan.rows.reserve(rows);
  for (std::uint64_t r = 0; r < rows; ++r) {
    DatasetRowSpec row;
    row.kind = DatasetRowSpec::Kind::kGrid;
    row.spec = space.materialize(space.sample(rng));
    if (row.spec.duration_s + 0.5 <= warmup_s)
      throw ConfigError("plan_from_space: scenario '" + row.spec.name +
                        "' is shorter than the feature warmup window");
    row.spec.name += "#" + std::to_string(r);
    row.label = label_of(plan.class_names, row.spec.anomaly);
    std::uint64_t h = kRowSeed;
    mix(h, r);
    mix(h, runner::scenario_key_hash(row.spec));
    row.key_hash = h;
    plan.rows.push_back(std::move(row));
  }
  return plan;
}

DatasetFactoryResult run_dataset_factory(const DatasetPlan& plan,
                                         const DatasetFactoryOptions& options) {
  require(!plan.rows.empty(), "run_dataset_factory: empty plan");
  require(plan.feature_names.size() > 0,
          "run_dataset_factory: plan has no features");
  DatasetFactoryResult result;
  result.rows_total = plan.rows.size();

  DatasetWriterOptions writer_options;
  writer_options.out_dir = options.out_dir;
  writer_options.checkpoint_rows = options.checkpoint_rows;
  writer_options.resume = options.resume;
  DatasetWriter writer(plan.meta(options.shards), writer_options);
  result.rows_resumed = writer.rows_durable();

  std::atomic<std::uint64_t> executed{0};
  std::atomic<std::uint64_t> samples{0};
  std::atomic<std::size_t> peak{0};
  std::atomic<bool> interrupted{false};

  const auto stop_requested = [&] {
    return (options.graceful != nullptr && options.graceful->cancelled()) ||
           (options.hard != nullptr && options.hard->cancelled());
  };

  runner::PoolOptions pool_options;
  pool_options.threads = options.threads;
  runner::WorkStealingPool pool(pool_options);
  const auto run_row = [&](std::size_t i) {
    if (writer.row_durable(i)) return;
    if (stop_requested()) {
      interrupted.store(true, std::memory_order_relaxed);
      return;
    }
    const DatasetRowSpec& row = plan.rows[i];
    std::vector<double> features;
    std::size_t row_peak = 0;
    std::uint64_t row_samples = 0;
    if (row.kind == DatasetRowSpec::Kind::kDiagnosis) {
      const ml::DiagnosisDataOptions& diag = plan.diag_options;
      StreamingFeatureExtractor extractor(extractor_config(
          diag.include_bandwidth_metrics, diag.warmup_s,
          diag.run_duration_s + 0.5, diag.measurement_noise));
      ml::DiagnosisScenario scenario = ml::begin_diagnosis_scenario(
          row.diag, diag, &extractor, /*store_samples=*/false);
      scenario.world->set_cancel_token(options.hard);
      try {
        scenario.world->run_until(diag.run_duration_s);
      } catch (const CancelledError&) {
        interrupted.store(true, std::memory_order_relaxed);
        return;  // partial window: never written
      }
      Rng noise_rng = row.diag.noise_rng;
      features = extractor.finalize(&noise_rng);
      row_peak = extractor.peak_buffered_values();
      row_samples = extractor.samples_seen();
    } else {
      StreamingFeatureExtractor extractor(extractor_config(
          plan.include_bandwidth, plan.warmup_s, row.spec.duration_s + 0.5,
          plan.noise));
      const runner::ScenarioResult run = runner::run_scenario(
          row.spec, /*capture_trace=*/false, options.hard, /*sim_shards=*/0,
          {}, &extractor, /*store_samples=*/false);
      if (run.status != runner::ScenarioStatus::kDone) {
        interrupted.store(true, std::memory_order_relaxed);
        return;
      }
      Rng noise_rng(runner::derive_scenario_seed(row.key_hash, kNoiseStream));
      features =
          extractor.finalize(plan.noise > 0.0 ? &noise_rng : nullptr);
      row_peak = extractor.peak_buffered_values();
      row_samples = extractor.samples_seen();
    }
    std::size_t prev = peak.load(std::memory_order_relaxed);
    while (row_peak > prev &&
           !peak.compare_exchange_weak(prev, row_peak,
                                       std::memory_order_relaxed)) {
    }
    samples.fetch_add(row_samples, std::memory_order_relaxed);
    executed.fetch_add(1, std::memory_order_relaxed);
    writer.append(i, row.label, features);
  };

  // The pool pops its own deque LIFO, so inside one parallel_for the
  // OLDEST submitted index can starve until the queue drains -- an
  // unbounded plan-order reorder that would park (and buffer) nearly the
  // whole run in the writer's sequencer. Dispatching in fixed-size blocks
  // restores a hard bound: a row can only complete out of order within
  // its block, so pending rows per shard never exceed the block size, and
  // shard bytes become durable incrementally as blocks retire. Blocks are
  // far wider than the worker count, so the barrier between them costs
  // nothing measurable.
  constexpr std::size_t kRowBlock = 2048;
  try {
    for (std::size_t base = 0; base < plan.rows.size(); base += kRowBlock) {
      if (stop_requested()) {
        interrupted.store(true, std::memory_order_relaxed);
        break;
      }
      const std::size_t count =
          std::min(kRowBlock, plan.rows.size() - base);
      runner::parallel_for(pool, count,
                           [&](std::size_t i) { run_row(base + i); });
    }
  } catch (...) {
    writer.abandon();  // checkpoint the completed prefix before unwinding
    throw;
  }

  result.rows_executed = executed.load();
  result.samples_seen = samples.load();
  result.peak_buffered_values = peak.load();
  result.interrupted = interrupted.load() || stop_requested();
  const bool all_rows_written =
      result.rows_resumed + result.rows_executed == result.rows_total;
  if (!result.interrupted && all_rows_written) {
    result.manifest_path = writer.finish(options.write_csv);
    result.complete = true;
  } else {
    writer.abandon();
  }
  return result;
}

}  // namespace hpas::dataset
