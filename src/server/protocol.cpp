#include "server/protocol.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.hpp"

namespace hpas::server {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw SystemError(what + ": " + std::strerror(errno));
}

/// write()/send() the whole buffer through the faultline socket edge.
/// MSG_NOSIGNAL keeps a dead peer from raising SIGPIPE; on non-socket
/// fds (tests use pipes) send() fails with ENOTSOCK and faultline falls
/// back to write(). A send timeout (set_io_deadline) expiring mid-write
/// means the peer stopped draining: that connection is dead to us.
void write_fully(int fd, const char* data, std::size_t size,
                 faultline::Domain domain) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n =
        faultline::send_fd(domain, fd, data + done, size - done,
                           MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        throw SystemError("protocol: peer stalled, write deadline exceeded");
      throw_errno("protocol: write failed");
    }
    if (n == 0) throw SystemError("protocol: peer closed mid-write");
    done += static_cast<std::size_t>(n);
  }
}

/// Reads exactly `size` bytes. Returns false on EOF at offset 0 when
/// `eof_ok`; throws on EOF anywhere else (a torn frame is an error, not
/// a clean close). A receive timeout at offset 0 of the length prefix is
/// an idle peer and keeps waiting (`idle_ok`, the frame-boundary case);
/// any other timeout is a stalled half-frame and throws.
bool read_fully(int fd, char* data, std::size_t size, bool eof_ok,
                bool idle_ok, faultline::Domain domain) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = faultline::read(domain, fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (done == 0 && idle_ok) continue;
        throw SystemError("protocol: peer stalled mid-frame, read deadline "
                          "exceeded");
      }
      throw_errno("protocol: read failed");
    }
    if (n == 0) {
      if (done == 0 && eof_ok) return false;
      throw SystemError("protocol: peer closed mid-frame");
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

void set_cloexec(int fd) { ::fcntl(fd, F_SETFD, FD_CLOEXEC); }

sockaddr_un make_unix_addr(const std::string& path) {
  sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw ConfigError("socket path too long (" + std::to_string(path.size()) +
                      " bytes, max " +
                      std::to_string(sizeof(addr.sun_path) - 1) + "): " +
                      path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

sockaddr_in make_localhost_addr(int port) {
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  return addr;
}

}  // namespace

void write_frame(int fd, std::string_view payload,
                 faultline::Domain domain) {
  if (payload.size() > kMaxFramePayload)
    throw SystemError("protocol: frame payload exceeds " +
                      std::to_string(kMaxFramePayload) + " bytes");
  char prefix[4];
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i)
    prefix[i] = static_cast<char>((len >> (8 * i)) & 0xffu);
  // Two writes, not one coalesced buffer: the peer reads the length
  // first anyway and both land in the socket buffer back to back.
  write_fully(fd, prefix, sizeof prefix, domain);
  write_fully(fd, payload.data(), payload.size(), domain);
}

void write_json(int fd, const Json& doc, faultline::Domain domain) {
  write_frame(fd, doc.dump(), domain);
}

bool read_frame(int fd, std::string& payload, faultline::Domain domain) {
  char prefix[4];
  // A timeout before the first prefix byte is an idle frame boundary,
  // not a stall -- only a half-read frame trips the deadline.
  if (!read_fully(fd, prefix, sizeof prefix, /*eof_ok=*/true,
                  /*idle_ok=*/true, domain))
    return false;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i)
    len |= static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[i]))
           << (8 * i);
  if (len > kMaxFramePayload)
    throw SystemError("protocol: frame length " + std::to_string(len) +
                      " exceeds the " + std::to_string(kMaxFramePayload) +
                      "-byte cap");
  payload.resize(len);
  if (len > 0)
    read_fully(fd, payload.data(), len, /*eof_ok=*/false, /*idle_ok=*/false,
               domain);
  return true;
}

bool read_json(int fd, Json& doc, faultline::Domain domain) {
  std::string payload;
  if (!read_frame(fd, payload, domain)) return false;
  doc = Json::parse(payload);
  return true;
}

void set_io_deadline(int fd, double seconds) {
  if (seconds <= 0.0) return;
  timeval tv = {};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>(
      (seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

bool unix_socket_alive(const std::string& path) {
  if (::access(path.c_str(), F_OK) != 0) return false;
  sockaddr_un addr;
  try {
    addr = make_unix_addr(path);
  } catch (const ConfigError&) {
    return false;  // unbindable path cannot host a live server either
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return false;
  const bool alive =
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) ==
      0;
  ::close(fd);
  return alive;
}

int listen_unix(const std::string& path) {
  const sockaddr_un addr = make_unix_addr(path);
  // A stale socket file from a SIGKILLed daemon would fail the bind with
  // EADDRINUSE even though nobody is listening. Probe it: a connect that
  // succeeds means a live daemon owns this path -- refuse loudly instead
  // of yanking its socket away; a refused connect means the file is dead
  // weight and safe to unlink (the data dir, not the socket, is the
  // durable state).
  if (unix_socket_alive(path))
    throw ConfigError("server: a live server already answers on " + path +
                      " (stop it first, or pick another --socket)");
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("server: socket(AF_UNIX) failed");
  set_cloexec(fd);
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("server: cannot bind unix socket " + path);
  }
  if (::listen(fd, SOMAXCONN) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("server: listen failed on " + path);
  }
  return fd;
}

int listen_tcp_localhost(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("server: socket(AF_INET) failed");
  set_cloexec(fd);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  const sockaddr_in addr = make_localhost_addr(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("server: cannot bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd, SOMAXCONN) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("server: listen failed on port " + std::to_string(port));
  }
  return fd;
}

int connect_unix(const std::string& path) {
  const sockaddr_un addr = make_unix_addr(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("client: socket(AF_UNIX) failed");
  set_cloexec(fd);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("client: cannot connect to " + path);
  }
  return fd;
}

int connect_tcp_localhost(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("client: socket(AF_INET) failed");
  set_cloexec(fd);
  const sockaddr_in addr = make_localhost_addr(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("client: cannot connect to 127.0.0.1:" +
                std::to_string(port));
  }
  return fd;
}

int local_tcp_port(int fd) {
  sockaddr_in addr = {};
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    throw_errno("server: getsockname failed");
  return static_cast<int>(ntohs(addr.sin_port));
}

}  // namespace hpas::server
