#include "server/server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/error.hpp"
#include "runner/journal.hpp"
#include "runner/runner.hpp"
#include "server/protocol.hpp"

namespace hpas::server {
namespace {

std::string hex16(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

Json make_ack(const char* type, std::uint64_t id) {
  Json frame = Json::object();
  frame.set("type", type);
  frame.set("id", Json(id));
  return frame;
}

}  // namespace

int accept_backoff_ms(int err) {
  switch (err) {
    case EMFILE:   // this process is out of descriptors
    case ENFILE:   // the whole host is out of descriptors
    case ENOBUFS:  // transient kernel buffer exhaustion
    case ENOMEM:
      return 50;
    default:
      return 0;  // ECONNABORTED, EINTR, ...: retry immediately
  }
}

/// One connected client. The fd is owned here (closed at destruction);
/// `closed` and writes are serialized by `write_mu`, while the admitted
/// `queue` (scenario keys awaiting dispatch) belongs to Server::mu_ like
/// the rest of the scheduling state.
struct Server::ClientConn {
  int fd = -1;
  std::thread reader;
  std::mutex write_mu;
  bool closed = false;
  std::deque<std::uint64_t> queue;

  ~ClientConn() {
    if (fd >= 0) ::close(fd);
  }
};

/// One admitted scenario: the spec to run plus every (client, request id)
/// waiting on it. Duplicate submissions racing the execution attach here
/// instead of being re-admitted -- the coalescing that makes "same key,
/// zero extra engine work" hold even under concurrency.
struct Server::Inflight {
  runner::ScenarioSpec spec;
  std::vector<std::pair<std::shared_ptr<ClientConn>, std::uint64_t>> waiters;
};

Server::Server(ServerOptions options)
    : options_(std::move(options)), cache_(options_.data_dir) {}

Server::~Server() {
  if (started_) {
    request_hard();
    wait();
  }
}

void Server::start() {
  require(!started_, "Server::start called twice");
  if (options_.data_dir.empty())
    throw ConfigError("serve: --data directory is required");
  if (options_.socket_path.empty() && options_.tcp_port < 0)
    throw ConfigError("serve: need --socket and/or --tcp to listen on");
  if (options_.admission_capacity == 0)
    throw ConfigError("serve: admission capacity must be positive");

  cache_.set_spool_cap_bytes(options_.spool_cap_bytes);
  cache_.open();

  runner::PoolOptions pool_opts;
  pool_opts.threads = options_.threads;
  if (pool_opts.queue_capacity < options_.admission_capacity)
    pool_opts.queue_capacity = options_.admission_capacity;
  pool_ = std::make_unique<runner::WorkStealingPool>(pool_opts);

  if (!options_.socket_path.empty())
    unix_listener_ = listen_unix(options_.socket_path);
  if (options_.tcp_port >= 0) {
    tcp_listener_ = listen_tcp_localhost(options_.tcp_port);
    tcp_port_ = local_tcp_port(tcp_listener_);
  }

  if (::pipe(stop_pipe_) != 0) throw SystemError("serve: pipe() failed");
  ::fcntl(stop_pipe_[0], F_SETFD, FD_CLOEXEC);
  ::fcntl(stop_pipe_[1], F_SETFD, FD_CLOEXEC);

  accept_thread_ = std::thread([this] { accept_loop(); });
  scheduler_thread_ = std::thread([this] { scheduler_loop(); });
  if (options_.scrub_interval_s > 0.0)
    scrub_thread_ = std::thread([this] { scrub_loop(); });
  started_ = true;
}

void Server::request_drain() {
  std::lock_guard<std::mutex> lock(mu_);
  draining_ = true;
  idle_cv_.notify_all();
  sched_cv_.notify_all();
}

void Server::request_hard() {
  std::lock_guard<std::mutex> lock(mu_);
  draining_ = true;
  // Cancels cooperatively through the token only: every admitted job
  // still flows through run_admitted() (finishing fast as "cancelled"),
  // so admission accounting and waiters unwind normally. Cancelling the
  // pool instead would silently drop queued jobs with their waiters.
  hard_cancel_.cancel(CancelReason::kShutdown);
  idle_cv_.notify_all();
  sched_cv_.notify_all();
}

std::uint64_t Server::wait() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [&] { return draining_ && outstanding_ == 0; });
    stopping_ = true;
    sched_cv_.notify_all();
    scrub_cv_.notify_all();
  }

  // Wake the accept loop's poll(), then tear down in dependency order:
  // no new clients, no new dispatches, then unblock + join the readers.
  const char byte = 0;
  while (::write(stop_pipe_[1], &byte, 1) < 0 && errno == EINTR) {
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (scheduler_thread_.joinable()) scheduler_thread_.join();
  if (scrub_thread_.joinable()) scrub_thread_.join();

  if (unix_listener_ >= 0) {
    ::close(unix_listener_);
    unix_listener_ = -1;
    ::unlink(options_.socket_path.c_str());
  }
  if (tcp_listener_ >= 0) {
    ::close(tcp_listener_);
    tcp_listener_ = -1;
  }

  std::vector<std::shared_ptr<ClientConn>> clients;
  {
    std::lock_guard<std::mutex> lock(mu_);
    clients = clients_;
  }
  for (const auto& conn : clients) {
    {
      std::lock_guard<std::mutex> g(conn->write_mu);
      conn->closed = true;
    }
    ::shutdown(conn->fd, SHUT_RDWR);  // blocked readers see EOF
  }
  for (const auto& conn : clients)
    if (conn->reader.joinable()) conn->reader.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    clients_.clear();
  }

  if (pool_) {
    pool_->wait_idle();
    pool_.reset();
  }
  for (int& fd : stop_pipe_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  started_ = false;

  std::lock_guard<std::mutex> lock(mu_);
  return counters_.executed;
}

std::uint64_t Server::stop() {
  request_drain();
  return wait();
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServerStats s = counters_;
  s.cache_size = cache_.size();
  s.restored = cache_.restored();
  s.evicted = cache_.evicted();
  s.quarantined = cache_.quarantined();
  s.spool_bytes = cache_.spool_bytes();
  s.outstanding = outstanding_;
  s.draining = draining_;
  return s;
}

void Server::accept_loop() {
  // Rate limit for the descriptor-exhaustion warning: the condition can
  // persist for minutes and the backoff retries ~20x/second -- one line
  // every few seconds says everything a log reader needs.
  auto last_backoff_log =
      std::chrono::steady_clock::now() - std::chrono::hours(1);
  while (true) {
    pollfd fds[3];
    nfds_t n = 0;
    fds[n++] = {stop_pipe_[0], POLLIN, 0};
    const nfds_t first_listener = n;
    if (unix_listener_ >= 0) fds[n++] = {unix_listener_, POLLIN, 0};
    if (tcp_listener_ >= 0) fds[n++] = {tcp_listener_, POLLIN, 0};

    if (::poll(fds, n, -1) < 0) {
      if (errno == EINTR) continue;
      return;  // poll on our own fds should not fail; give up quietly
    }
    if (fds[0].revents != 0) return;  // stop requested

    for (nfds_t i = first_listener; i < n; ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      const int cfd = ::accept(fds[i].fd, nullptr, nullptr);
      if (cfd < 0) {
        // EMFILE/ENFILE leave the listener readable, so without a pause
        // this loop would spin at full speed while the process is out of
        // fds. Sleep on the stop pipe instead of plain sleep so shutdown
        // still interrupts the backoff instantly.
        const int delay_ms = accept_backoff_ms(errno);
        if (delay_ms > 0) {
          const auto now = std::chrono::steady_clock::now();
          if (now - last_backoff_log >= std::chrono::seconds(5)) {
            last_backoff_log = now;
            std::fprintf(stderr,
                         "hpas serve: accept failed (%s); backing off\n",
                         std::strerror(errno));
          }
          pollfd stop_fd = {stop_pipe_[0], POLLIN, 0};
          if (::poll(&stop_fd, 1, delay_ms) > 0) return;
        }
        continue;
      }
      ::fcntl(cfd, F_SETFD, FD_CLOEXEC);
      set_io_deadline(cfd, options_.io_timeout_s);
      auto conn = std::make_shared<ClientConn>();
      conn->fd = cfd;
      {
        std::lock_guard<std::mutex> lock(mu_);
        clients_.push_back(conn);
      }
      conn->reader = std::thread([this, conn] { reader_loop(conn); });
    }
  }
}

void Server::reader_loop(const std::shared_ptr<ClientConn>& conn) {
  Json request;
  while (true) {
    try {
      if (!read_json(conn->fd, request)) break;  // clean close
    } catch (const ConfigError& e) {
      // Framing was intact but the payload is not JSON: answer and keep
      // the connection -- the next frame realigns naturally.
      Json err = make_ack("error", 0);
      err.set("message", std::string("bad request: ") + e.what());
      send_to(conn, err);
      continue;
    } catch (const std::exception&) {
      break;  // torn frame or dead socket
    }

    const std::string op = request.string_or("op", "");
    if (op == "submit") {
      handle_submit(conn, request);
    } else if (op == "ping") {
      send_to(conn, make_ack("pong",
                             static_cast<std::uint64_t>(
                                 request.number_or("id", 0))));
    } else if (op == "status") {
      send_to(conn, stats_json());
    } else {
      Json err = make_ack("error",
                          static_cast<std::uint64_t>(
                              request.number_or("id", 0)));
      err.set("message", "unknown op: " + op);
      send_to(conn, err);
    }
  }
  {
    std::lock_guard<std::mutex> g(conn->write_mu);
    conn->closed = true;
  }
  ::shutdown(conn->fd, SHUT_RDWR);
}

void Server::handle_submit(const std::shared_ptr<ClientConn>& conn,
                           const Json& request) {
  const auto id = static_cast<std::uint64_t>(request.number_or("id", 0));

  runner::ScenarioSpec spec;
  try {
    const Json* spec_doc = request.find("spec");
    if (spec_doc == nullptr) throw ConfigError("submit: missing \"spec\"");
    spec = runner::spec_from_json(*spec_doc);
  } catch (const ConfigError& e) {
    Json err = make_ack("error", id);
    err.set("message", e.what());
    send_to(conn, err);
    return;
  }
  const std::uint64_t key = runner::scenario_key_hash(spec);

  Json ack;
  Json result;
  bool have_result = false;
  // Holding write_mu across waiter registration and the ack write
  // guarantees the client sees "accepted" before its result frame.
  // Registering the waiter makes the result deliverable, and delivery
  // goes through this same mutex -- so without it a fast worker could
  // write the result between the registration (under mu_) and the ack
  // hitting the socket. Lock order is write_mu before mu_; no path
  // acquires write_mu while holding mu_.
  std::lock_guard<std::mutex> wlock(conn->write_mu);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.submissions;
    if (const CachedResult* hit = cache_.find(key)) {
      // Cache hits are served even while draining -- they do no work.
      ++counters_.cache_hits;
      ack = make_ack("accepted", id);
      ack.set("cached", true);
      result = result_frame(*hit, id);
      have_result = true;
    } else if (const auto inflight = inflight_.find(key);
               inflight != inflight_.end()) {
      ++counters_.coalesced;
      inflight->second.waiters.emplace_back(conn, id);
      ack = make_ack("accepted", id);
      ack.set("cached", false);
    } else if (draining_) {
      ack = make_ack("draining", id);
    } else if (outstanding_ >= options_.admission_capacity) {
      ++counters_.busy_rejected;
      ack = make_ack("busy", id);
    } else {
      ++outstanding_;
      Inflight entry;
      entry.spec = spec;
      entry.waiters.emplace_back(conn, id);
      inflight_.emplace(key, std::move(entry));
      conn->queue.push_back(key);
      sched_cv_.notify_all();
      ack = make_ack("accepted", id);
      ack.set("cached", false);
    }
  }
  send_locked(conn, ack);
  if (have_result) send_locked(conn, result);
}

void Server::scheduler_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    std::uint64_t key = 0;
    bool picked = false;
    sched_cv_.wait(lock, [&] {
      if (stopping_) return true;
      for (const auto& conn : clients_)
        if (!conn->queue.empty()) return true;
      return false;
    });
    // stopping_ is only set once draining finished (outstanding_ == 0),
    // so an exit here never strands admitted work.
    if (stopping_) return;

    // Round-robin over clients: each pass dispatches at most one
    // scenario per client before looking at the next, so a client
    // streaming a campaign cannot starve a single interactive probe.
    const std::size_t count = clients_.size();
    for (std::size_t i = 0; i < count && !picked; ++i) {
      const std::size_t idx = (rr_next_ + i) % count;
      auto& queue = clients_[idx]->queue;
      if (queue.empty()) continue;
      key = queue.front();
      queue.pop_front();
      rr_next_ = idx + 1;
      picked = true;
    }
    if (!picked) continue;

    lock.unlock();
    // May block on the pool's bounded queue -- deliberately outside mu_
    // so submissions and completions keep flowing meanwhile.
    pool_->submit([this, key] { run_admitted(key); });
    lock.lock();
  }
}

void Server::scrub_loop() {
  const auto period = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::duration<double>(options_.scrub_interval_s));
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    // Waiting on stopping_ (not draining_) lets a final pass of an
    // armed drain still be interrupted; cache access stays under mu_
    // like every other cache caller.
    if (scrub_cv_.wait_for(lock, period, [&] { return stopping_; })) return;
    const ScrubReport report = cache_.scrub();
    ++counters_.scrub_passes;
    if (report.quarantined > 0)
      std::fprintf(stderr,
                   "hpas serve: scrubber quarantined %zu corrupt spool "
                   "entries (of %zu scanned); they re-run on resubmission\n",
                   report.quarantined, report.scanned);
  }
}

void Server::run_admitted(std::uint64_t key) {
  runner::ScenarioSpec spec;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = inflight_.find(key);
    require(it != inflight_.end(), "server: dispatched key not in flight");
    spec = it->second.spec;
  }

  if (options_.before_run) options_.before_run(spec);

  runner::ScenarioResult result;
  try {
    result = runner::run_scenario(spec, /*capture_trace=*/false,
                                  &hard_cancel_, options_.sim_shards);
  } catch (const CancelledError& e) {
    result.spec = spec;
    result.status = runner::ScenarioStatus::kCancelled;
    result.error = e.what();
  } catch (const std::exception& e) {
    result.spec = spec;
    result.status = runner::ScenarioStatus::kFailed;
    result.error = e.what();
  }

  std::vector<std::pair<std::shared_ptr<ClientConn>, std::uint64_t>> waiters;
  std::vector<Json> frames;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.executed;
    const auto it = inflight_.find(key);
    require(it != inflight_.end(), "server: completed key not in flight");
    waiters = std::move(it->second.waiters);
    inflight_.erase(it);

    if (result.status == runner::ScenarioStatus::kDone ||
        result.status == runner::ScenarioStatus::kFailed) {
      // Journal (spool bytes + fsync'd record) BEFORE any result frame
      // leaves the process: a client that saw the result can always get
      // it again from a restarted daemon.
      CachedResult uncached;
      const CachedResult* entry = nullptr;
      try {
        entry = &cache_.insert(key, result);
      } catch (const SystemError& e) {
        // Disk-full / I/O failure on the spool or journal. The result is
        // still correct -- serve it from memory rather than fail the
        // waiters; determinism means a post-restart resubmission re-runs
        // to the same bytes, so skipping the cache only costs time.
        ++counters_.insert_errors;
        std::fprintf(stderr,
                     "hpas serve: cache insert failed (%s); serving "
                     "result uncached\n",
                     e.what());
        uncached.key = key;
        uncached.name = result.spec.name;
        uncached.app_iterations =
            static_cast<std::uint64_t>(result.app_iterations);
        uncached.app_elapsed_s = result.app_elapsed_s;
        if (result.status == runner::ScenarioStatus::kDone) {
          uncached.status = runner::JournalStatus::kDone;
          uncached.metrics_csv = result.metrics_csv;
        } else {
          uncached.status = runner::JournalStatus::kFailed;
          uncached.error = result.error;
        }
        entry = &uncached;
      }
      frames.reserve(waiters.size());
      for (const auto& waiter : waiters)
        frames.push_back(result_frame(*entry, waiter.second));
    } else {
      // Cancelled/timed out: a host-timing artifact, never cached.
      for (const auto& waiter : waiters) {
        Json frame = make_ack("result", waiter.second);
        frame.set("scenario", spec.name);
        frame.set("key", hex16(key));
        frame.set("status", runner::scenario_status_name(result.status));
        if (!result.error.empty()) frame.set("error", result.error);
        frames.push_back(std::move(frame));
      }
    }

    --outstanding_;
    if (outstanding_ == 0) idle_cv_.notify_all();
  }
  for (std::size_t i = 0; i < waiters.size(); ++i)
    send_to(waiters[i].first, frames[i]);
}

void Server::send_to(const std::shared_ptr<ClientConn>& conn,
                     const Json& frame) {
  std::lock_guard<std::mutex> g(conn->write_mu);
  send_locked(conn, frame);
}

void Server::send_locked(const std::shared_ptr<ClientConn>& conn,
                         const Json& frame) {
  if (conn->closed) return;
  try {
    write_json(conn->fd, frame);
  } catch (const std::exception&) {
    conn->closed = true;  // dead peer; its later frames are dropped
  }
}

/// The byte-identity contract lives here: every member except "id" is
/// derived from the CachedResult, which is itself rebuilt bit-exactly
/// from the journal on restart. Deterministic JSON serialization does
/// the rest.
Json Server::result_frame(const CachedResult& entry, std::uint64_t id) const {
  Json frame = make_ack("result", id);
  frame.set("scenario", entry.name);
  frame.set("key", hex16(entry.key));
  frame.set("status", runner::journal_status_name(entry.status));
  if (entry.status == runner::JournalStatus::kFailed)
    frame.set("error", entry.error);
  frame.set("iterations", Json(entry.app_iterations));
  frame.set("app_time_s", entry.app_elapsed_s);
  if (entry.status == runner::JournalStatus::kDone)
    frame.set("metrics_csv", entry.metrics_csv);
  return frame;
}

Json Server::stats_json() const {
  const ServerStats s = stats();
  Json doc = Json::object();
  doc.set("type", "status");
  doc.set("submissions", Json(s.submissions));
  doc.set("cache_hits", Json(s.cache_hits));
  doc.set("coalesced", Json(s.coalesced));
  doc.set("executed", Json(s.executed));
  doc.set("busy_rejected", Json(s.busy_rejected));
  doc.set("insert_errors", Json(s.insert_errors));
  doc.set("scrub_passes", Json(s.scrub_passes));
  doc.set("cache_size", Json(static_cast<std::uint64_t>(s.cache_size)));
  doc.set("restored", Json(static_cast<std::uint64_t>(s.restored)));
  doc.set("evicted", Json(static_cast<std::uint64_t>(s.evicted)));
  doc.set("quarantined", Json(static_cast<std::uint64_t>(s.quarantined)));
  doc.set("spool_bytes", Json(s.spool_bytes));
  doc.set("outstanding", Json(static_cast<std::uint64_t>(s.outstanding)));
  doc.set("draining", s.draining);
  return doc;
}

}  // namespace hpas::server
