// Thin synchronous client of the experiment server.
//
// Owns one connected socket and speaks the frame protocol. Deliberately
// minimal: send a request, read the next frame -- responses to a single
// submission arrive in order (accepted, then eventually result), but a
// client with several submissions outstanding sees result frames in
// completion order, so callers match them up by "id". wait_result() does
// that matching for the common one-at-a-time case, buffering unrelated
// frames for later recv() calls.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "common/json.hpp"
#include "runner/grid.hpp"

namespace hpas::server {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect helpers; throw SystemError when the daemon is not there.
  static Client connect(const std::string& socket_path);
  static Client connect_tcp(int port);

  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Sends one raw request frame.
  void send(const Json& request);

  /// Reads the next frame (buffered ones first). Returns false on a
  /// clean server close; throws SystemError on a torn connection.
  bool recv(Json& response);

  /// submit request for `spec` under the caller-chosen id.
  void submit(std::uint64_t id, const runner::ScenarioSpec& spec);

  void ping();
  void request_status();

  /// Reads frames until the `result` (or terminal `busy` / `draining` /
  /// `error`) frame for `id` arrives; frames for other ids are buffered
  /// and surface through recv() later. Throws SystemError when the
  /// server closes first.
  Json wait_result(std::uint64_t id);

  void close();

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
  std::deque<Json> buffered_;
};

}  // namespace hpas::server
