// The experiment server: a durable anomaly-experiment daemon.
//
// `hpas serve` turns the runner into a long-running service. Clients
// connect over a Unix-domain socket (optionally a localhost TCP port),
// submit fully-resolved ScenarioSpecs as length-prefixed JSON frames
// (protocol.hpp), and receive an `accepted` acknowledgement followed --
// possibly much later -- by a `result` frame. Three mechanisms shape the
// service guarantees:
//
//   Content-addressed cache. Every submission is keyed by the journal's
//   splitmix64 scenario hash; a key the daemon has already finished is
//   served straight from the ResultCache (disk-durable, journal-backed)
//   with zero engine work. Concurrent duplicate submissions coalesce
//   onto one in-flight execution -- each waiter gets its own result
//   frame, the engine runs once.
//
//   Admission control + fairness. At most `admission_capacity` distinct
//   scenarios may be outstanding (queued or running); past that a
//   submission is answered with an explicit `busy` frame instead of
//   being buffered, so backpressure is visible to clients rather than
//   hidden in unbounded queues. Admitted work is dispatched to the
//   work-stealing pool by a scheduler thread that round-robins across
//   clients, so one client streaming a huge campaign cannot starve
//   another's single probe.
//
//   Durability. Finished scenarios are journaled (spool CSV first, then
//   the fsync'd record -- see cache.hpp) before the result frame is
//   sent. A SIGKILLed daemon restarted on the same --data directory
//   rebuilds its cache from the journal and serves previously computed
//   results byte-identically to the pre-crash responses.
//
// Shutdown follows the two-signal contract: request_drain() (first
// SIGINT/SIGTERM) stops admitting and lets the admitted work finish and
// journal; request_hard() (second signal) additionally cancels running
// scenarios cooperatively. Both are nonblocking and safe from the
// ShutdownController's watcher thread; wait() does the blocking part.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/cancel.hpp"
#include "common/json.hpp"
#include "runner/grid.hpp"
#include "runner/thread_pool.hpp"
#include "server/cache.hpp"

namespace hpas::server {

struct ServerOptions {
  std::string socket_path;  ///< Unix listener; empty disables
  /// Localhost TCP listener: -1 disables, 0 binds an ephemeral port
  /// (query with Server::tcp_port() after start()).
  int tcp_port = -1;
  std::string data_dir;     ///< journal + spool location (required)
  int threads = 1;          ///< worker pool size; 0 = hardware concurrency
  /// Bound on outstanding (queued + running) distinct scenarios; beyond
  /// it submissions get `busy`. Cache hits and coalesced duplicates do
  /// not consume admission slots -- they do no engine work.
  std::size_t admission_capacity = 64;
  int sim_shards = 0;       ///< per-scenario engine shards (0 = default)
  /// Per-connection I/O deadline in seconds; 0 disables. A peer stalled
  /// mid-frame (slowloris) or not draining its responses is disconnected
  /// after this long. Idle clients at a frame boundary are unaffected.
  double io_timeout_s = 0.0;
  /// Result-spool size cap in bytes; 0 = unbounded. Past it the cache
  /// evicts least-recently-served entries (they re-run on demand).
  std::uint64_t spool_cap_bytes = 0;
  /// Scrubber period in seconds; 0 disables. Each pass CRC-verifies the
  /// spool against the journal and quarantines corrupt entries.
  double scrub_interval_s = 0.0;
  /// Test hook, called on the worker thread immediately before a
  /// scenario's engine run (not for cache hits). Lets tests hold the
  /// pipeline at a known point to probe admission behaviour.
  std::function<void(const runner::ScenarioSpec&)> before_run;
};

/// Monotonic counters, readable while the server runs (status op).
struct ServerStats {
  std::uint64_t submissions = 0;   ///< well-formed submit requests
  std::uint64_t cache_hits = 0;    ///< served from the durable cache
  std::uint64_t coalesced = 0;     ///< attached to an in-flight run
  std::uint64_t executed = 0;      ///< engine runs finished this process
  std::uint64_t busy_rejected = 0; ///< bounced by admission control
  std::uint64_t insert_errors = 0; ///< results served but not journaled
  std::uint64_t scrub_passes = 0;  ///< completed scrubber sweeps
  std::size_t cache_size = 0;      ///< entries (restored + inserted)
  std::size_t restored = 0;        ///< entries rebuilt from the journal
  std::size_t evicted = 0;         ///< entries dropped by the spool cap
  std::size_t quarantined = 0;     ///< corrupt entries moved aside
  std::uint64_t spool_bytes = 0;   ///< current on-disk result footprint
  std::size_t outstanding = 0;     ///< admitted, not yet completed
  bool draining = false;
};

/// Bounded retry delay (ms) for an accept() failure, or 0 when the errno
/// is not transient fd/buffer exhaustion. EMFILE/ENFILE mean the process
/// (or host) is out of descriptors: accept() will keep failing while the
/// listener stays readable, so without this delay the accept loop spins
/// at 100% CPU exactly when the machine is at its sickest.
int accept_backoff_ms(int err);

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();  ///< hard-stops and joins if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Opens the cache (replaying the journal), binds the listeners, and
  /// starts the accept/scheduler/pool threads. Throws on bind failure or
  /// an unreadable data dir.
  void start();

  /// First-signal shutdown: stop admitting (new submissions answer
  /// `draining`), let admitted scenarios finish and journal. Nonblocking.
  void request_drain();

  /// Second-signal shutdown: drain + cancel running scenarios
  /// cooperatively (they are not cached). Nonblocking.
  void request_hard();

  /// Blocks until a requested drain completes, then tears the service
  /// down (listeners, client connections, threads). Returns the number
  /// of scenarios executed by this process.
  std::uint64_t wait();

  /// Convenience for tests: request_drain() + wait().
  std::uint64_t stop();

  ServerStats stats() const;
  /// Bound TCP port; -1 when the TCP listener is disabled.
  int tcp_port() const { return tcp_port_; }

 private:
  struct ClientConn;
  struct Inflight;  ///< one admitted scenario and its waiting clients

  void accept_loop();
  void scheduler_loop();
  void scrub_loop();
  void reader_loop(const std::shared_ptr<ClientConn>& conn);
  void handle_submit(const std::shared_ptr<ClientConn>& conn,
                     const Json& request);
  void run_admitted(std::uint64_t key);
  void send_to(const std::shared_ptr<ClientConn>& conn, const Json& frame);
  /// send_to without taking write_mu; caller must already hold it.
  void send_locked(const std::shared_ptr<ClientConn>& conn, const Json& frame);
  Json result_frame(const CachedResult& entry, std::uint64_t id) const;
  Json stats_json() const;

  ServerOptions options_;
  ResultCache cache_;
  std::unique_ptr<runner::WorkStealingPool> pool_;

  int unix_listener_ = -1;
  int tcp_listener_ = -1;
  int tcp_port_ = -1;
  int stop_pipe_[2] = {-1, -1};  ///< wakes the accept loop's poll()

  std::thread accept_thread_;
  std::thread scheduler_thread_;
  std::thread scrub_thread_;

  mutable std::mutex mu_;
  std::condition_variable sched_cv_;  ///< pending work or stop
  std::condition_variable idle_cv_;   ///< outstanding_ hit zero
  std::condition_variable scrub_cv_;  ///< wakes the scrubber early on stop
  std::vector<std::shared_ptr<ClientConn>> clients_;
  std::size_t rr_next_ = 0;  ///< round-robin cursor over clients_
  std::unordered_map<std::uint64_t, Inflight> inflight_;
  std::size_t outstanding_ = 0;
  bool draining_ = false;
  bool stopping_ = false;  ///< scheduler/readers must exit
  bool started_ = false;
  CancelToken hard_cancel_;

  ServerStats counters_;  ///< monotonic members only, guarded by mu_
};

}  // namespace hpas::server
