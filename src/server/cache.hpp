// Content-addressed result cache of the experiment server, durable
// through the PR-4 crash-safe journal.
//
// Keyed by the journal's splitmix64 scenario hash (scenario_key_hash): a
// repeated submission of a byte-identical spec is a cache hit served
// from memory, never a re-run. Durability is the sweep journal reused as
// a write-ahead store:
//
//   <data_dir>/server.journal    CRC-framed fsync'd record per finished
//                                scenario (the authoritative index)
//   <data_dir>/spool/e<16hex>.csv   the scenario's metrics CSV, written
//                                atomically (tmp+rename) *before* its
//                                journal record
//
// Because the CSV bytes land (and are fsync-ordered by the journal
// append) before the record that names them, a SIGKILL can leave at most
// (a) a torn journal tail, which the reader drops, or (b) an orphaned
// spool file, which is harmless. On restart, open() replays the valid
// journal prefix, re-validates every kDone record's spool bytes against
// the journaled CRC32, rewrites the journal with exactly the entries
// that survived (self-healing, same as sweep --resume), and the daemon
// serves those results byte-identically to the pre-crash responses.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "runner/journal.hpp"
#include "runner/runner.hpp"

namespace hpas::server {

/// One finished scenario, everything a result frame needs. Only terminal
/// deterministic outcomes are cached (kDone and kFailed); cancellations
/// are host-timing artifacts and are never stored.
struct CachedResult {
  std::uint64_t key = 0;
  runner::JournalStatus status = runner::JournalStatus::kDone;
  std::string name;
  std::string error;           ///< non-empty for kFailed
  std::uint64_t app_iterations = 0;
  double app_elapsed_s = 0.0;
  std::string metrics_csv;     ///< node-0 monitoring series (kDone only)
};

/// Not internally synchronized: the server serializes access (and the
/// journal's append ordering) under its own mutex.
class ResultCache {
 public:
  explicit ResultCache(std::string data_dir);

  /// Creates the directory layout, replays and self-heals the journal,
  /// and leaves the writer open for appends. Idempotent per instance.
  void open();

  /// nullptr on miss. The pointer is invalidated by the next insert().
  const CachedResult* find(std::uint64_t key) const;

  /// Stores a terminal result: spool CSV first (atomic tmp+rename), then
  /// the fsync'd journal record, then the in-memory entry -- the ordering
  /// that makes "journaled" imply "servable after SIGKILL". Only kDone /
  /// kFailed scenario statuses are accepted (require()d).
  const CachedResult& insert(std::uint64_t key,
                             const runner::ScenarioResult& result);

  std::size_t size() const { return entries_.size(); }
  std::size_t restored() const { return restored_; }
  /// Journal frames dropped at open(): torn tail or CRC damage.
  std::size_t journal_dropped() const { return journal_dropped_; }
  /// kDone records whose spool bytes were missing or failed their CRC.
  std::size_t spool_invalid() const { return spool_invalid_; }

  const std::string& journal_path() const { return journal_path_; }

 private:
  std::string spool_file(std::uint64_t key) const;

  std::string data_dir_;
  std::string spool_dir_;
  std::string journal_path_;
  std::unordered_map<std::uint64_t, CachedResult> entries_;
  std::unique_ptr<runner::JournalWriter> journal_;
  std::size_t restored_ = 0;
  std::size_t journal_dropped_ = 0;
  std::size_t spool_invalid_ = 0;
};

}  // namespace hpas::server
