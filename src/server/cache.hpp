// Content-addressed result cache of the experiment server, durable
// through the PR-4 crash-safe journal.
//
// Keyed by the journal's splitmix64 scenario hash (scenario_key_hash): a
// repeated submission of a byte-identical spec is a cache hit served
// from memory, never a re-run. Durability is the sweep journal reused as
// a write-ahead store:
//
//   <data_dir>/server.journal    CRC-framed fsync'd record per finished
//                                scenario (the authoritative index)
//   <data_dir>/spool/e<16hex>.csv   the scenario's metrics CSV, written
//                                atomically (tmp + fsync + rename)
//                                *before* its journal record
//   <data_dir>/quarantine/       spool files whose bytes stopped
//                                matching their journaled CRC, moved
//                                aside by the scrubber as evidence
//
// Because the CSV bytes land (and are fsync'd) before the record that
// names them, a SIGKILL can leave at most (a) a torn journal tail, which
// the reader drops, or (b) an orphaned spool file, which is harmless. On
// restart, open() replays the valid journal prefix, re-validates every
// kDone record's spool bytes against the journaled CRC32, rewrites the
// journal with exactly the entries that survived (self-healing, same as
// sweep --resume), and the daemon serves those results byte-identically
// to the pre-crash responses.
//
// Two maintenance mechanisms keep a long-lived spool honest:
//
//   Scrubbing (scrub()): re-reads every kDone entry's spool bytes and
//   CRC-checks them against the journal. A corrupt entry is quarantined
//   (file moved to quarantine/, entry dropped, journal rewritten) so the
//   next submission of that spec re-runs and re-caches -- determinism
//   makes the re-run byte-identical -- instead of ever serving bad
//   bytes.
//
//   LRU eviction (set_spool_cap_bytes()): when the spool exceeds the
//   cap, least-recently-served kDone entries are evicted (file deleted,
//   journal rewritten) until it fits. An evicted entry simply re-runs on
//   its next submission; kFailed entries hold no spool bytes and are
//   never evicted.
//
// All raw spool I/O flows through the faultline cache domain, so the
// torture battery can crash, tear, or fail any byte of the write
// sequence deterministically.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "runner/journal.hpp"
#include "runner/runner.hpp"

namespace hpas::server {

/// One finished scenario, everything a result frame needs. Only terminal
/// deterministic outcomes are cached (kDone and kFailed); cancellations
/// are host-timing artifacts and are never stored.
struct CachedResult {
  std::uint64_t key = 0;
  runner::JournalStatus status = runner::JournalStatus::kDone;
  std::string name;
  std::string error;           ///< non-empty for kFailed
  std::uint64_t app_iterations = 0;
  double app_elapsed_s = 0.0;
  std::string metrics_csv;     ///< node-0 monitoring series (kDone only)
  std::uint32_t csv_crc = 0;   ///< journaled CRC32 of metrics_csv (kDone)
};

/// What one scrub pass saw.
struct ScrubReport {
  std::size_t scanned = 0;      ///< kDone entries CRC-checked
  std::size_t quarantined = 0;  ///< corrupt entries moved aside + dropped
};

/// Not internally synchronized: the server serializes access (and the
/// journal's append ordering) under its own mutex.
class ResultCache {
 public:
  explicit ResultCache(std::string data_dir);

  /// Spool size cap in bytes; 0 = unbounded. Takes effect at open() and
  /// on every insert().
  void set_spool_cap_bytes(std::uint64_t cap) { spool_cap_bytes_ = cap; }

  /// Creates the directory layout, replays and self-heals the journal,
  /// and leaves the writer open for appends. Idempotent per instance.
  void open();

  /// nullptr on miss. The pointer is invalidated by the next insert(),
  /// scrub(), or eviction. A hit refreshes the entry's LRU position.
  const CachedResult* find(std::uint64_t key);

  /// Stores a terminal result: spool CSV first (atomic tmp+fsync+rename),
  /// then the fsync'd journal record, then the in-memory entry -- the
  /// ordering that makes "journaled" imply "servable after SIGKILL".
  /// Only kDone / kFailed scenario statuses are accepted (require()d).
  /// May evict older entries when a spool cap is set. Throws SystemError
  /// when the spool or journal write fails; the cache stays consistent
  /// (the entry is simply not stored).
  const CachedResult& insert(std::uint64_t key,
                             const runner::ScenarioResult& result);

  /// CRC-checks every kDone entry's on-disk spool bytes against the
  /// journaled digest; quarantines what no longer matches.
  ScrubReport scrub();

  std::size_t size() const { return entries_.size(); }
  std::size_t restored() const { return restored_; }
  /// Journal frames dropped at open(): torn tail or CRC damage.
  std::size_t journal_dropped() const { return journal_dropped_; }
  /// kDone records whose spool bytes were missing or failed their CRC.
  std::size_t spool_invalid() const { return spool_invalid_; }
  /// Entries evicted by the spool cap since open().
  std::size_t evicted() const { return evicted_; }
  /// Entries quarantined by scrub() since open().
  std::size_t quarantined() const { return quarantined_; }
  /// Current kDone spool footprint in bytes.
  std::uint64_t spool_bytes() const { return spool_bytes_; }

  const std::string& journal_path() const { return journal_path_; }
  const std::string& quarantine_dir() const { return quarantine_dir_; }

 private:
  std::string spool_file(std::uint64_t key) const;
  runner::JournalRecord record_for(const CachedResult& entry) const;
  /// Truncate-rewrites the journal with exactly the live entries, in
  /// their original insertion order -- the self-healing step shared by
  /// open(), eviction, and quarantine.
  void rewrite_journal();
  void lru_touch(std::uint64_t key);
  void drop_entry(std::uint64_t key);  ///< in-memory + LRU bookkeeping
  /// Evicts LRU kDone entries until the spool fits the cap; never evicts
  /// `keep` (the entry being inserted must stay servable). Returns how
  /// many entries were evicted.
  std::size_t enforce_cap(std::uint64_t keep);

  std::string data_dir_;
  std::string spool_dir_;
  std::string quarantine_dir_;
  std::string journal_path_;
  std::unordered_map<std::uint64_t, CachedResult> entries_;
  /// Insertion order of live entries: journal rewrites replay this, so a
  /// rewritten journal's bytes are independent of hash-map iteration.
  std::list<std::uint64_t> order_;
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator>
      order_pos_;
  /// Recency for eviction: front = most recently served kDone entry.
  std::list<std::uint64_t> lru_;
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator>
      lru_pos_;
  std::unique_ptr<runner::JournalWriter> journal_;
  std::uint64_t spool_cap_bytes_ = 0;
  std::uint64_t spool_bytes_ = 0;
  std::size_t restored_ = 0;
  std::size_t journal_dropped_ = 0;
  std::size_t spool_invalid_ = 0;
  std::size_t evicted_ = 0;
  std::size_t quarantined_ = 0;
};

}  // namespace hpas::server
