#include "server/client.hpp"

#include <unistd.h>

#include <utility>

#include "common/error.hpp"
#include "server/protocol.hpp"

namespace hpas::server {

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      buffered_(std::move(other.buffered_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buffered_ = std::move(other.buffered_);
  }
  return *this;
}

Client Client::connect(const std::string& socket_path) {
  return Client(connect_unix(socket_path));
}

Client Client::connect_tcp(int port) {
  return Client(connect_tcp_localhost(port));
}

void Client::send(const Json& request) {
  require(fd_ >= 0, "Client::send on a closed client");
  write_json(fd_, request, faultline::Domain::kClient);
}

bool Client::recv(Json& response) {
  if (!buffered_.empty()) {
    response = std::move(buffered_.front());
    buffered_.pop_front();
    return true;
  }
  require(fd_ >= 0, "Client::recv on a closed client");
  return read_json(fd_, response, faultline::Domain::kClient);
}

void Client::submit(std::uint64_t id, const runner::ScenarioSpec& spec) {
  Json request = Json::object();
  request.set("op", "submit");
  request.set("id", Json(id));
  request.set("spec", runner::spec_to_json(spec));
  send(request);
}

void Client::ping() {
  Json request = Json::object();
  request.set("op", "ping");
  send(request);
}

void Client::request_status() {
  Json request = Json::object();
  request.set("op", "status");
  send(request);
}

Json Client::wait_result(std::uint64_t id) {
  require(fd_ >= 0, "Client::wait_result on a closed client");
  // Scan the buffer first -- an earlier wait_result() may have read past
  // this id's frame while looking for its own.
  for (auto it = buffered_.begin(); it != buffered_.end(); ++it) {
    const std::string type = it->string_or("type", "");
    const bool terminal = type == "result" || type == "busy" ||
                          type == "draining" || type == "error";
    if (terminal &&
        static_cast<std::uint64_t>(it->number_or("id", 0)) == id) {
      Json frame = std::move(*it);
      buffered_.erase(it);
      return frame;
    }
  }
  Json frame;
  while (true) {
    if (!read_json(fd_, frame, faultline::Domain::kClient))
      throw SystemError("client: server closed before the result for id " +
                        std::to_string(id));
    const std::string type = frame.string_or("type", "");
    const bool terminal = type == "result" || type == "busy" ||
                          type == "draining" || type == "error";
    const bool mine =
        static_cast<std::uint64_t>(frame.number_or("id", 0)) == id;
    if (terminal && mine) return frame;
    // This id's own "accepted" ack is consumed; everything else (other
    // ids' frames, status/pong) is buffered for later recv() calls.
    if (!(type == "accepted" && mine))
      buffered_.push_back(std::move(frame));
  }
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace hpas::server
