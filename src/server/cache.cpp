#include "server/cache.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "faultline/faultline.hpp"

namespace hpas::server {
namespace {

std::string read_file_bytes(const std::string& path, bool& ok) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    ok = false;
    return {};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  ok = true;
  return buf.str();
}

/// Temp-sibling + fsync + rename: the spool file is either absent or
/// complete *and durable* before the journal record that names it is
/// written. Every byte flows through the faultline cache domain so the
/// torture battery can crash or fail this sequence at any point.
void write_file_atomically(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0)
    throw SystemError("server: cannot open " + tmp + ": " +
                      std::strerror(errno));
  std::size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t w = faultline::write(faultline::Domain::kCache, fd,
                                       bytes.data() + done,
                                       bytes.size() - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      const std::string err = std::strerror(errno);
      ::close(fd);
      throw SystemError("server: write failed on " + tmp + ": " + err);
    }
    done += static_cast<std::size_t>(w);
  }
  // fsync before rename: without it a crash after the rename could leave
  // the *final* name pointing at unwritten bytes, which the journal CRC
  // would only catch on the next restart.
  if (faultline::fsync(faultline::Domain::kCache, fd) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw SystemError("server: fsync failed on " + tmp + ": " + err);
  }
  ::close(fd);
  if (faultline::rename_file(faultline::Domain::kCache, tmp.c_str(),
                             path.c_str()) != 0)
    throw SystemError("server: cannot rename " + tmp + " to " + path + ": " +
                      std::strerror(errno));
}

std::string key_hex(std::uint64_t key) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "e%016llx",
                static_cast<unsigned long long>(key));
  return buf;
}

}  // namespace

ResultCache::ResultCache(std::string data_dir)
    : data_dir_(std::move(data_dir)),
      spool_dir_(data_dir_ + "/spool"),
      quarantine_dir_(data_dir_ + "/quarantine"),
      journal_path_(data_dir_ + "/server.journal") {}

std::string ResultCache::spool_file(std::uint64_t key) const {
  return spool_dir_ + "/" + key_hex(key) + ".csv";
}

runner::JournalRecord ResultCache::record_for(
    const CachedResult& entry) const {
  runner::JournalRecord rec;
  rec.key_hash = entry.key;
  rec.status = entry.status;
  rec.name = entry.name;
  rec.error = entry.error;
  rec.app_iterations = entry.app_iterations;
  rec.app_elapsed_s = entry.app_elapsed_s;
  rec.wall_seconds = 0.0;  // byte-stability: host time never journaled
  if (entry.status == runner::JournalStatus::kDone) {
    rec.output = "spool/" + key_hex(entry.key) + ".csv";
    rec.csv_crc = entry.csv_crc;
  }
  return rec;
}

void ResultCache::open() {
  std::filesystem::create_directories(spool_dir_);

  // Replay the valid journal prefix. Every surviving record is
  // re-validated against its on-disk spool bytes; the journal is then
  // truncate-rewritten with exactly the validated entries, so a torn
  // tail (the expected post-SIGKILL state) heals on the first restart.
  const runner::JournalReadResult prior =
      runner::read_journal(journal_path_);
  journal_dropped_ = prior.dropped_frames;
  for (const runner::JournalRecord& rec : prior.records) {
    if (rec.status != runner::JournalStatus::kDone &&
        rec.status != runner::JournalStatus::kFailed)
      continue;  // timeouts/cancellations are never served from cache
    if (entries_.count(rec.key_hash) != 0) continue;
    CachedResult entry;
    entry.key = rec.key_hash;
    entry.status = rec.status;
    entry.name = rec.name;
    entry.error = rec.error;
    entry.app_iterations = rec.app_iterations;
    entry.app_elapsed_s = rec.app_elapsed_s;
    if (rec.status == runner::JournalStatus::kDone) {
      bool ok = false;
      entry.metrics_csv = read_file_bytes(spool_file(rec.key_hash), ok);
      if (!ok || crc32(entry.metrics_csv) != rec.csv_crc) {
        // Missing or damaged spool bytes: drop the record (the scenario
        // re-runs on its next submission) rather than serve bytes that
        // do not match what was journaled.
        ++spool_invalid_;
        continue;
      }
      entry.csv_crc = rec.csv_crc;
      spool_bytes_ += entry.metrics_csv.size();
      lru_.push_front(rec.key_hash);
      lru_pos_[rec.key_hash] = lru_.begin();
    }
    order_.push_back(rec.key_hash);
    order_pos_[rec.key_hash] = std::prev(order_.end());
    entries_.emplace(rec.key_hash, std::move(entry));
    ++restored_;
  }
  // A cap smaller than the restored spool trims it before serving: the
  // evicted entries re-run on demand, exactly as post-restart eviction
  // would behave.
  if (spool_cap_bytes_ > 0) evicted_ += enforce_cap(/*keep=*/0);
  journal_ = std::make_unique<runner::JournalWriter>(journal_path_, true);
  for (const std::uint64_t key : order_)
    journal_->append(record_for(entries_.at(key)));
}

const CachedResult* ResultCache::find(std::uint64_t key) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  if (it->second.status == runner::JournalStatus::kDone) lru_touch(key);
  return &it->second;
}

void ResultCache::lru_touch(std::uint64_t key) {
  const auto pos = lru_pos_.find(key);
  if (pos == lru_pos_.end()) return;
  lru_.splice(lru_.begin(), lru_, pos->second);
  pos->second = lru_.begin();
}

void ResultCache::drop_entry(std::uint64_t key) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return;
  if (it->second.status == runner::JournalStatus::kDone)
    spool_bytes_ -= it->second.metrics_csv.size();
  entries_.erase(it);
  if (const auto pos = lru_pos_.find(key); pos != lru_pos_.end()) {
    lru_.erase(pos->second);
    lru_pos_.erase(pos);
  }
  if (const auto pos = order_pos_.find(key); pos != order_pos_.end()) {
    order_.erase(pos->second);
    order_pos_.erase(pos);
  }
}

std::size_t ResultCache::enforce_cap(std::uint64_t keep) {
  if (spool_cap_bytes_ == 0) return 0;
  std::size_t dropped = 0;
  while (spool_bytes_ > spool_cap_bytes_ && !lru_.empty()) {
    const std::uint64_t victim = lru_.back();
    // The entry being inserted must stay servable even if it alone
    // exceeds the cap; with only it left there is nothing to evict.
    if (victim == keep) break;
    (void)::unlink(spool_file(victim).c_str());
    drop_entry(victim);
    ++dropped;
  }
  return dropped;
}

const CachedResult& ResultCache::insert(std::uint64_t key,
                                        const runner::ScenarioResult& result) {
  require(journal_ != nullptr, "ResultCache::insert before open()");
  require(result.status == runner::ScenarioStatus::kDone ||
              result.status == runner::ScenarioStatus::kFailed,
          "ResultCache: only done/failed results are cacheable");
  const auto existing = entries_.find(key);
  if (existing != entries_.end()) return existing->second;

  CachedResult entry;
  entry.key = key;
  entry.name = result.spec.name;
  entry.app_iterations = static_cast<std::uint64_t>(result.app_iterations);
  entry.app_elapsed_s = result.app_elapsed_s;

  if (result.status == runner::ScenarioStatus::kDone) {
    entry.status = runner::JournalStatus::kDone;
    entry.metrics_csv = result.metrics_csv;
    entry.csv_crc = crc32(entry.metrics_csv);
    // Spool bytes before the record that names them: a crash between the
    // two leaves an orphan file, never a record without its bytes.
    write_file_atomically(spool_file(key), entry.metrics_csv);
  } else {
    entry.status = runner::JournalStatus::kFailed;
    entry.error = result.error;
  }
  journal_->append(record_for(entry));

  if (entry.status == runner::JournalStatus::kDone) {
    spool_bytes_ += entry.metrics_csv.size();
    lru_.push_front(key);
    lru_pos_[key] = lru_.begin();
  }
  order_.push_back(key);
  order_pos_[key] = std::prev(order_.end());
  const auto& stored = entries_.emplace(key, std::move(entry)).first->second;

  if (const std::size_t dropped = enforce_cap(key); dropped > 0) {
    evicted_ += dropped;
    rewrite_journal();
  }
  return stored;
}

ScrubReport ResultCache::scrub() {
  require(journal_ != nullptr, "ResultCache::scrub before open()");
  ScrubReport report;
  std::vector<std::uint64_t> corrupt;
  for (const std::uint64_t key : order_) {
    const CachedResult& entry = entries_.at(key);
    if (entry.status != runner::JournalStatus::kDone) continue;
    ++report.scanned;
    bool ok = false;
    const std::string bytes = read_file_bytes(spool_file(key), ok);
    if (ok && crc32(bytes) == entry.csv_crc) continue;
    corrupt.push_back(key);
  }
  if (corrupt.empty()) return report;

  std::filesystem::create_directories(quarantine_dir_);
  for (const std::uint64_t key : corrupt) {
    // Move the bad bytes aside as evidence (best effort -- the file may
    // be gone entirely) and drop the entry: the next submission of this
    // spec re-runs and re-caches instead of ever serving a byte that
    // fails its CRC.
    (void)std::rename(spool_file(key).c_str(),
                      (quarantine_dir_ + "/" + key_hex(key) + ".csv").c_str());
    drop_entry(key);
    ++quarantined_;
    ++report.quarantined;
  }
  rewrite_journal();
  return report;
}

void ResultCache::rewrite_journal() {
  journal_ = std::make_unique<runner::JournalWriter>(journal_path_, true);
  for (const std::uint64_t key : order_)
    journal_->append(record_for(entries_.at(key)));
}

}  // namespace hpas::server
