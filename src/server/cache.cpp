#include "server/cache.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/crc32.hpp"
#include "common/error.hpp"

namespace hpas::server {
namespace {

std::string read_file_bytes(const std::string& path, bool& ok) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    ok = false;
    return {};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  ok = true;
  return buf.str();
}

/// Temp-sibling + rename: the spool file is either absent or complete,
/// mirroring the runner's atomic output writes.
void write_file_atomically(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw SystemError("server: cannot write " + tmp);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) throw SystemError("server: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    throw SystemError("server: cannot rename " + tmp + " to " + path);
}

std::string key_hex(std::uint64_t key) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "e%016llx",
                static_cast<unsigned long long>(key));
  return buf;
}

}  // namespace

ResultCache::ResultCache(std::string data_dir)
    : data_dir_(std::move(data_dir)),
      spool_dir_(data_dir_ + "/spool"),
      journal_path_(data_dir_ + "/server.journal") {}

std::string ResultCache::spool_file(std::uint64_t key) const {
  return spool_dir_ + "/" + key_hex(key) + ".csv";
}

void ResultCache::open() {
  std::filesystem::create_directories(spool_dir_);

  // Replay the valid journal prefix. Every surviving record is
  // re-validated against its on-disk spool bytes; the journal is then
  // truncate-rewritten with exactly the validated entries, so a torn
  // tail (the expected post-SIGKILL state) heals on the first restart.
  const runner::JournalReadResult prior =
      runner::read_journal(journal_path_);
  journal_dropped_ = prior.dropped_frames;
  journal_ = std::make_unique<runner::JournalWriter>(journal_path_, true);
  for (const runner::JournalRecord& rec : prior.records) {
    if (rec.status != runner::JournalStatus::kDone &&
        rec.status != runner::JournalStatus::kFailed)
      continue;  // timeouts/cancellations are never served from cache
    CachedResult entry;
    entry.key = rec.key_hash;
    entry.status = rec.status;
    entry.name = rec.name;
    entry.error = rec.error;
    entry.app_iterations = rec.app_iterations;
    entry.app_elapsed_s = rec.app_elapsed_s;
    if (rec.status == runner::JournalStatus::kDone) {
      bool ok = false;
      entry.metrics_csv = read_file_bytes(spool_file(rec.key_hash), ok);
      if (!ok || crc32(entry.metrics_csv) != rec.csv_crc) {
        // Missing or damaged spool bytes: drop the record (the scenario
        // re-runs on its next submission) rather than serve bytes that
        // do not match what was journaled.
        ++spool_invalid_;
        continue;
      }
    }
    if (!entries_.emplace(rec.key_hash, std::move(entry)).second) continue;
    journal_->append(rec);
    ++restored_;
  }
}

const CachedResult* ResultCache::find(std::uint64_t key) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

const CachedResult& ResultCache::insert(std::uint64_t key,
                                        const runner::ScenarioResult& result) {
  require(journal_ != nullptr, "ResultCache::insert before open()");
  require(result.status == runner::ScenarioStatus::kDone ||
              result.status == runner::ScenarioStatus::kFailed,
          "ResultCache: only done/failed results are cacheable");
  const auto existing = entries_.find(key);
  if (existing != entries_.end()) return existing->second;

  CachedResult entry;
  entry.key = key;
  entry.name = result.spec.name;
  entry.app_iterations = static_cast<std::uint64_t>(result.app_iterations);
  entry.app_elapsed_s = result.app_elapsed_s;

  runner::JournalRecord rec;
  rec.key_hash = key;
  rec.name = result.spec.name;
  rec.app_iterations = entry.app_iterations;
  rec.app_elapsed_s = entry.app_elapsed_s;
  rec.wall_seconds = 0.0;  // byte-stability: host time never journaled

  if (result.status == runner::ScenarioStatus::kDone) {
    entry.status = runner::JournalStatus::kDone;
    entry.metrics_csv = result.metrics_csv;
    rec.status = runner::JournalStatus::kDone;
    rec.output = "spool/" + key_hex(key) + ".csv";
    rec.csv_crc = crc32(entry.metrics_csv);
    // Spool bytes before the record that names them: a crash between the
    // two leaves an orphan file, never a record without its bytes.
    write_file_atomically(spool_file(key), entry.metrics_csv);
  } else {
    entry.status = runner::JournalStatus::kFailed;
    entry.error = result.error;
    rec.status = runner::JournalStatus::kFailed;
    rec.error = result.error;
  }
  journal_->append(rec);
  return entries_.emplace(key, std::move(entry)).first->second;
}

}  // namespace hpas::server
