// Wire protocol of the experiment server: length-prefixed JSON frames
// over stream sockets, plus the few socket helpers daemon and client
// share.
//
//   frame := len:u32 (little-endian) payload[len]
//
// The payload is one UTF-8 JSON document. Length-prefix framing keeps
// the parser trivial (no streaming JSON, no sentinel scanning) and makes
// a torn connection detectable: a clean EOF can only happen *between*
// frames, anything else is a protocol error. Frames are capped at
// kMaxFramePayload so a corrupt or hostile length prefix cannot make the
// server allocate unbounded memory.
//
// Requests (client -> server), dispatched on the "op" member:
//   {"op":"submit","id":N,"spec":{...}}   run (or serve cached) a scenario
//   {"op":"status"}                       server statistics
//   {"op":"ping"}                         liveness probe
//
// Responses (server -> client), dispatched on the "type" member:
//   {"type":"accepted","id":N,"cached":B} submission admitted; "cached"
//                                         is scheduling metadata: true
//                                         when the result is served from
//                                         the content-addressed cache
//                                         with no engine work
//   {"type":"busy","id":N}                admission queue full: resubmit
//                                         later (explicit backpressure,
//                                         the server never buffers
//                                         unboundedly)
//   {"type":"draining","id":N}            server is shutting down
//   {"type":"result","id":N,...}          terminal scenario outcome; all
//                                         members except "id" are a pure
//                                         function of the spec (the
//                                         byte-identity contract)
//   {"type":"error","id":N,"message":S}   malformed submission
//   {"type":"status",...} / {"type":"pong"} / {"type":"shutdown"}
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/json.hpp"
#include "faultline/faultline.hpp"

namespace hpas::server {

/// Upper bound on one frame's payload bytes (a result frame carries a
/// scenario's whole metrics CSV; 16 MiB is ~two orders of magnitude above
/// the largest real one).
inline constexpr std::uint32_t kMaxFramePayload = 16u << 20;

/// Writes one frame. Uses send(MSG_NOSIGNAL) on sockets so a vanished
/// peer surfaces as a SystemError (EPIPE), never SIGPIPE. Throws
/// SystemError on short writes or oversized payloads. `domain` names the
/// faultline edge the raw I/O flows through (socket for the daemon,
/// client for `hpas submit`).
void write_frame(int fd, std::string_view payload,
                 faultline::Domain domain = faultline::Domain::kSocket);
void write_json(int fd, const Json& doc,
                faultline::Domain domain = faultline::Domain::kSocket);

/// Reads one complete frame into `payload`. Returns false on a clean EOF
/// before the first length byte (peer closed between frames); throws
/// SystemError on mid-frame EOF, an oversized length prefix, or a socket
/// error. ConfigError propagates from Json::parse in read_json.
///
/// Deadline semantics (set_io_deadline): a receive timeout that expires
/// before the first byte of a frame is *idle* -- the read keeps waiting,
/// an idle client is legitimate. A timeout with part of a frame already
/// read is a stalled peer (slowloris) and throws SystemError.
bool read_frame(int fd, std::string& payload,
                faultline::Domain domain = faultline::Domain::kSocket);
bool read_json(int fd, Json& doc,
               faultline::Domain domain = faultline::Domain::kSocket);

/// Arms SO_RCVTIMEO/SO_SNDTIMEO on a connection fd so a stalled peer
/// cannot pin it forever (see read_frame). seconds <= 0 disables.
void set_io_deadline(int fd, double seconds);

/// True when a live server answers a connect() on the socket file at
/// `path`. False for a missing file or a stale one left by a SIGKILLed
/// daemon (connect refuses when nobody listens).
bool unix_socket_alive(const std::string& path);

/// Listener/connector helpers. All return CLOEXEC-owning fds and throw
/// SystemError on failure. The unix listener probes an existing socket
/// file first: a dead (stale) one is unlinked, a live one makes it
/// throw ConfigError rather than yank a running daemon's socket out from
/// under it. The TCP variants bind/connect 127.0.0.1 only -- the daemon
/// has no authentication story and must not listen on public interfaces.
int listen_unix(const std::string& path);
int listen_tcp_localhost(int port);
int connect_unix(const std::string& path);
int connect_tcp_localhost(int port);

/// Bound TCP port of a listener fd (resolves port 0 after bind).
int local_tcp_port(int fd);

}  // namespace hpas::server
