// Simulated anomaly injectors: the eight HPAS generators expressed as
// resource signatures on the simulated cluster (DESIGN.md substitution
// table). Knobs mirror Table 1 exactly; durations are simulated seconds.
//
// Each injector spawns one or more Tasks into the World and returns them;
// tasks end themselves when the duration elapses (releasing any memory
// they hold). Spawning at a later time is done by scheduling the
// injection on the World's simulator.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/world.hpp"

namespace hpas::simanom {

enum class SimCacheLevel { kL1 = 1, kL2 = 2, kL3 = 3 };

/// cpuoccupy: a process burning `utilization_pct`% of one core with
/// register-resident arithmetic (no cache/memory footprint).
sim::Task* inject_cpuoccupy(sim::World& world, int node, int core,
                            double utilization_pct, double duration_s);

/// cachecopy: copies between two arrays sized to the chosen cache level
/// (working set = level capacity x multiplier), evicting co-located
/// applications' lines; negligible DRAM traffic while resident.
sim::Task* inject_cachecopy(sim::World& world, int node, int core,
                            SimCacheLevel level, double multiplier,
                            double duration_s);

/// membw: non-temporal streaming writes that bypass the caches and
/// saturate the node's memory bandwidth from one core. `duty` in (0,1]
/// scales the stream demand (the native generator's sleep-between-passes
/// "rate" knob).
sim::Task* inject_membw(sim::World& world, int node, int core,
                        double duration_s, double duty = 1.0);

/// memeater: allocates `step_bytes` every `step_interval_s` up to
/// `max_bytes` (0 = keep growing for the whole duration), touches it,
/// holds the plateau until the duration ends, then releases everything.
sim::Task* inject_memeater(sim::World& world, int node, int core,
                           double step_bytes, double max_bytes,
                           double step_interval_s, double duration_s);

/// memleak: leaks `chunk_bytes` every `chunk_interval_s` for the whole
/// duration (footprint grows monotonically); released only at the end
/// (process exit). `max_bytes` mirrors the native generator's --max-size
/// safety cap (0 = leak until the node OOMs).
sim::Task* inject_memleak(sim::World& world, int node, int core,
                          double chunk_bytes, double chunk_interval_s,
                          double duration_s, double max_bytes = 0.0);

/// netoccupy: `ntasks` rank pairs streaming `message_bytes` messages from
/// src_node to dst_node back-to-back (paper: 100 MB via shmem_putmem).
std::vector<sim::Task*> inject_netoccupy(sim::World& world, int src_node,
                                         int dst_node, int ntasks,
                                         double message_bytes,
                                         double duration_s);

/// iometadata: `ntasks` clients on `node` hammering the metadata server
/// with create/write-1-char/close/unlink loops.
std::vector<sim::Task*> inject_iometadata(sim::World& world, int node,
                                          int ntasks, double duration_s);

/// iobandwidth: `ntasks` clients on `node` running dd-style file copy
/// chains (alternating large reads and writes) against the shared
/// filesystem.
std::vector<sim::Task*> inject_iobandwidth(sim::World& world, int node,
                                           int ntasks, double file_bytes,
                                           double duration_s);

/// OS jitter (paper Sec. 3.1: cpuoccupy "can emulate OS jitter by setting
/// the consumed CPU time to a low value"): short full-demand bursts with
/// exponentially distributed gaps, i.e. a daemon/interrupt storm. Unlike
/// the steady cpuoccupy duty cycle, the bursts hit random points of the
/// victim's compute phases, which is what makes jitter *amplify* at
/// barriers as job size grows.
sim::Task* inject_os_jitter(sim::World& world, int node, int core,
                            double burst_s, double mean_gap_s,
                            double duration_s, std::uint64_t seed);

/// Schedules an injector failure at simulated time `at_s`: the first
/// `kill_count` of `tasks` still alive at that moment are killed (-1 =
/// all), each emitting a kInjectorFailure trace record (subject=task,
/// a=surviving injector tasks) before the kill. This is the sim mirror of
/// the native supervision layer: sweeps can model a degraded injector --
/// some of its workers die mid-run -- and replay/diff sees exactly when.
void schedule_injector_failure(sim::World& world,
                               std::vector<sim::Task*> tasks, double at_s,
                               int kill_count = -1);

/// Table-1-style dispatcher used by dataset generation: injects anomaly
/// `name` with representative default knobs on `node`. Returns the tasks.
std::vector<sim::Task*> inject_by_name(sim::World& world,
                                       const std::string& name, int node,
                                       int core, double duration_s,
                                       double intensity = 1.0);

}  // namespace hpas::simanom
