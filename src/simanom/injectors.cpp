#include "simanom/injectors.hpp"

#include <algorithm>
#include <memory>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "trace/tracer.hpp"

namespace hpas::simanom {

using sim::Phase;
using sim::PhaseKind;
using sim::Task;
using sim::TaskProfile;
using sim::World;

namespace {

// Work-chunk sizing: controllers regain control at each chunk boundary to
// check the deadline, so chunks are ~0.5 simulated seconds of work.
constexpr double kChunkSeconds = 0.5;

// Stable numeric ids carried in anomaly trace records (detail field);
// order mirrors the Table 1 catalog, os_jitter appended.
enum AnomalyId : std::uint16_t {
  kIdCpuoccupy = 1,
  kIdCachecopy = 2,
  kIdMembw = 3,
  kIdMemeater = 4,
  kIdMemleak = 5,
  kIdNetoccupy = 6,
  kIdIometadata = 7,
  kIdIobandwidth = 8,
  kIdOsJitter = 9,
};

/// One kAnomalyStart per injector call: where it lands (node/core), how
/// long it runs, and its primary knob -- the fields replay divergence
/// reports lead with.
void trace_start(World& world, AnomalyId id, int node, int core,
                 double duration_s, double knob) {
  if (auto* tracer = world.tracer(); tracer != nullptr) {
    tracer->emit(trace::RecordKind::kAnomalyStart,
                 static_cast<std::uint32_t>(node), id,
                 static_cast<std::uint64_t>(core), duration_s, knob);
  }
}

/// Shared epilogue: release memory and finish when the deadline passed.
bool deadline_reached(World& world, Task& task, double end_time) {
  if (world.now() + 1e-9 < end_time) return false;
  if (task.allocated_bytes() > 0.0)
    world.allocate_memory(&task, -task.allocated_bytes());
  if (auto* tracer = world.tracer(); tracer != nullptr) {
    tracer->emit(trace::RecordKind::kAnomalyStop, task.trace_id(), 0, 0,
                 world.now());
  }
  return true;
}

}  // namespace

Task* inject_cpuoccupy(World& world, int node, int core,
                       double utilization_pct, double duration_s) {
  require(utilization_pct > 0.0 && utilization_pct <= 100.0,
          "inject_cpuoccupy: utilization in (0,100]");
  trace_start(world, kIdCpuoccupy, node, core, duration_s, utilization_pct);
  TaskProfile profile;
  profile.ips_peak = 2.3e9;  // tight ALU loop, ~1 IPC
  profile.cpu_demand = utilization_pct / 100.0;
  profile.working_set_bytes = 4.0 * 1024;  // register/stack resident
  profile.m1_base = 0.1; profile.m1_max = 0.5;
  profile.m2_base = 0.05; profile.m2_max = 0.2;
  profile.m3_base = 0.01; profile.m3_max = 0.1;
  const double end_time = world.now() + duration_s;
  const double chunk = profile.ips_peak * profile.cpu_demand * kChunkSeconds;
  return world.spawn_task(
      "cpuoccupy", node, core, profile, Phase::compute(chunk),
      [&world, end_time, chunk](Task& task) {
        if (deadline_reached(world, task, end_time)) return Phase::done();
        return Phase::compute(chunk);
      });
}

Task* inject_cachecopy(World& world, int node, int core, SimCacheLevel level,
                       double multiplier, double duration_s) {
  require(multiplier > 0.0, "inject_cachecopy: multiplier must be positive");
  trace_start(world, kIdCachecopy, node, core, duration_s, multiplier);
  const sim::NodeConfig& cfg = world.node(node).config();
  double level_bytes = cfg.l3_bytes;
  if (level == SimCacheLevel::kL1) level_bytes = cfg.l1_bytes;
  if (level == SimCacheLevel::kL2) level_bytes = cfg.l2_bytes;

  TaskProfile profile;
  profile.ips_peak = 3.0e9;  // load/store copy loop
  profile.cpu_demand = 1.0;
  profile.working_set_bytes = level_bytes * multiplier;
  // While resident the copy misses only at the target level boundary;
  // evicted it still stays modest (hardware prefetch-friendly streams).
  profile.m1_base = 30.0; profile.m1_max = 60.0;
  profile.m2_base = 5.0; profile.m2_max = 20.0;
  profile.m3_base = 0.2; profile.m3_max = 2.0;
  const double end_time = world.now() + duration_s;
  const double chunk = profile.ips_peak * kChunkSeconds;
  return world.spawn_task(
      "cachecopy", node, core, profile, Phase::compute(chunk),
      [&world, end_time, chunk](Task& task) {
        if (deadline_reached(world, task, end_time)) return Phase::done();
        return Phase::compute(chunk);
      });
}

Task* inject_membw(World& world, int node, int core, double duration_s,
                   double duty) {
  require(duty > 0.0 && duty <= 1.0, "inject_membw: duty in (0,1]");
  trace_start(world, kIdMembw, node, core, duration_s, duty);
  const sim::NodeConfig& cfg = world.node(node).config();
  TaskProfile profile;
  profile.ips_peak = 2.3e9;
  profile.cpu_demand = 1.0;
  // Non-temporal stores: no cache footprint to speak of.
  profile.working_set_bytes = 64.0 * 1024;
  profile.stream_bw_demand = cfg.core_bw_limit * duty;
  const double end_time = world.now() + duration_s;
  const double chunk = cfg.core_bw_limit * kChunkSeconds;
  return world.spawn_task(
      "membw", node, core, profile, Phase::stream(chunk),
      [&world, end_time, chunk](Task& task) {
        if (deadline_reached(world, task, end_time)) return Phase::done();
        return Phase::stream(chunk);
      });
}

Task* inject_memeater(World& world, int node, int core, double step_bytes,
                      double max_bytes, double step_interval_s,
                      double duration_s) {
  require(step_bytes > 0, "inject_memeater: step must be positive");
  trace_start(world, kIdMemeater, node, core, duration_s, step_bytes);
  TaskProfile profile;
  profile.ips_peak = 2.0e9;
  profile.cpu_demand = 1.0;
  profile.working_set_bytes = 8.0 * 1024 * 1024;  // touches its arrays
  profile.m1_base = 10; profile.m1_max = 40;
  profile.m2_base = 4; profile.m2_max = 15;
  profile.m3_base = 1; profile.m3_max = 5;
  const double end_time = world.now() + duration_s;
  const double fill_instr = step_bytes * 0.25;  // ~4 bytes filled per instr
  // Controller alternates: fill (compute) -> sleep -> grow -> fill ...
  auto controller = [&world, end_time, step_bytes, max_bytes,
                     step_interval_s, fill_instr](Task& task) {
    if (deadline_reached(world, task, end_time)) return Phase::done();
    if (task.phase().kind == PhaseKind::kSleep) {
      // Wake: grow unless the limit is reached, then fill the new area.
      if (max_bytes <= 0.0 || task.allocated_bytes() + step_bytes <= max_bytes) {
        if (!world.allocate_memory(&task, step_bytes)) return Phase::done();
        return Phase::compute(fill_instr);
      }
      return Phase::sleep(step_interval_s);  // plateau: hold the memory
    }
    return Phase::sleep(step_interval_s);
  };
  Task* task = world.spawn_task("memeater", node, core, profile,
                                Phase::sleep(1e-6), controller);
  return task;
}

Task* inject_memleak(World& world, int node, int core, double chunk_bytes,
                     double chunk_interval_s, double duration_s,
                     double max_bytes) {
  require(chunk_bytes > 0, "inject_memleak: chunk must be positive");
  trace_start(world, kIdMemleak, node, core, duration_s, chunk_bytes);
  TaskProfile profile;
  profile.ips_peak = 2.0e9;
  profile.cpu_demand = 1.0;
  profile.working_set_bytes = 4.0 * 1024 * 1024;
  profile.m1_base = 10; profile.m1_max = 40;
  profile.m2_base = 4; profile.m2_max = 15;
  profile.m3_base = 1; profile.m3_max = 5;
  const double end_time = world.now() + duration_s;
  const double fill_instr = chunk_bytes * 0.25;
  auto controller = [&world, end_time, chunk_bytes, chunk_interval_s,
                     fill_instr, max_bytes](Task& task) {
    if (deadline_reached(world, task, end_time)) return Phase::done();
    if (task.phase().kind == PhaseKind::kSleep) {
      // Every interval: leak another chunk and fill it. Never freed until
      // the "process" exits. The optional cap mirrors --max-size.
      if (max_bytes > 0.0 && task.allocated_bytes() + chunk_bytes > max_bytes)
        return Phase::sleep(chunk_interval_s);
      if (!world.allocate_memory(&task, chunk_bytes)) return Phase::done();
      return Phase::compute(fill_instr);
    }
    return Phase::sleep(chunk_interval_s);
  };
  return world.spawn_task("memleak", node, core, profile, Phase::sleep(1e-6),
                          controller);
}

std::vector<Task*> inject_netoccupy(World& world, int src_node, int dst_node,
                                    int ntasks, double message_bytes,
                                    double duration_s) {
  require(ntasks >= 1, "inject_netoccupy: ntasks must be >= 1");
  require(message_bytes > 0, "inject_netoccupy: message size positive");
  trace_start(world, kIdNetoccupy, src_node, dst_node, duration_s,
              message_bytes);
  std::vector<Task*> tasks;
  const double end_time = world.now() + duration_s;
  for (int rank = 0; rank < ntasks; ++rank) {
    TaskProfile profile;
    profile.cpu_demand = 0.05;  // SHMEM puts are NIC-offloaded
    profile.working_set_bytes = 1.0 * 1024 * 1024;
    profile.msg_latency_s = 5e-6;  // one-sided puts: lower startup cost
    const int core = world.node(src_node).config().cores - 1 - rank;
    tasks.push_back(world.spawn_task(
        "netoccupy", src_node, std::max(core, 0), profile,
        Phase::message(dst_node, message_bytes),
        [&world, end_time, dst_node, message_bytes](Task& task) {
          if (deadline_reached(world, task, end_time)) return Phase::done();
          return Phase::message(dst_node, message_bytes);
        }));
  }
  return tasks;
}

std::vector<Task*> inject_iometadata(World& world, int node, int ntasks,
                                     double duration_s) {
  require(ntasks >= 1, "inject_iometadata: ntasks must be >= 1");
  trace_start(world, kIdIometadata, node, 0, duration_s, ntasks);
  std::vector<Task*> tasks;
  const double end_time = world.now() + duration_s;
  constexpr double kOpsBatch = 200.0;  // ops per phase (create/close/unlink)
  for (int rank = 0; rank < ntasks; ++rank) {
    TaskProfile profile;
    profile.cpu_demand = 0.02;  // the client mostly waits on the server
    const int core = rank % world.node(node).config().cores;
    tasks.push_back(world.spawn_task(
        "iometadata", node, core, profile,
        Phase::io(sim::IoKind::kMetadata, kOpsBatch),
        [&world, end_time](Task& task) {
          if (deadline_reached(world, task, end_time)) return Phase::done();
          return Phase::io(sim::IoKind::kMetadata, kOpsBatch);
        }));
  }
  return tasks;
}

std::vector<Task*> inject_iobandwidth(World& world, int node, int ntasks,
                                      double file_bytes, double duration_s) {
  require(ntasks >= 1, "inject_iobandwidth: ntasks must be >= 1");
  require(file_bytes > 0, "inject_iobandwidth: file size positive");
  trace_start(world, kIdIobandwidth, node, 0, duration_s, file_bytes);
  std::vector<Task*> tasks;
  const double end_time = world.now() + duration_s;
  for (int rank = 0; rank < ntasks; ++rank) {
    TaskProfile profile;
    profile.cpu_demand = 0.05;
    const int core = rank % world.node(node).config().cores;
    tasks.push_back(world.spawn_task(
        "iobandwidth", node, core, profile,
        Phase::io(sim::IoKind::kWrite, file_bytes),
        [&world, end_time, file_bytes](Task& task) {
          if (deadline_reached(world, task, end_time)) return Phase::done();
          // dd-style chain: the copy alternately reads the previous file
          // and writes the next one.
          if (task.phase().io_kind == sim::IoKind::kWrite)
            return Phase::io(sim::IoKind::kRead, file_bytes);
          return Phase::io(sim::IoKind::kWrite, file_bytes);
        }));
  }
  return tasks;
}

Task* inject_os_jitter(World& world, int node, int core, double burst_s,
                       double mean_gap_s, double duration_s,
                       std::uint64_t seed) {
  require(burst_s > 0.0 && mean_gap_s > 0.0,
          "inject_os_jitter: burst and gap must be positive");
  trace_start(world, kIdOsJitter, node, core, duration_s, mean_gap_s);
  TaskProfile profile;
  profile.ips_peak = 2.3e9;
  profile.cpu_demand = 1.0;  // daemons run at full tilt while active
  profile.working_set_bytes = 16.0 * 1024;
  profile.account_user = false;  // system time, like real OS noise
  const double end_time = world.now() + duration_s;
  const double burst_instr = profile.ips_peak * burst_s;
  // The RNG lives in the controller closure; every wake draws a fresh gap.
  auto rng = std::make_shared<Rng>(seed);
  auto controller = [&world, end_time, burst_instr, mean_gap_s,
                     rng](Task& task) {
    if (deadline_reached(world, task, end_time)) return Phase::done();
    if (task.phase().kind == PhaseKind::kSleep)
      return Phase::compute(burst_instr);
    return Phase::sleep(rng->exponential(1.0 / mean_gap_s));
  };
  return world.spawn_task("os_jitter", node, core, profile,
                          Phase::sleep(1e-6), controller);
}

void schedule_injector_failure(World& world, std::vector<Task*> tasks,
                               double at_s, int kill_count) {
  require(at_s >= world.now(),
          "schedule_injector_failure: time must not be in the past");
  world.simulator().schedule_at(
      at_s, [&world, tasks = std::move(tasks), kill_count] {
        // Only tasks still alive at failure time can fail; injectors whose
        // duration already elapsed are not resurrected. Finished tasks stay
        // in world.tasks() until killed, so check the phase as well.
        std::vector<Task*> live;
        for (Task* task : tasks) {
          const auto& all = world.tasks();
          if (!task->done() &&
              std::find(all.begin(), all.end(), task) != all.end())
            live.push_back(task);
        }
        const std::size_t kills =
            kill_count < 0 ? live.size()
                           : std::min<std::size_t>(
                                 static_cast<std::size_t>(kill_count),
                                 live.size());
        for (std::size_t i = 0; i < kills; ++i) {
          if (auto* tracer = world.tracer(); tracer != nullptr) {
            tracer->emit(trace::RecordKind::kInjectorFailure,
                         live[i]->trace_id(), /*detail=*/0,
                         static_cast<std::uint64_t>(live.size() - i - 1),
                         world.now());
          }
          world.kill_task(live[i]);
        }
      });
}

std::vector<Task*> inject_by_name(World& world, const std::string& name,
                                  int node, int core, double duration_s,
                                  double intensity) {
  if (name == "cpuoccupy")
    return {inject_cpuoccupy(world, node, core, 100.0 * intensity,
                             duration_s)};
  if (name == "cachecopy")
    return {inject_cachecopy(world, node, core, SimCacheLevel::kL3, intensity,
                             duration_s)};
  if (name == "membw")
    return {inject_membw(world, node, core, duration_s)};
  if (name == "memeater")
    // Ramp to a plateau within the first half-minute: memeater is a
    // memory-*intensive* process, not a leak -- it reaches its footprint
    // and holds (Fig. 5), unlike memleak's unbounded growth.
    return {inject_memeater(world, node, core,
                            intensity * 120.0 * 1024 * 1024,
                            /*max_bytes=*/intensity * 2.5e9,
                            /*step_interval_s=*/1.0, duration_s)};
  if (name == "memleak")
    return {inject_memleak(world, node, core, intensity * 20.0 * 1024 * 1024,
                           /*chunk_interval_s=*/1.0, duration_s)};
  if (name == "netoccupy") {
    const int peer = (node + 1) % world.num_nodes();
    return inject_netoccupy(world, node, peer, /*ntasks=*/1,
                            intensity * 100.0 * 1024 * 1024, duration_s);
  }
  if (name == "iometadata")
    return inject_iometadata(world, node, /*ntasks=*/4, duration_s);
  if (name == "iobandwidth")
    return inject_iobandwidth(world, node, /*ntasks=*/4,
                              intensity * 256.0 * 1024 * 1024, duration_s);
  throw ConfigError("inject_by_name: unknown anomaly '" + name + "'");
}

}  // namespace hpas::simanom
