// hpas-sim -- run one scenario on the simulated cluster and export the
// monitoring data as CSV (one file per node, LDMS-style metric columns).
//
// Examples:
//   hpas-sim --app miniGhost --anomaly membw --duration 120 -o run1
//   hpas-sim --preset chameleon --anomaly iobandwidth --duration 60 -o io
//   hpas-sim --app sw4lite --duration 300 -o healthy     # no anomaly
//
// The CSVs feed external analysis pipelines (pandas, scikit-learn, ...)
// exactly like LDMS dumps would; the ML pipeline in src/ml consumes the
// same data in-process.
//
// Reproducibility workflow:
//   hpas-sim ... --trace run.bin -o out        # record a structured trace
//   hpas-sim ... --check-trace run.bin -o out  # re-run + diff against it
// --check-trace exits 3 and names the first divergent event when the
// re-run does not reproduce the recorded stream bit for bit.
//
// SIGINT/SIGTERM stop the simulation cooperatively at the next event
// boundary: the CSVs and (truncated, kRunCancelled-terminated) trace
// collected so far are still written. A second signal exits 130
// immediately.
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "apps/bsp_app.hpp"
#include "apps/profiles.hpp"
#include "common/cancel.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/shutdown.hpp"
#include "common/units.hpp"
#include "metrics/csv.hpp"
#include "sim/cluster.hpp"
#include "simanom/injectors.hpp"
#include "trace/export.hpp"
#include "trace/replay.hpp"
#include "trace/tracer.hpp"

namespace {

hpas::CliParser make_parser() {
  hpas::CliParser parser("hpas-sim",
                         "simulated-cluster scenario runner with CSV export");
  parser
      .add({.long_name = "preset", .short_name = 'p', .value_name = "NAME",
            .help = "cluster preset: voltrino, chameleon or dragonfly1k",
            .default_value = "voltrino"})
      .add({.long_name = "sim-shards", .short_name = '\0', .value_name = "N",
            .help = "engine shards (parallel rate domains); outputs are "
                    "bit-identical at any value (0 = serial default)",
            .default_value = "0"})
      .add({.long_name = "app", .short_name = 'a', .value_name = "NAME",
            .help = "proxy application (empty = idle cluster)",
            .default_value = ""})
      .add({.long_name = "ranks", .short_name = 'r', .value_name = "N",
            .help = "ranks per node for the application",
            .default_value = "4"})
      .add({.long_name = "anomaly", .short_name = 'x', .value_name = "NAME",
            .help = "anomaly to inject on --anomaly-node (empty = none)",
            .default_value = ""})
      .add({.long_name = "anomaly-node", .short_name = '\0',
            .value_name = "ID", .help = "node hosting the anomaly",
            .default_value = "0"})
      .add({.long_name = "anomaly-core", .short_name = '\0',
            .value_name = "ID", .help = "core hosting the anomaly",
            .default_value = "0"})
      .add({.long_name = "intensity", .short_name = 'i', .value_name = "X",
            .help = "anomaly intensity scale", .default_value = "1.0"})
      .add({.long_name = "fail-at", .short_name = '\0', .value_name = "TIME",
            .help = "kill injector tasks at this simulated time "
                    "(models a degraded injector; empty = never)",
            .default_value = ""})
      .add({.long_name = "fail-tasks", .short_name = '\0',
            .value_name = "N",
            .help = "how many injector tasks die at --fail-at (0 = all)",
            .default_value = "0"})
      .add({.long_name = "duration", .short_name = 'd', .value_name = "TIME",
            .help = "simulated time to run", .default_value = "120s"})
      .add({.long_name = "sample-period", .short_name = '\0',
            .value_name = "TIME", .help = "monitoring cadence",
            .default_value = "1s"})
      .add({.long_name = "trace", .short_name = '\0', .value_name = "FILE",
            .help = "record a structured binary trace to FILE",
            .default_value = ""})
      .add({.long_name = "check-trace", .short_name = '\0',
            .value_name = "FILE",
            .help = "re-run and verify bit-exact replay against FILE",
            .default_value = ""})
      .add({.long_name = "output", .short_name = 'o', .value_name = "PREFIX",
            .help = "CSV path prefix (writes PREFIX.node<i>.csv)",
            .default_value = std::nullopt, .required = true});
  return parser;
}

int run(const hpas::ParsedArgs& args) {
  const std::string preset = args.value("preset");
  std::unique_ptr<hpas::sim::World> world;
  if (preset == "voltrino") {
    world = hpas::sim::make_voltrino_world();
  } else if (preset == "chameleon") {
    world = hpas::sim::make_chameleon_world();
  } else if (preset == "dragonfly1k") {
    world = hpas::sim::make_dragonfly_world();
  } else {
    throw hpas::ConfigError("unknown preset '" + preset +
                            "' (expected voltrino, chameleon or dragonfly1k)");
  }
  const int sim_shards =
      static_cast<int>(hpas::flag_u64(args, "sim-shards"));
  if (sim_shards > 0) world->set_shards(sim_shards);

  const double duration = hpas::flag_duration_seconds(args, "duration");
  const double period =
      hpas::flag_duration_seconds(args, "sample-period");

  const std::string trace_path = args.value("trace");
  const std::string check_path = args.value("check-trace");
  std::optional<hpas::trace::TraceCapture> capture;
  if (!trace_path.empty() || !check_path.empty()) {
    // Attach before monitoring and injection: the trace must cover the
    // whole scenario or replay checking would diverge on the prefix.
    capture.emplace();
    world->attach_tracer(&capture->tracer());
  }
  world->enable_monitoring(period);

  const std::string anomaly = args.value("anomaly");
  if (!anomaly.empty()) {
    const auto injected = hpas::simanom::inject_by_name(
        *world, anomaly,
        static_cast<int>(hpas::flag_u64(args, "anomaly-node")),
        static_cast<int>(hpas::flag_u64(args, "anomaly-core")),
        duration, hpas::flag_double(args, "intensity"));
    const std::string fail_at = args.value("fail-at");
    if (!fail_at.empty()) {
      const int fail_tasks =
          static_cast<int>(hpas::flag_u64(args, "fail-tasks"));
      hpas::simanom::schedule_injector_failure(
          *world, injected, hpas::flag_duration_seconds(args, "fail-at"),
          fail_tasks == 0 ? -1 : fail_tasks);
    }
  }

  std::unique_ptr<hpas::apps::BspApp> app;
  const std::string app_name = args.value("app");
  if (!app_name.empty()) {
    hpas::apps::AppSpec spec = hpas::apps::app_by_name(app_name);
    spec.iterations = 1000000000;  // run for the whole window
    const int peer = world->num_nodes() / 2;  // span switch groups
    app = std::make_unique<hpas::apps::BspApp>(
        *world, spec,
        hpas::apps::BspApp::Placement{
            .nodes = {0, peer},
            .ranks_per_node =
                static_cast<int>(hpas::flag_u64(args, "ranks")),
            .first_core = 0});
  }

  // First signal: cancel cooperatively at the next event boundary and
  // fall through to the normal export path with whatever was simulated.
  // Second signal: exit 130 right from the watcher thread.
  static hpas::CancelToken cancel;
  hpas::ShutdownController::instance().install();
  const std::uint64_t subscription =
      hpas::ShutdownController::instance().subscribe([](int count) {
        if (count == 1) {
          cancel.cancel(hpas::CancelReason::kShutdown);
          std::fprintf(stderr,
                       "\nhpas-sim: stopping at the next event boundary; "
                       "signal again to abort\n");
        } else {
          std::_Exit(130);
        }
      });
  world->set_cancel_token(&cancel);

  bool interrupted = false;
  try {
    world->run_until(duration);
  } catch (const hpas::CancelledError& e) {
    interrupted = true;
    if (capture) {
      // Close the truncated trace so the partial capture says why it ends.
      capture->tracer().set_time(world->now());
      capture->tracer().emit(hpas::trace::RecordKind::kRunCancelled, 0,
                             static_cast<std::uint16_t>(e.reason()), 0,
                             world->now());
    }
  }
  hpas::ShutdownController::instance().unsubscribe(subscription);

  if (capture) {
    const hpas::trace::TraceFile fresh = capture->take();
    if (!trace_path.empty()) {
      hpas::trace::write_binary_file(trace_path, fresh);
      std::printf("hpas-sim: trace: %zu records -> %s\n",
                  fresh.records.size(), trace_path.c_str());
    }
    if (!check_path.empty() && interrupted) {
      std::fprintf(stderr,
                   "hpas-sim: replay check skipped: run was interrupted, "
                   "the truncated trace cannot be compared\n");
    } else if (!check_path.empty()) {
      const hpas::trace::TraceFile recorded =
          hpas::trace::read_binary_file(check_path);
      const auto divergence = hpas::trace::diff_traces(recorded, fresh);
      if (divergence.diverged) {
        std::fprintf(stderr, "hpas-sim: replay check FAILED: %s\n",
                     divergence.description.c_str());
        return 3;
      }
      std::printf("hpas-sim: replay check passed (%zu records match %s)\n",
                  fresh.records.size(), check_path.c_str());
    }
  }

  const std::string prefix = args.value("output");
  for (int node = 0; node < world->num_nodes(); ++node) {
    const std::string path =
        prefix + ".node" + std::to_string(node) + ".csv";
    hpas::metrics::write_csv_file(path, world->node_store(node));
  }
  std::printf("hpas-sim: %s for %s, %d nodes -> %s.node*.csv\n",
              app_name.empty() ? "idle" : app_name.c_str(),
              hpas::format_seconds(duration).c_str(), world->num_nodes(),
              prefix.c_str());
  if (interrupted)
    std::printf("hpas-sim: interrupted at t=%s (outputs cover the "
                "simulated prefix)\n",
                hpas::format_seconds(world->now()).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const auto parser = make_parser();
    const auto args =
        parser.parse(std::vector<std::string>(argv + 1, argv + argc));
    if (args.flag("help")) {
      std::fputs(parser.help_text().c_str(), stdout);
      return 0;
    }
    return run(args);
  } catch (const hpas::ConfigError& e) {
    std::fprintf(stderr, "hpas-sim: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hpas-sim: fatal: %s\n", e.what());
    return 1;
  }
}
