// hpas -- the HPC Performance Anomaly Suite command-line tool.
//
// Usage:
//   hpas list                      # Table 1: the anomaly catalog
//   hpas <anomaly> [options]       # run one generator
//   hpas <anomaly> --help          # that generator's knobs
//
// Examples (mirroring the paper's experiments):
//   hpas cpuoccupy -u 80 -d 60s        # 80% of one core for a minute
//   hpas cachecopy -c L3 -d 30s        # occupy the last-level cache
//   hpas membw -s 64M -d 30s           # saturate DRAM write bandwidth
//   hpas memleak -s 20M -r 1s -d 5m    # leak 20 MB/s^-1... forever-ish
//   hpas netoccupy --mode recv         # on node A
//   hpas netoccupy --mode send --host <A>   # on node B
//   hpas iometadata --dir /shared/fs -n 48 -d 60s
//
// Batch experiments run through the deterministic parallel runner:
//   hpas sweep grid.json -j 8 -o out/   # scenario grid across 8 workers
//   hpas sweep grid.json -o out/ --resume          # continue a killed sweep
//   hpas sweep grid.json --scenario-timeout 5m     # bound each grid point
//
// Shutdown contract: the first SIGINT/SIGTERM drains gracefully (sweeps
// journal in-flight scenarios and exit 0 with a resume hint); a second
// signal cancels hard (exit 130) but still leaves a valid journal.
#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "anomalies/anomaly.hpp"
#include "anomalies/schedule.hpp"
#include "anomalies/suite.hpp"
#include "common/cancel.hpp"
#include "common/error.hpp"
#include "common/shutdown.hpp"
#include "common/units.hpp"
#include "runner/runner.hpp"
#include "runner/thread_pool.hpp"

namespace {

std::atomic<bool> g_stop_schedule{false};

/// Unsubscribes a ShutdownController callback when the scope that owns
/// the captured state ends, so a late signal cannot touch a dead object.
class ScopedShutdownSubscription {
 public:
  explicit ScopedShutdownSubscription(std::function<void(int)> fn)
      : id_(hpas::ShutdownController::instance().subscribe(std::move(fn))) {}
  ~ScopedShutdownSubscription() {
    hpas::ShutdownController::instance().unsubscribe(id_);
  }
  ScopedShutdownSubscription(const ScopedShutdownSubscription&) = delete;
  ScopedShutdownSubscription& operator=(const ScopedShutdownSubscription&) =
      delete;

 private:
  std::uint64_t id_;
};

int run_schedule_command(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::fprintf(stderr,
                 "usage: hpas schedule <file>\n"
                 "  file format, one instance per line:\n"
                 "    at 0s   cpuoccupy -u 80 -d 30s\n"
                 "    at 10s  memleak -s 20M -d 45s\n");
    return 2;
  }
  const auto schedule = hpas::anomalies::load_schedule_file(args[0]);
  std::printf("schedule: %zu instances, span %s\n", schedule.entries.size(),
              hpas::format_seconds(schedule.span_seconds()).c_str());
  hpas::ShutdownController::instance().install();
  ScopedShutdownSubscription stop_on_signal(
      [](int) { g_stop_schedule.store(true, std::memory_order_relaxed); });
  const auto results =
      hpas::anomalies::run_schedule(schedule, &g_stop_schedule);
  int failures = 0;
  int worker_failures = 0;
  for (const auto& result : results) {
    if (result.supervision.fatal()) {
      ++worker_failures;
      std::fprintf(stderr, "hpas: %s\n",
                   result.supervision.to_string().c_str());
    }
    if (!result.error.empty()) {
      ++failures;
      std::fprintf(stderr, "hpas: %s (at %gs) failed: %s\n",
                   result.entry.anomaly.c_str(), result.entry.start_s,
                   result.error.c_str());
      continue;
    }
    std::printf("%s (at %gs): %llu iterations, work=%.3g, elapsed=%s\n",
                result.entry.anomaly.c_str(), result.entry.start_s,
                static_cast<unsigned long long>(result.stats.iterations),
                result.stats.work_amount,
                hpas::format_seconds(result.stats.elapsed_seconds).c_str());
  }
  if (failures != 0) return 1;
  return worker_failures == 0 ? 0 : 4;
}

int run_sweep_command(const std::vector<std::string>& argv) {
  hpas::CliParser parser(
      "hpas sweep",
      "run a scenario grid through the deterministic parallel runner");
  parser
      .add({.long_name = "threads", .short_name = 'j', .value_name = "N",
            .help = "worker threads; 0 = all hardware threads",
            .default_value = "0"})
      .add({.long_name = "out", .short_name = 'o', .value_name = "DIR",
            .help = "output directory (per-scenario CSVs + summary.json)",
            .default_value = "sweep-out"})
      .add({.long_name = "trace", .short_name = '\0', .value_name = "",
            .help = "capture a per-scenario trace (writes NAME.trace.bin)",
            .default_value = std::nullopt})
      .add({.long_name = "resume", .short_name = '\0', .value_name = "",
            .help = "replay DIR/sweep.journal, keep validated outputs, run "
                    "only what is missing",
            .default_value = std::nullopt})
      .add({.long_name = "scenario-timeout", .short_name = '\0',
            .value_name = "TIME",
            .help = "wall-clock budget per scenario; over budget it is "
                    "cancelled and journaled as timeout (0 = off)",
            .default_value = "0"})
      .add({.long_name = "deadline", .short_name = '\0',
            .value_name = "TIME",
            .help = "wall-clock budget for the whole sweep (0 = off)",
            .default_value = "0"})
      .add({.long_name = "sim-shards", .short_name = '\0', .value_name = "N",
            .help = "engine shards per scenario world; outputs are "
                    "bit-identical at any value (0 = serial default)",
            .default_value = "0"})
      .add({.long_name = "dry-run", .short_name = '\0', .value_name = "",
            .help = "expand and print the grid without running it",
            .default_value = std::nullopt});
  const auto args = parser.parse(argv);
  if (args.flag("help")) {
    std::fputs(parser.help_text().c_str(), stdout);
    return 0;
  }
  if (args.positional().size() != 1) {
    std::fprintf(stderr, "usage: hpas sweep <grid.json> [-j N] [-o DIR]\n");
    return 2;
  }

  const auto grid = hpas::runner::load_grid_file(args.positional()[0]);
  int threads = static_cast<int>(hpas::parse_u64(args.value("threads")));
  if (threads == 0)
    threads = hpas::runner::WorkStealingPool::default_thread_count();
  std::printf("sweep '%s': %zu scenarios across %d threads\n",
              grid.name.c_str(), grid.scenarios.size(), threads);

  if (args.flag("dry-run")) {
    for (const auto& s : grid.scenarios)
      std::printf("  %-40s seed=%llu\n", s.name.c_str(),
                  static_cast<unsigned long long>(s.seed));
    return 0;
  }

  const std::string out_dir = args.value("out");
  // Static lifetime: the watcher thread may still dereference the tokens
  // while main unwinds after a signal near the end of the sweep.
  static hpas::CancelToken graceful;
  static hpas::CancelToken hard;
  auto& shutdown = hpas::ShutdownController::instance();
  shutdown.install();
  ScopedShutdownSubscription on_signal([](int count) {
    if (count == 1) {
      graceful.cancel(hpas::CancelReason::kShutdown);
      std::fprintf(stderr,
                   "\nhpas: draining in-flight scenarios (journaling); "
                   "signal again to cancel hard\n");
    } else {
      hard.cancel(hpas::CancelReason::kShutdown);
    }
  });

  hpas::runner::SweepOptions options;
  options.threads = threads;
  options.queue_capacity = 256;
  options.capture_traces = args.flag("trace");
  options.scenario_timeout_s =
      hpas::parse_duration_seconds(args.value("scenario-timeout"));
  options.deadline_s = hpas::parse_duration_seconds(args.value("deadline"));
  options.sim_shards =
      static_cast<int>(hpas::parse_u64(args.value("sim-shards")));
  options.journal_path = out_dir + "/sweep.journal";
  options.resume = args.flag("resume");
  options.graceful = &graceful;
  options.hard = &hard;

  const auto result = hpas::runner::run_sweep(grid, options);
  // Outputs (including summary.json) are always written: a partial sweep
  // plus its journal is exactly what --resume continues from.
  hpas::runner::write_outputs(result, out_dir);

  const auto summary = result.summary_json();
  for (const auto& group : summary.find("by_anomaly")->as_array()) {
    std::printf("  %-12s median=%8.1fs  p95=%8.1fs  cv=%5.1f%%\n",
                group.find("anomaly")->as_string().c_str(),
                group.number_or("median_s", 0.0),
                group.number_or("p95_s", 0.0),
                group.number_or("cv_pct", 0.0));
  }
  using hpas::runner::ScenarioStatus;
  const std::size_t timeouts = result.count(ScenarioStatus::kTimeout);
  const std::size_t failed = result.count(ScenarioStatus::kFailed);
  const std::size_t cancelled = result.count(ScenarioStatus::kCancelled);
  const std::size_t not_run = result.count(ScenarioStatus::kNotRun);
  std::printf("sweep: %zu executed, %zu resumed, %zu timeout, "
              "%zu cancelled, %zu not run\n",
              result.executed, result.resumed, timeouts, cancelled, not_run);
  if (result.tmp_removed > 0)
    std::printf("sweep: swept %zu orphaned .tmp file(s)\n",
                result.tmp_removed);
  if (result.journal_dropped > 0)
    std::printf("sweep: discarded %zu damaged journal frame(s)\n",
                result.journal_dropped);
  std::printf("wrote outputs + summary.json to %s/\n", out_dir.c_str());

  if (shutdown.hard_requested()) {
    std::fprintf(stderr,
                 "hpas: sweep cancelled hard; journal is valid, resume "
                 "with: hpas sweep ... -o %s --resume\n",
                 out_dir.c_str());
    return 130;
  }
  if (failed > 0) {
    std::fprintf(stderr, "hpas: sweep failed: %s\n",
                 result.first_error().c_str());
    return 1;
  }
  if (shutdown.requested()) {
    std::printf("hpas: sweep interrupted after draining; resume with: "
                "hpas sweep ... -o %s --resume\n",
                out_dir.c_str());
    return 0;
  }
  // Timeouts, deadline cancellations, or scenarios never started: the
  // sweep finished but incompletely -- a distinct, scriptable exit code.
  if (timeouts + cancelled + not_run > 0) return 5;
  return 0;
}

void print_catalog() {
  std::printf("%-12s %-16s %-34s %s\n", "NAME", "SUBSYSTEM", "BEHAVIOR",
              "KNOBS");
  for (const auto& info : hpas::anomalies::anomaly_catalog()) {
    std::printf("%-12s %-16s %-34s %s\n", info.name.c_str(),
                info.subsystem.c_str(), info.behavior.c_str(),
                info.knobs.c_str());
  }
  std::printf(
      "\nEvery anomaly accepts --duration, --start-delay and --seed.\n"
      "Run `hpas <anomaly> --help` for its knobs, compose instances\n"
      "with `hpas schedule <file>`, or batch simulated experiments with\n"
      "`hpas sweep <grid.json>` (deterministic parallel runner).\n");
}

int run_anomaly(const std::string& name, const std::vector<std::string>& argv) {
  const auto parser = hpas::anomalies::make_anomaly_parser(name);
  const auto args = parser.parse(argv);
  if (args.flag("help")) {
    std::fputs(parser.help_text().c_str(), stdout);
    return 0;
  }
  const auto anomaly = hpas::anomalies::make_anomaly(name, args);

  hpas::ShutdownController::instance().install();
  // request_stop is a relaxed atomic store; the callback runs on the
  // watcher thread, not in signal context, so ordinary code is fine. The
  // subscription is scoped: it dies before `anomaly` does.
  hpas::anomalies::Anomaly* const running = anomaly.get();
  ScopedShutdownSubscription stop_on_signal(
      [running](int) { running->request_stop(); });

  hpas::anomalies::RunStats stats;
  try {
    stats = anomaly->run();
  } catch (...) {
    // setup()/run() threw: still surface any structured failure records
    // gathered before the exception.
    const auto& supervision = anomaly->supervision_report();
    if (!supervision.healthy())
      std::fprintf(stderr, "hpas: %s\n", supervision.to_string().c_str());
    throw;
  }

  std::printf(
      "%s: %llu iterations, work=%.3g, active=%s, elapsed=%s\n",
      name.c_str(), static_cast<unsigned long long>(stats.iterations),
      stats.work_amount, hpas::format_seconds(stats.active_seconds).c_str(),
      hpas::format_seconds(stats.elapsed_seconds).c_str());

  // Surface worker failures: a generator that lost workers must say so
  // and exit nonzero (4) -- never a silent dead worker.
  const auto& supervision = anomaly->supervision_report();
  if (supervision.fatal() || supervision.transient_recovered > 0 ||
      supervision.failures_dropped > 0) {
    std::fprintf(stderr, "hpas: %s\n", supervision.to_string().c_str());
  }
  return supervision.fatal() ? 4 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  try {
    if (args.empty() || args[0] == "--help" || args[0] == "-h" ||
        args[0] == "help") {
      std::printf("hpas - HPC Performance Anomaly Suite\n\n");
      print_catalog();
      return 0;
    }
    if (args[0] == "list") {
      print_catalog();
      return 0;
    }
    if (args[0] == "schedule") {
      return run_schedule_command({args.begin() + 1, args.end()});
    }
    if (args[0] == "sweep") {
      return run_sweep_command({args.begin() + 1, args.end()});
    }
    if (!hpas::anomalies::is_known_anomaly(args[0])) {
      std::fprintf(stderr, "hpas: unknown anomaly '%s'; try `hpas list`\n",
                   args[0].c_str());
      return 2;
    }
    return run_anomaly(args[0], {args.begin() + 1, args.end()});
  } catch (const hpas::ConfigError& e) {
    std::fprintf(stderr, "hpas: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hpas: fatal: %s\n", e.what());
    return 1;
  }
}
