// hpas -- the HPC Performance Anomaly Suite command-line tool.
//
// Usage:
//   hpas list                      # Table 1: the anomaly catalog
//   hpas <anomaly> [options]       # run one generator
//   hpas <anomaly> --help          # that generator's knobs
//
// Examples (mirroring the paper's experiments):
//   hpas cpuoccupy -u 80 -d 60s        # 80% of one core for a minute
//   hpas cachecopy -c L3 -d 30s        # occupy the last-level cache
//   hpas membw -s 64M -d 30s           # saturate DRAM write bandwidth
//   hpas memleak -s 20M -r 1s -d 5m    # leak 20 MB/s^-1... forever-ish
//   hpas netoccupy --mode recv         # on node A
//   hpas netoccupy --mode send --host <A>   # on node B
//   hpas iometadata --dir /shared/fs -n 48 -d 60s
//
// Batch experiments run through the deterministic parallel runner:
//   hpas sweep grid.json -j 8 -o out/   # scenario grid across 8 workers
//   hpas sweep grid.json -o out/ --resume          # continue a killed sweep
//   hpas sweep grid.json --scenario-timeout 5m     # bound each grid point
//
// Guided scenario-space search (seeded, resumable, byte-reproducible):
//   hpas search space.json --budget 64 -j 8 -o out/
//   hpas search space.json -o out/ --resume        # continue a killed search
//   hpas search --replay out/frontier.json --index 0   # verify a finding
//
// Sweep-as-a-service (durable daemon with a content-addressed cache):
//   hpas serve --data srv/ -j 8                # start the daemon
//   hpas submit grid.json --socket srv/hpas.sock   # run a grid through it
//   hpas submit --status --socket srv/hpas.sock    # server statistics
//
// Shutdown contract: the first SIGINT/SIGTERM drains gracefully (sweeps
// journal in-flight scenarios and exit 0 with a resume hint); a second
// signal cancels hard (exit 130) but still leaves a valid journal.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "anomalies/anomaly.hpp"
#include "anomalies/schedule.hpp"
#include "anomalies/suite.hpp"
#include "common/backoff.hpp"
#include "common/cancel.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/shutdown.hpp"
#include "common/units.hpp"
#include "dataset/factory.hpp"
#include "faultline/faultline.hpp"
#include "runner/runner.hpp"
#include "runner/thread_pool.hpp"
#include "search/driver.hpp"
#include "search/space.hpp"
#include "server/client.hpp"
#include "server/server.hpp"

#include <chrono>
#include <thread>

namespace {

std::atomic<bool> g_stop_schedule{false};

/// Unsubscribes a ShutdownController callback when the scope that owns
/// the captured state ends, so a late signal cannot touch a dead object.
class ScopedShutdownSubscription {
 public:
  explicit ScopedShutdownSubscription(std::function<void(int)> fn)
      : id_(hpas::ShutdownController::instance().subscribe(std::move(fn))) {}
  ~ScopedShutdownSubscription() {
    hpas::ShutdownController::instance().unsubscribe(id_);
  }
  ScopedShutdownSubscription(const ScopedShutdownSubscription&) = delete;
  ScopedShutdownSubscription& operator=(const ScopedShutdownSubscription&) =
      delete;

 private:
  std::uint64_t id_;
};

/// Arms the process-wide fault-injection engine from a --fault-schedule
/// flag. The flag wins over HPAS_FAULT_SCHEDULE (already armed by main);
/// neither is ever part of scenario identity -- schedules shape I/O
/// failures, not results.
void arm_fault_schedule_flag(const hpas::ParsedArgs& args) {
  if (args.has("fault-schedule"))
    hpas::faultline::arm(hpas::faultline::FaultSchedule::load_file(
        args.value("fault-schedule")));
}

hpas::OptionSpec fault_schedule_flag() {
  return {.long_name = "fault-schedule", .short_name = '\0',
          .value_name = "FILE",
          .help = "arm a deterministic fault-injection schedule (chaos "
                  "testing; see DESIGN.md)",
          .default_value = std::nullopt};
}

int run_schedule_command(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::fprintf(stderr,
                 "usage: hpas schedule <file>\n"
                 "  file format, one instance per line:\n"
                 "    at 0s   cpuoccupy -u 80 -d 30s\n"
                 "    at 10s  memleak -s 20M -d 45s\n");
    return 2;
  }
  const auto schedule = hpas::anomalies::load_schedule_file(args[0]);
  std::printf("schedule: %zu instances, span %s\n", schedule.entries.size(),
              hpas::format_seconds(schedule.span_seconds()).c_str());
  hpas::ShutdownController::instance().install();
  ScopedShutdownSubscription stop_on_signal(
      [](int) { g_stop_schedule.store(true, std::memory_order_relaxed); });
  const auto results =
      hpas::anomalies::run_schedule(schedule, &g_stop_schedule);
  int failures = 0;
  int worker_failures = 0;
  for (const auto& result : results) {
    if (result.supervision.fatal()) {
      ++worker_failures;
      std::fprintf(stderr, "hpas: %s\n",
                   result.supervision.to_string().c_str());
    }
    if (!result.error.empty()) {
      ++failures;
      std::fprintf(stderr, "hpas: %s (at %gs) failed: %s\n",
                   result.entry.anomaly.c_str(), result.entry.start_s,
                   result.error.c_str());
      continue;
    }
    std::printf("%s (at %gs): %llu iterations, work=%.3g, elapsed=%s\n",
                result.entry.anomaly.c_str(), result.entry.start_s,
                static_cast<unsigned long long>(result.stats.iterations),
                result.stats.work_amount,
                hpas::format_seconds(result.stats.elapsed_seconds).c_str());
  }
  if (failures != 0) return 1;
  return worker_failures == 0 ? 0 : 4;
}

int run_sweep_command(const std::vector<std::string>& argv) {
  hpas::CliParser parser(
      "hpas sweep",
      "run a scenario grid through the deterministic parallel runner");
  parser
      .add({.long_name = "threads", .short_name = 'j', .value_name = "N",
            .help = "worker threads; 0 = all hardware threads",
            .default_value = "0"})
      .add({.long_name = "out", .short_name = 'o', .value_name = "DIR",
            .help = "output directory (per-scenario CSVs + summary.json)",
            .default_value = "sweep-out"})
      .add({.long_name = "trace", .short_name = '\0', .value_name = "",
            .help = "capture a per-scenario trace (writes NAME.trace.bin)",
            .default_value = std::nullopt})
      .add({.long_name = "resume", .short_name = '\0', .value_name = "",
            .help = "replay DIR/sweep.journal, keep validated outputs, run "
                    "only what is missing",
            .default_value = std::nullopt})
      .add({.long_name = "scenario-timeout", .short_name = '\0',
            .value_name = "TIME",
            .help = "wall-clock budget per scenario; over budget it is "
                    "cancelled and journaled as timeout (0 = off)",
            .default_value = "0"})
      .add({.long_name = "deadline", .short_name = '\0',
            .value_name = "TIME",
            .help = "wall-clock budget for the whole sweep (0 = off)",
            .default_value = "0"})
      .add({.long_name = "sim-shards", .short_name = '\0', .value_name = "N",
            .help = "engine shards per scenario world; outputs are "
                    "bit-identical at any value (0 = serial default)",
            .default_value = "0"})
      .add({.long_name = "dry-run", .short_name = '\0', .value_name = "",
            .help = "expand and print the grid without running it",
            .default_value = std::nullopt});
  const auto args = parser.parse(argv);
  if (args.flag("help")) {
    std::fputs(parser.help_text().c_str(), stdout);
    return 0;
  }
  if (args.positional().size() != 1) {
    std::fprintf(stderr, "usage: hpas sweep <grid.json> [-j N] [-o DIR]\n");
    return 2;
  }

  const auto grid = hpas::runner::load_grid_file(args.positional()[0]);
  int threads = static_cast<int>(hpas::flag_u64(args, "threads"));
  if (threads == 0)
    threads = hpas::runner::WorkStealingPool::default_thread_count();
  std::printf("sweep '%s': %zu scenarios across %d threads\n",
              grid.name.c_str(), grid.scenarios.size(), threads);

  if (args.flag("dry-run")) {
    for (const auto& s : grid.scenarios)
      std::printf("  %-40s seed=%llu\n", s.name.c_str(),
                  static_cast<unsigned long long>(s.seed));
    return 0;
  }

  const std::string out_dir = args.value("out");
  // Static lifetime: the watcher thread may still dereference the tokens
  // while main unwinds after a signal near the end of the sweep.
  static hpas::CancelToken graceful;
  static hpas::CancelToken hard;
  auto& shutdown = hpas::ShutdownController::instance();
  shutdown.install();
  ScopedShutdownSubscription on_signal([](int count) {
    if (count == 1) {
      graceful.cancel(hpas::CancelReason::kShutdown);
      std::fprintf(stderr,
                   "\nhpas: draining in-flight scenarios (journaling); "
                   "signal again to cancel hard\n");
    } else {
      hard.cancel(hpas::CancelReason::kShutdown);
    }
  });

  hpas::runner::SweepOptions options;
  options.threads = threads;
  options.queue_capacity = 256;
  options.capture_traces = args.flag("trace");
  options.scenario_timeout_s =
      hpas::flag_duration_seconds(args, "scenario-timeout");
  options.deadline_s = hpas::flag_duration_seconds(args, "deadline");
  options.sim_shards =
      static_cast<int>(hpas::flag_u64(args, "sim-shards"));
  options.journal_path = out_dir + "/sweep.journal";
  options.resume = args.flag("resume");
  options.graceful = &graceful;
  options.hard = &hard;

  const auto result = hpas::runner::run_sweep(grid, options);
  // Outputs (including summary.json) are always written: a partial sweep
  // plus its journal is exactly what --resume continues from.
  hpas::runner::write_outputs(result, out_dir);

  const auto summary = result.summary_json();
  for (const auto& group : summary.find("by_anomaly")->as_array()) {
    std::printf("  %-12s median=%8.1fs  p95=%8.1fs  cv=%5.1f%%\n",
                group.find("anomaly")->as_string().c_str(),
                group.number_or("median_s", 0.0),
                group.number_or("p95_s", 0.0),
                group.number_or("cv_pct", 0.0));
  }
  using hpas::runner::ScenarioStatus;
  const std::size_t timeouts = result.count(ScenarioStatus::kTimeout);
  const std::size_t failed = result.count(ScenarioStatus::kFailed);
  const std::size_t cancelled = result.count(ScenarioStatus::kCancelled);
  const std::size_t not_run = result.count(ScenarioStatus::kNotRun);
  std::printf("sweep: %zu executed, %zu resumed, %zu timeout, "
              "%zu cancelled, %zu not run\n",
              result.executed, result.resumed, timeouts, cancelled, not_run);
  if (result.tmp_removed > 0)
    std::printf("sweep: swept %zu orphaned .tmp file(s)\n",
                result.tmp_removed);
  if (result.journal_dropped > 0)
    std::printf("sweep: discarded %zu damaged journal frame(s)\n",
                result.journal_dropped);
  std::printf("wrote outputs + summary.json to %s/\n", out_dir.c_str());

  if (shutdown.hard_requested()) {
    std::fprintf(stderr,
                 "hpas: sweep cancelled hard; journal is valid, resume "
                 "with: hpas sweep ... -o %s --resume\n",
                 out_dir.c_str());
    return 130;
  }
  if (failed > 0) {
    std::fprintf(stderr, "hpas: sweep failed: %s\n",
                 result.first_error().c_str());
    return 1;
  }
  if (shutdown.requested()) {
    std::printf("hpas: sweep interrupted after draining; resume with: "
                "hpas sweep ... -o %s --resume\n",
                out_dir.c_str());
    return 0;
  }
  // Timeouts, deadline cancellations, or scenarios never started: the
  // sweep finished but incompletely -- a distinct, scriptable exit code.
  if (timeouts + cancelled + not_run > 0) return 5;
  return 0;
}

/// Temp-sibling + rename, mirroring the runner's atomic output writes.
void write_text_file(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw hpas::SystemError("cannot write " + tmp);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) throw hpas::SystemError("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    throw hpas::SystemError("cannot rename " + tmp + " to " + path);
}

hpas::Json load_json_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw hpas::SystemError("cannot read " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return hpas::Json::parse(text.str());
}

/// Re-runs one frontier entry and verifies it reproduces the recorded
/// summary row byte-for-byte. Exit 0 = reproduced, 3 = mismatch.
int run_search_replay(const hpas::ParsedArgs& args) {
  const hpas::Json doc = load_json_file(args.value("replay"));
  const hpas::Json* entry = nullptr;
  if (args.flag("minimized")) {
    entry = doc.find("minimized");
    if (entry == nullptr)
      throw hpas::ConfigError("replay: frontier has no minimized entry");
  } else {
    const hpas::Json* frontier = doc.find("frontier");
    if (frontier == nullptr || !frontier->is_array())
      throw hpas::ConfigError("replay: document has no frontier array");
    const auto index =
        static_cast<std::size_t>(hpas::flag_u64(args, "index"));
    if (index >= frontier->as_array().size())
      throw hpas::ConfigError("replay: --index is out of range");
    entry = &frontier->as_array()[index];
  }
  const hpas::Json* spec_doc = entry->find("spec");
  const hpas::Json* expected = entry->find("summary_row");
  if (spec_doc == nullptr || expected == nullptr)
    throw hpas::ConfigError("replay: entry is missing spec or summary_row");

  const auto spec = hpas::search::spec_from_json(*spec_doc);
  const int sim_shards =
      static_cast<int>(hpas::flag_u64(args, "sim-shards"));
  const auto result =
      hpas::runner::run_scenario(spec, args.flag("trace"), nullptr,
                                 sim_shards);
  const hpas::Json row = hpas::search::summary_row_json(
      spec, result.app_elapsed_s,
      static_cast<std::uint64_t>(result.app_iterations));

  if (args.flag("trace") && !result.trace_bin.empty()) {
    const std::string out_dir = args.value("out");
    std::filesystem::create_directories(out_dir);
    write_text_file(out_dir + "/" + spec.name + ".trace.bin",
                    result.trace_bin);
    std::printf("wrote %s/%s.trace.bin (%llu records)\n", out_dir.c_str(),
                spec.name.c_str(),
                static_cast<unsigned long long>(result.trace_records));
  }

  const std::string got = row.dump(2);
  const std::string want = expected->dump(2);
  std::fputs(got.c_str(), stdout);
  if (got != want) {
    std::fprintf(stderr,
                 "hpas: replay mismatch for %s: recorded summary row "
                 "differs:\n%s",
                 spec.name.c_str(), want.c_str());
    return 3;
  }
  std::printf("replay: %s reproduced byte-for-byte\n", spec.name.c_str());
  return 0;
}

int run_search_command(const std::vector<std::string>& argv) {
  hpas::CliParser parser(
      "hpas search",
      "guided scenario-space search over the deterministic runner");
  parser
      .add({.long_name = "strategy", .short_name = 's', .value_name = "NAME",
            .help = "search strategy: random, anneal or bandit",
            .default_value = "anneal"})
      .add({.long_name = "objective", .short_name = '\0',
            .value_name = "NAME",
            .help = "max_degradation_per_intensity, evade_diagnosis or "
                    "scheduler_worst_case",
            .default_value = "max_degradation_per_intensity"})
      .add({.long_name = "budget", .short_name = 'n', .value_name = "N",
            .help = "total proposals to evaluate",
            .default_value = "64"})
      .add({.long_name = "batch", .short_name = 'b', .value_name = "N",
            .help = "proposals per batch (a search parameter, not the "
                    "thread count)",
            .default_value = "8"})
      .add({.long_name = "frontier", .short_name = '\0', .value_name = "N",
            .help = "ranked entries kept in frontier.json",
            .default_value = "8"})
      .add({.long_name = "threads", .short_name = 'j', .value_name = "N",
            .help = "worker threads; 0 = all hardware threads",
            .default_value = "0"})
      .add({.long_name = "out", .short_name = 'o', .value_name = "DIR",
            .help = "output directory (frontier.json + search.journal)",
            .default_value = "search-out"})
      .add({.long_name = "seed", .short_name = '\0', .value_name = "S",
            .help = "override the space file's base seed",
            .default_value = std::nullopt})
      .add({.long_name = "resume", .short_name = '\0', .value_name = "",
            .help = "replay DIR/search.journal as an evaluation cache and "
                    "run only what is missing",
            .default_value = std::nullopt})
      .add({.long_name = "minimize", .short_name = '\0', .value_name = "",
            .help = "greedily shrink the best finding to a minimal config",
            .default_value = std::nullopt})
      .add({.long_name = "keep", .short_name = '\0', .value_name = "FRAC",
            .help = "minimizer keeps at least this fraction of the best "
                    "objective",
            .default_value = "0.9"})
      .add({.long_name = "sim-shards", .short_name = '\0', .value_name = "N",
            .help = "engine shards per scenario world (execution knob)",
            .default_value = "0"})
      .add({.long_name = "trace", .short_name = '\0', .value_name = "",
            .help = "re-run frontier scenarios with trace capture "
                    "(writes NAME.trace.bin)",
            .default_value = std::nullopt})
      .add({.long_name = "replay", .short_name = '\0', .value_name = "FILE",
            .help = "verify one frontier entry of FILE instead of searching",
            .default_value = std::nullopt})
      .add({.long_name = "index", .short_name = '\0', .value_name = "K",
            .help = "frontier entry to replay (rank K+1)",
            .default_value = "0"})
      .add({.long_name = "minimized", .short_name = '\0', .value_name = "",
            .help = "replay the minimized entry instead of a ranked one",
            .default_value = std::nullopt});
  const auto args = parser.parse(argv);
  if (args.flag("help")) {
    std::fputs(parser.help_text().c_str(), stdout);
    return 0;
  }
  if (args.has("replay")) return run_search_replay(args);
  if (args.positional().size() != 1) {
    std::fprintf(stderr,
                 "usage: hpas search <space.json> [options]\n"
                 "       hpas search --replay <frontier.json> [--index K]\n");
    return 2;
  }

  auto space = hpas::search::ScenarioSpace::load_file(args.positional()[0]);
  if (args.has("seed"))
    space.set_base_seed(hpas::flag_u64(args, "seed"));

  const std::string out_dir = args.value("out");
  std::filesystem::create_directories(out_dir);

  // Static lifetime: the watcher thread may outlive this frame (see
  // run_sweep_command).
  static hpas::CancelToken graceful;
  auto& shutdown = hpas::ShutdownController::instance();
  shutdown.install();
  ScopedShutdownSubscription on_signal([](int) {
    graceful.cancel(hpas::CancelReason::kShutdown);
    std::fprintf(stderr,
                 "\nhpas: finishing the running batch (journaling), then "
                 "stopping; resume with --resume\n");
  });

  hpas::search::SearchOptions options;
  options.strategy = args.value("strategy");
  options.objective = args.value("objective");
  options.budget = hpas::flag_u64(args, "budget");
  options.batch = hpas::flag_u64(args, "batch");
  options.frontier_size = hpas::flag_u64(args, "frontier");
  options.threads = static_cast<int>(hpas::flag_u64(args, "threads"));
  options.sim_shards =
      static_cast<int>(hpas::flag_u64(args, "sim-shards"));
  options.journal_path = out_dir + "/search.journal";
  options.resume = args.flag("resume");
  options.minimize = args.flag("minimize");
  options.minimize_keep = hpas::flag_double(args, "keep");
  options.graceful = &graceful;

  std::printf("search '%s': strategy=%s objective=%s budget=%zu seed=%llu\n",
              space.name().c_str(), options.strategy.c_str(),
              options.objective.c_str(), options.budget,
              static_cast<unsigned long long>(space.base_seed()));

  const auto result = hpas::search::run_search(space, options);

  const std::string frontier_path = out_dir + "/frontier.json";
  write_text_file(frontier_path,
                  result.frontier_json(space, frontier_path).dump(2));

  for (std::size_t i = 0; i < result.frontier.size(); ++i) {
    const auto& e = result.frontier[i];
    std::printf("  #%zu %-20s objective=%.6g app_time=%.1fs\n", i + 1,
                e.spec.name.c_str(), e.objective, e.app_elapsed_s);
  }
  if (result.has_minimized)
    std::printf("  min %-20s objective=%.6g (keep >= %.2f of best)\n",
                result.minimized.spec.name.c_str(),
                result.minimized.objective, options.minimize_keep);

  // Optional trace captures of the frontier: deterministic re-runs of the
  // winning scenarios, replay-diffable with trace_diff.
  if (args.flag("trace")) {
    for (const auto& e : result.frontier) {
      const auto rerun = hpas::runner::run_scenario(
          e.spec, /*capture_trace=*/true, nullptr, options.sim_shards);
      write_text_file(out_dir + "/" + e.spec.name + ".trace.bin",
                      rerun.trace_bin);
    }
    std::printf("wrote %zu frontier trace(s) to %s/\n",
                result.frontier.size(), out_dir.c_str());
  }

  std::printf("search: %zu evaluated, %zu cached; wrote %s\n",
              result.executed, result.cached, frontier_path.c_str());
  if (result.interrupted) {
    std::printf("hpas: search interrupted after draining; resume with: "
                "hpas search ... -o %s --resume\n",
                out_dir.c_str());
  }
  return 0;
}

int run_serve_command(const std::vector<std::string>& argv) {
  hpas::CliParser parser(
      "hpas serve",
      "long-running experiment daemon with a durable result cache");
  parser
      .add({.long_name = "data", .short_name = 'o', .value_name = "DIR",
            .help = "durable state: server.journal + result spool",
            .default_value = "serve-data"})
      .add({.long_name = "socket", .short_name = 's', .value_name = "PATH",
            .help = "unix-domain listener (default: DATA/hpas.sock)",
            .default_value = std::nullopt})
      .add({.long_name = "tcp", .short_name = '\0', .value_name = "PORT",
            .help = "also listen on 127.0.0.1:PORT (0 = ephemeral)",
            .default_value = std::nullopt})
      .add({.long_name = "threads", .short_name = 'j', .value_name = "N",
            .help = "worker threads; 0 = all hardware threads",
            .default_value = "0"})
      .add({.long_name = "admit", .short_name = '\0', .value_name = "N",
            .help = "max outstanding scenarios before `busy` backpressure",
            .default_value = "64"})
      .add({.long_name = "sim-shards", .short_name = '\0', .value_name = "N",
            .help = "engine shards per scenario world (execution knob)",
            .default_value = "0"})
      .add({.long_name = "io-timeout", .short_name = '\0',
            .value_name = "TIME",
            .help = "per-connection I/O deadline; a peer stalled mid-frame "
                    "is disconnected, idle clients are unaffected (0 = off)",
            .default_value = "30s"})
      .add({.long_name = "spool-cap", .short_name = '\0',
            .value_name = "BYTES",
            .help = "result-spool size cap; past it least-recently-served "
                    "results are evicted and re-run on demand (0 = "
                    "unbounded)",
            .default_value = "0"})
      .add({.long_name = "scrub-interval", .short_name = '\0',
            .value_name = "TIME",
            .help = "CRC-verify the spool this often, quarantining corrupt "
                    "entries (0 = off)",
            .default_value = "0"})
      .add(fault_schedule_flag());
  const auto args = parser.parse(argv);
  if (args.flag("help")) {
    std::fputs(parser.help_text().c_str(), stdout);
    return 0;
  }
  arm_fault_schedule_flag(args);

  hpas::server::ServerOptions options;
  options.data_dir = args.value("data");
  options.socket_path = args.has("socket") ? args.value("socket")
                                           : options.data_dir + "/hpas.sock";
  if (args.has("tcp"))
    options.tcp_port = static_cast<int>(hpas::flag_u64(args, "tcp"));
  options.threads = static_cast<int>(hpas::flag_u64(args, "threads"));
  options.admission_capacity =
      static_cast<std::size_t>(hpas::flag_u64(args, "admit"));
  options.sim_shards = static_cast<int>(hpas::flag_u64(args, "sim-shards"));
  options.io_timeout_s = hpas::flag_duration_seconds(args, "io-timeout");
  options.spool_cap_bytes = hpas::parse_bytes(args.value("spool-cap"));
  options.scrub_interval_s =
      hpas::flag_duration_seconds(args, "scrub-interval");
  // The cache replays the journal before the socket exists, so the data
  // dir must be creatable up front.
  std::filesystem::create_directories(options.data_dir);

  hpas::server::Server server(options);
  server.start();

  auto& shutdown = hpas::ShutdownController::instance();
  shutdown.install();
  ScopedShutdownSubscription on_signal([&server](int count) {
    // Nonblocking on the watcher thread: the blocking drain happens in
    // server.wait() below, so a second signal can still get through.
    if (count == 1) {
      std::fprintf(stderr,
                   "\nhpas: draining (finishing admitted scenarios, "
                   "journaling); signal again to cancel hard\n");
      server.request_drain();
    } else {
      server.request_hard();
    }
  });

  const auto stats = server.stats();
  std::printf("serve: listening on %s", options.socket_path.c_str());
  if (server.tcp_port() >= 0)
    std::printf(" and 127.0.0.1:%d", server.tcp_port());
  std::printf("\nserve: cache ready, %zu result(s) restored from %s\n",
              stats.restored, options.data_dir.c_str());
  std::fflush(stdout);  // "cache ready" is the scriptable readiness line

  const std::uint64_t executed = server.wait();
  const auto final_stats = server.stats();
  std::printf("serve: %llu submission(s), %llu executed, %llu cache hit(s), "
              "%llu coalesced, %llu busy\n",
              static_cast<unsigned long long>(final_stats.submissions),
              static_cast<unsigned long long>(executed),
              static_cast<unsigned long long>(final_stats.cache_hits),
              static_cast<unsigned long long>(final_stats.coalesced),
              static_cast<unsigned long long>(final_stats.busy_rejected));
  if (shutdown.hard_requested()) return 130;
  return 0;
}

int run_submit_command(const std::vector<std::string>& argv) {
  hpas::CliParser parser(
      "hpas submit", "run a scenario grid through a running `hpas serve`");
  parser
      .add({.long_name = "socket", .short_name = 's', .value_name = "PATH",
            .help = "daemon's unix-domain socket",
            .default_value = "serve-data/hpas.sock"})
      .add({.long_name = "tcp", .short_name = '\0', .value_name = "PORT",
            .help = "connect to 127.0.0.1:PORT instead of the socket",
            .default_value = std::nullopt})
      .add({.long_name = "out", .short_name = 'o', .value_name = "DIR",
            .help = "also write each scenario's metrics CSV here",
            .default_value = std::nullopt})
      .add({.long_name = "status", .short_name = '\0', .value_name = "",
            .help = "print server statistics instead of submitting",
            .default_value = std::nullopt})
      .add({.long_name = "retry-base", .short_name = '\0',
            .value_name = "TIME",
            .help = "initial busy/reconnect retry delay (doubles per "
                    "attempt, jittered)",
            .default_value = "50ms"})
      .add({.long_name = "retry-cap", .short_name = '\0',
            .value_name = "TIME",
            .help = "upper bound on one retry delay",
            .default_value = "2s"})
      .add({.long_name = "retry-seed", .short_name = '\0', .value_name = "S",
            .help = "jitter seed; the delay sequence is deterministic "
                    "per seed",
            .default_value = "1"})
      .add(fault_schedule_flag());
  const auto args = parser.parse(argv);
  if (args.flag("help")) {
    std::fputs(parser.help_text().c_str(), stdout);
    return 0;
  }
  arm_fault_schedule_flag(args);

  const double retry_base_ms =
      hpas::flag_duration_seconds(args, "retry-base") * 1000.0;
  const double retry_cap_ms =
      hpas::flag_duration_seconds(args, "retry-cap") * 1000.0;
  const std::uint64_t retry_seed = hpas::flag_u64(args, "retry-seed");

  // Reconnect discipline: a daemon mid-restart refuses connections for a
  // moment; retry with the same capped jittered backoff as busy answers
  // instead of failing the whole campaign on the first ECONNREFUSED.
  hpas::Backoff connect_backoff(retry_base_ms, retry_cap_ms, retry_seed);
  constexpr std::uint64_t kMaxConnectAttempts = 5;
  auto connect_with_backoff = [&]() {
    while (true) {
      try {
        return args.has("tcp")
                   ? hpas::server::Client::connect_tcp(
                         static_cast<int>(hpas::flag_u64(args, "tcp")))
                   : hpas::server::Client::connect(args.value("socket"));
      } catch (const hpas::SystemError&) {
        if (connect_backoff.attempts() + 1 >= kMaxConnectAttempts) throw;
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            connect_backoff.next_ms()));
      }
    }
  };
  auto client = connect_with_backoff();

  if (args.flag("status")) {
    client.request_status();
    hpas::Json frame;
    while (client.recv(frame)) {
      if (frame.string_or("type", "") != "status") continue;
      std::fputs(frame.dump(2).c_str(), stdout);
      std::printf("submit: %llu connect retry(ies)\n",
                  static_cast<unsigned long long>(
                      connect_backoff.attempts()));
      return 0;
    }
    std::fprintf(stderr, "hpas: server closed before answering\n");
    return 1;
  }

  if (args.positional().size() != 1) {
    std::fprintf(stderr,
                 "usage: hpas submit <grid.json> [--socket PATH | --tcp "
                 "PORT] [-o DIR]\n");
    return 2;
  }
  const auto grid = hpas::runner::load_grid_file(args.positional()[0]);
  if (args.has("out"))
    std::filesystem::create_directories(args.value("out"));

  std::size_t done = 0, failed = 0, hits = 0, refused = 0;
  std::uint64_t busy_retries = 0;
  hpas::Backoff busy_backoff(retry_base_ms, retry_cap_ms, retry_seed);
  for (std::size_t i = 0; i < grid.scenarios.size(); ++i) {
    const auto& spec = grid.scenarios[i];
    const std::uint64_t id = i + 1;
    bool cached = false;
    hpas::Json outcome;
    // Submit-and-wait per scenario; `busy` answers are retried -- the
    // explicit backpressure loop the daemon's bounded admission expects.
    while (true) {
      client.submit(id, spec);
      bool retry = false;
      hpas::Json frame;
      while (true) {
        if (!client.recv(frame))
          throw hpas::SystemError("submit: server closed mid-campaign");
        if (static_cast<std::uint64_t>(frame.number_or("id", 0)) != id)
          continue;
        const std::string type = frame.string_or("type", "");
        if (type == "accepted") {
          cached = frame.bool_or("cached", false);
          continue;
        }
        if (type == "busy") {
          retry = true;
          break;
        }
        outcome = std::move(frame);
        break;
      }
      if (!retry) break;
      // Capped jittered exponential backoff on `busy`: admission pressure
      // clears on the server's schedule, not ours, and lockstep
      // resubmission from several clients would just re-create the burst.
      ++busy_retries;
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          busy_backoff.next_ms()));
    }
    busy_backoff.reset();  // fresh delay ladder per scenario

    const std::string type = outcome.string_or("type", "");
    const std::string status = outcome.string_or("status", type);
    if (cached) ++hits;
    if (type == "result" && status == "done") {
      ++done;
      if (args.has("out")) {
        const hpas::Json* csv = outcome.find("metrics_csv");
        if (csv != nullptr)
          write_text_file(args.value("out") + "/" + spec.name + ".csv",
                          csv->as_string());
      }
    } else if (type == "draining") {
      ++refused;
    } else {
      ++failed;
    }
    std::printf("  %-40s %-9s%s\n", spec.name.c_str(), status.c_str(),
                cached ? "  (cached)" : "");
    if (!outcome.string_or("error", "").empty() ||
        outcome.find("message") != nullptr)
      std::fprintf(stderr, "hpas: %s: %s\n", spec.name.c_str(),
                   outcome.string_or("error",
                                     outcome.string_or("message", ""))
                       .c_str());
  }
  std::printf("submit: %zu scenario(s), %zu done, %zu failed, %zu refused, "
              "%zu cache hit(s), %llu busy retry(ies)\n",
              grid.scenarios.size(), done, failed, refused, hits,
              static_cast<unsigned long long>(busy_retries));
  return (failed == 0 && refused == 0) ? 0 : 1;
}

// Streaming ML dataset generation (bounded-memory feature extraction,
// sharded checksummed output):
//   hpas dataset grid.json --rows 100000 --shards 8 -j 8 -o data/
//   hpas dataset space.json --rows 5000 -o data/     # sampled from a space
//   hpas dataset --diagnosis -o data/                # the Fig. 9 sweep
//   hpas dataset ... -o data/ --resume               # continue a killed run
//   hpas dataset -o data/ --manifest-only            # re-verify from disk
int run_dataset_command(const std::vector<std::string>& argv) {
  hpas::CliParser parser(
      "hpas dataset",
      "generate a labeled ML dataset with streaming feature extraction, "
      "sharded CRC-framed output and a checksummed manifest");
  parser
      .add({.long_name = "threads", .short_name = 'j', .value_name = "N",
            .help = "worker threads; 0 = all hardware threads",
            .default_value = "0"})
      .add({.long_name = "out", .short_name = 'o', .value_name = "DIR",
            .help = "dataset directory (shards + manifest.json + journal)",
            .default_value = "dataset-out"})
      .add({.long_name = "rows", .short_name = '\0', .value_name = "N",
            .help = "rows to generate; a grid is cycled (fresh seeds per "
                    "row), a space is sampled. 0 = one row per grid entry",
            .default_value = "0"})
      .add({.long_name = "shards", .short_name = '\0', .value_name = "N",
            .help = "shard files; row i lands in shard i %% N (a layout "
                    "knob: bytes are identical at any thread count)",
            .default_value = "4"})
      .add({.long_name = "checkpoint", .short_name = '\0', .value_name = "N",
            .help = "rows per shard between durability checkpoints",
            .default_value = "1024"})
      .add({.long_name = "resume", .short_name = '\0', .value_name = "",
            .help = "adopt DIR's journaled checkpoints, re-run only the "
                    "missing rows (byte-identical to an uninterrupted run)",
            .default_value = std::nullopt})
      .add({.long_name = "manifest-only", .short_name = '\0',
            .value_name = "",
            .help = "verify DIR against its manifest (no generation); "
                    "exit 3 on any mismatch",
            .default_value = std::nullopt})
      .add({.long_name = "csv", .short_name = '\0', .value_name = "",
            .help = "also export dataset.csv (plan order)",
            .default_value = std::nullopt})
      .add({.long_name = "noise", .short_name = '\0', .value_name = "X",
            .help = "relative sensor noise on feature series",
            .default_value = "0.5"})
      .add({.long_name = "warmup", .short_name = '\0', .value_name = "TIME",
            .help = "simulated warmup excluded from the feature window",
            .default_value = "5"})
      .add({.long_name = "seed", .short_name = '\0', .value_name = "N",
            .help = "override the plan's base seed",
            .default_value = std::nullopt})
      .add({.long_name = "diagnosis", .short_name = '\0', .value_name = "",
            .help = "use the built-in diagnosis training sweep as the plan "
                    "(no grid/space file)",
            .default_value = std::nullopt})
      .add({.long_name = "variants", .short_name = '\0', .value_name = "N",
            .help = "--diagnosis: anomaly-intensity variants per app",
            .default_value = "5"})
      .add(fault_schedule_flag());
  const auto args = parser.parse(argv);
  if (args.flag("help")) {
    std::fputs(parser.help_text().c_str(), stdout);
    return 0;
  }
  arm_fault_schedule_flag(args);
  const std::string out_dir = args.value("out");

  if (args.flag("manifest-only")) {
    const auto report = hpas::dataset::verify_dataset(out_dir);
    if (report.ok) {
      std::printf("dataset %s: verified against manifest.json\n",
                  out_dir.c_str());
      return 0;
    }
    for (const auto& error : report.errors)
      std::fprintf(stderr, "hpas: dataset %s: %s\n", out_dir.c_str(),
                   error.c_str());
    return 3;
  }

  const std::uint64_t rows = hpas::flag_u64(args, "rows");
  const double warmup_s = hpas::flag_duration_seconds(args, "warmup");
  const double noise = hpas::flag_double(args, "noise");
  hpas::dataset::DatasetPlan plan;
  if (args.flag("diagnosis")) {
    if (!args.positional().empty()) {
      std::fprintf(stderr,
                   "hpas: --diagnosis uses the built-in plan; drop the "
                   "grid/space file\n");
      return 2;
    }
    hpas::ml::DiagnosisDataOptions options;
    options.variants_per_app =
        static_cast<int>(hpas::flag_u64(args, "variants"));
    options.measurement_noise = noise;
    options.warmup_s = warmup_s;
    if (args.has("seed")) options.seed = hpas::flag_u64(args, "seed");
    plan = hpas::dataset::plan_from_diagnosis(options);
  } else {
    if (args.positional().size() != 1) {
      std::fprintf(stderr,
                   "usage: hpas dataset <grid.json|space.json> [--rows N] "
                   "[--shards N] [-j N] [-o DIR]\n"
                   "       hpas dataset --diagnosis [-o DIR]\n"
                   "       hpas dataset -o DIR --manifest-only\n");
      return 2;
    }
    const hpas::Json doc = load_json_file(args.positional()[0]);
    if (doc.find("dimensions") != nullptr) {
      auto space = hpas::search::ScenarioSpace::from_json(doc);
      if (args.has("seed"))
        space.set_base_seed(hpas::flag_u64(args, "seed"));
      if (rows == 0)
        throw hpas::ConfigError(
            "hpas dataset: --rows is required for a scenario space");
      plan = hpas::dataset::plan_from_space(space, rows, warmup_s, noise,
                                            /*include_bandwidth=*/false);
    } else {
      auto grid = hpas::runner::expand_grid(doc);
      if (args.has("seed")) {
        grid.base_seed = hpas::flag_u64(args, "seed");
      }
      plan = hpas::dataset::plan_from_grid(grid, rows, warmup_s, noise,
                                           /*include_bandwidth=*/false);
    }
  }

  int threads = static_cast<int>(hpas::flag_u64(args, "threads"));
  if (threads == 0)
    threads = hpas::runner::WorkStealingPool::default_thread_count();
  std::printf("dataset '%s': %zu rows x %zu features, %llu shards, "
              "%d threads\n",
              plan.name.c_str(), plan.rows.size(), plan.feature_names.size(),
              static_cast<unsigned long long>(hpas::flag_u64(args, "shards")),
              threads);

  // Static lifetime: the watcher thread may still dereference the tokens
  // while main unwinds after a signal near the end of the run.
  static hpas::CancelToken graceful;
  static hpas::CancelToken hard;
  auto& shutdown = hpas::ShutdownController::instance();
  shutdown.install();
  ScopedShutdownSubscription on_signal([](int count) {
    if (count == 1) {
      graceful.cancel(hpas::CancelReason::kShutdown);
      std::fprintf(stderr,
                   "\nhpas: draining in-flight rows (checkpointing); "
                   "signal again to cancel hard\n");
    } else {
      hard.cancel(hpas::CancelReason::kShutdown);
    }
  });

  hpas::dataset::DatasetFactoryOptions options;
  options.out_dir = out_dir;
  options.shards = static_cast<std::uint32_t>(hpas::flag_u64(args, "shards"));
  options.threads = threads;
  options.checkpoint_rows = hpas::flag_u64(args, "checkpoint");
  options.resume = args.flag("resume");
  options.write_csv = args.flag("csv");
  options.graceful = &graceful;
  options.hard = &hard;

  const auto result = hpas::dataset::run_dataset_factory(plan, options);
  std::printf("dataset: %llu rows (%llu executed, %llu resumed), "
              "%llu samples streamed, peak %zu buffered values/row\n",
              static_cast<unsigned long long>(result.rows_total),
              static_cast<unsigned long long>(result.rows_executed),
              static_cast<unsigned long long>(result.rows_resumed),
              static_cast<unsigned long long>(result.samples_seen),
              result.peak_buffered_values);
  if (result.complete)
    std::printf("wrote %s\n", result.manifest_path.c_str());

  if (shutdown.hard_requested()) {
    std::fprintf(stderr,
                 "hpas: dataset cancelled hard; journal is valid, resume "
                 "with: hpas dataset ... -o %s --resume\n",
                 out_dir.c_str());
    return 130;
  }
  if (!result.complete) {
    std::printf("hpas: dataset incomplete; resume with: hpas dataset ... "
                "-o %s --resume\n",
                out_dir.c_str());
    return 5;
  }
  return 0;
}

void print_catalog() {
  std::printf("%-12s %-16s %-34s %s\n", "NAME", "SUBSYSTEM", "BEHAVIOR",
              "KNOBS");
  for (const auto& info : hpas::anomalies::anomaly_catalog()) {
    std::printf("%-12s %-16s %-34s %s\n", info.name.c_str(),
                info.subsystem.c_str(), info.behavior.c_str(),
                info.knobs.c_str());
  }
  std::printf(
      "\nEvery anomaly accepts --duration, --start-delay and --seed.\n"
      "Run `hpas <anomaly> --help` for its knobs, compose instances\n"
      "with `hpas schedule <file>`, or batch simulated experiments with\n"
      "`hpas sweep <grid.json>` (deterministic parallel runner).\n");
}

int run_anomaly(const std::string& name, const std::vector<std::string>& argv) {
  const auto parser = hpas::anomalies::make_anomaly_parser(name);
  const auto args = parser.parse(argv);
  if (args.flag("help")) {
    std::fputs(parser.help_text().c_str(), stdout);
    return 0;
  }
  const auto anomaly = hpas::anomalies::make_anomaly(name, args);

  hpas::ShutdownController::instance().install();
  // request_stop is a relaxed atomic store; the callback runs on the
  // watcher thread, not in signal context, so ordinary code is fine. The
  // subscription is scoped: it dies before `anomaly` does.
  hpas::anomalies::Anomaly* const running = anomaly.get();
  ScopedShutdownSubscription stop_on_signal(
      [running](int) { running->request_stop(); });

  hpas::anomalies::RunStats stats;
  try {
    stats = anomaly->run();
  } catch (...) {
    // setup()/run() threw: still surface any structured failure records
    // gathered before the exception.
    const auto& supervision = anomaly->supervision_report();
    if (!supervision.healthy())
      std::fprintf(stderr, "hpas: %s\n", supervision.to_string().c_str());
    throw;
  }

  std::printf(
      "%s: %llu iterations, work=%.3g, active=%s, elapsed=%s\n",
      name.c_str(), static_cast<unsigned long long>(stats.iterations),
      stats.work_amount, hpas::format_seconds(stats.active_seconds).c_str(),
      hpas::format_seconds(stats.elapsed_seconds).c_str());

  // Surface worker failures: a generator that lost workers must say so
  // and exit nonzero (4) -- never a silent dead worker.
  const auto& supervision = anomaly->supervision_report();
  if (supervision.fatal() || supervision.transient_recovered > 0 ||
      supervision.failures_dropped > 0) {
    std::fprintf(stderr, "hpas: %s\n", supervision.to_string().c_str());
  }
  return supervision.fatal() ? 4 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  try {
    // Chaos-testing hook: arm a fault schedule for any subcommand. The
    // per-command --fault-schedule flag re-arms over this if both are
    // given. Unset (the normal case) this is a single getenv.
    if (const char* env = std::getenv("HPAS_FAULT_SCHEDULE");
        env != nullptr && *env != '\0')
      hpas::faultline::arm(hpas::faultline::FaultSchedule::load_file(env));
    if (args.empty() || args[0] == "--help" || args[0] == "-h" ||
        args[0] == "help") {
      std::printf("hpas - HPC Performance Anomaly Suite\n\n");
      print_catalog();
      return 0;
    }
    if (args[0] == "list") {
      print_catalog();
      return 0;
    }
    if (args[0] == "schedule") {
      return run_schedule_command({args.begin() + 1, args.end()});
    }
    if (args[0] == "sweep") {
      return run_sweep_command({args.begin() + 1, args.end()});
    }
    if (args[0] == "search") {
      return run_search_command({args.begin() + 1, args.end()});
    }
    if (args[0] == "dataset") {
      return run_dataset_command({args.begin() + 1, args.end()});
    }
    if (args[0] == "serve") {
      return run_serve_command({args.begin() + 1, args.end()});
    }
    if (args[0] == "submit") {
      return run_submit_command({args.begin() + 1, args.end()});
    }
    if (!hpas::anomalies::is_known_anomaly(args[0])) {
      std::fprintf(stderr, "hpas: unknown anomaly '%s'; try `hpas list`\n",
                   args[0].c_str());
      return 2;
    }
    return run_anomaly(args[0], {args.begin() + 1, args.end()});
  } catch (const hpas::ConfigError& e) {
    std::fprintf(stderr, "hpas: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hpas: fatal: %s\n", e.what());
    return 1;
  }
}
