// trace_diff -- compare two recorded simulation traces and report the
// first divergent event.
//
//   trace_diff a.trace.bin b.trace.bin
//
// Exit status: 0 when the traces match bit for bit, 1 on divergence
// (the first differing event is printed, rendered with both sides'
// fields), 2 on usage or unreadable/corrupt input. This is the tool that
// turns "two sweeps disagreed" into "event #4217: recorded {...} vs
// fresh {...}".
#include <cstdio>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "trace/export.hpp"
#include "trace/replay.hpp"
#include "trace/tracer.hpp"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  if (args.size() != 2 || args[0] == "--help" || args[0] == "-h") {
    std::fprintf(stderr,
                 "usage: trace_diff <recorded.bin> <fresh.bin>\n"
                 "  exit 0: traces identical; 1: diverged (first divergent\n"
                 "  event printed); 2: bad usage or unreadable trace\n");
    return 2;
  }
  try {
    const hpas::trace::TraceFile recorded =
        hpas::trace::read_binary_file(args[0]);
    const hpas::trace::TraceFile fresh =
        hpas::trace::read_binary_file(args[1]);
    const auto divergence = hpas::trace::diff_traces(recorded, fresh);
    if (divergence.diverged) {
      std::printf("traces diverge: %s\n", divergence.description.c_str());
      return 1;
    }
    std::printf("traces identical: %zu records (%s emitted %llu, %s emitted "
                "%llu)\n",
                recorded.records.size(), args[0].c_str(),
                static_cast<unsigned long long>(recorded.emitted),
                args[1].c_str(),
                static_cast<unsigned long long>(fresh.emitted));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace_diff: %s\n", e.what());
    return 2;
  }
}
