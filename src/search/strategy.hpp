// Pluggable search strategies over a ScenarioSpace.
//
// The driver runs the search in fixed-size batches: it asks the strategy
// for `count` proposals, evaluates them on the work-stealing pool, and
// feeds the results back through observe() in proposal order. Because the
// batch size is a search parameter (not the thread count) and observations
// are folded in proposal order, a strategy's trajectory is a pure function
// of (space, seed, objective values) -- the pool's thread count is as
// unobservable here as it is in `hpas sweep`.
//
// All randomness flows from one Rng seeded by the driver, so the proposal
// sequence is bit-reproducible; strategies must not consult wall clocks,
// addresses, or any other ambient state.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "search/space.hpp"

namespace hpas::search {

class SearchStrategy {
 public:
  virtual ~SearchStrategy() = default;
  virtual const char* name() const = 0;

  /// Next `count` points to evaluate, in order. Called once per batch.
  virtual std::vector<Point> propose(std::size_t count) = 0;

  /// Result of one evaluated proposal, fed back in proposal order.
  /// Failed evaluations report a very large negative objective.
  virtual void observe(const Point& p, double objective) = 0;
};

/// Uniform random sampling -- the baseline guided strategies must beat.
class RandomStrategy final : public SearchStrategy {
 public:
  RandomStrategy(const ScenarioSpace& space, std::uint64_t seed);
  const char* name() const override { return "random"; }
  std::vector<Point> propose(std::size_t count) override;
  void observe(const Point& p, double objective) override;

 private:
  const ScenarioSpace& space_;
  Rng rng_;
};

/// Simulated annealing (maximizing): proposals are seeded mutations of the
/// current chain state; Metropolis acceptance with a geometric temperature
/// schedule decides whether the chain moves. The first batch is drawn
/// uniformly to seed the chain.
class AnnealingStrategy final : public SearchStrategy {
 public:
  struct Options {
    double initial_temperature = 0.5;  ///< relative to the objective scale
    double decay = 0.95;               ///< per observation
    double mutation_scale = 0.2;       ///< stddev as a fraction of range
  };

  /// (No default for `options`: nested-class member initializers cannot
  /// appear in a default argument of the enclosing class.)
  AnnealingStrategy(const ScenarioSpace& space, std::uint64_t seed)
      : AnnealingStrategy(space, seed, Options{}) {}
  AnnealingStrategy(const ScenarioSpace& space, std::uint64_t seed,
                    Options options);
  const char* name() const override { return "anneal"; }
  std::vector<Point> propose(std::size_t count) override;
  void observe(const Point& p, double objective) override;

  const Point& best_point() const { return best_; }
  double best_value() const { return best_value_; }

 private:
  const ScenarioSpace& space_;
  Rng rng_;
  Options options_;
  bool has_current_ = false;
  Point current_;
  double current_value_ = 0.0;
  Point best_;
  double best_value_ = 0.0;
  std::size_t observed_ = 0;
};

/// Epsilon-greedy bandit over dimension subspaces: each dimension is an
/// arm whose pull mutates the incumbent best point along that dimension
/// only; arm value is the mean objective improvement it has produced. One
/// extra "recombine" arm proposes a crossover of the incumbent with a
/// fresh uniform sample, which is what lets the bandit escape a local
/// optimum no single-dimension move can leave.
class BanditStrategy final : public SearchStrategy {
 public:
  struct Options {
    double epsilon = 0.25;       ///< exploration probability per proposal
    double mutation_scale = 0.25;
  };

  BanditStrategy(const ScenarioSpace& space, std::uint64_t seed)
      : BanditStrategy(space, seed, Options{}) {}
  BanditStrategy(const ScenarioSpace& space, std::uint64_t seed,
                 Options options);
  const char* name() const override { return "bandit"; }
  std::vector<Point> propose(std::size_t count) override;
  void observe(const Point& p, double objective) override;

 private:
  std::size_t pick_arm();

  const ScenarioSpace& space_;
  Rng rng_;
  Options options_;
  bool has_best_ = false;
  Point best_;
  double best_value_ = 0.0;
  std::vector<std::size_t> pulls_;    ///< per arm (last = recombine)
  std::vector<double> total_reward_;  ///< per arm
  std::vector<std::size_t> pending_arms_;  ///< arm of each open proposal
  std::size_t pending_next_ = 0;
};

/// Factory by CLI name: "random", "anneal", "bandit". Throws ConfigError
/// on anything else.
std::unique_ptr<SearchStrategy> make_strategy(const std::string& name,
                                              const ScenarioSpace& space,
                                              std::uint64_t seed);

}  // namespace hpas::search
