// Pluggable search objectives.
//
// An objective turns one evaluated scenario into a single maximized score.
// Scores are computed from the scenario's summary scalars (app execution
// time, iterations -- exactly what the sweep summary JSON carries and the
// journal checkpoints), optionally augmented by
//   * a baseline run (the same scenario with anomaly "none"), which the
//     driver evaluates, caches and journals like any other scenario, and
//   * a world probe -- a deterministic measurement taken on the simulated
//     world right after the run, before teardown (e.g. WBAS computing-
//     capacity ranks, or classifier confidence over the monitoring
//     window's features).
//
// Determinism contract: score() must be a pure function of its arguments,
// and probe() a pure function of the post-run world state -- the journal
// stores the final objective value per scenario, and resume trusts it as
// an exact evaluation cache.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ml/random_forest.hpp"
#include "runner/grid.hpp"
#include "sim/world.hpp"

namespace hpas::search {

/// The summary scalars one scenario evaluation produces.
struct Measurement {
  double app_elapsed_s = 0.0;
  std::uint64_t app_iterations = 0;
};

class Objective {
 public:
  virtual ~Objective() = default;
  virtual const char* name() const = 0;

  /// True when score() needs the anomaly-free baseline's app time; the
  /// driver evaluates (and journals) one baseline per distinct
  /// configuration.
  virtual bool needs_baseline() const { return false; }

  /// True when the objective measures the post-run world (probe()).
  virtual bool needs_probe() const { return false; }

  /// Deterministic measurement on the world right after the scenario ran
  /// (only called when needs_probe()). Runs on the evaluating worker
  /// thread; the world is scenario-private, so no synchronization is
  /// needed.
  virtual double probe(sim::World& world,
                       const runner::ScenarioSpec& spec) const {
    (void)world;
    (void)spec;
    return 0.0;
  }

  /// The maximized score. `baseline` is all-zero when no baseline was
  /// requested (or it failed); `probe_value` is 0 unless needs_probe().
  virtual double score(const runner::ScenarioSpec& spec,
                       const Measurement& run, const Measurement& baseline,
                       double probe_value) const = 0;
};

/// App slowdown per unit anomaly intensity, measured on iteration
/// *throughput* so it works in both run modes: in windowed runs the
/// elapsed time is pinned to the window and only the completed-iteration
/// count carries the degradation; in run-to-completion runs the iteration
/// count is pinned and the ratio reduces to the paper's execution-time
/// ratio. score = (baseline_throughput / throughput - 1) / intensity --
/// the fig08 question: which anomaly configurations hurt applications
/// most for the least injected load. Anomaly-free scenarios score
/// exactly 0.
class DegradationPerIntensityObjective final : public Objective {
 public:
  const char* name() const override {
    return "max_degradation_per_intensity";
  }
  bool needs_baseline() const override { return true; }
  double score(const runner::ScenarioSpec& spec, const Measurement& run,
               const Measurement& baseline,
               double probe_value) const override;
};

/// Drives the fig09/fig10 classifier's confidence in the *true* anomaly
/// class down: score = 1 - P(true class | window features), where the
/// probability comes from a RandomForest trained on the diagnosis dataset.
/// A high score is an anomaly configuration the ML diagnosis misses.
/// Anomaly-free scenarios (nothing to evade) score 0.
class EvadeDiagnosisObjective final : public Objective {
 public:
  /// Takes a trained forest and the class list it was trained with
  /// (tests inject small ones; make_objective trains the default).
  EvadeDiagnosisObjective(std::shared_ptr<const ml::RandomForest> forest,
                          std::vector<std::string> classes,
                          double warmup_s = 2.0);

  const char* name() const override { return "evade_diagnosis"; }
  bool needs_probe() const override { return true; }
  double probe(sim::World& world,
               const runner::ScenarioSpec& spec) const override;
  double score(const runner::ScenarioSpec& spec, const Measurement& run,
               const Measurement& baseline,
               double probe_value) const override;

 private:
  std::shared_ptr<const ml::RandomForest> forest_;
  std::vector<std::string> classes_;
  double warmup_s_;
};

/// Scheduler worst case (fig12/fig13): how attractive the anomalous node
/// still looks to WBAS after the anomaly ran, as the ratio of its
/// computing-capacity value to the best node's. 1 means WBAS would
/// allocate the next job straight onto the degraded node -- the
/// allocation-policy failure mode the paper studies.
class SchedulerWorstCaseObjective final : public Objective {
 public:
  const char* name() const override { return "scheduler_worst_case"; }
  bool needs_probe() const override { return true; }
  double probe(sim::World& world,
               const runner::ScenarioSpec& spec) const override;
  double score(const runner::ScenarioSpec& spec, const Measurement& run,
               const Measurement& baseline,
               double probe_value) const override;
};

struct ObjectiveFactoryOptions {
  /// Worker threads for one-off setup work (the evade objective trains a
  /// forest on a freshly generated diagnosis dataset).
  int threads = 1;
};

/// Factory by CLI name: "max_degradation_per_intensity" (alias
/// "degradation"), "evade_diagnosis" (alias "evade"),
/// "scheduler_worst_case" (alias "wbas"). Throws ConfigError otherwise.
/// Building "evade_diagnosis" generates a small deterministic diagnosis
/// dataset and trains the classifier -- a one-time, seeded setup cost.
std::unique_ptr<Objective> make_objective(
    const std::string& name, const ObjectiveFactoryOptions& options = {});

}  // namespace hpas::search
