#include "search/objective.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "ml/diagnosis.hpp"
#include "runner/diagnosis_sweep.hpp"
#include "sched/monitor.hpp"
#include "sched/policies.hpp"

namespace hpas::search {

// --- max_degradation_per_intensity -------------------------------------

double DegradationPerIntensityObjective::score(
    const runner::ScenarioSpec& spec, const Measurement& run,
    const Measurement& baseline, double probe_value) const {
  (void)probe_value;
  // Anomaly-free points ARE the baselines; scoring them exactly 0 keeps
  // the journaled objective consistent whether a point was evaluated as a
  // proposal or as another point's baseline.
  if (spec.anomaly == "none") return 0.0;
  if (run.app_elapsed_s <= 0.0 || baseline.app_elapsed_s <= 0.0) return 0.0;
  double slowdown = 0.0;
  if (run.app_iterations > 0 && baseline.app_iterations > 0) {
    // Throughput ratio: exact in windowed runs (elapsed is pinned to the
    // window, iterations carry the slowdown) and identical to the
    // execution-time ratio in run-to-completion runs.
    const double tput = static_cast<double>(run.app_iterations) /
                        run.app_elapsed_s;
    const double base_tput = static_cast<double>(baseline.app_iterations) /
                             baseline.app_elapsed_s;
    if (tput <= 0.0) return 0.0;
    slowdown = base_tput / tput - 1.0;
  } else {
    slowdown = run.app_elapsed_s / baseline.app_elapsed_s - 1.0;
  }
  return slowdown / std::max(spec.intensity, 1e-6);
}

// --- evade_diagnosis ----------------------------------------------------

EvadeDiagnosisObjective::EvadeDiagnosisObjective(
    std::shared_ptr<const ml::RandomForest> forest,
    std::vector<std::string> classes, double warmup_s)
    : forest_(std::move(forest)),
      classes_(std::move(classes)),
      warmup_s_(warmup_s) {
  if (!forest_ || !forest_->trained())
    throw ConfigError("evade_diagnosis: requires a trained forest");
  if (classes_.empty())
    throw ConfigError("evade_diagnosis: requires the training class list");
}

double EvadeDiagnosisObjective::probe(sim::World& world,
                                      const runner::ScenarioSpec& spec) const {
  const auto it = std::find(classes_.begin(), classes_.end(), spec.anomaly);
  if (it == classes_.end()) return 0.0;
  const auto true_class =
      static_cast<std::size_t>(std::distance(classes_.begin(), it));
  // Anomalies inject on node 0; diagnose its monitoring window with the
  // training pipeline's conventions (no bandwidth metrics, no noise).
  const double t1 = std::max(spec.duration_s, warmup_s_ + 1.0);
  const std::vector<double> features = ml::extract_window_features(
      world.node_store(0), warmup_s_, t1,
      /*include_bandwidth_metrics=*/false, /*noise=*/0.0, /*rng=*/nullptr);
  const std::vector<double> proba = forest_->predict_proba(features);
  if (true_class >= proba.size()) return 0.0;
  return proba[true_class];
}

double EvadeDiagnosisObjective::score(const runner::ScenarioSpec& spec,
                                      const Measurement& run,
                                      const Measurement& baseline,
                                      double probe_value) const {
  (void)run;
  (void)baseline;
  // No anomaly, or one the classifier was never trained on: nothing to
  // evade.
  if (spec.anomaly == "none") return 0.0;
  if (std::find(classes_.begin(), classes_.end(), spec.anomaly) ==
      classes_.end())
    return 0.0;
  return std::clamp(1.0 - probe_value, 0.0, 1.0);
}

// --- scheduler_worst_case ----------------------------------------------

double SchedulerWorstCaseObjective::probe(
    sim::World& world, const runner::ScenarioSpec& spec) const {
  (void)spec;
  sched::NodeMonitor monitor(world, /*period_s=*/10.0);
  monitor.sample_once();
  const std::vector<sched::NodeStatus> status = monitor.status();
  if (status.empty()) return 0.0;
  double cp_anomalous = 0.0;
  double cp_best = 0.0;
  for (const sched::NodeStatus& node : status) {
    const double cp = sched::WbasPolicy::computing_capacity(node);
    if (node.node_id == 0) cp_anomalous = cp;
    cp_best = std::max(cp_best, cp);
  }
  if (cp_best <= 0.0) return cp_anomalous <= 0.0 ? 1.0 : 0.0;
  return std::clamp(cp_anomalous / cp_best, 0.0, 1.0);
}

double SchedulerWorstCaseObjective::score(const runner::ScenarioSpec& spec,
                                          const Measurement& run,
                                          const Measurement& baseline,
                                          double probe_value) const {
  (void)run;
  (void)baseline;
  // The interesting worst case is an *injected* anomaly WBAS cannot see;
  // without one every node ranks alike and the ratio is trivially 1.
  if (spec.anomaly == "none") return 0.0;
  return probe_value;
}

// --- factory ------------------------------------------------------------

std::unique_ptr<Objective> make_objective(
    const std::string& name, const ObjectiveFactoryOptions& options) {
  if (name == "max_degradation_per_intensity" || name == "degradation")
    return std::make_unique<DegradationPerIntensityObjective>();
  if (name == "scheduler_worst_case" || name == "wbas")
    return std::make_unique<SchedulerWorstCaseObjective>();
  if (name == "evade_diagnosis" || name == "evade") {
    // Train the diagnosis classifier once, deterministically: a reduced
    // dataset (one intensity variant per app/class, short windows) keeps
    // the setup to a few seconds while preserving the fig09 class
    // structure the objective scores against.
    ml::DiagnosisDataOptions data;
    data.variants_per_app = 1;
    data.run_duration_s = 20.0;
    data.warmup_s = 2.0;
    const ml::Dataset dataset = runner::generate_diagnosis_dataset_parallel(
        data, std::max(1, options.threads));
    ml::ForestOptions forest_options;
    forest_options.num_trees = 30;
    auto forest = std::make_shared<ml::RandomForest>(forest_options);
    forest->fit(dataset);
    return std::make_unique<EvadeDiagnosisObjective>(
        std::move(forest), dataset.class_names, data.warmup_s);
  }
  throw ConfigError(
      "search: unknown objective '" + name +
      "' (expected max_degradation_per_intensity, evade_diagnosis or "
      "scheduler_worst_case)");
}

}  // namespace hpas::search
