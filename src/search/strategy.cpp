#include "search/strategy.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace hpas::search {
namespace {

/// Stream-splitting: each strategy derives its generator from (seed, tag)
/// so strategies seeded alike but named differently do not share streams.
Rng strategy_rng(std::uint64_t seed, std::uint64_t tag) {
  SplitMix64 mixer(seed ^ tag);
  return Rng(mixer.next());
}

}  // namespace

// --- random ------------------------------------------------------------

RandomStrategy::RandomStrategy(const ScenarioSpace& space, std::uint64_t seed)
    : space_(space), rng_(strategy_rng(seed, 0x52414e44ULL /* "RAND" */)) {}

std::vector<Point> RandomStrategy::propose(std::size_t count) {
  std::vector<Point> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(space_.sample(rng_));
  return out;
}

void RandomStrategy::observe(const Point&, double) {}

// --- simulated annealing ----------------------------------------------

AnnealingStrategy::AnnealingStrategy(const ScenarioSpace& space,
                                     std::uint64_t seed, Options options)
    : space_(space),
      rng_(strategy_rng(seed, 0x414e4e45ULL /* "ANNE" */)),
      options_(options) {}

std::vector<Point> AnnealingStrategy::propose(std::size_t count) {
  std::vector<Point> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (!has_current_) {
      out.push_back(space_.sample(rng_));
    } else {
      out.push_back(space_.mutate(current_, rng_, options_.mutation_scale));
    }
  }
  return out;
}

void AnnealingStrategy::observe(const Point& p, double objective) {
  // Geometric cooling, one step per observation; the temperature is
  // relative to the incumbent's magnitude so the schedule does not depend
  // on the objective's absolute scale.
  const double temperature =
      options_.initial_temperature *
      std::pow(options_.decay, static_cast<double>(observed_));
  ++observed_;

  if (!has_current_ || objective >= current_value_) {
    current_ = p;
    current_value_ = objective;
    has_current_ = true;
  } else {
    const double scale = std::max(std::abs(current_value_), 1e-3);
    const double accept =
        std::exp((objective - current_value_) / (temperature * scale));
    if (rng_.uniform01() < accept) {
      current_ = p;
      current_value_ = objective;
    }
  }
  if (best_.coords.empty() || objective > best_value_) {
    best_ = p;
    best_value_ = objective;
  }
}

// --- epsilon-greedy bandit --------------------------------------------

BanditStrategy::BanditStrategy(const ScenarioSpace& space, std::uint64_t seed,
                               Options options)
    : space_(space),
      rng_(strategy_rng(seed, 0x42414e44ULL /* "BAND" */)),
      options_(options),
      pulls_(space.size() + 1, 0),
      total_reward_(space.size() + 1, 0.0) {}

std::size_t BanditStrategy::pick_arm() {
  const std::size_t arms = pulls_.size();
  if (rng_.uniform01() < options_.epsilon)
    return static_cast<std::size_t>(rng_.next_below(arms));
  // Exploit: best mean reward; unpulled arms count as 0, ties resolve to
  // the lowest index -- both deterministic.
  std::size_t best_arm = 0;
  double best_mean = -1.0;
  for (std::size_t a = 0; a < arms; ++a) {
    const double mean =
        pulls_[a] == 0 ? 0.0
                       : total_reward_[a] / static_cast<double>(pulls_[a]);
    if (mean > best_mean) {
      best_mean = mean;
      best_arm = a;
    }
  }
  return best_arm;
}

std::vector<Point> BanditStrategy::propose(std::size_t count) {
  std::vector<Point> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (!has_best_) {
      out.push_back(space_.sample(rng_));
      pending_arms_.push_back(pulls_.size());  // sentinel: seeding draw
      continue;
    }
    const std::size_t arm = pick_arm();
    pending_arms_.push_back(arm);
    if (arm == space_.size()) {
      // The recombine arm: crossover of the incumbent with a fresh
      // uniform sample (never an interpolation -- see ScenarioSpace).
      out.push_back(space_.crossover(best_, space_.sample(rng_), rng_));
    } else {
      out.push_back(
          space_.mutate_dimension(best_, arm, rng_, options_.mutation_scale));
    }
  }
  return out;
}

void BanditStrategy::observe(const Point& p, double objective) {
  const std::size_t arm = pending_next_ < pending_arms_.size()
                              ? pending_arms_[pending_next_]
                              : pulls_.size();
  ++pending_next_;
  // Reward is the improvement over the incumbent at observation time; a
  // non-improving pull scores 0, so arm means stay comparable.
  const double reward =
      has_best_ ? std::max(0.0, objective - best_value_) : 0.0;
  if (arm < pulls_.size()) {
    ++pulls_[arm];
    total_reward_[arm] += reward;
  }
  if (!has_best_ || objective > best_value_) {
    best_ = p;
    best_value_ = objective;
    has_best_ = true;
  }
}

std::unique_ptr<SearchStrategy> make_strategy(const std::string& name,
                                              const ScenarioSpace& space,
                                              std::uint64_t seed) {
  if (name == "random")
    return std::make_unique<RandomStrategy>(space, seed);
  if (name == "anneal" || name == "annealing")
    return std::make_unique<AnnealingStrategy>(space, seed);
  if (name == "bandit")
    return std::make_unique<BanditStrategy>(space, seed);
  throw ConfigError("search: unknown strategy '" + name +
                    "' (expected random, anneal or bandit)");
}

}  // namespace hpas::search
