// Typed scenario-space abstraction for guided anomaly search.
//
// A ScenarioSpace lifts the grid's axes into bounded, typed dimensions --
// continuous, integer, categorical -- over the fields of a ScenarioSpec.
// Where a grid enumerates the cartesian product up front, a space is a
// *generator*: search strategies draw points from it (sample), perturb
// them (mutate / mutate_dimension) and recombine them (crossover), all
// through explicitly seeded Rng streams so a search trajectory is a pure
// function of (space text, seed).
//
// Canonical-point contract: integer and categorical coordinates are stored
// as exact integral doubles (the index for categoricals), and every
// operation returns canonical in-bounds points. Categorical dimensions are
// never interpolated -- mutation jumps to a different category, crossover
// copies a parent's category verbatim.
//
// The point's identity is its hash: materialize() derives the scenario
// name ("e" + 16 hex digits of point_hash) and the counter-based RNG seed
// from it, so the same point always becomes the same ScenarioSpec no
// matter when or where the search proposes it. That is what turns the
// crash-safe journal into an exact evaluation cache (see driver.hpp).
//
// Space file (JSON) -- base scalars like a grid, plus "dimensions":
//   {
//     "name": "fig08_search",
//     "system": "voltrino",
//     "seed": 42,
//     "duration_s": 20.0,
//     "sample_period_s": 1.0,
//     "dimensions": [
//       {"name": "app", "type": "categorical", "values": ["CoMD", "milc"]},
//       {"name": "anomaly", "type": "categorical",
//        "values": ["cpuoccupy", "cachecopy", "membw"]},
//       {"name": "intensity", "type": "continuous", "lo": 0.25, "hi": 2.0},
//       {"name": "ranks_per_node", "type": "integer", "lo": 1, "hi": 4}
//     ]
//   }
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/rng.hpp"
#include "runner/grid.hpp"

namespace hpas::search {

enum class DimKind : int { kContinuous = 0, kInteger = 1, kCategorical = 2 };

const char* dim_kind_name(DimKind kind);

/// One bounded dimension bound to a ScenarioSpec field by name.
struct Dimension {
  std::string field;  ///< "app", "anomaly", "intensity", "ranks_per_node", ...
  DimKind kind = DimKind::kContinuous;
  double lo = 0.0;  ///< numeric kinds: inclusive bounds
  double hi = 0.0;
  std::vector<std::string> values;  ///< categorical kinds: the categories
};

/// A position in the space: one coordinate per dimension, in declaration
/// order. Canonical form (enforced by every ScenarioSpace operation):
/// integer/categorical coordinates are exact integral doubles.
struct Point {
  std::vector<double> coords;

  bool operator==(const Point& other) const { return coords == other.coords; }
};

class ScenarioSpace {
 public:
  /// Parses and validates a space document. Throws ConfigError on unknown
  /// fields, kind/field mismatches (e.g. a continuous "app"), inverted or
  /// out-of-domain bounds, unknown apps/anomalies/systems, or duplicate
  /// dimensions.
  static ScenarioSpace from_json(const Json& spec);

  /// Reads and parses a space file; SystemError when unreadable.
  static ScenarioSpace load_file(const std::string& path);

  const std::string& name() const { return name_; }
  std::uint64_t base_seed() const { return base_seed_; }
  /// Overrides the space file's seed (the CLI's --seed). The base seed
  /// drives strategy streams AND materialized scenario seeds, so changing
  /// it re-randomizes the whole search coherently.
  void set_base_seed(std::uint64_t seed) { base_seed_ = seed; }
  const runner::ScenarioSpec& base() const { return base_; }
  const std::vector<Dimension>& dimensions() const { return dims_; }
  std::size_t size() const { return dims_.size(); }

  /// Uniform sample: continuous ~ U[lo, hi); integer ~ U{lo..hi};
  /// categorical ~ uniform category index.
  Point sample(Rng& rng) const;

  /// Mutates exactly one uniformly chosen dimension (see
  /// mutate_dimension). The result differs from `p` whenever the chosen
  /// dimension has more than one admissible value.
  Point mutate(const Point& p, Rng& rng, double scale = 0.2) const;

  /// Mutates dimension `dim` only: continuous coordinates take a clamped
  /// gaussian step of stddev scale*(hi-lo); integer coordinates take a
  /// rounded gaussian step of at least one; categorical coordinates jump
  /// to a uniformly chosen *different* category (never an interpolation).
  Point mutate_dimension(const Point& p, std::size_t dim, Rng& rng,
                         double scale = 0.2) const;

  /// Uniform crossover: each coordinate is copied verbatim from parent a
  /// or parent b with equal probability.
  Point crossover(const Point& a, const Point& b, Rng& rng) const;

  /// True when `p` has one canonical coordinate per dimension, inside the
  /// declared bounds.
  bool in_bounds(const Point& p) const;

  /// Clamps and canonicalizes a point (rounds integer/categorical
  /// coordinates, clips numeric ones into [lo, hi]).
  Point clamp(Point p) const;

  /// Stable 64-bit digest of the point's canonical coordinates. Equal
  /// points hash equal on every platform; the hash is the point's identity
  /// for journal caching and scenario naming.
  std::uint64_t point_hash(const Point& p) const;

  /// Binds the point onto the base spec: name = "e" + 16 hex digits of
  /// point_hash(p), seed = derive_scenario_seed(base_seed, point_hash(p)).
  runner::ScenarioSpec materialize(const Point& p) const;

  /// {"app": "CoMD", "intensity": 0.5, ...} -- dimension values by field
  /// name, for human-readable frontier entries.
  Json point_json(const Point& p) const;

 private:
  std::string name_ = "search";
  std::uint64_t base_seed_ = 0x48504153;  // "HPAS"
  runner::ScenarioSpec base_;
  std::vector<Dimension> dims_;
};

}  // namespace hpas::search
