// Guided scenario-space search driver.
//
// run_search() walks a ScenarioSpace with a pluggable strategy, evaluating
// proposals on the work-stealing pool and scoring them with a pluggable
// objective. The search is *batch-synchronous*: the strategy proposes a
// fixed-size batch, the pool evaluates it in parallel, and the results are
// observed in proposal order -- so the trajectory is a pure function of
// (space, seed, objective), independent of thread count.
//
// Determinism + crash safety contract (see DESIGN.md):
//   * Every distinct point materializes to the same ScenarioSpec (name and
//     seed derived from the point hash), so a point's evaluation is a pure
//     function of the point.
//   * Every finished evaluation is appended to the PR-4 crash-safe journal
//     -- in deterministic batch order, with wall_seconds zeroed and the
//     final objective stored in the record's trailing extension -- which
//     makes the journal both byte-reproducible and an *exact evaluation
//     cache*: --resume replays the strategy from scratch, satisfies every
//     already-journaled evaluation from the cache, and runs only the
//     missing suffix. An interrupted search therefore converges to the
//     exact bytes (journal and frontier) of an uninterrupted one.
//   * The frontier JSON contains nothing execution-dependent (no wall
//     clock, no thread count, no executed/cached tallies).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/cancel.hpp"
#include "common/json.hpp"
#include "search/objective.hpp"
#include "search/space.hpp"

namespace hpas::search {

struct SearchOptions {
  std::string strategy = "anneal";  ///< random | anneal | bandit
  std::string objective = "max_degradation_per_intensity";
  std::size_t budget = 64;   ///< total proposals to evaluate
  std::size_t batch = 8;     ///< proposals per batch (a search parameter,
                             ///< NOT the thread count)
  std::size_t frontier_size = 8;
  int threads = 1;           ///< pool workers; 0 = hardware concurrency
  std::size_t queue_capacity = 256;
  int sim_shards = 0;        ///< per-scenario engine shards (execution knob)
  /// Path of the evaluation journal (conventionally <out>/search.journal).
  /// Empty disables journaling (and with it crash safety).
  std::string journal_path;
  /// Replay the journal first and reuse every validated evaluation.
  bool resume = false;
  /// Run the greedy dimension-minimizer on the best frontier entry.
  bool minimize = false;
  /// Minimizer threshold: shrunk configs must keep at least this fraction
  /// of the best objective value.
  double minimize_keep = 0.9;
  /// Drain request: finish the running batch, then stop proposing.
  const CancelToken* graceful = nullptr;
  /// Pre-built objective (tests inject small ones); when null, the driver
  /// calls make_objective(objective).
  std::shared_ptr<const Objective> objective_impl;
};

struct FrontierEntry {
  Point point;
  runner::ScenarioSpec spec;  ///< materialized (name + seed derived)
  double objective = 0.0;
  double app_elapsed_s = 0.0;
  std::uint64_t app_iterations = 0;
};

struct SearchResult {
  std::string space_name;
  std::string strategy;
  std::string objective;
  std::uint64_t seed = 0;  ///< the space's base seed (drives everything)
  std::size_t budget = 0;
  std::size_t batch = 0;
  std::vector<FrontierEntry> frontier;  ///< ranked, best first
  bool has_minimized = false;
  FrontierEntry minimized;  ///< set when the minimizer ran
  bool interrupted = false; ///< a graceful drain cut the search short

  std::size_t executed = 0;  ///< scenarios run this invocation
  std::size_t cached = 0;    ///< evaluations served from the journal

  /// Deterministic frontier document: ranked entries with the point, the
  /// full replayable spec, the sweep-style summary row and a replay
  /// command line. Byte-identical across thread counts and resume.
  Json frontier_json(const ScenarioSpace& space,
                     const std::string& replay_path) const;
};

/// Objective score recorded for evaluations that threw: low enough that a
/// failed point never enters the frontier yet still totally ordered.
constexpr double kFailedObjective = -1e30;

/// Serialization used by frontier entries and `hpas search --replay`:
/// every ScenarioSpec field, seed as a decimal string (64-bit seeds do
/// not survive JSON doubles).
Json spec_to_json(const runner::ScenarioSpec& spec);
runner::ScenarioSpec spec_from_json(const Json& doc);

/// The sweep summary row this scenario would produce in a clean sweep
/// (same members, same order as SweepResult::summary_json rows) -- the
/// byte-level replay target.
Json summary_row_json(const runner::ScenarioSpec& spec, double app_elapsed_s,
                      std::uint64_t app_iterations);

/// Runs the search. Throws ConfigError on invalid options and SystemError
/// on journal I/O failure.
SearchResult run_search(const ScenarioSpace& space,
                        const SearchOptions& options);

}  // namespace hpas::search
