#include "search/driver.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/error.hpp"
#include "runner/journal.hpp"
#include "runner/runner.hpp"
#include "runner/thread_pool.hpp"
#include "search/strategy.hpp"

namespace hpas::search {
namespace {

/// Cached result of one scenario evaluation -- exactly the payload a
/// search journal record carries, which is what makes the journal an
/// exact evaluation cache.
struct Outcome {
  double objective = 0.0;
  double app_elapsed_s = 0.0;
  std::uint64_t app_iterations = 0;
  bool failed = false;
  std::string error;
};

/// One scenario to run this batch. Baselines precede the proposals that
/// need them, so the serial scoring pass can resolve baseline times from
/// the cache in a single sweep.
struct Job {
  runner::ScenarioSpec spec;
  std::uint64_t key = 0;  ///< scenario_key_hash(spec)
  bool is_baseline = false;
  bool has_baseline = false;
  std::uint64_t baseline_key = 0;
  double probe = 0.0;
  Outcome out;
};

/// The anomaly-free twin of a proposal's configuration. Name and seed are
/// derived from the baseline's own key material, so every proposal that
/// shares a configuration shares one baseline evaluation (and one journal
/// record).
runner::ScenarioSpec baseline_spec(const runner::ScenarioSpec& spec,
                                   std::uint64_t base_seed) {
  runner::ScenarioSpec b = spec;
  b.anomaly = "none";
  b.intensity = 1.0;
  b.injector_fail_at_s = 0.0;
  b.injector_fail_tasks = -1;
  b.name.clear();
  b.seed = 0;
  const std::uint64_t h = runner::scenario_key_hash(b);
  char buf[24];
  std::snprintf(buf, sizeof buf, "b%016llx",
                static_cast<unsigned long long>(h));
  b.name = buf;
  b.seed =
      runner::derive_scenario_seed(base_seed ^ 0x42415345ULL /* "BASE" */, h);
  return b;
}

/// Runs evaluations, maintains the key-hash cache, and journals every
/// finished evaluation in deterministic order (wall_seconds zeroed, the
/// objective in the record's trailing extension).
class Evaluator {
 public:
  Evaluator(const Objective& objective, runner::WorkStealingPool& pool,
            int sim_shards)
      : objective_(objective), pool_(pool), sim_shards_(sim_shards) {}

  /// Opens the journal; with `resume` the validated prefix seeds the cache
  /// and is rewritten in place (self-healing after a torn tail).
  void open_journal(const std::string& path, bool resume) {
    if (path.empty()) return;
    if (!resume) {
      journal_ = std::make_unique<runner::JournalWriter>(path, true);
      return;
    }
    const runner::JournalReadResult prior = runner::read_journal(path);
    journal_ = std::make_unique<runner::JournalWriter>(path, true);
    for (const runner::JournalRecord& rec : prior.records) {
      // Only search records (trailing objective) are reusable; anything
      // else in the file is not ours and is dropped by the rewrite.
      if (!rec.has_objective) continue;
      Outcome o;
      o.objective = rec.objective;
      o.app_elapsed_s = rec.app_elapsed_s;
      o.app_iterations = rec.app_iterations;
      o.failed = rec.status != runner::JournalStatus::kDone;
      o.error = rec.error;
      if (!cache_.emplace(rec.key_hash, std::move(o)).second) continue;
      journal_->append(rec);
      journaled_.insert(rec.key_hash);
    }
  }

  bool contains(std::uint64_t key) const { return cache_.count(key) != 0; }

  const Outcome& get(std::uint64_t key) const {
    const auto it = cache_.find(key);
    if (it == cache_.end())
      throw ConfigError("search: internal error: missing evaluation");
    return it->second;
  }

  /// Runs the batch on the pool, then scores and journals serially in job
  /// order. Evaluation failures become kFailedObjective, never abort the
  /// search.
  void evaluate(std::vector<Job>& jobs) {
    runner::parallel_for(pool_, jobs.size(), [&](std::size_t i) {
      Job& j = jobs[i];
      try {
        std::function<void(sim::World&)> inspect;
        if (objective_.needs_probe() && !j.is_baseline) {
          inspect = [&j, this](sim::World& w) {
            j.probe = objective_.probe(w, j.spec);
          };
        }
        const runner::ScenarioResult r = runner::run_scenario(
            j.spec, /*capture_trace=*/false, nullptr, sim_shards_, inspect);
        if (r.status != runner::ScenarioStatus::kDone) {
          j.out.failed = true;
          j.out.error = r.error.empty()
                            ? runner::scenario_status_name(r.status)
                            : r.error;
        } else {
          j.out.app_elapsed_s = r.app_elapsed_s;
          j.out.app_iterations = static_cast<std::uint64_t>(r.app_iterations);
        }
      } catch (const std::exception& e) {
        j.out.failed = true;
        j.out.error = e.what();
      }
    });
    executed_ += jobs.size();
    for (Job& j : jobs) {
      if (j.out.failed) {
        j.out.objective = kFailedObjective;
      } else if (j.is_baseline) {
        // Baselines are anomaly-free by construction; every objective
        // scores those 0, so short-circuit rather than re-deriving it.
        j.out.objective = 0.0;
      } else {
        Measurement baseline;
        if (j.has_baseline) {
          const auto it = cache_.find(j.baseline_key);
          if (it != cache_.end() && !it->second.failed) {
            baseline.app_elapsed_s = it->second.app_elapsed_s;
            baseline.app_iterations = it->second.app_iterations;
          }
        }
        const Measurement run{j.out.app_elapsed_s, j.out.app_iterations};
        j.out.objective = objective_.score(j.spec, run, baseline, j.probe);
      }
      cache_.emplace(j.key, j.out);
      journal_append(j);
    }
  }

  std::size_t executed() const { return executed_; }

 private:
  void journal_append(const Job& j) {
    if (!journal_) return;
    if (!journaled_.insert(j.key).second) return;
    runner::JournalRecord rec;
    rec.key_hash = j.key;
    rec.status = j.out.failed ? runner::JournalStatus::kFailed
                              : runner::JournalStatus::kDone;
    rec.name = j.spec.name;
    rec.output.clear();  // search evaluations keep no per-scenario files
    rec.app_iterations = j.out.app_iterations;
    rec.app_elapsed_s = j.out.app_elapsed_s;
    rec.wall_seconds = 0.0;  // byte-stability: host time never journaled
    rec.error = j.out.error;
    rec.has_objective = true;
    rec.objective = j.out.objective;
    journal_->append(rec);
  }

  const Objective& objective_;
  runner::WorkStealingPool& pool_;
  int sim_shards_;
  std::unordered_map<std::uint64_t, Outcome> cache_;
  std::unordered_set<std::uint64_t> journaled_;
  std::unique_ptr<runner::JournalWriter> journal_;
  std::size_t executed_ = 0;
};

Json entry_json(const ScenarioSpace& space, const FrontierEntry& e,
                const std::string& replay_path,
                const std::string& replay_selector) {
  Json entry = Json::object();
  entry.set("scenario", e.spec.name);
  entry.set("objective", e.objective);
  entry.set("point", space.point_json(e.point));
  entry.set("spec", runner::spec_to_json(e.spec));
  entry.set("summary_row",
            summary_row_json(e.spec, e.app_elapsed_s, e.app_iterations));
  entry.set("replay",
            "hpas search --replay " + replay_path + " " + replay_selector);
  return entry;
}

}  // namespace

// The ScenarioSpec round-trip lives in runner/grid (shared with the
// experiment server's wire protocol); these wrappers keep the original
// search-namespace API for frontier files and their tests.
Json spec_to_json(const runner::ScenarioSpec& spec) {
  return runner::spec_to_json(spec);
}

runner::ScenarioSpec spec_from_json(const Json& doc) {
  return runner::spec_from_json(doc);
}

Json summary_row_json(const runner::ScenarioSpec& spec, double app_elapsed_s,
                      std::uint64_t app_iterations) {
  // Mirrors SweepResult::summary_json() rows for a completed, trace-free
  // scenario -- member names, order and optional-key behavior included.
  Json row = Json::object();
  row.set("name", spec.name);
  row.set("app", spec.app);
  row.set("anomaly", spec.anomaly);
  row.set("intensity", spec.intensity);
  row.set("seed", std::to_string(spec.seed));
  if (spec.injector_fail_at_s > 0.0) {
    row.set("injector_fail_at_s", spec.injector_fail_at_s);
    row.set("injector_fail_tasks",
            static_cast<double>(spec.injector_fail_tasks));
  }
  row.set("app_time_s", app_elapsed_s);
  row.set("iterations", static_cast<double>(app_iterations));
  return row;
}

Json SearchResult::frontier_json(const ScenarioSpace& space,
                                 const std::string& replay_path) const {
  Json doc = Json::object();
  doc.set("space", space_name);
  doc.set("strategy", strategy);
  doc.set("objective", objective);
  doc.set("seed", std::to_string(seed));
  doc.set("budget", static_cast<double>(budget));
  doc.set("batch", static_cast<double>(batch));
  Json entries = Json::array();
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    Json entry = entry_json(space, frontier[i], replay_path,
                            "--index " + std::to_string(i));
    entry.set("rank", static_cast<double>(i + 1));
    entries.push_back(std::move(entry));
  }
  doc.set("frontier", std::move(entries));
  if (has_minimized)
    doc.set("minimized",
            entry_json(space, minimized, replay_path, "--minimized"));
  return doc;
}

SearchResult run_search(const ScenarioSpace& space,
                        const SearchOptions& options) {
  if (options.budget == 0)
    throw ConfigError("search: budget must be >= 1");
  if (options.batch == 0) throw ConfigError("search: batch must be >= 1");
  if (options.frontier_size == 0)
    throw ConfigError("search: frontier size must be >= 1");
  if (!(options.minimize_keep > 0.0) || options.minimize_keep > 1.0)
    throw ConfigError("search: minimize keep fraction must be in (0, 1]");

  const int threads = options.threads > 0
                          ? options.threads
                          : runner::WorkStealingPool::default_thread_count();
  std::shared_ptr<const Objective> objective = options.objective_impl;
  if (!objective) {
    ObjectiveFactoryOptions factory;
    factory.threads = threads;
    objective = make_objective(options.objective, factory);
  }

  const std::unique_ptr<SearchStrategy> strategy =
      make_strategy(options.strategy, space, space.base_seed());

  runner::PoolOptions pool_options;
  pool_options.threads = threads;
  pool_options.queue_capacity = options.queue_capacity;
  runner::WorkStealingPool pool(pool_options);

  Evaluator evaluator(*objective, pool, options.sim_shards);
  evaluator.open_journal(options.journal_path, options.resume);

  SearchResult result;
  result.space_name = space.name();
  result.strategy = options.strategy;
  result.objective = objective->name();
  result.seed = space.base_seed();
  result.budget = options.budget;
  result.batch = options.batch;

  // Builds the (baseline-first) job list one point needs; returns the
  // point's cache key. `batch_keys` dedupes within the pending job list.
  auto enqueue = [&](const Point& p, std::vector<Job>& jobs,
                     std::unordered_set<std::uint64_t>& batch_keys)
      -> std::uint64_t {
    const runner::ScenarioSpec spec = space.materialize(p);
    const std::uint64_t key = runner::scenario_key_hash(spec);
    if (evaluator.contains(key)) {
      ++result.cached;
      return key;
    }
    if (batch_keys.count(key) != 0) return key;
    Job job;
    job.spec = spec;
    job.key = key;
    if (objective->needs_baseline() && spec.anomaly != "none") {
      const runner::ScenarioSpec base = baseline_spec(spec, space.base_seed());
      job.has_baseline = true;
      job.baseline_key = runner::scenario_key_hash(base);
      if (!evaluator.contains(job.baseline_key) &&
          batch_keys.count(job.baseline_key) == 0) {
        Job bjob;
        bjob.spec = base;
        bjob.key = job.baseline_key;
        bjob.is_baseline = true;
        batch_keys.insert(bjob.key);
        jobs.push_back(std::move(bjob));
      }
    }
    batch_keys.insert(key);
    jobs.push_back(std::move(job));
    return key;
  };

  // Distinct proposals in first-seen order -- the frontier candidates.
  struct Candidate {
    Point point;
    std::uint64_t key;
  };
  std::vector<Candidate> candidates;
  std::unordered_set<std::uint64_t> candidate_keys;

  std::size_t observed = 0;
  while (observed < options.budget) {
    if (options.graceful && options.graceful->cancelled()) {
      result.interrupted = true;
      break;
    }
    const std::size_t count = std::min(options.batch,
                                       options.budget - observed);
    const std::vector<Point> proposals = strategy->propose(count);
    if (proposals.size() != count)
      throw ConfigError("search: strategy returned a wrong proposal count");

    std::vector<Job> jobs;
    std::unordered_set<std::uint64_t> batch_keys;
    std::vector<std::uint64_t> proposal_keys;
    proposal_keys.reserve(proposals.size());
    for (const Point& p : proposals) {
      const std::uint64_t key = enqueue(p, jobs, batch_keys);
      proposal_keys.push_back(key);
      if (candidate_keys.insert(key).second)
        candidates.push_back({p, key});
    }

    evaluator.evaluate(jobs);

    for (std::size_t i = 0; i < proposals.size(); ++i) {
      strategy->observe(proposals[i],
                        evaluator.get(proposal_keys[i]).objective);
      ++observed;
    }
  }

  // Rank: objective descending, first-seen ascending on ties -- total and
  // deterministic. Failed evaluations never enter the frontier.
  std::vector<std::size_t> order(candidates.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return evaluator.get(candidates[a].key).objective >
                            evaluator.get(candidates[b].key).objective;
                   });
  for (const std::size_t idx : order) {
    if (result.frontier.size() >= options.frontier_size) break;
    const Candidate& c = candidates[idx];
    const Outcome& o = evaluator.get(c.key);
    if (o.failed) continue;
    FrontierEntry entry;
    entry.point = c.point;
    entry.spec = space.materialize(c.point);
    entry.objective = o.objective;
    entry.app_elapsed_s = o.app_elapsed_s;
    entry.app_iterations = o.app_iterations;
    result.frontier.push_back(std::move(entry));
  }
  result.executed = evaluator.executed();

  // --- greedy dimension-minimizer ---------------------------------------
  // Shrinks the best frontier entry one dimension at a time toward each
  // numeric dimension's floor, keeping at least `minimize_keep` of the
  // best objective. Serial by design (each step conditions on the last),
  // journaled and cached like every other evaluation, so a resumed search
  // replays it byte-identically.
  if (options.minimize && !result.frontier.empty() && !result.interrupted &&
      result.frontier.front().objective > 0.0) {
    const double threshold =
        options.minimize_keep * result.frontier.front().objective;
    auto eval_point = [&](const Point& p) -> const Outcome& {
      std::vector<Job> jobs;
      std::unordered_set<std::uint64_t> keys;
      const std::uint64_t key = enqueue(p, jobs, keys);
      evaluator.evaluate(jobs);
      return evaluator.get(key);
    };

    Point p = result.frontier.front().point;
    for (std::size_t i = 0; i < space.size(); ++i) {
      const Dimension& d = space.dimensions()[i];
      if (d.kind == DimKind::kCategorical) continue;
      if (p.coords[i] <= d.lo) continue;
      Point floor_try = p;
      floor_try.coords[i] = d.lo;
      floor_try = space.clamp(std::move(floor_try));
      if (eval_point(floor_try).objective >= threshold) {
        p = floor_try;
        continue;
      }
      // Bisect the smallest admissible coordinate: `bad` failed the
      // threshold, `good` met it.
      double bad = d.lo;
      double good = p.coords[i];
      for (int iter = 0; iter < 6; ++iter) {
        Point mid_try = p;
        mid_try.coords[i] = (bad + good) / 2.0;
        mid_try = space.clamp(std::move(mid_try));
        const double mid = mid_try.coords[i];
        if (mid <= bad || mid >= good) break;  // integer range exhausted
        if (eval_point(mid_try).objective >= threshold)
          good = mid;
        else
          bad = mid;
      }
      p.coords[i] = good;
    }

    const Outcome& final_outcome = eval_point(p);
    if (!final_outcome.failed) {
      result.has_minimized = true;
      result.minimized.point = p;
      result.minimized.spec = space.materialize(p);
      result.minimized.objective = final_outcome.objective;
      result.minimized.app_elapsed_s = final_outcome.app_elapsed_s;
      result.minimized.app_iterations = final_outcome.app_iterations;
    }
  }
  result.executed = evaluator.executed();
  return result;
}

}  // namespace hpas::search
