#include "search/space.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "anomalies/suite.hpp"
#include "apps/profiles.hpp"
#include "common/error.hpp"

namespace hpas::search {
namespace {

/// The ScenarioSpec fields a dimension may bind, with the kinds each
/// admits. Categorical fields are the string-valued ones; numeric fields
/// split into inherently integral counts and continuous scalars.
enum class FieldClass { kString, kContinuous, kInteger };

struct FieldInfo {
  const char* name;
  FieldClass cls;
  double domain_lo;  ///< numeric fields: smallest admissible value
};

constexpr FieldInfo kFields[] = {
    {"app", FieldClass::kString, 0.0},
    {"anomaly", FieldClass::kString, 0.0},
    {"system", FieldClass::kString, 0.0},
    {"intensity", FieldClass::kContinuous, 1e-6},
    {"duration_s", FieldClass::kContinuous, 1e-6},
    {"sample_period_s", FieldClass::kContinuous, 1e-6},
    {"injector_fail_at_s", FieldClass::kContinuous, 0.0},
    {"app_nodes", FieldClass::kInteger, 1.0},
    {"ranks_per_node", FieldClass::kInteger, 1.0},
    {"injector_fail_tasks", FieldClass::kInteger, -1.0},
};

const FieldInfo* field_info(const std::string& name) {
  for (const FieldInfo& f : kFields)
    if (name == f.name) return &f;
  return nullptr;
}

void validate_category(const std::string& field, const std::string& value) {
  if (field == "app") {
    if (value != "none") apps::app_by_name(value);  // throws on unknown
    return;
  }
  if (field == "anomaly") {
    // "os_jitter" is the simulated-only ninth generator (see grid.cpp).
    if (value != "none" && value != "os_jitter" &&
        !anomalies::is_known_anomaly(value))
      throw ConfigError("space: unknown anomaly '" + value + "'");
    return;
  }
  if (field == "system") {
    if (value != "voltrino" && value != "chameleon" && value != "dragonfly1k")
      throw ConfigError("space: unknown system '" + value + "'");
    return;
  }
  throw ConfigError("space: field '" + field + "' is not categorical");
}

double canonical_coord(const Dimension& d, double v) {
  if (d.kind == DimKind::kContinuous) return std::clamp(v, d.lo, d.hi);
  if (d.kind == DimKind::kInteger)
    return std::clamp(std::round(v), d.lo, d.hi);
  const double last = static_cast<double>(d.values.size()) - 1.0;
  return std::clamp(std::round(v), 0.0, last);
}

void mix(std::uint64_t& h, std::uint64_t v) {
  // Same splitmix64 combining step as scenario_key_hash (journal.cpp):
  // full avalanche per coordinate, so neighbouring points land far apart.
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
}

}  // namespace

const char* dim_kind_name(DimKind kind) {
  switch (kind) {
    case DimKind::kContinuous: return "continuous";
    case DimKind::kInteger: return "integer";
    case DimKind::kCategorical: return "categorical";
  }
  return "unknown";
}

ScenarioSpace ScenarioSpace::from_json(const Json& spec) {
  if (!spec.is_object())
    throw ConfigError("space: document must be an object");

  ScenarioSpace space;
  space.name_ = spec.string_or("name", "search");
  space.base_seed_ =
      static_cast<std::uint64_t>(spec.number_or("seed", 0x48504153));

  runner::ScenarioSpec& base = space.base_;
  base.system = spec.string_or("system", "voltrino");
  validate_category("system", base.system);
  base.app = spec.string_or("app", "none");
  if (base.app != "none") apps::app_by_name(base.app);
  base.anomaly = spec.string_or("anomaly", "none");
  validate_category("anomaly", base.anomaly);
  base.intensity = spec.number_or("intensity", 1.0);
  base.duration_s = spec.number_or("duration_s", 60.0);
  base.sample_period_s = spec.number_or("sample_period_s", 1.0);
  base.app_nodes = static_cast<int>(spec.number_or("app_nodes", 2));
  base.ranks_per_node =
      static_cast<int>(spec.number_or("ranks_per_node", 4));
  base.run_to_completion = spec.bool_or("run_to_completion", false);
  base.injector_fail_at_s = spec.number_or("injector_fail_at_s", 0.0);
  base.injector_fail_tasks =
      static_cast<int>(spec.number_or("injector_fail_tasks", -1));
  if (base.duration_s <= 0.0 || base.sample_period_s <= 0.0)
    throw ConfigError("space: duration_s and sample_period_s must be positive");
  if (base.intensity <= 0.0)
    throw ConfigError("space: intensity must be positive");
  if (base.app_nodes < 1 || base.ranks_per_node < 1)
    throw ConfigError("space: app_nodes and ranks_per_node must be >= 1");
  if (base.injector_fail_at_s < 0.0)
    throw ConfigError("space: injector_fail_at_s must be non-negative");

  const Json* dims = spec.find("dimensions");
  if (dims == nullptr || !dims->is_array() || dims->as_array().empty())
    throw ConfigError("space: 'dimensions' must be a non-empty array");

  for (const Json& d : dims->as_array()) {
    if (!d.is_object())
      throw ConfigError("space: each dimension must be an object");
    Dimension dim;
    const Json* field = d.find("name");
    if (field == nullptr)
      throw ConfigError("space: dimension is missing 'name'");
    dim.field = field->as_string();
    const FieldInfo* info = field_info(dim.field);
    if (info == nullptr)
      throw ConfigError("space: unknown dimension field '" + dim.field + "'");
    for (const Dimension& existing : space.dims_) {
      if (existing.field == dim.field)
        throw ConfigError("space: duplicate dimension '" + dim.field + "'");
    }

    const std::string type = d.string_or("type", "");
    if (type == "continuous") {
      dim.kind = DimKind::kContinuous;
    } else if (type == "integer") {
      dim.kind = DimKind::kInteger;
    } else if (type == "categorical") {
      dim.kind = DimKind::kCategorical;
    } else {
      throw ConfigError("space: dimension '" + dim.field +
                        "' has unknown type '" + type +
                        "' (expected continuous, integer or categorical)");
    }

    if (dim.kind == DimKind::kCategorical) {
      if (info->cls != FieldClass::kString)
        throw ConfigError("space: field '" + dim.field +
                          "' is numeric; it cannot be categorical");
      const Json* values = d.find("values");
      if (values == nullptr || !values->is_array() ||
          values->as_array().empty())
        throw ConfigError("space: categorical dimension '" + dim.field +
                          "' needs a non-empty 'values' array");
      for (const Json& v : values->as_array()) {
        validate_category(dim.field, v.as_string());
        dim.values.push_back(v.as_string());
      }
    } else {
      if (info->cls == FieldClass::kString)
        throw ConfigError("space: field '" + dim.field +
                          "' is categorical; give it 'values', not bounds");
      if (dim.kind == DimKind::kContinuous &&
          info->cls == FieldClass::kInteger)
        throw ConfigError("space: field '" + dim.field +
                          "' is integral; use type 'integer'");
      const Json* lo = d.find("lo");
      const Json* hi = d.find("hi");
      if (lo == nullptr || hi == nullptr)
        throw ConfigError("space: numeric dimension '" + dim.field +
                          "' needs 'lo' and 'hi' bounds");
      dim.lo = lo->as_number();
      dim.hi = hi->as_number();
      if (dim.kind == DimKind::kInteger) {
        dim.lo = std::ceil(dim.lo);
        dim.hi = std::floor(dim.hi);
      }
      if (!(dim.lo <= dim.hi))
        throw ConfigError("space: dimension '" + dim.field +
                          "' has inverted bounds");
      if (dim.lo < info->domain_lo)
        throw ConfigError("space: dimension '" + dim.field +
                          "' lower bound is outside the field's domain");
    }
    space.dims_.push_back(std::move(dim));
  }
  return space;
}

ScenarioSpace ScenarioSpace::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw SystemError("cannot read space file: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  try {
    return from_json(Json::parse(text.str()));
  } catch (const ConfigError& e) {
    throw ConfigError(path + ": " + e.what());
  }
}

Point ScenarioSpace::sample(Rng& rng) const {
  Point p;
  p.coords.reserve(dims_.size());
  for (const Dimension& d : dims_) {
    switch (d.kind) {
      case DimKind::kContinuous:
        p.coords.push_back(d.lo == d.hi ? d.lo : rng.uniform(d.lo, d.hi));
        break;
      case DimKind::kInteger:
        p.coords.push_back(static_cast<double>(rng.uniform_int(
            static_cast<std::int64_t>(d.lo), static_cast<std::int64_t>(d.hi))));
        break;
      case DimKind::kCategorical:
        p.coords.push_back(static_cast<double>(
            rng.next_below(static_cast<std::uint64_t>(d.values.size()))));
        break;
    }
  }
  return p;
}

Point ScenarioSpace::mutate(const Point& p, Rng& rng, double scale) const {
  const std::size_t dim =
      static_cast<std::size_t>(rng.next_below(dims_.size()));
  return mutate_dimension(p, dim, rng, scale);
}

Point ScenarioSpace::mutate_dimension(const Point& p, std::size_t dim,
                                      Rng& rng, double scale) const {
  if (dim >= dims_.size())
    throw ConfigError("space: mutate_dimension index out of range");
  if (p.coords.size() != dims_.size())
    throw ConfigError("space: point has wrong dimensionality");
  Point out = p;
  const Dimension& d = dims_[dim];
  double& v = out.coords[dim];
  switch (d.kind) {
    case DimKind::kContinuous: {
      const double step = rng.normal(0.0, scale * (d.hi - d.lo));
      v = std::clamp(v + step, d.lo, d.hi);
      break;
    }
    case DimKind::kInteger: {
      const double span = d.hi - d.lo;
      double step =
          std::round(rng.normal(0.0, std::max(1.0, scale * span)));
      // A rounded-to-zero step would be a silent no-op; take a unit step
      // in a seeded direction instead so mutation always moves when the
      // range allows it.
      if (step == 0.0) step = rng.next_below(2) == 0 ? -1.0 : 1.0;
      v = std::clamp(std::round(v + step), d.lo, d.hi);
      break;
    }
    case DimKind::kCategorical: {
      const std::size_t n = d.values.size();
      if (n < 2) break;  // a single category cannot change
      // Jump to a uniformly chosen *different* category: categorical
      // dimensions are never interpolated.
      const auto current = static_cast<std::uint64_t>(v);
      std::uint64_t pick = rng.next_below(n - 1);
      if (pick >= current) ++pick;
      v = static_cast<double>(pick);
      break;
    }
  }
  return clamp(std::move(out));
}

Point ScenarioSpace::crossover(const Point& a, const Point& b,
                               Rng& rng) const {
  if (a.coords.size() != dims_.size() || b.coords.size() != dims_.size())
    throw ConfigError("space: crossover parents have wrong dimensionality");
  Point out;
  out.coords.reserve(dims_.size());
  for (std::size_t i = 0; i < dims_.size(); ++i)
    out.coords.push_back(rng.next_below(2) == 0 ? a.coords[i] : b.coords[i]);
  return clamp(std::move(out));
}

bool ScenarioSpace::in_bounds(const Point& p) const {
  if (p.coords.size() != dims_.size()) return false;
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    const Dimension& d = dims_[i];
    const double v = p.coords[i];
    if (!std::isfinite(v)) return false;
    switch (d.kind) {
      case DimKind::kContinuous:
        if (v < d.lo || v > d.hi) return false;
        break;
      case DimKind::kInteger:
        if (v != std::round(v) || v < d.lo || v > d.hi) return false;
        break;
      case DimKind::kCategorical:
        if (v != std::round(v) || v < 0.0 ||
            v >= static_cast<double>(d.values.size()))
          return false;
        break;
    }
  }
  return true;
}

Point ScenarioSpace::clamp(Point p) const {
  if (p.coords.size() != dims_.size())
    throw ConfigError("space: point has wrong dimensionality");
  for (std::size_t i = 0; i < dims_.size(); ++i)
    p.coords[i] = canonical_coord(dims_[i], p.coords[i]);
  return p;
}

std::uint64_t ScenarioSpace::point_hash(const Point& p) const {
  if (p.coords.size() != dims_.size())
    throw ConfigError("space: point has wrong dimensionality");
  std::uint64_t h = 0x53504143'45503031ULL;  // "SPACEP01"
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    const Dimension& d = dims_[i];
    const double v = canonical_coord(d, p.coords[i]);
    if (d.kind == DimKind::kContinuous) {
      std::uint64_t bits = 0;
      std::memcpy(&bits, &v, sizeof(bits));
      mix(h, bits);
    } else {
      mix(h, static_cast<std::uint64_t>(
                 static_cast<std::int64_t>(std::llround(v))));
    }
  }
  return h;
}

runner::ScenarioSpec ScenarioSpace::materialize(const Point& p) const {
  if (!in_bounds(p))
    throw ConfigError("space: cannot materialize an out-of-bounds point");
  runner::ScenarioSpec spec = base_;
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    const Dimension& d = dims_[i];
    const double v = p.coords[i];
    if (d.kind == DimKind::kCategorical) {
      const std::string& value = d.values[static_cast<std::size_t>(v)];
      if (d.field == "app") spec.app = value;
      else if (d.field == "anomaly") spec.anomaly = value;
      else spec.system = value;
      continue;
    }
    if (d.field == "intensity") spec.intensity = v;
    else if (d.field == "duration_s") spec.duration_s = v;
    else if (d.field == "sample_period_s") spec.sample_period_s = v;
    else if (d.field == "injector_fail_at_s") spec.injector_fail_at_s = v;
    else if (d.field == "app_nodes") spec.app_nodes = static_cast<int>(v);
    else if (d.field == "ranks_per_node")
      spec.ranks_per_node = static_cast<int>(v);
    else spec.injector_fail_tasks = static_cast<int>(v);
  }
  const std::uint64_t hash = point_hash(p);
  char buf[24];
  std::snprintf(buf, sizeof buf, "e%016llx",
                static_cast<unsigned long long>(hash));
  spec.name = buf;
  spec.seed = runner::derive_scenario_seed(base_seed_, hash);
  return spec;
}

Json ScenarioSpace::point_json(const Point& p) const {
  if (!in_bounds(p))
    throw ConfigError("space: cannot serialize an out-of-bounds point");
  Json obj = Json::object();
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    const Dimension& d = dims_[i];
    if (d.kind == DimKind::kCategorical)
      obj.set(d.field, d.values[static_cast<std::size_t>(p.coords[i])]);
    else
      obj.set(d.field, p.coords[i]);
  }
  return obj;
}

}  // namespace hpas::search
