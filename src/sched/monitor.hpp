// Node monitor feeding the allocation policies: samples each simulated
// node's CPU load (user::procstat equivalent) and free memory
// (Memfree::meminfo equivalent) and maintains the trailing five-minute
// load average WBAS needs.
#pragma once

#include <vector>

#include "common/ring_buffer.hpp"
#include "sched/policies.hpp"
#include "sim/world.hpp"

namespace hpas::sched {

class NodeMonitor {
 public:
  /// Samples every `period_s` simulated seconds once start() is called;
  /// the five-minute average covers ceil(300 / period_s) samples.
  NodeMonitor(sim::World& world, double period_s = 10.0);

  /// Begins periodic sampling on the world's simulator.
  void start();

  /// Takes one sample immediately (also usable without start()).
  void sample_once();

  /// Current status of every node (latest sample + trailing average).
  std::vector<NodeStatus> status() const;

 private:
  void schedule_next();

  sim::World& world_;
  double period_s_;
  std::vector<RingBuffer<double>> load_history_;
  std::vector<double> load_current_;
  bool started_ = false;
};

}  // namespace hpas::sched
