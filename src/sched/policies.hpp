// Job allocation policies (paper Sec. 5.2).
//
// Round-Robin: "allocates a job to the available nodes in the system
// following the label order."
//
// WBAS (Well-Balanced Allocation Strategy, Yang et al.): ranks nodes by a
// computing-capacity value
//     CP = (1 - Load%) x MemFree
// with Load = 5/6 x Load_current + 1/6 x Load_5minAvg, and allocates the
// job to the highest-CP nodes. Load comes from user::procstat, MemFree
// from Memfree::meminfo -- exactly the metrics the monitor provides.
#pragma once

#include <string>
#include <vector>

namespace hpas::sched {

struct NodeStatus {
  int node_id = 0;
  double load_current = 0.0;   ///< CPU load fraction [0,1]
  double load_5min_avg = 0.0;  ///< trailing average load [0,1]
  double mem_free_bytes = 0.0;
};

class AllocationPolicy {
 public:
  virtual ~AllocationPolicy() = default;
  virtual std::string name() const = 0;

  /// Picks `count` distinct nodes for the next job. `status` contains all
  /// currently available nodes. Throws ConfigError when count exceeds the
  /// available nodes.
  virtual std::vector<int> select_nodes(const std::vector<NodeStatus>& status,
                                        int count) const = 0;
};

class RoundRobinPolicy final : public AllocationPolicy {
 public:
  std::string name() const override { return "RoundRobin"; }
  std::vector<int> select_nodes(const std::vector<NodeStatus>& status,
                                int count) const override;
};

class WbasPolicy final : public AllocationPolicy {
 public:
  std::string name() const override { return "WBAS"; }
  std::vector<int> select_nodes(const std::vector<NodeStatus>& status,
                                int count) const override;

  /// The CP value; exposed for tests and the Fig. 11 printout.
  static double computing_capacity(const NodeStatus& node);
};

/// Generalized WBAS (paper Sec. 5.2: HPAS "enables a very systematic
/// evaluation of the [CP] equation"): the current/average load blend is a
/// parameter instead of the fixed 5/6-1/6, so the weighting itself can be
/// studied under controlled anomalies (bench/ablation_wbas_weighting).
class WeightedCpPolicy final : public AllocationPolicy {
 public:
  /// `current_weight` in [0,1]: Load = w x current + (1-w) x 5-min avg.
  /// WBAS is current_weight = 5/6; w = 0 reacts only to history; w = 1
  /// only to the instantaneous load.
  explicit WeightedCpPolicy(double current_weight);

  std::string name() const override;
  std::vector<int> select_nodes(const std::vector<NodeStatus>& status,
                                int count) const override;

  double computing_capacity(const NodeStatus& node) const;

 private:
  double current_weight_;
};

}  // namespace hpas::sched
