#include "sched/policies.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"

namespace hpas::sched {

std::vector<int> RoundRobinPolicy::select_nodes(
    const std::vector<NodeStatus>& status, int count) const {
  if (count < 1 || static_cast<std::size_t>(count) > status.size())
    throw ConfigError("RoundRobin: not enough available nodes");
  std::vector<int> ids;
  ids.reserve(status.size());
  for (const auto& node : status) ids.push_back(node.node_id);
  std::sort(ids.begin(), ids.end());  // label order
  ids.resize(static_cast<std::size_t>(count));
  return ids;
}

double WbasPolicy::computing_capacity(const NodeStatus& node) {
  const double load =
      5.0 / 6.0 * node.load_current + 1.0 / 6.0 * node.load_5min_avg;
  return (1.0 - load) * node.mem_free_bytes;
}

std::vector<int> WbasPolicy::select_nodes(const std::vector<NodeStatus>& status,
                                          int count) const {
  if (count < 1 || static_cast<std::size_t>(count) > status.size())
    throw ConfigError("WBAS: not enough available nodes");
  std::vector<NodeStatus> ranked(status);
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const NodeStatus& a, const NodeStatus& b) {
                     const double ca = computing_capacity(a);
                     const double cb = computing_capacity(b);
                     if (ca != cb) return ca > cb;
                     return a.node_id < b.node_id;  // deterministic ties
                   });
  std::vector<int> ids;
  for (int i = 0; i < count; ++i)
    ids.push_back(ranked[static_cast<std::size_t>(i)].node_id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

WeightedCpPolicy::WeightedCpPolicy(double current_weight)
    : current_weight_(current_weight) {
  require(current_weight >= 0.0 && current_weight <= 1.0,
          "WeightedCpPolicy: weight must be in [0,1]");
}

std::string WeightedCpPolicy::name() const {
  char buf[48];
  std::snprintf(buf, sizeof buf, "CP(w=%.2f)", current_weight_);
  return buf;
}

double WeightedCpPolicy::computing_capacity(const NodeStatus& node) const {
  const double load = current_weight_ * node.load_current +
                      (1.0 - current_weight_) * node.load_5min_avg;
  return (1.0 - load) * node.mem_free_bytes;
}

std::vector<int> WeightedCpPolicy::select_nodes(
    const std::vector<NodeStatus>& status, int count) const {
  if (count < 1 || static_cast<std::size_t>(count) > status.size())
    throw ConfigError("WeightedCpPolicy: not enough available nodes");
  std::vector<NodeStatus> ranked(status);
  std::stable_sort(ranked.begin(), ranked.end(),
                   [this](const NodeStatus& a, const NodeStatus& b) {
                     const double ca = computing_capacity(a);
                     const double cb = computing_capacity(b);
                     if (ca != cb) return ca > cb;
                     return a.node_id < b.node_id;
                   });
  std::vector<int> ids;
  for (int i = 0; i < count; ++i)
    ids.push_back(ranked[static_cast<std::size_t>(i)].node_id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace hpas::sched
