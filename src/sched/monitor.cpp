#include "sched/monitor.hpp"

#include <cmath>

#include "common/error.hpp"

namespace hpas::sched {

NodeMonitor::NodeMonitor(sim::World& world, double period_s)
    : world_(world), period_s_(period_s) {
  require(period_s > 0.0, "NodeMonitor: period must be positive");
  const auto window = static_cast<std::size_t>(
      std::max(1.0, std::ceil(300.0 / period_s)));
  for (int i = 0; i < world.num_nodes(); ++i) {
    load_history_.emplace_back(window);
    load_current_.push_back(0.0);
  }
}

void NodeMonitor::sample_once() {
  world_.update();  // bring task rates up to date
  for (int i = 0; i < world_.num_nodes(); ++i) {
    const double load = world_.node(i).cpu_utilization(world_.tasks());
    load_current_[static_cast<std::size_t>(i)] = load;
    load_history_[static_cast<std::size_t>(i)].push(load);
  }
}

void NodeMonitor::start() {
  require(!started_, "NodeMonitor: already started");
  started_ = true;
  sample_once();
  schedule_next();
}

void NodeMonitor::schedule_next() {
  world_.simulator().schedule_in(period_s_, [this] {
    sample_once();
    schedule_next();
  });
}

std::vector<NodeStatus> NodeMonitor::status() const {
  std::vector<NodeStatus> out;
  for (int i = 0; i < world_.num_nodes(); ++i) {
    const auto& history = load_history_[static_cast<std::size_t>(i)];
    double avg = 0.0;
    for (std::size_t j = 0; j < history.size(); ++j) avg += history[j];
    if (history.size() > 0) avg /= static_cast<double>(history.size());
    out.push_back(NodeStatus{
        .node_id = i,
        .load_current = load_current_[static_cast<std::size_t>(i)],
        .load_5min_avg = avg,
        .mem_free_bytes = world_.node(i).memory_free(),
    });
  }
  return out;
}

}  // namespace hpas::sched
