#include "common/units.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/error.hpp"

namespace hpas {
namespace {

// Parses the leading numeric part of `text`, returns it and leaves the
// suffix in `rest`. Accepts integers and simple decimals.
double parse_number_prefix(std::string_view text, std::string_view& rest) {
  if (text.empty()) throw ConfigError("empty numeric value");
  std::size_t i = 0;
  bool seen_digit = false, seen_dot = false;
  while (i < text.size()) {
    const char c = text[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      seen_digit = true;
      ++i;
    } else if (c == '.' && !seen_dot) {
      seen_dot = true;
      ++i;
    } else {
      break;
    }
  }
  if (!seen_digit)
    throw ConfigError("expected a number, got '" + std::string(text) + "'");
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + i, value);
  if (ec != std::errc() || ptr != text.data() + i)
    throw ConfigError("malformed number '" + std::string(text) + "'");
  rest = text.substr(i);
  return value;
}

std::string lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace

std::uint64_t parse_bytes(std::string_view text) {
  std::string_view rest;
  const double value = parse_number_prefix(text, rest);
  const std::string suffix = lower(rest);
  double mult = 1.0;
  if (suffix.empty() || suffix == "b") {
    mult = 1.0;
  } else if (suffix == "k" || suffix == "kb" || suffix == "kib") {
    mult = static_cast<double>(kKiB);
  } else if (suffix == "m" || suffix == "mb" || suffix == "mib") {
    mult = static_cast<double>(kMiB);
  } else if (suffix == "g" || suffix == "gb" || suffix == "gib") {
    mult = static_cast<double>(kGiB);
  } else {
    throw ConfigError("unknown size suffix '" + std::string(rest) + "' in '" +
                      std::string(text) + "'");
  }
  const double bytes = value * mult;
  if (bytes < 0 || bytes > 9.2e18)
    throw ConfigError("size out of range: '" + std::string(text) + "'");
  return static_cast<std::uint64_t>(bytes);
}

double parse_percent(std::string_view text) {
  std::string_view rest;
  const double value = parse_number_prefix(text, rest);
  if (!(rest.empty() || rest == "%"))
    throw ConfigError("malformed percentage '" + std::string(text) + "'");
  if (value < 0.0 || value > 100.0)
    throw ConfigError("percentage out of [0,100]: '" + std::string(text) + "'");
  return value;
}

double parse_double(std::string_view text) {
  std::string_view rest;
  const double value = parse_number_prefix(text, rest);
  if (!rest.empty())
    throw ConfigError("trailing characters in number '" + std::string(text) + "'");
  return value;
}

std::uint64_t parse_u64(std::string_view text) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size())
    throw ConfigError("malformed integer '" + std::string(text) + "'");
  return value;
}

double parse_duration_seconds(std::string_view text) {
  std::string_view rest;
  const double value = parse_number_prefix(text, rest);
  const std::string suffix = lower(rest);
  if (suffix.empty() || suffix == "s") return value;
  if (suffix == "ms") return value / 1000.0;
  if (suffix == "m" || suffix == "min") return value * 60.0;
  if (suffix == "h") return value * 3600.0;
  throw ConfigError("unknown duration suffix '" + std::string(rest) + "' in '" +
                    std::string(text) + "'");
}

std::string format_bytes(std::uint64_t bytes) {
  char buf[32];
  const auto b = static_cast<double>(bytes);
  if (bytes >= kGiB) {
    std::snprintf(buf, sizeof buf, "%.2fGiB", b / static_cast<double>(kGiB));
  } else if (bytes >= kMiB) {
    std::snprintf(buf, sizeof buf, "%.2fMiB", b / static_cast<double>(kMiB));
  } else if (bytes >= kKiB) {
    std::snprintf(buf, sizeof buf, "%.2fKiB", b / static_cast<double>(kKiB));
  } else {
    std::snprintf(buf, sizeof buf, "%lluB", static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string format_rate(double bytes_per_second) {
  char buf[40];
  const double b = bytes_per_second;
  if (b >= static_cast<double>(kGiB)) {
    std::snprintf(buf, sizeof buf, "%.2fGiB/s", b / static_cast<double>(kGiB));
  } else if (b >= static_cast<double>(kMiB)) {
    std::snprintf(buf, sizeof buf, "%.2fMiB/s", b / static_cast<double>(kMiB));
  } else if (b >= static_cast<double>(kKiB)) {
    std::snprintf(buf, sizeof buf, "%.2fKiB/s", b / static_cast<double>(kKiB));
  } else {
    std::snprintf(buf, sizeof buf, "%.1fB/s", b);
  }
  return buf;
}

std::string format_seconds(double seconds) {
  char buf[32];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof buf, "%.2fus", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof buf, "%.2fms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.1fs", seconds);
  }
  return buf;
}

}  // namespace hpas
