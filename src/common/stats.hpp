// Descriptive statistics and small numeric utilities.
//
// These back two parts of HPAS: (1) the ML diagnosis pipeline extracts
// statistical features from monitoring time series (paper Sec. 5.1), and
// (2) the bench harnesses summarize repeated measurements.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hpas {

/// Summary of one sample of doubles. All moments use the conventional
/// sample (n-1) variance; skewness/kurtosis are the adjusted
/// (Fisher-Pearson) sample estimators, matching what a pandas/scipy feature
/// extraction would produce for the paper's features.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double variance = 0.0;   ///< sample variance (0 when count < 2)
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double skewness = 0.0;   ///< 0 when count < 3 or stddev == 0
  double kurtosis = 0.0;   ///< excess kurtosis; 0 when count < 4 or stddev == 0
};

Summary summarize(std::span<const double> xs);

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);  ///< sample variance
double stddev(std::span<const double> xs);

/// Percentile in [0, 100] via linear interpolation between closest ranks
/// (the "linear" / R-7 method used by numpy.percentile). xs need not be
/// sorted; an internal copy is sorted. Throws InvariantError on empty
/// input or pct outside [0, 100] (caller bugs, not configuration).
double percentile(std::span<const double> xs, double pct);

double median(std::span<const double> xs);

/// Least-squares slope of xs against its index (0,1,2,...). Captures the
/// monotone drift that distinguishes memleak's growing footprint from
/// memeater's flat one. Returns 0 for fewer than two points.
double index_slope(std::span<const double> xs);

/// Pearson correlation; returns 0 when either side has zero variance.
double correlation(std::span<const double> xs, std::span<const double> ys);

/// Welford online accumulator: numerically stable running mean/variance.
class OnlineStats {
 public:
  void add(double x);
  void merge(const OnlineStats& other);  ///< parallel-merge (Chan et al.)

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double variance() const;  ///< sample variance
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exponentially weighted moving average, used by the WBAS policy's
/// five-minute load average (paper Sec. 5.2).
class Ewma {
 public:
  /// alpha in (0, 1]: weight of the newest observation.
  explicit Ewma(double alpha);

  void add(double x);
  double value() const { return value_; }
  bool empty() const { return !initialized_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

/// Fixed-bin histogram over [lo, hi); values outside are clamped into the
/// first/last bin so no sample is lost.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t i) const;
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace hpas
