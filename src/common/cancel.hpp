// Cooperative cancellation token, header-only.
//
// A CancelToken is a thread-safe flag plus the *reason* it was raised
// (watchdog timeout, sweep deadline, operator shutdown). Long-running
// loops -- the DES engine's event loop above all -- poll cancelled() and
// throw CancelledError when it fires, unwinding to whoever owns the
// operation (run_scenario, the hpas-sim driver) which records the reason
// and finalizes partial outputs. Cancellation is one-way and sticky: the
// first reason wins, later cancels are no-ops.
#pragma once

#include <atomic>
#include <stdexcept>
#include <string>

namespace hpas {

enum class CancelReason : int {
  kNone = 0,
  kTimeout = 1,   ///< per-scenario watchdog deadline
  kDeadline = 2,  ///< whole-sweep wall-clock deadline
  kShutdown = 3,  ///< operator SIGINT/SIGTERM
};

inline const char* cancel_reason_name(CancelReason reason) {
  switch (reason) {
    case CancelReason::kNone: return "none";
    case CancelReason::kTimeout: return "timeout";
    case CancelReason::kDeadline: return "deadline";
    case CancelReason::kShutdown: return "shutdown";
  }
  return "unknown";
}

class CancelToken {
 public:
  /// Raises the token. The first call's reason sticks; subsequent calls
  /// are no-ops. Safe from any thread (and, being a pair of atomic
  /// stores, from signal-handler *watcher* threads -- though not from
  /// signal handlers themselves, which should write to a self-pipe and
  /// let a thread do this).
  void cancel(CancelReason reason = CancelReason::kShutdown) noexcept {
    int expected = 0;
    reason_.compare_exchange_strong(expected, static_cast<int>(reason),
                                    std::memory_order_relaxed,
                                    std::memory_order_relaxed);
    cancelled_.store(true, std::memory_order_release);
  }

  bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// The reason of the first cancel(); kNone while not cancelled.
  CancelReason reason() const noexcept {
    return static_cast<CancelReason>(reason_.load(std::memory_order_relaxed));
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<int> reason_{0};
};

/// Thrown by cancellation checkpoints (Simulator::step and friends) when
/// their token fires. Callers that own the cancelled operation catch it
/// and translate into a status; it is not an error in the ordinary sense.
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(CancelReason reason)
      : std::runtime_error(std::string("cancelled (") +
                           cancel_reason_name(reason) + ")"),
        reason_(reason) {}

  CancelReason reason() const noexcept { return reason_; }

 private:
  CancelReason reason_;
};

}  // namespace hpas
