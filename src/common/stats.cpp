#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace hpas {

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;

  double sum = 0.0;
  s.min = xs[0];
  s.max = xs[0];
  for (const double x : xs) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  const auto n = static_cast<double>(xs.size());
  s.mean = sum / n;

  if (xs.size() >= 2) {
    double m2 = 0.0, m3 = 0.0, m4 = 0.0;
    for (const double x : xs) {
      const double d = x - s.mean;
      m2 += d * d;
      m3 += d * d * d;
      m4 += d * d * d * d;
    }
    s.variance = m2 / (n - 1.0);
    // A constant series can accumulate ~eps^2-sized m2 through the mean's
    // rounding; treat it as exactly constant so the standardized moments
    // below don't amplify pure noise.
    if (s.variance <= 1e-20 * (1.0 + s.mean * s.mean)) {
      s.variance = 0.0;
      return s;
    }
    s.stddev = std::sqrt(s.variance);
    if (xs.size() >= 3 && s.stddev > 0.0) {
      // Adjusted Fisher-Pearson standardized moment coefficient.
      const double g1 = (m3 / n) / std::pow(m2 / n, 1.5);
      s.skewness = std::sqrt(n * (n - 1.0)) / (n - 2.0) * g1;
    }
    if (xs.size() >= 4 && s.stddev > 0.0) {
      const double g2 = (m4 / n) / ((m2 / n) * (m2 / n)) - 3.0;
      s.kurtosis = (n - 1.0) / ((n - 2.0) * (n - 3.0)) *
                   ((n + 1.0) * g2 + 6.0);
    }
  }
  return s;
}

double mean(std::span<const double> xs) { return summarize(xs).mean; }
double variance(std::span<const double> xs) { return summarize(xs).variance; }
double stddev(std::span<const double> xs) { return summarize(xs).stddev; }

double percentile(std::span<const double> xs, double pct) {
  require(!xs.empty(), "percentile: empty input");
  require(pct >= 0.0 && pct <= 100.0, "percentile: pct out of [0,100]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double rank = pct / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo_idx = static_cast<std::size_t>(std::floor(rank));
  const auto hi_idx = std::min(lo_idx + 1, sorted.size() - 1);
  const double frac = rank - std::floor(rank);
  return sorted[lo_idx] + frac * (sorted[hi_idx] - sorted[lo_idx]);
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double index_slope(std::span<const double> xs) {
  const std::size_t n = xs.size();
  if (n < 2) return 0.0;
  const double nd = static_cast<double>(n);
  const double x_mean = (nd - 1.0) / 2.0;
  double y_mean = 0.0;
  for (const double y : xs) y_mean += y;
  y_mean /= nd;
  double sxy = 0.0, sxx = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = static_cast<double>(i) - x_mean;
    sxy += dx * (xs[i] - y_mean);
    sxx += dx * dx;
  }
  return sxy / sxx;
}

double correlation(std::span<const double> xs, std::span<const double> ys) {
  require(xs.size() == ys.size(), "correlation: size mismatch");
  const std::size_t n = xs.size();
  if (n < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const {
  return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

Ewma::Ewma(double alpha) : alpha_(alpha) {
  require(alpha > 0.0 && alpha <= 1.0, "Ewma: alpha must be in (0,1]");
}

void Ewma::add(double x) {
  if (!initialized_) {
    value_ = x;
    initialized_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  require(hi > lo, "Histogram: hi must be > lo");
  require(bins > 0, "Histogram: need at least one bin");
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::ptrdiff_t>(std::floor((x - lo_) / width));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t i) const {
  require(i < counts_.size(), "Histogram: bin index out of range");
  return counts_[i];
}

double Histogram::bin_lo(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

}  // namespace hpas
