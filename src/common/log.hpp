// Lightweight leveled logger.
//
// The anomaly generators and the simulator report progress on stderr so
// that stdout remains clean machine-readable experiment output (the bench
// harnesses print table/figure rows to stdout).
#pragma once

#include <sstream>
#include <string>

namespace hpas {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are discarded. Defaults to
/// kInfo; honours the HPAS_LOG environment variable (debug/info/warn/error/off)
/// on first use.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one formatted line: "[hpas][info] message\n" to stderr.
void log_message(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::kDebug)
    log_message(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::kInfo)
    log_message(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::kWarn)
    log_message(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() <= LogLevel::kError)
    log_message(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace hpas
