// Error handling primitives shared across HPAS.
//
// HPAS favours exceptions for unrecoverable configuration/programming errors
// (bad CLI values, violated invariants) and return values for expected
// runtime conditions (resource exhaustion in the simulator, EOF, ...).
#pragma once

#include <stdexcept>
#include <string>

namespace hpas {

/// Thrown when user-provided configuration (CLI flags, experiment
/// parameters) is invalid. The message is suitable for direct display.
class ConfigError : public std::runtime_error {
 public:
  explicit ConfigError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an internal invariant is violated; indicates a bug in HPAS
/// itself rather than in its inputs.
class InvariantError : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when an OS-level operation (file, socket, timer) fails in a way
/// the caller cannot reasonably recover from.
class SystemError : public std::runtime_error {
 public:
  explicit SystemError(const std::string& what) : std::runtime_error(what) {}
};

/// Check an invariant; throws InvariantError with `msg` when `cond` is false.
/// Used instead of assert() so invariants stay active in release builds --
/// the simulator's correctness depends on them.
inline void require(bool cond, const std::string& msg) {
  if (!cond) throw InvariantError(msg);
}

/// Literal-message overload: the string (and its heap allocation) is only
/// materialized on failure. The string overload above converts literal
/// arguments eagerly, which put one allocation per require() on the
/// event engine's schedule path -- hot enough to show up in sweeps.
inline void require(bool cond, const char* msg) {
  if (!cond) throw InvariantError(msg);
}

}  // namespace hpas
