#include "common/cli.hpp"

#include <sstream>

#include "common/error.hpp"
#include "common/units.hpp"

namespace hpas {
namespace {

/// Runs `parse` on the flag's value and prefixes any ConfigError with the
/// flag name -- the difference between "malformed number 'abc'" and
/// "--keep: malformed number 'abc'" in a usage error.
template <typename Parse>
auto parse_flag(const ParsedArgs& args, const std::string& long_name,
                Parse parse) {
  const std::string text = args.value(long_name);
  try {
    return parse(text);
  } catch (const ConfigError& e) {
    throw ConfigError("--" + long_name + ": " + e.what());
  }
}

}  // namespace

std::uint64_t flag_u64(const ParsedArgs& args, const std::string& long_name) {
  return parse_flag(args, long_name,
                    [](const std::string& text) { return parse_u64(text); });
}

double flag_double(const ParsedArgs& args, const std::string& long_name) {
  return parse_flag(args, long_name,
                    [](const std::string& text) { return parse_double(text); });
}

double flag_duration_seconds(const ParsedArgs& args,
                             const std::string& long_name) {
  return parse_flag(args, long_name, [](const std::string& text) {
    return parse_duration_seconds(text);
  });
}

bool ParsedArgs::has(const std::string& long_name) const {
  return values_.count(long_name) > 0;
}

std::string ParsedArgs::value(const std::string& long_name) const {
  const auto it = values_.find(long_name);
  if (it == values_.end())
    throw ConfigError("missing value for option --" + long_name);
  return it->second;
}

std::optional<std::string> ParsedArgs::value_or_none(
    const std::string& long_name) const {
  const auto it = values_.find(long_name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {
  add({.long_name = "help", .short_name = 'h', .value_name = "",
       .help = "show this help message", .default_value = std::nullopt,
       .required = false});
}

CliParser& CliParser::add(OptionSpec spec) {
  require(!spec.long_name.empty(), "option long name must not be empty");
  require(find_long(spec.long_name) == nullptr,
          "duplicate option --" + spec.long_name);
  if (spec.short_name != '\0')
    require(find_short(spec.short_name) == nullptr,
            std::string("duplicate short option -") + spec.short_name);
  specs_.push_back(std::move(spec));
  return *this;
}

const OptionSpec* CliParser::find_long(const std::string& name) const {
  for (const auto& s : specs_)
    if (s.long_name == name) return &s;
  return nullptr;
}

const OptionSpec* CliParser::find_short(char c) const {
  for (const auto& s : specs_)
    if (s.short_name == c) return &s;
  return nullptr;
}

ParsedArgs CliParser::parse(const std::vector<std::string>& args) const {
  ParsedArgs out;
  bool options_done = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (options_done || arg == "-" || arg.empty() || arg[0] != '-') {
      out.positional_.push_back(arg);
      continue;
    }
    if (arg == "--") {
      options_done = true;
      continue;
    }

    const OptionSpec* spec = nullptr;
    std::optional<std::string> inline_value;
    if (arg.size() >= 2 && arg[1] == '-') {
      std::string name = arg.substr(2);
      if (const auto eq = name.find('='); eq != std::string::npos) {
        inline_value = name.substr(eq + 1);
        name = name.substr(0, eq);
      }
      spec = find_long(name);
      if (spec == nullptr)
        throw ConfigError(program_ + ": unknown option --" + name);
    } else {
      if (arg.size() != 2)
        throw ConfigError(program_ + ": short options cannot be bundled: " + arg);
      spec = find_short(arg[1]);
      if (spec == nullptr)
        throw ConfigError(program_ + ": unknown option " + arg);
    }

    if (spec->value_name.empty()) {  // boolean flag
      if (inline_value)
        throw ConfigError(program_ + ": flag --" + spec->long_name +
                          " does not take a value");
      out.values_[spec->long_name] = "true";
    } else if (inline_value) {
      out.values_[spec->long_name] = *inline_value;
    } else {
      if (i + 1 >= args.size())
        throw ConfigError(program_ + ": option --" + spec->long_name +
                          " requires a value (" + spec->value_name + ")");
      out.values_[spec->long_name] = args[++i];
    }
  }

  if (out.has("help")) return out;  // skip required/default processing

  for (const auto& spec : specs_) {
    if (out.has(spec.long_name)) continue;
    if (spec.default_value) {
      out.values_[spec.long_name] = *spec.default_value;
    } else if (spec.required) {
      throw ConfigError(program_ + ": missing required option --" +
                        spec.long_name);
    }
  }
  return out;
}

std::string CliParser::help_text() const {
  std::ostringstream os;
  os << program_ << " - " << description_ << "\n\nOptions:\n";
  for (const auto& spec : specs_) {
    std::string lhs = "  ";
    if (spec.short_name != '\0') {
      lhs += '-';
      lhs += spec.short_name;
      lhs += ", ";
    } else {
      lhs += "    ";
    }
    lhs += "--" + spec.long_name;
    if (!spec.value_name.empty()) lhs += " <" + spec.value_name + ">";
    os << lhs;
    for (std::size_t pad = lhs.size(); pad < 34; ++pad) os << ' ';
    os << spec.help;
    if (spec.default_value) os << " [default: " << *spec.default_value << "]";
    if (spec.required) os << " (required)";
    os << "\n";
  }
  return os.str();
}

}  // namespace hpas
