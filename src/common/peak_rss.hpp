// Peak resident set size of the current process, header-only.
//
// Reads VmHWM ("high water mark") from /proc/self/status: the kernel's
// own record of the largest resident set the process ever held. The
// benchmarks record it in their BENCH_*.json so CI can gate memory
// regressions alongside throughput -- in particular the dataset
// factory's flat-memory contract (peak RSS independent of row count).
// Note the value is monotonic for the process lifetime: to attribute
// growth to a phase, snapshot before and after and compare.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstring>

namespace hpas {

/// Peak RSS in bytes, or 0 when /proc/self/status is unavailable (the
/// benches then report 0 and skip their memory gates rather than fail).
inline std::uint64_t peak_rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      std::sscanf(line + 6, "%llu",
                  reinterpret_cast<unsigned long long*>(&kb));
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
}

}  // namespace hpas
