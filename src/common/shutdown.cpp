#include "common/shutdown.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace hpas {
namespace {

// Everything the signal handler touches. volatile sig_atomic_t per POSIX;
// the watcher thread reads the counters *after* being woken through the
// pipe, which orders the accesses well enough for a monotonic counter.
volatile std::sig_atomic_t g_signal_count = 0;
volatile std::sig_atomic_t g_last_signal = 0;
int g_pipe_wr = -1;  // written by the handler; O_NONBLOCK so it never blocks

void signal_handler(int sig) {
  g_signal_count = g_signal_count + 1;
  g_last_signal = sig;
  if (g_pipe_wr >= 0) {
    const char byte = 1;
    // A full pipe just means the watcher is already behind by 64 KiB of
    // wakeups; dropping this byte loses nothing (counters carry the state).
    [[maybe_unused]] const ssize_t ignored = ::write(g_pipe_wr, &byte, 1);
  }
}

struct Subscriptions {
  std::mutex mu;
  std::map<std::uint64_t, std::function<void(int)>> fns;
  std::uint64_t next_id = 1;
};

Subscriptions& subscriptions() {
  static Subscriptions subs;
  return subs;
}

bool g_installed = false;
int g_pipe_rd = -1;
// Joinable watcher handle, heap-held so a process that never calls
// teardown() (the one-shot CLIs) leaks one std::thread object instead of
// tripping std::terminate in a static destructor.
std::thread* g_watcher = nullptr;
// Dispositions in effect before install(), restored by teardown().
struct sigaction g_old_int = {};
struct sigaction g_old_term = {};

std::mutex& install_mutex() {
  static std::mutex mu;
  return mu;
}

}  // namespace

ShutdownController& ShutdownController::instance() {
  static ShutdownController controller;
  return controller;
}

void ShutdownController::install() {
  std::lock_guard<std::mutex> lock(install_mutex());
  if (g_installed) return;

  int fds[2];
  if (::pipe(fds) != 0)
    throw SystemError("ShutdownController: pipe() failed");
  // Read end stays blocking (the watcher sleeps in read()); the write end
  // must never block inside a signal handler.
  ::fcntl(fds[0], F_SETFD, FD_CLOEXEC);
  ::fcntl(fds[1], F_SETFD, FD_CLOEXEC);
  ::fcntl(fds[1], F_SETFL, O_NONBLOCK);
  g_pipe_rd = fds[0];
  g_pipe_wr = fds[1];

  struct sigaction action = {};
  action.sa_handler = signal_handler;
  sigemptyset(&action.sa_mask);
  // SA_RESTART: generator worker threads sitting in read()/write() should
  // not surface spurious EINTRs just because the operator pressed Ctrl-C;
  // shutdown is delivered cooperatively through callbacks and tokens.
  action.sa_flags = SA_RESTART;
  if (::sigaction(SIGINT, &action, &g_old_int) != 0 ||
      ::sigaction(SIGTERM, &action, &g_old_term) != 0)
    throw SystemError("ShutdownController: sigaction() failed");

  // Joinable watcher: teardown() closes the pipe's write end (read()
  // returns 0) and joins it. A process that never tears down leaks the
  // heap-held handle and the thread dies with the process -- the old
  // detached behavior, minus the unjoinable handle.
  g_watcher = new std::thread([this] { watcher_loop(); });
  g_installed = true;
}

void ShutdownController::teardown() {
  std::lock_guard<std::mutex> lock(install_mutex());
  if (!g_installed) return;

  // Restore dispositions first so no new handler invocation can race the
  // pipe close below. A handler already executing on another thread may
  // still write to the old fd; it checks g_pipe_wr >= 0, which we clear
  // before closing, shrinking the window to the unavoidable
  // load-then-write instant (and a dropped wakeup byte is harmless -- the
  // counters, not the pipe, carry the state).
  ::sigaction(SIGINT, &g_old_int, nullptr);
  ::sigaction(SIGTERM, &g_old_term, nullptr);

  const int wr = g_pipe_wr;
  g_pipe_wr = -1;
  if (wr >= 0) ::close(wr);  // watcher's read() now returns 0 -> it exits
  if (g_watcher != nullptr) {
    g_watcher->join();
    delete g_watcher;
    g_watcher = nullptr;
  }
  if (g_pipe_rd >= 0) ::close(g_pipe_rd);
  g_pipe_rd = -1;
  g_installed = false;
}

bool ShutdownController::installed() const {
  std::lock_guard<std::mutex> lock(install_mutex());
  return g_installed;
}

void ShutdownController::watcher_loop() {
  char buf[16];
  while (true) {
    const ssize_t n = ::read(g_pipe_rd, buf, sizeof buf);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return;  // pipe closed: process is tearing down
    const int count = g_signal_count;
    std::vector<std::function<void(int)>> fns;
    {
      std::lock_guard<std::mutex> lock(subscriptions().mu);
      fns.reserve(subscriptions().fns.size());
      for (const auto& [id, fn] : subscriptions().fns) fns.push_back(fn);
    }
    for (const auto& fn : fns) fn(count);
  }
}

int ShutdownController::signal_count() const { return g_signal_count; }

int ShutdownController::last_signal() const { return g_last_signal; }

std::uint64_t ShutdownController::subscribe(std::function<void(int)> fn) {
  std::lock_guard<std::mutex> lock(subscriptions().mu);
  const std::uint64_t id = subscriptions().next_id++;
  subscriptions().fns.emplace(id, std::move(fn));
  return id;
}

void ShutdownController::unsubscribe(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(subscriptions().mu);
  subscriptions().fns.erase(id);
}

void ShutdownController::reset_counts_for_tests() {
  g_signal_count = 0;
  g_last_signal = 0;
}

}  // namespace hpas
