// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), header-only.
//
// Used to frame sweep-journal records and to digest on-disk sweep outputs
// during --resume validation. Table-driven, byte-at-a-time: journal
// records are tiny and output files are read once per resume, so there is
// no need for a sliced variant.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace hpas {

namespace detail {

inline constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    make_crc32_table();

}  // namespace detail

/// Incremental update: feed `crc32_init()` (or a previous return value)
/// plus the next chunk; finish with `crc32_final()`.
inline constexpr std::uint32_t crc32_init() { return 0xFFFFFFFFu; }

inline std::uint32_t crc32_update(std::uint32_t state, const void* data,
                                  std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i)
    state = detail::kCrc32Table[(state ^ p[i]) & 0xFFu] ^ (state >> 8);
  return state;
}

inline constexpr std::uint32_t crc32_final(std::uint32_t state) {
  return state ^ 0xFFFFFFFFu;
}

/// One-shot CRC-32 of a byte string.
inline std::uint32_t crc32(std::string_view bytes) {
  return crc32_final(crc32_update(crc32_init(), bytes.data(), bytes.size()));
}

/// One-shot CRC-32 of a raw buffer.
inline std::uint32_t crc32(const void* data, std::size_t n) {
  return crc32_final(crc32_update(crc32_init(), data, n));
}

}  // namespace hpas
