// Wall-clock stopwatch for the native anomaly generators and benches.
#pragma once

#include <chrono>

namespace hpas {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  std::chrono::nanoseconds elapsed() const { return clock::now() - start_; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace hpas
