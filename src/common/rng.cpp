#include "common/rng.hpp"

#include <cmath>
#include <cstring>

#include "common/error.hpp"

namespace hpas {
namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
  // All-zero state is the one fixed point of xoshiro; splitmix64 cannot
  // produce four zero outputs in a row, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9e3779b97f4a7c15ULL;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  require(bound > 0, "Rng::next_below: bound must be positive");
  // Lemire's method with rejection to remove modulo bias.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (l < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  require(lo <= hi, "Rng::uniform_int: lo must be <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // span wraps to 0 when the range covers all of int64; then any value works.
  const std::uint64_t off = (span == 0) ? next() : next_below(span);
  return lo + static_cast<std::int64_t>(off);
}

double Rng::uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  require(lo <= hi, "Rng::uniform: lo must be <= hi");
  return lo + (hi - lo) * uniform01();
}

double Rng::normal(double mean, double stddev) {
  // Box-Muller; consumes exactly two draws per call.
  double u1 = uniform01();
  double u2 = uniform01();
  if (u1 <= 0.0) u1 = 0x1.0p-53;  // avoid log(0)
  const double r = std::sqrt(-2.0 * std::log(u1));
  constexpr double two_pi = 6.283185307179586476925286766559;
  return mean + stddev * r * std::cos(two_pi * u2);
}

double Rng::exponential(double rate) {
  require(rate > 0.0, "Rng::exponential: rate must be positive");
  double u = uniform01();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / rate;
}

Rng Rng::split() { return Rng(next()); }

void Rng::fill_bytes(void* dst, std::size_t n) {
  auto* out = static_cast<unsigned char*>(dst);
  while (n >= sizeof(std::uint64_t)) {
    const std::uint64_t word = next();
    std::memcpy(out, &word, sizeof(word));
    out += sizeof(word);
    n -= sizeof(word);
  }
  if (n > 0) {
    const std::uint64_t word = next();
    std::memcpy(out, &word, n);
  }
}

}  // namespace hpas
