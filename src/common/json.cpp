#include "common/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/error.hpp"

namespace hpas {
namespace {

[[noreturn]] void type_error(const char* want, Json::Type got) {
  static const char* kNames[] = {"null",   "bool",  "number",
                                 "string", "array", "object"};
  throw ConfigError(std::string("json: expected ") + want + ", got " +
                    kNames[static_cast<int>(got)]);
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') { ++line; col = 1; } else { ++col; }
    }
    throw ConfigError("json: " + msg + " at line " + std::to_string(line) +
                      ", column " + std::to_string(col));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') ++pos_;
      else break;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) { ++pos_; return true; }
    return false;
  }

  void expect(char c) {
    if (!consume(c)) fail(std::string("expected '") + c + "'");
  }

  bool consume_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't': if (consume_word("true")) return Json(true); fail("bad literal");
      case 'f': if (consume_word("false")) return Json(false); fail("bad literal");
      case 'n': if (consume_word("null")) return Json(nullptr); fail("bad literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json::Object members;
    skip_ws();
    if (consume('}')) return Json(std::move(members));
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (consume(',')) continue;
      expect('}');
      return Json(std::move(members));
    }
  }

  Json parse_array() {
    expect('[');
    Json::Array elems;
    skip_ws();
    if (consume(']')) return Json(std::move(elems));
    while (true) {
      elems.push_back(parse_value());
      skip_ws();
      if (consume(',')) continue;
      expect(']');
      return Json(std::move(elems));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("control character in string");
      if (c != '\\') { out.push_back(c); continue; }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': out.append(parse_unicode_escape()); break;
        default: fail("unknown escape sequence");
      }
    }
  }

  std::string parse_unicode_escape() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
      else fail("bad hex digit in \\u escape");
    }
    // UTF-8 encode the BMP code point (surrogate pairs unsupported; grid
    // files are ASCII in practice).
    std::string out;
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
    return out;
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double value = 0.0;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc() || ptr != last || first == last) {
      pos_ = start;
      fail("malformed number");
    }
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void write_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

std::string json_number_to_string(double v) {
  if (std::isnan(v) || std::isinf(v)) return "null";  // JSON has no inf/nan
  // Integers (up to the exactly-representable range) print without a
  // decimal point; everything else uses shortest round-trip formatting.
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[40];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  if (ec != std::errc()) return "0";
  return std::string(buf, ptr);
}

bool Json::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  return number_;
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return string_;
}

const Json::Array& Json::as_array() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return array_;
}

const Json::Object& Json::as_object() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return object_;
}

Json::Array& Json::as_array() {
  if (type_ != Type::kArray) type_error("array", type_);
  return array_;
}

Json::Object& Json::as_object() {
  if (type_ != Type::kObject) type_error("object", type_);
  return object_;
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_)
    if (k == key) return &v;
  return nullptr;
}

double Json::number_or(std::string_view key, double fallback) const {
  const Json* v = find(key);
  return v == nullptr ? fallback : v->as_number();
}

std::string Json::string_or(std::string_view key, std::string fallback) const {
  const Json* v = find(key);
  return v == nullptr ? std::move(fallback) : v->as_string();
}

bool Json::bool_or(std::string_view key, bool fallback) const {
  const Json* v = find(key);
  return v == nullptr ? fallback : v->as_bool();
}

Json& Json::set(std::string key, Json value) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) type_error("object", type_);
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::push_back(Json value) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray) type_error("array", type_);
  array_.push_back(std::move(value));
  return *this;
}

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

void Json::write(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const auto newline_pad = [&](int d) {
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: out += json_number_to_string(number_); break;
    case Type::kString: write_escaped(out, string_); break;
    case Type::kArray: {
      out.push_back('[');
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out.push_back(',');
        if (pretty) newline_pad(depth + 1);
        array_[i].write(out, indent, depth + 1);
      }
      if (pretty && !array_.empty()) newline_pad(depth);
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      out.push_back('{');
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out.push_back(',');
        if (pretty) newline_pad(depth + 1);
        write_escaped(out, object_[i].first);
        out.push_back(':');
        if (pretty) out.push_back(' ');
        object_[i].second.write(out, indent, depth + 1);
      }
      if (pretty && !object_.empty()) newline_pad(depth);
      out.push_back('}');
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  if (indent >= 0) out.push_back('\n');
  return out;
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull: return true;
    case Type::kBool: return bool_ == other.bool_;
    case Type::kNumber: return number_ == other.number_;
    case Type::kString: return string_ == other.string_;
    case Type::kArray: return array_ == other.array_;
    case Type::kObject: return object_ == other.object_;
  }
  return false;
}

}  // namespace hpas
