// Process shutdown controller: sigaction + self-pipe, shared by the CLIs.
//
// The old scheme -- a bare std::signal handler poking at whatever global
// the current subcommand happened to expose -- is replaced by one
// controller: the handler only touches volatile sig_atomic_t counters and
// writes a byte to a self-pipe (both async-signal-safe); a watcher thread
// drains the pipe and invokes registered callbacks in a normal thread
// context, where they may take locks, cancel tokens, or write to stderr.
//
// Shutdown contract (what `hpas sweep` and `hpas-sim` implement with it):
//   1st SIGINT/SIGTERM  -> graceful: drain in-flight work, journal it,
//                          exit 0 with a resume hint;
//   2nd signal          -> hard: cancel in-flight work cooperatively,
//                          still leaving valid journals/outputs behind.
#pragma once

#include <csignal>
#include <cstdint>
#include <functional>

namespace hpas {

class ShutdownController {
 public:
  /// Process-wide singleton (signal dispositions are process-wide state).
  static ShutdownController& instance();

  ShutdownController(const ShutdownController&) = delete;
  ShutdownController& operator=(const ShutdownController&) = delete;

  /// Installs SIGINT/SIGTERM handlers via sigaction (SA_RESTART, so slow
  /// syscalls in worker threads resume instead of surfacing EINTR) and
  /// starts the watcher thread. Idempotent: later calls are no-ops.
  void install();

  /// Undoes install(): restores the previous SIGINT/SIGTERM dispositions,
  /// joins the watcher thread, and closes both self-pipe ends. Idempotent
  /// (a no-op when not installed), and install() works again afterwards --
  /// the pair is what lets a long-running daemon re-install around
  /// restarts without leaking an fd pair and a thread per cycle.
  /// Subscriptions and counters survive a teardown/install cycle;
  /// callbacks simply stop firing while torn down.
  void teardown();

  bool installed() const;

  /// Cumulative signals received since install(); 0 = none, 1 = graceful
  /// shutdown requested, >= 2 = hard shutdown requested.
  int signal_count() const;
  bool requested() const { return signal_count() >= 1; }
  bool hard_requested() const { return signal_count() >= 2; }

  /// The last signal number delivered (0 before the first); used to pick
  /// a conventional 128+N exit code.
  int last_signal() const;

  /// Registers `fn` to run on the watcher thread for every delivered
  /// signal, receiving the cumulative count (1 = first/graceful, 2+ =
  /// hard). Returns a subscription id for unsubscribe(). Callbacks
  /// outliving the state they capture must be unsubscribed first.
  std::uint64_t subscribe(std::function<void(int count)> fn);
  void unsubscribe(std::uint64_t id);

  /// Test hook: resets the counters (handlers stay installed). Does not
  /// drop subscriptions.
  void reset_counts_for_tests();

 private:
  ShutdownController() = default;
  void watcher_loop();
};

}  // namespace hpas
