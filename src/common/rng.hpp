// Deterministic random number generation for HPAS.
//
// Everything random in HPAS -- simulated workloads, anomaly buffer fills,
// ML bootstrap resampling -- flows from explicitly seeded generators so
// every experiment is bit-reproducible, which is the whole point of the
// suite (see paper Sec. 1: "repeatably and systematically study performance
// variability").
//
// We implement xoshiro256** (Blackman & Vigna) seeded through splitmix64,
// rather than std::mt19937, because its output sequence is identical across
// standard library implementations and it is significantly faster, which
// matters for the native anomalies that fill buffers with random bytes.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace hpas {

/// splitmix64: used to expand a single 64-bit seed into generator state.
/// Also usable standalone as a tiny, fast generator for non-critical paths.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the main HPAS generator. Satisfies (most of) the C++
/// UniformRandomBitGenerator concept so it can be used with <random>
/// distributions when needed, though HPAS provides its own helpers below
/// for cross-platform determinism.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from one 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection
  /// method: unbiased and branch-light. bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. lo must be <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller (deterministic, no cached spare so the
  /// stream position is predictable).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Exponential with the given rate (lambda). rate must be > 0.
  double exponential(double rate);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator; used to give each simulated
  /// node / process / ML fold its own stream so adding one consumer does
  /// not perturb the randomness seen by the others.
  Rng split();

  /// Fills a byte buffer with pseudorandom data (native anomalies use this
  /// to defeat memory deduplication / compression, as the paper's
  /// generators fill arrays with "random values").
  void fill_bytes(void* dst, std::size_t n);

 private:
  std::array<std::uint64_t, 4> s_;
};

}  // namespace hpas
