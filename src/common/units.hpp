// Byte-size / rate / percentage parsing and formatting.
//
// The native anomaly generators take human-shaped CLI values ("35M",
// "100MB", "2.5G", "80%"), mirroring the knobs in Table 1 of the paper
// (buffer size, message size, file size, utilization%, rate).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace hpas {

inline constexpr std::uint64_t kKiB = 1024ULL;
inline constexpr std::uint64_t kMiB = 1024ULL * kKiB;
inline constexpr std::uint64_t kGiB = 1024ULL * kMiB;

/// Parses a byte size such as "64", "64K", "35M", "2G", "1.5G", "100MB",
/// "32KiB". Suffixes are case-insensitive; K/M/G (optionally followed by
/// "B" or "iB") are binary multiples, matching the conventions of the
/// original HPAS tool. Throws ConfigError on malformed input.
std::uint64_t parse_bytes(std::string_view text);

/// Parses a percentage: "80", "80%", "12.5%". Returns the fraction in
/// [0, 100]; throws ConfigError when out of range or malformed.
double parse_percent(std::string_view text);

/// Parses a plain non-negative double ("3", "0.25"). Throws on garbage.
double parse_double(std::string_view text);

/// Parses a non-negative integer. Throws on garbage or overflow.
std::uint64_t parse_u64(std::string_view text);

/// Parses a duration: "30" (seconds), "30s", "5m", "2h", "250ms".
/// Returns seconds. Throws ConfigError on malformed input.
double parse_duration_seconds(std::string_view text);

/// Formats a byte count with a binary suffix: 1536 -> "1.50KiB".
std::string format_bytes(std::uint64_t bytes);

/// Formats a rate in bytes/second with a binary suffix: "2.31GiB/s".
std::string format_rate(double bytes_per_second);

/// Formats seconds compactly: 0.0042 -> "4.20ms", 95 -> "95.0s".
std::string format_seconds(double seconds);

}  // namespace hpas
