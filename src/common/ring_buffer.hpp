// Fixed-capacity ring buffer.
//
// Used by the monitoring collector to keep bounded recent history per
// metric (LDMS-style samplers run for the life of a job; unbounded vectors
// would be a memory leak in the *monitoring* layer, which would be ironic
// for an anomaly suite).
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"

namespace hpas {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : buf_(capacity) {
    require(capacity > 0, "RingBuffer: capacity must be positive");
  }

  /// Appends a value, overwriting the oldest when full.
  void push(const T& value) {
    buf_[head_] = value;
    head_ = (head_ + 1) % buf_.size();
    if (size_ < buf_.size()) ++size_;
  }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return buf_.size(); }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == buf_.size(); }

  /// i = 0 is the *oldest* retained element.
  const T& operator[](std::size_t i) const {
    require(i < size_, "RingBuffer: index out of range");
    const std::size_t start = (head_ + buf_.size() - size_) % buf_.size();
    return buf_[(start + i) % buf_.size()];
  }

  const T& back() const {
    require(size_ > 0, "RingBuffer: back() on empty buffer");
    return (*this)[size_ - 1];
  }

  /// Copies the retained window, oldest first.
  std::vector<T> to_vector() const {
    std::vector<T> out;
    out.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i) out.push_back((*this)[i]);
    return out;
  }

  void clear() {
    size_ = 0;
    head_ = 0;
  }

 private:
  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace hpas
