// Capped jittered exponential backoff, seedable for deterministic tests.
//
// The standard retry discipline for a busy or briefly absent peer: the
// base delay doubles per attempt up to a cap, and each delay is jittered
// uniformly over [delay/2, delay] (the "equal jitter" rule) so a fleet of
// clients bounced by the same `busy` burst does not resubmit in lockstep.
// Jitter comes from a SplitMix64 seeded explicitly, never from host
// entropy -- the delay sequence for a given seed is part of a test's
// expected output.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/rng.hpp"

namespace hpas {

class Backoff {
 public:
  /// Delays grow base_ms, 2*base_ms, 4*base_ms, ... capped at cap_ms,
  /// each then jittered down by up to half. base_ms must be >= 1.
  Backoff(double base_ms, double cap_ms, std::uint64_t seed)
      : base_ms_(base_ms < 1.0 ? 1.0 : base_ms),
        cap_ms_(std::max(cap_ms, base_ms_)),
        rng_(seed) {}

  /// The next delay in milliseconds; advances the attempt counter.
  double next_ms() {
    double delay = base_ms_;
    // Exponentiate by doubling with an early cap so huge attempt counts
    // cannot overflow.
    for (std::uint64_t i = 0; i < attempt_ && delay < cap_ms_; ++i)
      delay *= 2.0;
    delay = std::min(delay, cap_ms_);
    ++attempt_;
    const double unit = static_cast<double>(rng_.next() >> 11) * 0x1.0p-53;
    return delay / 2.0 + unit * (delay / 2.0);
  }

  std::uint64_t attempts() const { return attempt_; }

  void reset() { attempt_ = 0; }

 private:
  double base_ms_;
  double cap_ms_;
  std::uint64_t attempt_ = 0;
  SplitMix64 rng_;
};

}  // namespace hpas
