// Minimal, dependency-free JSON value type with a parser and a
// deterministic serializer.
//
// The experiment runner's inputs (declarative scenario grids) and outputs
// (sweep summaries) are JSON. The serializer is part of the reproducibility
// contract: object members keep insertion order, numbers are formatted with
// a fixed shortest-round-trip rule, and there is no locale or hash-order
// dependence, so the same value always serializes to the same bytes -- the
// property the determinism test battery (tests/test_runner_determinism.cpp)
// asserts across thread counts.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hpas {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Json>;
  /// Object members preserve insertion order (deterministic serialization).
  using Member = std::pair<std::string, Json>;
  using Object = std::vector<Member>;

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double v) : type_(Type::kNumber), number_(v) {}
  Json(int v) : type_(Type::kNumber), number_(v) {}
  Json(std::uint64_t v)
      : type_(Type::kNumber), number_(static_cast<double>(v)) {}
  Json(const char* s) : type_(Type::kString), string_(s) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Json(Array a) : type_(Type::kArray), array_(std::move(a)) {}
  Json(Object o) : type_(Type::kObject), object_(std::move(o)) {}

  static Json array() { return Json(Array{}); }
  static Json object() { return Json(Object{}); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw ConfigError when the type does not match.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;
  Array& as_array();
  Object& as_object();

  /// Object lookup; nullptr when absent (or not an object).
  const Json* find(std::string_view key) const;

  /// Convenience lookups with defaults; throw ConfigError when the member
  /// exists but has the wrong type.
  double number_or(std::string_view key, double fallback) const;
  std::string string_or(std::string_view key, std::string fallback) const;
  bool bool_or(std::string_view key, bool fallback) const;

  /// Appends (or replaces) an object member. The value becomes an object
  /// if it was null.
  Json& set(std::string key, Json value);
  /// Appends an array element. The value becomes an array if it was null.
  Json& push_back(Json value);

  /// Parses a complete JSON document (trailing garbage is an error).
  /// Throws ConfigError with a line/column position on malformed input.
  static Json parse(std::string_view text);

  /// Serializes deterministically. indent < 0 => compact single line;
  /// indent >= 0 => pretty-printed with that many spaces per level and a
  /// trailing newline at top level.
  std::string dump(int indent = -1) const;

  bool operator==(const Json& other) const;

 private:
  void write(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Formats a double exactly as the serializer does (integers without a
/// decimal point, otherwise shortest round-trip). Exposed so CSV/summary
/// writers can share the byte-stable formatting rule.
std::string json_number_to_string(double v);

}  // namespace hpas
