// Minimal, dependency-free command-line option parser.
//
// Each native anomaly generator exposes the runtime knobs of paper Table 1
// through this parser (e.g. `hpas cpuoccupy -u 80 -d 30s`). Supports long
// (`--utilization 80`, `--utilization=80`) and short (`-u 80`) options,
// flags, required options, defaults, and generated --help text.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace hpas {

/// Declarative description of one option.
struct OptionSpec {
  std::string long_name;           ///< e.g. "utilization" (no leading --)
  char short_name = '\0';          ///< e.g. 'u'; '\0' for none
  std::string value_name;          ///< e.g. "PERCENT"; empty => boolean flag
  std::string help;                ///< one-line description
  std::optional<std::string> default_value;  ///< shown in --help
  bool required = false;
};

/// Result of a parse: option values by long name plus positional arguments.
class ParsedArgs {
 public:
  bool has(const std::string& long_name) const;

  /// Value of a valued option (default applied); throws ConfigError if the
  /// option was neither given nor defaulted.
  std::string value(const std::string& long_name) const;

  /// Value if present (explicit or default), nullopt otherwise.
  std::optional<std::string> value_or_none(const std::string& long_name) const;

  bool flag(const std::string& long_name) const { return has(long_name); }

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  friend class CliParser;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

/// Checked numeric accessors for parsed flag values. Each parses the
/// value of `--long_name` through the corresponding common parser
/// (units.hpp) and rethrows malformed input as a ConfigError that names
/// the offending flag -- so `hpas search --keep abc` reports
/// "--keep: malformed number 'abc'" and exits with the usage status (2)
/// instead of surfacing a bare std::stod message through the generic
/// fatal-error handler.
std::uint64_t flag_u64(const ParsedArgs& args, const std::string& long_name);
double flag_double(const ParsedArgs& args, const std::string& long_name);
double flag_duration_seconds(const ParsedArgs& args,
                             const std::string& long_name);

/// A reusable parser for one subcommand.
class CliParser {
 public:
  CliParser(std::string program, std::string description);

  /// Registers an option. Long names must be unique; returns *this for
  /// chaining.
  CliParser& add(OptionSpec spec);

  /// Parses argv (excluding the program name). Throws ConfigError with a
  /// user-facing message on unknown options, missing values, or missing
  /// required options. "--" ends option parsing.
  ParsedArgs parse(const std::vector<std::string>& args) const;

  /// Multi-line usage text for --help.
  std::string help_text() const;

  const std::string& program() const { return program_; }
  const std::string& description() const { return description_; }

 private:
  const OptionSpec* find_long(const std::string& name) const;
  const OptionSpec* find_short(char c) const;

  std::string program_;
  std::string description_;
  std::vector<OptionSpec> specs_;
};

}  // namespace hpas
