#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace hpas {
namespace {

std::atomic<int> g_level{-1};  // -1 = uninitialized
std::mutex g_mutex;

LogLevel level_from_env() {
  const char* env = std::getenv("HPAS_LOG");
  if (env == nullptr) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kInfo;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  int v = g_level.load(std::memory_order_relaxed);
  if (v < 0) {
    const LogLevel from_env = level_from_env();
    set_log_level(from_env);
    v = static_cast<int>(from_env);
  }
  return static_cast<LogLevel>(v);
}

void log_message(LogLevel level, const std::string& message) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[hpas][%s] %s\n", level_name(level), message.c_str());
}

}  // namespace hpas
