#include "trace/export.hpp"

#include <bit>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace hpas::trace {
namespace {

constexpr char kMagic[8] = {'H', 'P', 'T', 'R', 'A', 'C', 'E', '1'};
constexpr std::uint32_t kVersion = 1;

// Explicit little-endian field writers: the format must not depend on the
// host's struct layout or byte order.
void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

class Reader {
 public:
  explicit Reader(std::istream& in) : in_(in) {}

  std::uint16_t u16() { return static_cast<std::uint16_t>(uint_n(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(uint_n(4)); }
  std::uint64_t u64() { return uint_n(8); }
  double f64() { return std::bit_cast<double>(uint_n(8)); }

  std::string bytes(std::size_t n) {
    std::string out(n, '\0');
    in_.read(out.data(), static_cast<std::streamsize>(n));
    check();
    return out;
  }

 private:
  std::uint64_t uint_n(int n) {
    unsigned char raw[8] = {};
    in_.read(reinterpret_cast<char*>(raw), n);
    check();
    std::uint64_t v = 0;
    for (int i = 0; i < n; ++i) v |= std::uint64_t{raw[i]} << (8 * i);
    return v;
  }

  void check() {
    if (!in_) throw ConfigError("trace: truncated or unreadable stream");
  }

  std::istream& in_;
};

}  // namespace

void write_binary(std::ostream& out, const TraceFile& file) {
  std::string bytes;
  bytes.reserve(64 + file.records.size() * 46);
  bytes.append(kMagic, sizeof(kMagic));
  put_u32(bytes, kVersion);
  put_u64(bytes, file.emitted);
  put_u64(bytes, file.dropped);
  put_u32(bytes, static_cast<std::uint32_t>(file.labels.size()));
  put_u64(bytes, file.records.size());
  for (const auto& [id, name] : file.labels) {
    put_u32(bytes, id);
    put_u32(bytes, static_cast<std::uint32_t>(name.size()));
    bytes.append(name);
  }
  for (const TraceRecord& r : file.records) {
    put_u64(bytes, r.seq);
    put_f64(bytes, r.time);
    put_u16(bytes, static_cast<std::uint16_t>(r.kind));
    put_u32(bytes, r.subject);
    put_u16(bytes, r.detail);
    put_u64(bytes, r.a);
    put_f64(bytes, r.x);
    put_f64(bytes, r.y);
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) throw SystemError("trace: write failed");
}

TraceFile read_binary(std::istream& in) {
  Reader reader(in);
  const std::string magic = reader.bytes(sizeof(kMagic));
  if (magic != std::string(kMagic, sizeof(kMagic)))
    throw ConfigError("trace: not a binary trace (bad magic)");
  const std::uint32_t version = reader.u32();
  if (version != kVersion)
    throw ConfigError("trace: unsupported version " + std::to_string(version));

  TraceFile file;
  file.emitted = reader.u64();
  file.dropped = reader.u64();
  const std::uint32_t label_count = reader.u32();
  const std::uint64_t record_count = reader.u64();
  if (record_count > file.emitted)
    throw ConfigError("trace: corrupt header (records > emitted)");
  file.labels.reserve(label_count);
  for (std::uint32_t i = 0; i < label_count; ++i) {
    const std::uint32_t id = reader.u32();
    const std::uint32_t len = reader.u32();
    if (len > (1u << 20)) throw ConfigError("trace: label too long");
    file.labels.emplace_back(id, reader.bytes(len));
  }
  file.records.reserve(record_count);
  for (std::uint64_t i = 0; i < record_count; ++i) {
    TraceRecord r;
    r.seq = reader.u64();
    r.time = reader.f64();
    r.kind = static_cast<RecordKind>(reader.u16());
    r.subject = reader.u32();
    r.detail = reader.u16();
    r.a = reader.u64();
    r.x = reader.f64();
    r.y = reader.f64();
    file.records.push_back(r);
  }
  return file;
}

void write_binary_file(const std::string& path, const TraceFile& file) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw SystemError("trace: cannot open for writing: " + path);
  write_binary(out, file);
}

TraceFile read_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SystemError("trace: cannot open: " + path);
  return read_binary(in);
}

std::string format_record(const TraceRecord& record, const TraceFile& file) {
  std::string subj = std::to_string(record.subject);
  for (const auto& [id, name] : file.labels) {
    if (id == record.subject) {
      subj += '(' + name + ')';
      break;
    }
  }
  std::ostringstream out;
  out << '#' << record.seq << " t=" << json_number_to_string(record.time)
      << ' ' << record_kind_name(record.kind) << " subj=" << subj
      << " detail=" << record.detail << " a=" << record.a
      << " x=" << json_number_to_string(record.x)
      << " y=" << json_number_to_string(record.y);
  return out.str();
}

void write_text(std::ostream& out, const TraceFile& file) {
  out << "trace emitted=" << file.emitted << " dropped=" << file.dropped
      << " records=" << file.records.size() << '\n';
  for (const auto& [id, name] : file.labels)
    out << "label " << id << ' ' << name << '\n';
  for (const TraceRecord& r : file.records)
    out << format_record(r, file) << '\n';
}

Json to_chrome_trace(const TraceFile& file) {
  Json events = Json::array();
  for (const TraceRecord& r : file.records) {
    Json ev = Json::object();
    std::string name(record_kind_name(r.kind));
    for (const auto& [id, label] : file.labels) {
      if (id == r.subject) {
        name += ':' + label;
        break;
      }
    }
    ev.set("name", std::move(name));
    ev.set("ph", "i");  // instant event
    ev.set("s", "g");   // global scope
    ev.set("ts", r.time * 1e6);
    ev.set("pid", 0);
    ev.set("tid", static_cast<double>(r.subject));
    Json args = Json::object();
    args.set("seq", static_cast<double>(r.seq));
    args.set("detail", static_cast<double>(r.detail));
    args.set("a", static_cast<double>(r.a));
    args.set("x", r.x);
    args.set("y", r.y);
    ev.set("args", std::move(args));
    events.push_back(std::move(ev));
  }
  Json doc = Json::object();
  doc.set("traceEvents", std::move(events));
  doc.set("displayTimeUnit", "ms");
  return doc;
}

}  // namespace hpas::trace
