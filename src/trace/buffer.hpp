// Fixed-capacity record ring with explicit overflow accounting.
//
// Unlike common/ring_buffer.hpp (monitoring history, where silently
// forgetting old samples is the point), the trace ring must never lose
// records *silently*: every overwrite of an unexported record increments a
// dropped counter that is surfaced in the trace header, the text export
// and the CLI tools. A default-constructed buffer has capacity zero and
// owns no storage, which is what makes disabled tracing allocation-free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "trace/record.hpp"

namespace hpas::trace {

class TraceBuffer {
 public:
  /// Capacity 0: every push drops (and is counted). No allocation.
  TraceBuffer() = default;
  explicit TraceBuffer(std::size_t capacity) { reset(capacity); }

  /// Re-allocates to exactly `capacity` slots and forgets retained records
  /// (the cumulative dropped/pushed counters survive).
  void reset(std::size_t capacity) {
    buf_.assign(capacity, TraceRecord{});
    head_ = 0;
    size_ = 0;
  }

  /// Appends a record. Returns false when the buffer was full and the
  /// oldest retained record was overwritten (counted in dropped()).
  bool push(const TraceRecord& record) {
    ++pushed_;
    if (buf_.empty()) {
      ++dropped_;
      return false;
    }
    const bool overwrote = size_ == buf_.size();
    buf_[head_] = record;
    head_ = (head_ + 1) % buf_.size();
    if (overwrote) {
      ++dropped_;
    } else {
      ++size_;
    }
    return !overwrote;
  }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return buf_.size(); }
  bool empty() const { return size_ == 0; }
  bool full() const { return !buf_.empty() && size_ == buf_.size(); }

  /// Records pushed over the buffer's lifetime, retained or not.
  std::uint64_t total_pushed() const { return pushed_; }
  /// Records lost to overwrites (or to capacity 0). Never reset by
  /// clear()/reset(): a drop that happened stays on the books.
  std::uint64_t dropped() const { return dropped_; }

  /// i = 0 is the oldest *retained* record.
  const TraceRecord& operator[](std::size_t i) const {
    require(i < size_, "TraceBuffer: index out of range");
    const std::size_t start = (head_ + buf_.size() - size_) % buf_.size();
    return buf_[(start + i) % buf_.size()];
  }

  /// Drops retained records (not counted: they were consumed, typically by
  /// a sink flush) while keeping capacity and cumulative counters.
  void clear() {
    head_ = 0;
    size_ = 0;
  }

  /// Copies the retained window, oldest first.
  std::vector<TraceRecord> snapshot() const {
    std::vector<TraceRecord> out;
    out.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i) out.push_back((*this)[i]);
    return out;
  }

 private:
  std::vector<TraceRecord> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::uint64_t pushed_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace hpas::trace
