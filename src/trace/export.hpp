// Trace exporters and readers.
//
// Three forms, one source of truth (TraceFile):
//   * binary  -- the canonical on-disk format (`hpas-sim --trace`): a
//     fixed little-endian layout, 46 bytes per record, with the emitted/
//     dropped counters and the label table in the header. Byte-stable:
//     re-serializing a read trace reproduces the input exactly;
//   * text    -- one line per record, numbers in the same shortest-round-
//     trip form the JSON serializer uses. Byte-stable, diffable, and what
//     the golden-trace regression tests pin;
//   * Chrome `trace_event` JSON -- load into chrome://tracing or Perfetto
//     for a visual timeline (instant events; pid 0, tid = subject).
#pragma once

#include <iosfwd>
#include <string>

#include "common/json.hpp"
#include "trace/tracer.hpp"

namespace hpas::trace {

/// Serializes the canonical binary form. The stream should be opened in
/// binary mode. Throws SystemError when the stream fails.
void write_binary(std::ostream& out, const TraceFile& file);

/// Parses a binary trace. Throws ConfigError on bad magic/version or a
/// truncated/corrupt stream.
TraceFile read_binary(std::istream& in);

/// Convenience wrappers; throw SystemError when the file cannot be
/// opened (read_binary_file additionally throws ConfigError as above).
void write_binary_file(const std::string& path, const TraceFile& file);
TraceFile read_binary_file(const std::string& path);

/// One record as a stable, human-readable line (no trailing newline).
/// Labeled subjects render as `subj=3(memleak)`.
std::string format_record(const TraceRecord& record, const TraceFile& file);

/// The byte-stable text form: a `trace` header line with the counters,
/// `label` lines, then one format_record() line per record.
void write_text(std::ostream& out, const TraceFile& file);

/// Chrome trace_event document ({"traceEvents": [...]}); timestamps in
/// microseconds as the format requires.
Json to_chrome_trace(const TraceFile& file);

}  // namespace hpas::trace
