#include "trace/replay.hpp"

#include <algorithm>
#include <cstddef>

#include "trace/export.hpp"

namespace hpas::trace {
namespace {

/// Index of the first record with seq >= target (records are seq-sorted
/// by construction). size() when none.
std::size_t lower_bound_seq(const TraceFile& file, std::uint64_t target) {
  const auto it = std::lower_bound(
      file.records.begin(), file.records.end(), target,
      [](const TraceRecord& r, std::uint64_t s) { return r.seq < s; });
  return static_cast<std::size_t>(it - file.records.begin());
}

TraceDivergence diverged_at(std::uint64_t seq, std::string description) {
  TraceDivergence d;
  d.diverged = true;
  d.seq = seq;
  d.description = std::move(description);
  return d;
}

}  // namespace

TraceDivergence diff_traces(const TraceFile& recorded,
                            const TraceFile& fresh) {
  // Align on the first seq both traces retain (either side may have lost
  // its head to a bounded ring).
  std::uint64_t start_seq = 0;
  if (!recorded.records.empty()) start_seq = recorded.records.front().seq;
  if (!fresh.records.empty())
    start_seq = std::max(start_seq, fresh.records.front().seq);
  std::size_t i = lower_bound_seq(recorded, start_seq);
  std::size_t j = lower_bound_seq(fresh, start_seq);

  while (i < recorded.records.size() && j < fresh.records.size()) {
    const TraceRecord& a = recorded.records[i];
    const TraceRecord& b = fresh.records[j];
    if (!bitwise_equal(a, b)) {
      return diverged_at(std::min(a.seq, b.seq),
                         "event #" + std::to_string(std::min(a.seq, b.seq)) +
                             ": recorded {" + format_record(a, recorded) +
                             "} vs fresh {" + format_record(b, fresh) + "}");
    }
    ++i;
    ++j;
  }

  if (i < recorded.records.size()) {
    const TraceRecord& a = recorded.records[i];
    return diverged_at(
        a.seq, "fresh trace ended before event #" + std::to_string(a.seq) +
                   ": recorded {" + format_record(a, recorded) + "}");
  }
  if (j < fresh.records.size()) {
    const TraceRecord& b = fresh.records[j];
    return diverged_at(
        b.seq, "recorded trace ended before event #" + std::to_string(b.seq) +
                   ": fresh {" + format_record(b, fresh) + "}");
  }

  // Record streams agree; a label-table mismatch still means the runs
  // created different subjects (names matter for report fidelity).
  if (recorded.labels != fresh.labels) {
    return diverged_at(start_seq,
                       "label tables differ (" +
                           std::to_string(recorded.labels.size()) +
                           " recorded vs " +
                           std::to_string(fresh.labels.size()) + " fresh)");
  }
  return {};
}

}  // namespace hpas::trace
