// Deterministic replay checking and trace differencing.
//
// The replay guarantee: running the same scenario (same grid text, same
// seed) twice yields bit-identical record streams. diff_traces() is the
// checker behind `hpas-sim --check-trace` and the `trace_diff` tool: it
// walks two streams in seq order and reports the *first* divergent
// record, with both sides formatted -- turning "the golden file changed"
// into "event #4217: node_rates subj=7 x=0.42 vs x=0.39".
//
// Ring-truncated traces (dropped > 0) are handled by aligning on seq:
// comparison starts at the first seq both traces retain, so a bounded
// in-memory ring can still be checked against a lossless re-run.
#pragma once

#include <cstdint>
#include <string>

#include "trace/tracer.hpp"

namespace hpas::trace {

struct TraceDivergence {
  bool diverged = false;
  /// Seq number of the first divergent record (when both sides have one);
  /// for length mismatches, the seq where the shorter side ended.
  std::uint64_t seq = 0;
  /// Human-readable one-stop report: empty when the traces agree.
  std::string description;
};

/// Compares `recorded` against `fresh` record-by-record (bitwise on
/// doubles) after seq alignment; also cross-checks the label tables.
/// Returns diverged == false when every comparable record agrees.
TraceDivergence diff_traces(const TraceFile& recorded, const TraceFile& fresh);

}  // namespace hpas::trace
