// Structured trace records: the event vocabulary of the simulation.
//
// Every interesting state change in the DES substrate -- engine events
// scheduled/fired/cancelled, task spawns and phase transitions, max-min
// rate recomputations, anomaly injector start/stop, memory allocation and
// OOM, monitoring samples -- emits one fixed-size record. Records are
// compact PODs so the hot path is a few stores into a ring buffer, and
// their serialized form is byte-stable: replaying the same seed must
// reproduce the same record stream bit for bit, which is what turns
// "the golden file changed" into "event #4217 diverged".
#pragma once

#include <bit>
#include <cstdint>
#include <string_view>

namespace hpas::trace {

enum class RecordKind : std::uint16_t {
  kEventScheduled = 1,  ///< engine: subject=0, a=event id, x=target time
  kEventFired = 2,      ///< engine: a=event id
  kEventCancelled = 3,  ///< engine: a=event id (cancellation *requested*)
  kTaskSpawn = 4,       ///< world: subject=task, detail=node, a=core
  kTaskKill = 5,        ///< world: subject=task, detail=node, x=held bytes
  kPhaseTransition = 6, ///< task: subject=task, detail=PhaseKind, a=peer/io,
                        ///<       x=phase work
  kRateRecompute = 7,   ///< world: a=live task count
  kNodeRates = 8,       ///< world: subject=node, detail=active residents,
                        ///<        x=cpu share total, y=dram bytes/s total
  kTaskRate = 9,        ///< world: subject=task, detail=PhaseKind,
                        ///<        x=progress rate, y=cpu share
  kMemoryAlloc = 10,    ///< world: subject=task, detail=node, x=delta bytes,
                        ///<        y=node bytes used after
  kOom = 11,            ///< world: subject=task, detail=node, x=delta bytes,
                        ///<        y=node bytes free
  kAnomalyStart = 12,   ///< injector: subject=node, detail=anomaly id,
                        ///<           a=core, x=duration, y=primary knob
  kAnomalyStop = 13,    ///< injector: subject=task, detail=anomaly id
  kSample = 14,         ///< monitoring: a=collector count, x=period
  kInjectorFailure = 15,  ///< injector: subject=task, detail=mode
                          ///<           (0=killed), a=surviving injector
                          ///<           tasks, x=failure time
  kRunCancelled = 16,     ///< driver: the run was cancelled cooperatively;
                          ///<         detail=CancelReason, x=sim time at
                          ///<         cancellation. Always the last record
                          ///<         of a truncated trace, so partial
                          ///<         captures are self-describing.
};

inline constexpr std::uint16_t kNumRecordKinds = 17;  ///< 1 + highest kind

/// Short stable name for a kind; "unknown" for out-of-range values.
std::string_view record_kind_name(RecordKind kind);

/// One trace record. 46 bytes serialized (see export.hpp); field meanings
/// are per-kind, documented on RecordKind.
struct TraceRecord {
  std::uint64_t seq = 0;   ///< global emission index (0-based, monotonic)
  double time = 0.0;       ///< simulated seconds
  RecordKind kind = RecordKind::kEventFired;
  std::uint32_t subject = 0;
  std::uint16_t detail = 0;
  std::uint64_t a = 0;
  double x = 0.0;
  double y = 0.0;
};

/// Bit-exact equality (distinguishes -0.0 from 0.0; never equates NaNs
/// by accident). This is the comparison replay checking uses: two runs of
/// the same seed must agree to the last bit, not merely approximately.
inline bool bitwise_equal(const TraceRecord& lhs, const TraceRecord& rhs) {
  return lhs.seq == rhs.seq &&
         std::bit_cast<std::uint64_t>(lhs.time) ==
             std::bit_cast<std::uint64_t>(rhs.time) &&
         lhs.kind == rhs.kind && lhs.subject == rhs.subject &&
         lhs.detail == rhs.detail && lhs.a == rhs.a &&
         std::bit_cast<std::uint64_t>(lhs.x) ==
             std::bit_cast<std::uint64_t>(rhs.x) &&
         std::bit_cast<std::uint64_t>(lhs.y) ==
             std::bit_cast<std::uint64_t>(rhs.y);
}

}  // namespace hpas::trace
