// Tracer: the per-simulation structured event sink.
//
// One Tracer serves one Simulator/World (sweeps give every scenario its
// own, so parallel capture shares nothing). The contract that keeps the
// instrumentation honest:
//
//   * zero cost when off -- a disabled (default-constructed) Tracer owns
//     no storage and emit() is one predicted branch; instrumentation
//     sites additionally guard on a null Tracer pointer, so untraced
//     simulations do not even take that branch;
//   * never silently lossy -- ring overflow increments a dropped counter
//     carried into every export; attaching a sink makes capture lossless
//     (the ring flushes to the sink instead of overwriting);
//   * deterministic -- records carry only simulation state (no wall
//     clock, no pointers), so equal seeds yield bit-equal streams.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "trace/buffer.hpp"
#include "trace/record.hpp"

namespace hpas::trace {

class Tracer {
 public:
  /// Receives flushed batches (oldest first) when the ring fills and on
  /// flush(); installing one makes capture lossless.
  using Sink = std::function<void(const TraceRecord* records, std::size_t n)>;

  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  /// Disabled; allocation-free until enable().
  Tracer() = default;
  explicit Tracer(std::size_t capacity) { enable(capacity); }

  bool enabled() const { return enabled_; }

  /// Allocates the ring (first call only, unless the capacity changes) and
  /// starts recording.
  void enable(std::size_t capacity = kDefaultCapacity) {
    if (ring_.capacity() != capacity) ring_.reset(capacity);
    enabled_ = true;
  }

  /// Stops recording; retained records and counters stay readable.
  void disable() { enabled_ = false; }

  void set_sink(Sink sink) { sink_ = std::move(sink); }

  /// The simulation clock mirror; the engine updates it as events fire so
  /// emitters that do not know the time (e.g. Task) stamp correctly.
  void set_time(double t) { time_ = t; }
  double time() const { return time_; }

  /// Appends one record stamped with the current trace clock. No-op when
  /// disabled (the only cost is this branch).
  void emit(RecordKind kind, std::uint32_t subject, std::uint16_t detail,
            std::uint64_t a, double x = 0.0, double y = 0.0) {
    if (!enabled_) return;
    if (sink_ && ring_.full()) flush();
    TraceRecord record;
    record.seq = emitted_++;
    record.time = time_;
    record.kind = kind;
    record.subject = subject;
    record.detail = detail;
    record.a = a;
    record.x = x;
    record.y = y;
    ring_.push(record);
  }

  /// Names a subject id (task names, mostly); carried into every export so
  /// divergence reports read "memleak#3", not "subject 3". Idempotent per
  /// id: the first label wins.
  void set_label(std::uint32_t subject, std::string label);
  /// Labels sorted by subject id (deterministic export order).
  std::vector<std::pair<std::uint32_t, std::string>> sorted_labels() const;

  /// Pushes retained records to the sink (if any) and clears the ring.
  void flush();

  std::uint64_t emitted() const { return emitted_; }
  std::uint64_t dropped() const { return ring_.dropped(); }
  const TraceBuffer& buffer() const { return ring_; }

 private:
  bool enabled_ = false;
  double time_ = 0.0;
  std::uint64_t emitted_ = 0;
  TraceBuffer ring_;
  Sink sink_;
  std::vector<std::pair<std::uint32_t, std::string>> labels_;
};

/// In-memory trace: header counters + label table + the record stream.
/// What the binary/text exporters serialize and the replay checker diffs.
struct TraceFile {
  std::uint64_t emitted = 0;  ///< records emitted by the tracer in total
  std::uint64_t dropped = 0;  ///< of those, lost to ring overwrites
  std::vector<std::pair<std::uint32_t, std::string>> labels;
  std::vector<TraceRecord> records;  ///< seq-ordered; first may be > 0
};

/// Lossless capture convenience: a Tracer whose sink accumulates every
/// record in memory. take() assembles the final TraceFile.
class TraceCapture {
 public:
  explicit TraceCapture(std::size_t ring_capacity = 4096);

  Tracer& tracer() { return tracer_; }

  /// Flushes the ring and returns the complete trace. The capture stays
  /// usable (subsequent records keep accumulating).
  TraceFile take();

 private:
  Tracer tracer_;
  std::vector<TraceRecord> records_;
};

}  // namespace hpas::trace
