#include "trace/tracer.hpp"

#include <algorithm>

namespace hpas::trace {

std::string_view record_kind_name(RecordKind kind) {
  switch (kind) {
    case RecordKind::kEventScheduled: return "event_scheduled";
    case RecordKind::kEventFired: return "event_fired";
    case RecordKind::kEventCancelled: return "event_cancelled";
    case RecordKind::kTaskSpawn: return "task_spawn";
    case RecordKind::kTaskKill: return "task_kill";
    case RecordKind::kPhaseTransition: return "phase_transition";
    case RecordKind::kRateRecompute: return "rate_recompute";
    case RecordKind::kNodeRates: return "node_rates";
    case RecordKind::kTaskRate: return "task_rate";
    case RecordKind::kMemoryAlloc: return "memory_alloc";
    case RecordKind::kOom: return "oom";
    case RecordKind::kAnomalyStart: return "anomaly_start";
    case RecordKind::kAnomalyStop: return "anomaly_stop";
    case RecordKind::kSample: return "sample";
    case RecordKind::kInjectorFailure: return "injector_failure";
    case RecordKind::kRunCancelled: return "run_cancelled";
  }
  return "unknown";
}

void Tracer::set_label(std::uint32_t subject, std::string label) {
  if (!enabled_) return;
  for (const auto& [id, name] : labels_) {
    if (id == subject) return;  // first label wins
  }
  labels_.emplace_back(subject, std::move(label));
}

std::vector<std::pair<std::uint32_t, std::string>> Tracer::sorted_labels()
    const {
  auto sorted = labels_;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return sorted;
}

void Tracer::flush() {
  if (!sink_ || ring_.empty()) return;
  // Snapshot then clear before invoking the sink so a sink that emits
  // (it should not, but defensively) cannot recurse into a full ring.
  const std::vector<TraceRecord> batch = ring_.snapshot();
  ring_.clear();
  sink_(batch.data(), batch.size());
}

TraceCapture::TraceCapture(std::size_t ring_capacity) {
  tracer_.enable(ring_capacity);
  tracer_.set_sink([this](const TraceRecord* records, std::size_t n) {
    records_.insert(records_.end(), records, records + n);
  });
}

TraceFile TraceCapture::take() {
  tracer_.flush();
  TraceFile file;
  file.emitted = tracer_.emitted();
  file.dropped = tracer_.dropped();
  file.labels = tracer_.sorted_labels();
  file.records = records_;
  return file;
}

}  // namespace hpas::trace
