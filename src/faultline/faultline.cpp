#include "faultline/faultline.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#include "common/error.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"

namespace hpas::faultline {
namespace {

/// Exit status of an injected crash: what a SIGKILLed process reports.
constexpr int kCrashExitCode = 137;

struct NamedErrno {
  const char* name;
  int value;
};

/// The errnos fault schedules speak about by name. Anything else round
/// trips as a decimal string.
constexpr NamedErrno kErrnoNames[] = {
    {"EIO", EIO},         {"ENOSPC", ENOSPC},   {"EINTR", EINTR},
    {"ECONNRESET", ECONNRESET}, {"EPIPE", EPIPE}, {"EAGAIN", EAGAIN},
    {"EMFILE", EMFILE},   {"ENFILE", ENFILE},   {"EBADF", EBADF},
    {"EDQUOT", EDQUOT},
};

std::string errno_to_name(int err) {
  for (const auto& e : kErrnoNames)
    if (e.value == err) return e.name;
  return std::to_string(err);
}

int errno_from_name(const std::string& name) {
  for (const auto& e : kErrnoNames)
    if (name == e.name) return e.value;
  // Accept a plain decimal errno so schedules are not limited to the
  // named set.
  try {
    std::size_t used = 0;
    const int v = std::stoi(name, &used);
    if (used == name.size() && v > 0) return v;
  } catch (const std::exception&) {
  }
  throw ConfigError("faultline: unknown errno name: " + name);
}

constexpr const char* kDomainNames[kDomainCount] = {"journal", "cache",
                                                    "socket", "client"};
constexpr const char* kOpNames[kOpCount] = {"read", "write", "fsync",
                                            "rename"};
constexpr const char* kKindNames[] = {"short_write", "short_read", "errno",
                                      "stall", "crash", "torn_crash"};

/// What one wrapper call must do. kind-less (none_ == true) means proceed
/// with the raw syscall untouched.
struct Action {
  bool none = true;
  FaultKind kind = FaultKind::kErrno;
  int err = 0;
  std::uint64_t bytes = 1;
  double stall_ms = 0.0;
};

class Engine {
 public:
  explicit Engine(const FaultSchedule& schedule)
      : schedule_(schedule), rng_(schedule.seed),
        fired_(schedule.rules.size(), 0) {}

  /// Evaluates one wrapper call: advances the (domain, op) clock, counts
  /// crash points, and returns the first matching rule's action.
  /// `transfer_len` sizes the mid-write torn crash.
  Action evaluate(Domain d, Op op, std::size_t transfer_len) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.calls;
    const std::size_t slot = static_cast<std::size_t>(d) * kOpCount +
                             static_cast<std::size_t>(op);
    const std::uint64_t index = counters_[slot]++;

    // Crash-point enumeration: a write is two points (before the
    // syscall, and mid-transfer leaving a torn tail); fsync and rename
    // are one each (before). Reads never affect durability.
    if ((schedule_.crash_domains & (1u << static_cast<unsigned>(d))) != 0 &&
        op != Op::kRead) {
      const std::int64_t before =
          static_cast<std::int64_t>(stats_.crash_points++);
      if (schedule_.crash_at == before)
        return make_crash(d, op, index, /*bytes=*/0);
      if (op == Op::kWrite) {
        const std::int64_t mid =
            static_cast<std::int64_t>(stats_.crash_points++);
        if (schedule_.crash_at == mid)
          return make_crash(d, op, index, transfer_len / 2);
      }
    }

    for (std::size_t r = 0; r < schedule_.rules.size(); ++r) {
      const FaultRule& rule = schedule_.rules[r];
      if (rule.domain != d || rule.op != op) continue;
      if (rule.count >= 0 && fired_[r] >= rule.count) continue;
      bool fire = false;
      if (rule.at >= 0) {
        fire = static_cast<std::int64_t>(index) == rule.at;
      } else if (rule.every > 0) {
        fire = (index + 1) % static_cast<std::uint64_t>(rule.every) == 0;
      } else if (rule.prob > 0.0) {
        // One seeded draw per candidate call: deterministic for a
        // deterministic call sequence.
        const double coin =
            static_cast<double>(rng_.next() >> 11) * 0x1.0p-53;
        fire = coin < rule.prob;
      }
      if (!fire) continue;
      ++fired_[r];
      ++stats_.injected;
      Action action;
      action.none = false;
      action.kind = rule.kind;
      action.err = rule.err;
      action.bytes = rule.bytes;
      action.stall_ms = rule.stall_ms;
      log_action(d, op, index, action);
      return action;
    }
    return {};
  }

  FaultStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  std::vector<std::string> log() const {
    std::lock_guard<std::mutex> lock(mu_);
    return log_;
  }

 private:
  Action make_crash(Domain d, Op op, std::uint64_t index,
                    std::uint64_t bytes) {
    Action action;
    action.none = false;
    action.kind = bytes > 0 ? FaultKind::kTornCrash : FaultKind::kCrash;
    action.bytes = bytes;
    ++stats_.injected;
    log_action(d, op, index, action);
    return action;
  }

  void log_action(Domain d, Op op, std::uint64_t index,
                  const Action& action) {
    std::ostringstream line;
    line << domain_name(d) << '/' << op_name(op) << '#' << index << ' '
         << fault_kind_name(action.kind);
    switch (action.kind) {
      case FaultKind::kErrno:
        line << ' ' << errno_to_name(action.err);
        break;
      case FaultKind::kShortWrite:
      case FaultKind::kShortRead:
      case FaultKind::kTornCrash:
        line << " bytes=" << action.bytes;
        break;
      case FaultKind::kStall:
        line << " ms=" << action.stall_ms;
        break;
      case FaultKind::kCrash:
        break;
    }
    log_.push_back(line.str());
  }

  mutable std::mutex mu_;
  FaultSchedule schedule_;
  SplitMix64 rng_;
  std::vector<std::int64_t> fired_;
  std::uint64_t counters_[kDomainCount * kOpCount] = {};
  FaultStats stats_;
  std::vector<std::string> log_;
};

std::atomic<Engine*> g_engine{nullptr};
std::mutex g_arm_mu;
// Retired engines are kept until process exit: a wrapper racing a
// re-arm/disarm may still hold the old pointer, and fault tests are not
// worth a hazard-pointer scheme.
std::vector<std::unique_ptr<Engine>>& retired_engines() {
  static std::vector<std::unique_ptr<Engine>> engines;
  return engines;
}

/// The wrapper slow path: evaluate the schedule and carry out the
/// injected part. Returns true (with *result set) when the fault fully
/// decided the call's outcome; false means proceed with the raw syscall,
/// possibly with a clamped transfer size.
bool apply_transfer_fault(Engine* engine, Domain d, Op op, int fd,
                          const void* buf, std::size_t& n, int send_flags,
                          bool is_send, ssize_t* result);

ssize_t raw_transfer(Op op, int fd, const void* buf, std::size_t n,
                     int send_flags, bool is_send) {
  if (op == Op::kRead)
    return ::read(fd, const_cast<void*>(buf), n);
  if (is_send) {
    const ssize_t w = ::send(fd, buf, n, send_flags);
    if (w < 0 && errno == ENOTSOCK) return ::write(fd, buf, n);
    return w;
  }
  return ::write(fd, buf, n);
}

bool apply_transfer_fault(Engine* engine, Domain d, Op op, int fd,
                          const void* buf, std::size_t& n, int send_flags,
                          bool is_send, ssize_t* result) {
  const Action action = engine->evaluate(d, op, n);
  if (action.none) return false;
  switch (action.kind) {
    case FaultKind::kErrno:
      errno = action.err;
      *result = -1;
      return true;
    case FaultKind::kCrash:
      ::_exit(kCrashExitCode);
    case FaultKind::kTornCrash: {
      const std::size_t torn =
          static_cast<std::size_t>(action.bytes) < n
              ? static_cast<std::size_t>(action.bytes)
              : n;
      if (torn > 0) (void)raw_transfer(op, fd, buf, torn, send_flags, is_send);
      ::_exit(kCrashExitCode);
    }
    case FaultKind::kStall:
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          action.stall_ms));
      return false;
    case FaultKind::kShortWrite:
    case FaultKind::kShortRead: {
      // Clamp to at least one byte: a zero-length transfer reads as EOF
      // or no-progress to the retry loops, which is a different fault.
      std::size_t cap = static_cast<std::size_t>(action.bytes);
      if (cap == 0) cap = 1;
      if (cap < n) n = cap;
      return false;
    }
  }
  return false;
}

}  // namespace

const char* domain_name(Domain d) {
  return kDomainNames[static_cast<std::size_t>(d)];
}

const char* op_name(Op op) { return kOpNames[static_cast<std::size_t>(op)]; }

Domain domain_from_name(const std::string& name) {
  for (std::size_t i = 0; i < kDomainCount; ++i)
    if (name == kDomainNames[i]) return static_cast<Domain>(i);
  throw ConfigError("faultline: unknown domain: " + name);
}

Op op_from_name(const std::string& name) {
  for (std::size_t i = 0; i < kOpCount; ++i)
    if (name == kOpNames[i]) return static_cast<Op>(i);
  throw ConfigError("faultline: unknown op: " + name);
}

const char* fault_kind_name(FaultKind kind) {
  return kKindNames[static_cast<std::size_t>(kind)];
}

FaultKind fault_kind_from_name(const std::string& name) {
  for (std::size_t i = 0; i < std::size(kKindNames); ++i)
    if (name == kKindNames[i]) return static_cast<FaultKind>(i);
  throw ConfigError("faultline: unknown fault kind: " + name);
}

FaultSchedule FaultSchedule::from_json(const Json& doc) {
  FaultSchedule schedule;
  schedule.seed = static_cast<std::uint64_t>(doc.number_or("seed", 1.0));
  schedule.crash_at =
      static_cast<std::int64_t>(doc.number_or("crash_at", -1.0));
  if (const Json* domains = doc.find("crash_domains")) {
    schedule.crash_domains = 0;
    for (const Json& name : domains->as_array())
      schedule.crash_domains |=
          1u << static_cast<unsigned>(domain_from_name(name.as_string()));
  }
  if (const Json* rules = doc.find("rules")) {
    for (const Json& entry : rules->as_array()) {
      FaultRule rule;
      rule.domain = domain_from_name(entry.string_or("domain", ""));
      rule.op = op_from_name(entry.string_or("op", ""));
      rule.kind = fault_kind_from_name(entry.string_or("fault", ""));
      if (rule.kind == FaultKind::kErrno)
        rule.err = errno_from_name(entry.string_or("errno", "EIO"));
      rule.bytes = static_cast<std::uint64_t>(entry.number_or("bytes", 1.0));
      rule.stall_ms = entry.number_or("stall_ms", 0.0);
      rule.at = static_cast<std::int64_t>(entry.number_or("at", -1.0));
      rule.every = static_cast<std::int64_t>(entry.number_or("every", 0.0));
      rule.prob = entry.number_or("prob", 0.0);
      rule.count = static_cast<std::int64_t>(entry.number_or("count", -1.0));
      const int triggers = (rule.at >= 0 ? 1 : 0) + (rule.every > 0 ? 1 : 0) +
                           (rule.prob > 0.0 ? 1 : 0);
      if (triggers != 1)
        throw ConfigError(
            "faultline: rule needs exactly one of \"at\", \"every\", "
            "\"prob\"");
      // An `at` rule fires once unless the schedule says otherwise.
      if (rule.at >= 0 && rule.count < 0) rule.count = 1;
      schedule.rules.push_back(rule);
    }
  }
  return schedule;
}

FaultSchedule FaultSchedule::parse(const std::string& text) {
  return from_json(Json::parse(text));
}

FaultSchedule FaultSchedule::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    throw SystemError("faultline: cannot read schedule file " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return parse(text.str());
}

Json FaultSchedule::to_json() const {
  // Canonical: fixed member order, defaulted trigger fields emitted, so
  // the dump is a pure function of the parsed schedule (the byte-stable
  // fixpoint the tests pin).
  Json doc = Json::object();
  doc.set("seed", Json(seed));
  doc.set("crash_at", Json(static_cast<double>(crash_at)));
  Json domains = Json::array();
  for (std::size_t i = 0; i < kDomainCount; ++i)
    if ((crash_domains & (1u << i)) != 0)
      domains.push_back(Json(kDomainNames[i]));
  doc.set("crash_domains", std::move(domains));
  Json rules_doc = Json::array();
  for (const FaultRule& rule : rules) {
    Json entry = Json::object();
    entry.set("domain", Json(domain_name(rule.domain)));
    entry.set("op", Json(op_name(rule.op)));
    entry.set("fault", Json(fault_kind_name(rule.kind)));
    if (rule.kind == FaultKind::kErrno)
      entry.set("errno", Json(errno_to_name(rule.err)));
    if (rule.kind == FaultKind::kShortWrite ||
        rule.kind == FaultKind::kShortRead ||
        rule.kind == FaultKind::kTornCrash)
      entry.set("bytes", Json(rule.bytes));
    if (rule.kind == FaultKind::kStall)
      entry.set("stall_ms", Json(rule.stall_ms));
    entry.set("at", Json(static_cast<double>(rule.at)));
    entry.set("every", Json(static_cast<double>(rule.every)));
    entry.set("prob", Json(rule.prob));
    entry.set("count", Json(static_cast<double>(rule.count)));
    rules_doc.push_back(std::move(entry));
  }
  doc.set("rules", std::move(rules_doc));
  return doc;
}

std::string FaultSchedule::dump() const { return to_json().dump(); }

void arm(const FaultSchedule& schedule) {
  std::lock_guard<std::mutex> lock(g_arm_mu);
  auto engine = std::make_unique<Engine>(schedule);
  g_engine.store(engine.get(), std::memory_order_release);
  retired_engines().push_back(std::move(engine));
}

void disarm() {
  std::lock_guard<std::mutex> lock(g_arm_mu);
  g_engine.store(nullptr, std::memory_order_release);
}

bool armed() {
  return g_engine.load(std::memory_order_acquire) != nullptr;
}

FaultStats stats() {
  Engine* engine = g_engine.load(std::memory_order_acquire);
  return engine != nullptr ? engine->stats() : FaultStats{};
}

std::vector<std::string> injection_log() {
  Engine* engine = g_engine.load(std::memory_order_acquire);
  return engine != nullptr ? engine->log() : std::vector<std::string>{};
}

std::uint64_t crash_points_passed() { return stats().crash_points; }

ssize_t write(Domain d, int fd, const void* buf, std::size_t n) {
  Engine* engine = g_engine.load(std::memory_order_acquire);
  if (engine == nullptr) return ::write(fd, buf, n);
  ssize_t result = 0;
  std::size_t len = n;
  if (apply_transfer_fault(engine, d, Op::kWrite, fd, buf, len, 0, false,
                           &result))
    return result;
  return ::write(fd, buf, len);
}

ssize_t read(Domain d, int fd, void* buf, std::size_t n) {
  Engine* engine = g_engine.load(std::memory_order_acquire);
  if (engine == nullptr) return ::read(fd, buf, n);
  ssize_t result = 0;
  std::size_t len = n;
  if (apply_transfer_fault(engine, d, Op::kRead, fd, buf, len, 0, false,
                           &result))
    return result;
  return ::read(fd, buf, len);
}

ssize_t send_fd(Domain d, int fd, const void* buf, std::size_t n,
                int flags) {
  Engine* engine = g_engine.load(std::memory_order_acquire);
  if (engine == nullptr) return raw_transfer(Op::kWrite, fd, buf, n, flags,
                                             /*is_send=*/true);
  ssize_t result = 0;
  std::size_t len = n;
  if (apply_transfer_fault(engine, d, Op::kWrite, fd, buf, len, flags, true,
                           &result))
    return result;
  return raw_transfer(Op::kWrite, fd, buf, len, flags, /*is_send=*/true);
}

int fsync(Domain d, int fd) {
  Engine* engine = g_engine.load(std::memory_order_acquire);
  if (engine == nullptr) return ::fsync(fd);
  const Action action = engine->evaluate(d, Op::kFsync, 0);
  if (!action.none) {
    switch (action.kind) {
      case FaultKind::kErrno:
        errno = action.err;
        return -1;
      case FaultKind::kCrash:
      case FaultKind::kTornCrash:
        ::_exit(kCrashExitCode);
      case FaultKind::kStall:
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(action.stall_ms));
        break;
      default:
        break;  // short transfers are meaningless for fsync
    }
  }
  return ::fsync(fd);
}

int rename_file(Domain d, const char* old_path, const char* new_path) {
  Engine* engine = g_engine.load(std::memory_order_acquire);
  if (engine == nullptr) return std::rename(old_path, new_path);
  const Action action = engine->evaluate(d, Op::kRename, 0);
  if (!action.none) {
    switch (action.kind) {
      case FaultKind::kErrno:
        errno = action.err;
        return -1;
      case FaultKind::kCrash:
      case FaultKind::kTornCrash:
        ::_exit(kCrashExitCode);
      case FaultKind::kStall:
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(action.stall_ms));
        break;
      default:
        break;
    }
  }
  return std::rename(old_path, new_path);
}

}  // namespace hpas::faultline
