// faultline -- deterministic, seeded fault injection for every I/O edge
// the durability argument depends on.
//
// The journal writer, the cache spool path, the wire protocol, and the
// submit client do their raw I/O through the interposed syscall wrappers
// below (faultline::write / read / send / fsync / rename_file). With no
// schedule armed they are one relaxed atomic load away from the real
// syscall -- compiled in always, zero cost, and never part of scenario
// identity. Arm a FaultSchedule (programmatically in tests, or via
// `HPAS_FAULT_SCHEDULE` / `--fault-schedule` in the CLI) and the wrappers
// start injecting:
//
//   short_write / short_read   the call transfers at most `bytes` bytes,
//                              exercising every retry loop
//   errno                      the call fails with a chosen errno (EIO,
//                              ENOSPC, EINTR, ECONNRESET, ...) without
//                              touching the fd; `count` bounds repeats so
//                              an EINTR storm terminates
//   stall                      the call sleeps `stall_ms` first -- a slow
//                              peer, for deadline tests
//   crash                      _exit(137) before the call: the process
//                              dies as if SIGKILLed at that exact point
//   torn_crash                 transfer `bytes` bytes, then _exit(137):
//                              a torn write frozen mid-frame
//
// Rules fire at a chosen per-(domain, op) call index (`at`), periodically
// (`every`), or by a seeded coin (`prob`, SplitMix64 from the schedule
// seed) -- all deterministic given the same call sequence. The injection
// log records every fired fault in order, so two runs of the same
// schedule over the same workload compare byte-equal.
//
// Crash-point enumeration, the torture battery's engine: every wrapper
// call in `crash_domains` counts crash points (two per write -- before
// the syscall and mid-transfer -- one per fsync/rename, before). With
// `crash_at = k` the process exits at the k-th point; a run that outlives
// all its points exits normally, which is how the battery knows the space
// is exhausted. See DESIGN.md "Deterministic fault injection".
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace hpas {
class Json;
}

namespace hpas::faultline {

/// Which subsystem edge a call belongs to. Rules match on it, and the
/// crash-point counter only ticks in `crash_domains`.
enum class Domain : std::uint8_t {
  kJournal = 0,  ///< JournalWriter header/frame writes + fsync
  kCache = 1,    ///< result-cache spool writes, fsync, rename
  kSocket = 2,   ///< server-side frame codec reads/writes
  kClient = 3,   ///< submit-client frame codec reads/writes
};
inline constexpr std::size_t kDomainCount = 4;

enum class Op : std::uint8_t {
  kRead = 0,
  kWrite = 1,
  kFsync = 2,
  kRename = 3,
};
inline constexpr std::size_t kOpCount = 4;

const char* domain_name(Domain d);
const char* op_name(Op op);
/// Inverse lookups for schedule parsing; throw ConfigError on unknown
/// names.
Domain domain_from_name(const std::string& name);
Op op_from_name(const std::string& name);

enum class FaultKind : std::uint8_t {
  kShortWrite,  ///< transfer at most `bytes` this call
  kShortRead,   ///< deliver at most `bytes` this call
  kErrno,       ///< fail with `err`, fd untouched
  kStall,       ///< sleep `stall_ms`, then proceed normally
  kCrash,       ///< _exit(137) before the call
  kTornCrash,   ///< transfer `bytes`, then _exit(137)
};

const char* fault_kind_name(FaultKind kind);
FaultKind fault_kind_from_name(const std::string& name);

/// One injection rule. Exactly one trigger (`at`, `every`, `prob`) must
/// be set; `count` bounds how often the rule fires (default: once for
/// `at`, unlimited otherwise).
struct FaultRule {
  Domain domain = Domain::kJournal;
  Op op = Op::kWrite;
  FaultKind kind = FaultKind::kErrno;
  int err = 0;             ///< kErrno: the errno to fail with
  std::uint64_t bytes = 1; ///< kShortWrite/kShortRead/kTornCrash cap
  double stall_ms = 0.0;   ///< kStall: sleep before proceeding
  std::int64_t at = -1;    ///< fire at this (domain, op) call index
  std::int64_t every = 0;  ///< fire every Nth call (1 = every call)
  double prob = 0.0;       ///< fire on a seeded coin flip per call
  std::int64_t count = -1; ///< max fires; -1 = unlimited
};

/// A complete, JSON-loadable fault plan. to_json() is canonical: member
/// order is fixed and every defaulted field is still emitted, so
/// load -> dump -> load -> dump is a byte-identical fixpoint (the replay
/// guarantee tests pin this).
struct FaultSchedule {
  std::uint64_t seed = 1;       ///< drives the `prob` coin flips
  std::vector<FaultRule> rules;
  std::int64_t crash_at = -1;   ///< crash-point index to die at; -1 = off
  /// Domains whose wrapper calls count crash points (bitmask of
  /// 1 << Domain). Defaults to journal + cache: the write sequence the
  /// durability argument is about.
  std::uint32_t crash_domains =
      (1u << static_cast<unsigned>(Domain::kJournal)) |
      (1u << static_cast<unsigned>(Domain::kCache));

  static FaultSchedule from_json(const Json& doc);
  static FaultSchedule parse(const std::string& text);
  static FaultSchedule load_file(const std::string& path);
  Json to_json() const;
  std::string dump() const;  ///< canonical byte-stable serialization
};

/// Counters since the last arm(); all deterministic for a deterministic
/// call sequence.
struct FaultStats {
  std::uint64_t calls = 0;         ///< wrapper calls while armed
  std::uint64_t injected = 0;      ///< faults actually fired
  std::uint64_t crash_points = 0;  ///< crash-eligible points passed
};

/// Arms the process-wide engine with `schedule` (replacing any previous
/// one) / disarms it. Arming resets all counters and the injection log.
/// Thread-safe; the armed fast path in the wrappers is a single acquire
/// load.
void arm(const FaultSchedule& schedule);
void disarm();
bool armed();

FaultStats stats();
/// One line per fired fault, in firing order, e.g.
/// "journal/write#3 short_write bytes=5". Byte-equal across identical
/// runs -- the determinism test compares these.
std::vector<std::string> injection_log();

/// Number of crash points this workload would pass, for exhaustive
/// enumeration: run once with crash_at = -1, read stats().crash_points.
/// (Convenience alias for that read.)
std::uint64_t crash_points_passed();

/// Interposed syscalls. Signatures mirror the raw calls; on injection
/// they behave exactly as the fault dictates (partial transfer, -1 with
/// errno set, crash). `send_fd` falls back to ::write on ENOTSOCK like
/// the protocol layer expects.
ssize_t write(Domain d, int fd, const void* buf, std::size_t n);
ssize_t read(Domain d, int fd, void* buf, std::size_t n);
ssize_t send_fd(Domain d, int fd, const void* buf, std::size_t n, int flags);
int fsync(Domain d, int fd);
int rename_file(Domain d, const char* old_path, const char* new_path);

}  // namespace hpas::faultline
