#include "anomalies/iometadata.hpp"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace hpas::anomalies {
namespace fs = std::filesystem;

struct IoMetadata::Impl {
  std::vector<std::thread> workers;
  std::vector<fs::path> task_dirs;
  std::atomic<std::uint64_t> ops{0};
};

IoMetadata::IoMetadata(IoMetadataOptions opts)
    : Anomaly(opts.common), opts_(opts), impl_(std::make_unique<Impl>()) {
  require(opts.ntasks >= 1, "iometadata: ntasks must be >= 1");
  require(opts.files_per_iteration >= 1,
          "iometadata: files per iteration must be >= 1");
  require(opts.delete_every >= 1, "iometadata: delete_every must be >= 1");
}

IoMetadata::~IoMetadata() { teardown(); }

void IoMetadata::setup() {
  supervisor().set_worker_count(opts_.ntasks);
  for (unsigned task = 0; task < opts_.ntasks; ++task) {
    const fs::path dir = fs::path(opts_.directory) /
                         ("hpas_iometadata_" + std::to_string(::getpid()) +
                          "_t" + std::to_string(task));
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec)
      throw SystemError("iometadata: cannot create " + dir.string() + ": " +
                        ec.message());
    impl_->task_dirs.push_back(dir);
  }

  for (unsigned task = 0; task < opts_.ntasks; ++task) {
    const fs::path dir = impl_->task_dirs[task];
    impl_->workers.emplace_back([this, dir, task] {
      pin_current_thread(static_cast<int>(task));
      Supervisor& sup = supervisor();
      const auto sleep = [this](double s) { pace(s); };
      std::vector<fs::path> live_files;
      // ENOSPC/EMFILE while creating a file: first free what this worker
      // owns (its live batch), then let the retry loop try again -- the
      // momentary-exhaustion case where our own backlog is the problem.
      const auto free_own_files = [&](int) {
        for (const auto& file : live_files) {
          std::error_code ec;
          fs::remove(file, ec);
        }
        live_files.clear();
      };
      unsigned iteration = 0;
      bool worker_ok = true;
      while (worker_ok && !sup.cancelled()) {
        // Create/open a batch, write one character to each, close.
        for (unsigned i = 0; i < opts_.files_per_iteration; ++i) {
          const fs::path file =
              dir / ("f" + std::to_string(iteration) + "_" + std::to_string(i));
          std::FILE* fp = nullptr;
          const IoResult opened = supervised_io(
              sup, task, FailureOp::kOpen,
              [&]() -> std::int64_t {
                fp = std::fopen(file.c_str(), "w");
                return fp != nullptr ? 0 : -1;
              },
              sleep, free_own_files);
          if (!opened.ok()) {
            worker_ok = false;
            break;
          }
          errno = 0;
          bool io_ok = std::fputc('x', fp) != EOF;
          io_ok = (std::fclose(fp) == 0) && io_ok;
          live_files.push_back(file);
          if (!io_ok) {
            const int err = errno != 0 ? errno : EIO;
            // A full filesystem bites here too (tmpfs charges a page per
            // file even for one byte): clean up our own batch -- which
            // includes the broken file just pushed -- and carry on.
            if (sup.effective_retry().max_attempts > 1 &&
                classify_errno(FailureOp::kWrite, err) ==
                    ErrorClass::kTransient) {
              free_own_files(err);
              sup.note_recovered(1);
              continue;
            }
            sup.report_failure(task, FailureOp::kWrite, err);
            worker_ok = false;
            break;
          }
          impl_->ops.fetch_add(3, std::memory_order_relaxed);  // create+write+close
          if (sup.cancelled()) break;
        }
        ++iteration;
        // Paper: "deletes them after 10 iterations".
        if (iteration % opts_.delete_every == 0) {
          for (const auto& file : live_files) {
            std::error_code ec;
            fs::remove(file, ec);
            impl_->ops.fetch_add(1, std::memory_order_relaxed);  // unlink
          }
          live_files.clear();
        }
        // Degrade mode: survivors shrink their pauses to cover the duty of
        // dead workers.
        if (worker_ok && opts_.sleep_between_iterations_s > 0.0)
          pace(opts_.sleep_between_iterations_s / sup.duty_factor());
      }
      // Leave the FS clean on exit -- on error exits too, so a dead worker
      // never strands its batch on the target filesystem.
      for (const auto& file : live_files) {
        std::error_code ec;
        fs::remove(file, ec);
      }
    });
  }
}

bool IoMetadata::iterate(RunStats& stats) {
  pace(0.05);
  stats.work_amount =
      static_cast<double>(impl_->ops.load(std::memory_order_relaxed));
  return !supervisor().should_stop();
}

void IoMetadata::teardown() {
  request_stop();
  for (auto& worker : impl_->workers) {
    if (worker.joinable()) worker.join();
  }
  impl_->workers.clear();
  ops_ = impl_->ops.load();
  for (const auto& dir : impl_->task_dirs) {
    std::error_code ec;
    fs::remove_all(dir, ec);
  }
  impl_->task_dirs.clear();
}

}  // namespace hpas::anomalies
