#include "anomalies/iometadata.hpp"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace hpas::anomalies {
namespace fs = std::filesystem;

struct IoMetadata::Impl {
  std::vector<std::thread> workers;
  std::vector<fs::path> task_dirs;
  std::atomic<std::uint64_t> ops{0};
  std::atomic<bool> failed{false};
};

IoMetadata::IoMetadata(IoMetadataOptions opts)
    : Anomaly(opts.common), opts_(opts), impl_(std::make_unique<Impl>()) {
  require(opts.ntasks >= 1, "iometadata: ntasks must be >= 1");
  require(opts.files_per_iteration >= 1,
          "iometadata: files per iteration must be >= 1");
  require(opts.delete_every >= 1, "iometadata: delete_every must be >= 1");
}

IoMetadata::~IoMetadata() { teardown(); }

void IoMetadata::setup() {
  for (unsigned task = 0; task < opts_.ntasks; ++task) {
    const fs::path dir = fs::path(opts_.directory) /
                         ("hpas_iometadata_" + std::to_string(::getpid()) +
                          "_t" + std::to_string(task));
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec)
      throw SystemError("iometadata: cannot create " + dir.string() + ": " +
                        ec.message());
    impl_->task_dirs.push_back(dir);
  }

  for (unsigned task = 0; task < opts_.ntasks; ++task) {
    const fs::path dir = impl_->task_dirs[task];
    impl_->workers.emplace_back([this, dir, task] {
      pin_current_thread(static_cast<int>(task));
      std::vector<fs::path> live_files;
      unsigned iteration = 0;
      while (!stop_requested()) {
        // Create/open a batch, write one character to each, close.
        for (unsigned i = 0; i < opts_.files_per_iteration; ++i) {
          const fs::path file =
              dir / ("f" + std::to_string(iteration) + "_" + std::to_string(i));
          std::FILE* fp = std::fopen(file.c_str(), "w");
          if (fp == nullptr) {
            impl_->failed.store(true);
            return;
          }
          std::fputc('x', fp);
          std::fclose(fp);
          live_files.push_back(file);
          impl_->ops.fetch_add(3, std::memory_order_relaxed);  // create+write+close
          if (stop_requested()) break;
        }
        ++iteration;
        // Paper: "deletes them after 10 iterations".
        if (iteration % opts_.delete_every == 0) {
          for (const auto& file : live_files) {
            std::error_code ec;
            fs::remove(file, ec);
            impl_->ops.fetch_add(1, std::memory_order_relaxed);  // unlink
          }
          live_files.clear();
        }
        if (opts_.sleep_between_iterations_s > 0.0)
          pace(opts_.sleep_between_iterations_s);
      }
      for (const auto& file : live_files) {  // leave the FS clean on exit
        std::error_code ec;
        fs::remove(file, ec);
      }
    });
  }
}

bool IoMetadata::iterate(RunStats& stats) {
  pace(0.05);
  stats.work_amount =
      static_cast<double>(impl_->ops.load(std::memory_order_relaxed));
  return !impl_->failed.load(std::memory_order_relaxed);
}

void IoMetadata::teardown() {
  request_stop();
  for (auto& worker : impl_->workers) {
    if (worker.joinable()) worker.join();
  }
  impl_->workers.clear();
  ops_ = impl_->ops.load();
  for (const auto& dir : impl_->task_dirs) {
    std::error_code ec;
    fs::remove_all(dir, ec);
  }
  impl_->task_dirs.clear();
}

}  // namespace hpas::anomalies
