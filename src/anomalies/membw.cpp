#include "anomalies/membw.hpp"

#include <cerrno>
#include <cmath>
#include <new>

#include "common/error.hpp"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace hpas::anomalies {
namespace {

// Writes the transpose of `src` into `dst` (both n x n doubles,
// row-major). The store to dst uses the non-temporal hint, replicating the
// paper's Fig. 1 kernel (which used MOVNTQ on __m64; on x86-64 we use the
// SSE2 _mm_stream_si64 form -- same hint, no EMMS needed).
void temporal_transpose(const double* src, double* dst, std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) {
    for (std::uint64_t j = 0; j < n; ++j) {
      const double value = src[i * n + j];
#if defined(__SSE2__) && defined(__x86_64__)
      long long bits;
      static_assert(sizeof(bits) == sizeof(value));
      __builtin_memcpy(&bits, &value, sizeof(bits));
      _mm_stream_si64(reinterpret_cast<long long*>(&dst[j * n + i]), bits);
#else
      // Fallback: a volatile store cannot be elided, though it does pollute
      // the cache on targets without non-temporal stores.
      *const_cast<volatile double*>(&dst[j * n + i]) = value;
#endif
    }
  }
#if defined(__SSE2__) && defined(__x86_64__)
  _mm_sfence();  // make the streaming stores globally visible
#endif
}

}  // namespace

MemBw::MemBw(MemBwOptions opts)
    : Anomaly(opts.common), opts_(opts), rng_(opts.common.seed) {
  require(opts.matrix_bytes >= 64 * sizeof(double),
          "membw: matrix size too small");
  require(opts.sleep_between_passes_s >= 0.0,
          "membw: sleep must be non-negative");
  n_ = static_cast<std::uint64_t>(
      std::sqrt(static_cast<double>(opts_.matrix_bytes / sizeof(double))));
}

bool MemBw::uses_nontemporal_stores() {
#if defined(__SSE2__) && defined(__x86_64__)
  return true;
#else
  return false;
#endif
}

void MemBw::setup() {
  try {
    src_.resize(n_ * n_);
    dst_.resize(n_ * n_);
  } catch (const std::bad_alloc&) {
    supervisor().report_failure(0, FailureOp::kAlloc, ENOMEM);
    throw;
  }
  rng_.fill_bytes(src_.data(), src_.size() * sizeof(double));
  // NaN bit patterns are harmless here (data is only moved, never used in
  // arithmetic), matching the paper's "fills one of them with random
  // values".
}

bool MemBw::iterate(RunStats& stats) {
  temporal_transpose(src_.data(), dst_.data(), n_);
  stats.work_amount += static_cast<double>(n_ * n_ * sizeof(double));
  // Alternate direction so both matrices are touched and the source is
  // re-read from DRAM rather than staying cache-resident.
  src_.swap(dst_);
  if (opts_.sleep_between_passes_s > 0.0) pace(opts_.sleep_between_passes_s);
  return true;
}

void MemBw::teardown() {
  src_.clear();
  src_.shrink_to_fit();
  dst_.clear();
  dst_.shrink_to_fit();
}

}  // namespace hpas::anomalies
