#include "anomalies/cachecopy.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/error.hpp"

namespace hpas::anomalies {

CacheCopy::CacheCopy(CacheCopyOptions opts)
    : Anomaly(opts.common), opts_(opts), rng_(opts.common.seed) {
  require(opts.multiplier > 0.0, "cachecopy: multiplier must be positive");
  require(opts.sleep_between_copies_s >= 0.0,
          "cachecopy: sleep must be non-negative");
  const double level_bytes =
      static_cast<double>(opts_.topology.level_bytes(opts_.level));
  array_bytes_ = static_cast<std::uint64_t>(level_bytes * opts_.multiplier / 2.0);
  // Keep at least one cache line per array so the copy loop is meaningful.
  array_bytes_ = std::max<std::uint64_t>(array_bytes_, 64);
}

CacheCopy::~CacheCopy() { teardown(); }

void CacheCopy::setup() {
  // One contiguous, page-aligned block for both arrays, as in the paper
  // ("the two arrays are contiguous in memory and are allocated using
  // posix_memalign()").
  void* mem = nullptr;
  const std::size_t total = 2 * static_cast<std::size_t>(array_bytes_);
  const int rc = ::posix_memalign(&mem, 4096, total);
  if (rc != 0 || mem == nullptr) {
    // Record the structured failure too so the supervision report names
    // the allocation even when the caller swallows the exception.
    supervisor().report_failure(0, FailureOp::kAlloc, rc != 0 ? rc : ENOMEM);
    throw SystemError("cachecopy: posix_memalign failed");
  }
  block_ = static_cast<unsigned char*>(mem);
  rng_.fill_bytes(block_, total);
}

bool CacheCopy::iterate(RunStats& stats) {
  unsigned char* src = block_;
  unsigned char* dst = block_ + array_bytes_;
  // Alternate direction each iteration so both arrays stay hot and the
  // hardware prefetcher cannot settle into a read-only pattern.
  if (stats.iterations % 2 == 1) std::swap(src, dst);
  std::memcpy(dst, src, array_bytes_);
  // The copy itself is the observable effect; prevent dead-store
  // elimination of the entire loop.
  asm volatile("" : : "r"(dst) : "memory");
  stats.work_amount += static_cast<double>(array_bytes_);
  if (opts_.sleep_between_copies_s > 0.0) pace(opts_.sleep_between_copies_s);
  return true;
}

void CacheCopy::teardown() {
  std::free(block_);
  block_ = nullptr;
}

}  // namespace hpas::anomalies
