#include "anomalies/mem_guard.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace hpas::anomalies {
namespace {

std::optional<std::string> read_whole_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::optional<std::uint64_t> parse_u64(const std::string& text) {
  std::uint64_t value = 0;
  bool any = false;
  for (char c : text) {
    if (c >= '0' && c <= '9') {
      value = value * 10 + static_cast<std::uint64_t>(c - '0');
      any = true;
    } else if (any) {
      break;
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      return std::nullopt;
    }
  }
  if (!any) return std::nullopt;
  return value;
}

}  // namespace

std::optional<std::uint64_t> parse_meminfo_available(const std::string& text) {
  // Line format: "MemAvailable:    1234567 kB"
  const std::string key = "MemAvailable:";
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind(key, 0) != 0) continue;
    const auto kb = parse_u64(line.substr(key.size()));
    if (!kb) return std::nullopt;
    return *kb * 1024;
  }
  return std::nullopt;
}

std::optional<std::uint64_t> parse_cgroup_bytes(const std::string& text) {
  // memory.max is either "max\n" (no limit) or a decimal byte count.
  std::string trimmed = text;
  while (!trimmed.empty() &&
         std::isspace(static_cast<unsigned char>(trimmed.back())))
    trimmed.pop_back();
  if (trimmed == "max") return std::nullopt;
  return parse_u64(trimmed);
}

std::optional<std::uint64_t> available_memory_bytes() {
  std::optional<std::uint64_t> headroom;
  if (const auto meminfo = read_whole_file("/proc/meminfo")) {
    if (const auto avail = parse_meminfo_available(*meminfo))
      headroom = *avail;
  }
  // Unified-hierarchy (cgroup v2) limit for the cgroup this process runs
  // in. Nested cgroups would require walking /proc/self/cgroup; the root
  // of the mounted hierarchy is the common container case and is where
  // the OOM kill actually bites.
  const auto max_text = read_whole_file("/sys/fs/cgroup/memory.max");
  const auto cur_text = read_whole_file("/sys/fs/cgroup/memory.current");
  if (max_text && cur_text) {
    const auto limit = parse_cgroup_bytes(*max_text);
    const auto current = parse_cgroup_bytes(*cur_text);
    if (limit && current) {
      const std::uint64_t cg = *limit > *current ? *limit - *current : 0;
      headroom = headroom ? std::min(*headroom, cg) : cg;
    }
  }
  return headroom;
}

}  // namespace hpas::anomalies
