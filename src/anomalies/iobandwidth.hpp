// iobandwidth -- storage-bandwidth contention anomaly (paper Sec. 3.5).
//
// "The iobandwidth anomaly uses dd to copy random data into a file. It
// then copies that file to another file and so on. This anomaly causes
// contention in the disks of the storage servers, as well as the
// interconnect between the filesystem and compute nodes."
//
// We implement dd's behaviour directly (block-wise read/write with a
// configurable block size) instead of shelling out, which removes the
// external dependency while generating the identical I/O pattern. Each of
// the `ntasks` workers owns a private file chain, matching the paper's
// "separate files for each rank" when launched with MPI.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "anomalies/anomaly.hpp"

namespace hpas::anomalies {

struct IoBandwidthOptions {
  CommonOptions common;
  std::string directory = ".";
  std::uint64_t file_bytes = 256ULL * 1024 * 1024;  ///< "file size" knob
  std::uint64_t block_bytes = 1ULL * 1024 * 1024;   ///< dd bs= equivalent
  double sleep_between_copies_s = 0.0;              ///< pacing
  unsigned ntasks = 1;
  bool sync_each_copy = true;  ///< fsync so traffic reaches the device
};

class IoBandwidth final : public Anomaly {
 public:
  explicit IoBandwidth(IoBandwidthOptions opts);
  ~IoBandwidth() override;

  std::string name() const override { return "iobandwidth"; }

  std::uint64_t bytes_written() const { return bytes_written_; }

 protected:
  void setup() override;
  bool iterate(RunStats& stats) override;
  void teardown() override;

 private:
  struct Impl;
  IoBandwidthOptions opts_;
  std::unique_ptr<Impl> impl_;
  std::uint64_t bytes_written_ = 0;
};

}  // namespace hpas::anomalies
