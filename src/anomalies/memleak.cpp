#include "anomalies/memleak.hpp"

#include <cerrno>
#include <new>

#include "anomalies/mem_guard.hpp"
#include "common/error.hpp"
#include "common/log.hpp"

namespace hpas::anomalies {

MemLeak::MemLeak(MemLeakOptions opts)
    : Anomaly(opts.common), opts_(opts), rng_(opts.common.seed) {
  require(opts.chunk_bytes > 0, "memleak: chunk size must be positive");
  require(opts.sleep_between_chunks_s >= 0.0,
          "memleak: sleep must be non-negative");
}

bool MemLeak::iterate(RunStats& stats) {
  if (opts_.max_bytes > 0 && leaked_ >= opts_.max_bytes) {
    pace(opts_.sleep_between_chunks_s > 0 ? opts_.sleep_between_chunks_s : 0.1);
    return true;
  }
  if (opts_.mem_floor_bytes > 0) {
    const auto avail = available_memory_bytes();
    if (avail && *avail < opts_.mem_floor_bytes + opts_.chunk_bytes) {
      // Below the floor the next chunk would push the node into OOM
      // territory; hold the leak (still memory pressure, just not
      // growth) and report degraded operation instead of dying.
      if (floor_holds_ == 0) {
        log_warn("memleak: available memory ", *avail,
                 " bytes below floor; holding at ", leaked_, " bytes");
        supervisor().note_recovered(1);
      }
      ++floor_holds_;
      pace(opts_.sleep_between_chunks_s > 0 ? opts_.sleep_between_chunks_s
                                            : 1.0);
      return true;
    }
  }
  std::unique_ptr<unsigned char[]> chunk(
      new (std::nothrow) unsigned char[opts_.chunk_bytes]);
  if (chunk == nullptr) {
    if (common_options().on_error == OnError::kAbort) {
      supervisor().report_failure(0, FailureOp::kAlloc, ENOMEM);
      return false;
    }
    log_warn("memleak: allocation of ", opts_.chunk_bytes,
             " bytes failed; holding at ", leaked_, " bytes");
    supervisor().note_recovered(1);
    pace(1.0);
    return true;
  }
  if (opts_.touch_all) rng_.fill_bytes(chunk.get(), opts_.chunk_bytes);
  chunks_.push_back(std::move(chunk));  // never freed during the run
  leaked_ += opts_.chunk_bytes;
  stats.work_amount = static_cast<double>(leaked_);
  if (opts_.sleep_between_chunks_s > 0.0) pace(opts_.sleep_between_chunks_s);
  return true;
}

void MemLeak::teardown() {
  // The "leak" ends with the anomaly process, as in the paper ("both
  // anomalies terminate after the given duration").
  chunks_.clear();
  leaked_ = 0;
}

}  // namespace hpas::anomalies
