// iometadata -- filesystem metadata-server contention anomaly (Sec. 3.5).
//
// "The metadata server is stressed using the iometadata anomaly that
// creates and opens files, writes one character to each in a loop, closes
// all open files, and deletes them after 10 iterations."
//
// Every operation in the loop (create, open, close, unlink) is a metadata
// operation; the single-character write keeps data traffic negligible so
// the anomaly stresses the metadata path in isolation. On a parallel
// filesystem each MPI rank uses its own files; here `ntasks` worker
// threads each use a private subdirectory for the same effect.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "anomalies/anomaly.hpp"

namespace hpas::anomalies {

struct IoMetadataOptions {
  CommonOptions common;
  std::string directory = ".";    ///< target (shared) filesystem directory
  unsigned files_per_iteration = 20;
  unsigned delete_every = 10;     ///< paper: delete after 10 iterations
  double sleep_between_iterations_s = 0.0;  ///< "rate" knob
  unsigned ntasks = 1;
};

class IoMetadata final : public Anomaly {
 public:
  explicit IoMetadata(IoMetadataOptions opts);
  ~IoMetadata() override;

  std::string name() const override { return "iometadata"; }

  std::uint64_t metadata_ops() const { return ops_; }

 protected:
  void setup() override;
  bool iterate(RunStats& stats) override;
  void teardown() override;

 private:
  struct Impl;
  IoMetadataOptions opts_;
  std::unique_ptr<Impl> impl_;
  std::uint64_t ops_ = 0;
};

}  // namespace hpas::anomalies
