// Base machinery for the native anomaly generators (paper Sec. 3).
//
// Design constraints carried over from the paper:
//  * pure userspace -- no kernel modules, no root, no modification of the
//    victim application;
//  * every anomaly has configurable start/end times and intensity knobs
//    (Table 1);
//  * each anomaly minimizes interference with subsystems it does not
//    target;
//  * generators terminate cleanly on SIGINT/SIGTERM or when their duration
//    elapses.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "anomalies/failure.hpp"
#include "anomalies/supervisor.hpp"

namespace hpas::anomalies {

/// Knobs shared by all anomalies ("Every anomaly has configurable
/// start/end times as well", Table 1 caption).
struct CommonOptions {
  double start_delay_s = 0.0;  ///< idle time before the anomaly activates
  double duration_s = 10.0;    ///< active time; <= 0 means run until stopped
  std::uint64_t seed = 0x48504153;  ///< "HPAS"; randomness is reproducible
  /// Pin the generator to this CPU (and worker threads to subsequent
  /// CPUs, wrapping). -1 = unpinned. The paper's experiments depend on
  /// placement: Fig. 3 colocates cachecopy with the victim's core,
  /// Fig. 4 keeps membw *off* STREAM's core.
  int pin_cpu = -1;
  /// What to do about worker failures (see supervisor.hpp): retry
  /// transients (default), degrade onto the survivors, or abort on the
  /// first error.
  OnError on_error = OnError::kRetry;
  /// Attempt budget per operation for transient errors (>= 1). Ignored
  /// in abort mode, where it collapses to 1.
  int max_retries = 8;
};

/// Counters reported after a run; `work_amount` is anomaly-specific
/// (arithmetic ops for cpuoccupy, bytes copied for cachecopy/membw, bytes
/// allocated for memeater/memleak, bytes sent for netoccupy, metadata ops
/// for iometadata, bytes written for iobandwidth).
struct RunStats {
  std::uint64_t iterations = 0;
  double work_amount = 0.0;
  double active_seconds = 0.0;   ///< time spent in iterate()
  double elapsed_seconds = 0.0;  ///< wall time of the whole run
};

/// Abstract anomaly generator. Concrete generators implement setup() /
/// iterate() / teardown(); the base class owns timing, the start delay,
/// duty-cycling via pace(), and cooperative stop.
class Anomaly {
 public:
  explicit Anomaly(CommonOptions opts);
  virtual ~Anomaly() = default;

  Anomaly(const Anomaly&) = delete;
  Anomaly& operator=(const Anomaly&) = delete;

  virtual std::string name() const = 0;

  /// Blocks until the configured duration elapses, iterate() reports
  /// completion, or request_stop() is called (possibly from a signal
  /// handler or another thread).
  RunStats run();

  /// Cooperative, async-signal-safe stop request.
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }

  bool stop_requested() const {
    return stop_.load(std::memory_order_relaxed);
  }

  const CommonOptions& common_options() const { return opts_; }

  /// Worker supervision state: failure records, retry policy, degrade
  /// accounting. Workers report through this instead of a bare bool.
  Supervisor& supervisor() { return supervisor_; }
  const Supervisor& supervisor() const { return supervisor_; }

  /// Terminal failure summary for the last run(). Assembled lazily (and
  /// cached) so it is available even when run() threw from setup().
  const SupervisionReport& supervision_report();

 protected:
  /// One bounded unit of work (aim for <= ~100 ms so stop stays
  /// responsive). Return false to end the run early (e.g. memeater reached
  /// its size limit).
  virtual bool iterate(RunStats& stats) = 0;

  virtual void setup() {}
  virtual void teardown() {}

  /// Sleeps `seconds`, waking early if stop is requested. Used by
  /// rate-limited anomalies ("a variable amount of sleep is inserted
  /// between periods of activity", Sec. 3). Time spent here is accounted
  /// as idle, so RunStats::active_seconds reflects actual work.
  void pace(double seconds) const;

  /// Pins the calling thread to `options.pin_cpu + offset` (mod online
  /// CPUs); no-op when unpinned. Worker-thread generators (netoccupy,
  /// io*) call this with their task index as offset.
  void pin_current_thread(int offset = 0) const;

 private:
  CommonOptions opts_;
  Supervisor supervisor_;
  SupervisionReport report_;
  bool report_ready_ = false;
  std::atomic<bool> stop_{false};
  // Accumulated pace() time; atomic because netoccupy/io generators call
  // pace() from worker threads.
  mutable std::atomic<double> idle_seconds_{0.0};
};

}  // namespace hpas::anomalies
