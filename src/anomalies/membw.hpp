// membw -- memory-bandwidth contention anomaly (paper Sec. 3.3.3).
//
// "We model memory bandwidth contention by using the x86 SSE non-temporal
// memory instructions such as MOVNT*. [...] membw first allocates two 2D
// matrices [...] and fills one of them with random values. Then, it writes
// the transpose of the first matrix into the second matrix using the
// non-temporal hint" (Fig. 1 of the paper shows the MOVNTQ variant).
//
// Non-temporal stores bypass the cache hierarchy entirely, so the anomaly
// saturates DRAM write bandwidth while leaving the caches almost untouched
// -- the exact opposite footprint of cachecopy, which is what lets Fig. 4
// separate the two. On non-SSE2 targets a volatile-store fallback keeps
// the generator functional (with cache pollution as the documented cost).
#pragma once

#include <cstdint>
#include <vector>

#include "anomalies/anomaly.hpp"
#include "common/rng.hpp"

namespace hpas::anomalies {

struct MemBwOptions {
  CommonOptions common;
  std::uint64_t matrix_bytes = 64ULL * 1024 * 1024;  ///< per matrix
  double sleep_between_passes_s = 0.0;               ///< "rate" knob
};

class MemBw final : public Anomaly {
 public:
  explicit MemBw(MemBwOptions opts);

  std::string name() const override { return "membw"; }

  /// Matrix dimension N (matrices are N x N doubles).
  std::uint64_t dimension() const { return n_; }

  /// True when the build uses real MOVNT* non-temporal stores.
  static bool uses_nontemporal_stores();

 protected:
  void setup() override;
  bool iterate(RunStats& stats) override;
  void teardown() override;

 private:
  MemBwOptions opts_;
  Rng rng_;
  std::uint64_t n_ = 0;
  std::vector<double> src_;
  std::vector<double> dst_;
};

}  // namespace hpas::anomalies
