#include "anomalies/cpuoccupy.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/stopwatch.hpp"

namespace hpas::anomalies {

CpuOccupy::CpuOccupy(CpuOccupyOptions opts)
    : Anomaly(opts.common), opts_(opts), rng_(opts.common.seed) {
  require(opts.utilization_pct >= 0.0 && opts.utilization_pct <= 100.0,
          "cpuoccupy: utilization must be in [0,100]");
  require(opts.period_s > 0.0, "cpuoccupy: period must be positive");
}

std::uint64_t CpuOccupy::burn(double seconds) {
  // Integer multiply-add chain on values seeded from the RNG. Everything
  // lives in registers: no memory traffic beyond the instruction stream,
  // honouring the "negligible impact on the cache or memory" design goal.
  std::uint64_t a = rng_.next() | 1;
  std::uint64_t b = rng_.next();
  std::uint64_t ops = 0;
  Stopwatch sw;
  // Check the clock only every `kBatch` operations; a per-op syscall-free
  // clock read would still dominate the loop.
  constexpr std::uint64_t kBatch = 20000;
  while (sw.elapsed_seconds() < seconds) {
    for (std::uint64_t i = 0; i < kBatch; ++i) {
      a = a * 6364136223846793005ULL + 1442695040888963407ULL;
      b ^= a >> 17;
      b *= 0x2545f4914f6cdd1dULL;
    }
    ops += kBatch;
    if (stop_requested()) break;
  }
  checksum_ ^= a ^ b;
  return ops;
}

bool CpuOccupy::iterate(RunStats& stats) {
  const double busy = opts_.period_s * opts_.utilization_pct / 100.0;
  const double idle = opts_.period_s - busy;
  if (busy > 0.0) stats.work_amount += static_cast<double>(burn(busy));
  if (idle > 0.0) pace(idle);
  return true;
}

}  // namespace hpas::anomalies
