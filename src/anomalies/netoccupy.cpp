#include "anomalies/netoccupy.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"

namespace hpas::anomalies {
namespace {

constexpr std::size_t kChunkBytes = 256 * 1024;

/// RAII socket fd.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { reset(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void reset() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
};

void set_io_timeout(int fd, double seconds) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw ConfigError("netoccupy: invalid IPv4 address '" + host + "'");
  return addr;
}

}  // namespace

NetMode parse_net_mode(const std::string& text) {
  if (text == "send") return NetMode::kSend;
  if (text == "recv" || text == "receive") return NetMode::kRecv;
  if (text == "loopback") return NetMode::kLoopback;
  throw ConfigError("netoccupy: unknown mode '" + text +
                    "' (expected send/recv/loopback)");
}

struct NetOccupy::Impl {
  std::vector<std::thread> workers;
  std::atomic<std::uint64_t> sent{0};
  std::atomic<std::uint64_t> received{0};
};

NetOccupy::NetOccupy(NetOccupyOptions opts)
    : Anomaly(opts.common), opts_(opts), impl_(std::make_unique<Impl>()) {
  require(opts.ntasks >= 1, "netoccupy: ntasks must be >= 1");
  require(opts.message_bytes > 0, "netoccupy: message size must be positive");
  require(opts.sleep_between_messages_s >= 0.0,
          "netoccupy: sleep must be non-negative");
}

NetOccupy::~NetOccupy() { teardown(); }

void NetOccupy::setup() {
  const bool run_recv =
      opts_.mode == NetMode::kRecv || opts_.mode == NetMode::kLoopback;
  const bool run_send =
      opts_.mode == NetMode::kSend || opts_.mode == NetMode::kLoopback;
  const std::string send_host =
      opts_.mode == NetMode::kLoopback ? "127.0.0.1" : opts_.host;
  supervisor().set_worker_count(opts_.ntasks *
                                ((run_recv ? 1u : 0u) + (run_send ? 1u : 0u)));

  if (run_recv) {
    for (unsigned task = 0; task < opts_.ntasks; ++task) {
      const auto port = static_cast<std::uint16_t>(opts_.port + task);
      // Bind in the launching thread so senders started right after can
      // already connect (the accept happens in the worker).
      Socket listener(::socket(AF_INET, SOCK_STREAM, 0));
      if (!listener.valid()) throw SystemError("netoccupy: socket() failed");
      const int one = 1;
      ::setsockopt(listener.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
      sockaddr_in addr = make_addr("0.0.0.0", port);
      if (::bind(listener.fd(), reinterpret_cast<sockaddr*>(&addr),
                 sizeof addr) != 0)
        throw SystemError("netoccupy: bind to port " + std::to_string(port) +
                          " failed: " + std::strerror(errno));
      if (::listen(listener.fd(), 1) != 0)
        throw SystemError("netoccupy: listen failed");
      set_io_timeout(listener.fd(), 0.1);

      impl_->workers.emplace_back(
          [this, task, listener = std::move(listener)]() mutable {
            Supervisor& sup = supervisor();
            // Accept one peer (retrying on timeout until stop).
            Socket conn;
            while (!sup.cancelled() && !conn.valid()) {
              const int fd = ::accept(listener.fd(), nullptr, nullptr);
              if (fd >= 0) {
                conn = Socket(fd);
                set_io_timeout(conn.fd(), 0.1);
              } else if (errno != EAGAIN && errno != EWOULDBLOCK &&
                         errno != EINTR) {
                sup.report_failure(task, FailureOp::kAccept, errno);
                return;
              }
            }
            std::vector<char> scratch(kChunkBytes);
            while (!sup.cancelled() && conn.valid()) {
              const ssize_t got =
                  ::recv(conn.fd(), scratch.data(), scratch.size(), 0);
              if (got > 0) {
                impl_->received.fetch_add(static_cast<std::uint64_t>(got),
                                          std::memory_order_relaxed);
              } else if (got == 0) {
                // Peer closed. Expected during shutdown (the paired sender
                // exits first); otherwise the receiver is out of a job.
                if (!sup.cancelled())
                  sup.report_failure(task, FailureOp::kRecv, ECONNRESET);
                return;
              } else if (errno != EAGAIN && errno != EWOULDBLOCK &&
                         errno != EINTR) {
                if (!sup.cancelled())
                  sup.report_failure(task, FailureOp::kRecv, errno);
                return;
              }
            }
          });
    }
  }

  if (run_send) {
    for (unsigned task = 0; task < opts_.ntasks; ++task) {
      const auto port = static_cast<std::uint16_t>(opts_.port + task);
      // In loopback mode tasks 0..ntasks-1 are the receivers; give the
      // senders distinct ids so failure reports name the right worker.
      const unsigned report_id = task + (run_recv ? opts_.ntasks : 0);
      impl_->workers.emplace_back([this, send_host, port, task, report_id] {
        pin_current_thread(static_cast<int>(task));
        Supervisor& sup = supervisor();
        // Connect with retry: the paired receiver may come up later.
        Socket conn;
        while (!sup.cancelled() && !conn.valid()) {
          Socket attempt(::socket(AF_INET, SOCK_STREAM, 0));
          if (!attempt.valid()) {
            sup.report_failure(report_id, FailureOp::kSocket, errno);
            return;
          }
          sockaddr_in addr = make_addr(send_host, port);
          if (::connect(attempt.fd(), reinterpret_cast<sockaddr*>(&addr),
                        sizeof addr) == 0) {
            set_io_timeout(attempt.fd(), 0.1);
            conn = std::move(attempt);
          } else {
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
          }
        }
        if (!conn.valid()) return;

        // One message buffer of random bytes, reused for every send.
        std::vector<char> message(
            std::min<std::uint64_t>(opts_.message_bytes, kChunkBytes));
        Rng rng(common_options().seed + port);
        rng.fill_bytes(message.data(), message.size());

        while (!sup.cancelled()) {
          std::uint64_t remaining = opts_.message_bytes;
          while (remaining > 0 && !sup.cancelled()) {
            const std::size_t chunk =
                static_cast<std::size_t>(std::min<std::uint64_t>(
                    remaining, message.size()));
            const ssize_t put =
                ::send(conn.fd(), message.data(), chunk, MSG_NOSIGNAL);
            if (put > 0) {
              impl_->sent.fetch_add(static_cast<std::uint64_t>(put),
                                    std::memory_order_relaxed);
              remaining -= static_cast<std::uint64_t>(put);
            } else if (put < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                       errno != EINTR) {
              // Connection gone (EPIPE/ECONNRESET/...): report, don't just
              // vanish.
              if (!sup.cancelled())
                sup.report_failure(report_id, FailureOp::kSend, errno);
              return;
            }
          }
          // Degrade mode: survivors shrink their pauses to cover the duty
          // of dead workers.
          if (opts_.sleep_between_messages_s > 0.0)
            pace(opts_.sleep_between_messages_s / sup.duty_factor());
        }
      });
    }
  }
}

bool NetOccupy::iterate(RunStats& stats) {
  // The traffic runs on the worker threads; the main loop just keeps the
  // duration bookkeeping and surfaces progress.
  pace(0.05);
  stats.work_amount =
      static_cast<double>(impl_->sent.load(std::memory_order_relaxed));
  return !supervisor().should_stop();
}

void NetOccupy::teardown() {
  request_stop();
  for (auto& worker : impl_->workers) {
    if (worker.joinable()) worker.join();
  }
  impl_->workers.clear();
  bytes_sent_ = impl_->sent.load();
  bytes_received_ = impl_->received.load();
}

}  // namespace hpas::anomalies
