#include "anomalies/suite.hpp"

#include "anomalies/cachecopy.hpp"
#include "anomalies/cpuoccupy.hpp"
#include "anomalies/iobandwidth.hpp"
#include "anomalies/iometadata.hpp"
#include "anomalies/membw.hpp"
#include "anomalies/memeater.hpp"
#include "anomalies/memleak.hpp"
#include "anomalies/netoccupy.hpp"
#include "common/error.hpp"
#include "common/units.hpp"

namespace hpas::anomalies {
namespace {

CommonOptions parse_common(const ParsedArgs& args) {
  CommonOptions common;
  common.duration_s = parse_duration_seconds(args.value("duration"));
  common.start_delay_s = parse_duration_seconds(args.value("start-delay"));
  common.seed = parse_u64(args.value("seed"));
  const std::string pin = args.value("pin");
  common.pin_cpu =
      pin == "-1" ? -1 : static_cast<int>(parse_u64(pin));
  common.on_error = parse_on_error(args.value("on-error"));
  common.max_retries = static_cast<int>(parse_u64(args.value("max-retries")));
  require(common.max_retries >= 1, "max-retries must be >= 1");
  return common;
}

void add_common_options(CliParser& parser) {
  parser
      .add({.long_name = "duration", .short_name = 'd',
            .value_name = "TIME",
            .help = "active duration (e.g. 30s, 5m); 0 = until signalled",
            .default_value = "10s"})
      .add({.long_name = "start-delay", .short_name = '\0',
            .value_name = "TIME",
            .help = "idle delay before the anomaly starts",
            .default_value = "0s"})
      .add({.long_name = "seed", .short_name = '\0', .value_name = "N",
            .help = "seed for the anomaly's pseudo-random data",
            .default_value = "1212437843"})
      .add({.long_name = "pin", .short_name = '\0', .value_name = "CPU",
            .help = "pin to this CPU (workers use CPU+i); -1 = unpinned",
            .default_value = "-1"})
      .add({.long_name = "on-error", .short_name = '\0', .value_name = "MODE",
            .help = "worker failure policy: retry, degrade, or abort",
            .default_value = "retry"})
      .add({.long_name = "max-retries", .short_name = '\0',
            .value_name = "N",
            .help = "attempt budget per operation for transient errors",
            .default_value = "8"});
}

}  // namespace

const std::vector<AnomalyInfo>& anomaly_catalog() {
  static const std::vector<AnomalyInfo> kCatalog = {
      {"cpuoccupy", "CPU", "CPU intensive process",
       "Arithmetic operations", "utilization%"},
      {"cachecopy", "Cache hierarchy", "Cache contention",
       "Cache read & write", "cache (L1/L2/L3), multiplier, rate"},
      {"membw", "Memory", "Memory bandwidth contention",
       "Not-cached memory write", "buffer size, rate"},
      {"memeater", "Memory", "Memory intensive process",
       "Allocate, fill, & release memory", "buffer size, rate"},
      {"memleak", "Memory", "Memory leak",
       "Increasingly allocate & fill memory", "buffer size, rate"},
      {"netoccupy", "Network", "Network contention",
       "Send messages between two nodes", "message size, rate, ntasks"},
      {"iometadata", "Shared storage", "I/O metadata server contention",
       "File creation & deletion", "rate, ntasks"},
      {"iobandwidth", "Shared storage", "I/O bandwidth contention",
       "File read & write", "file size, ntasks"},
  };
  return kCatalog;
}

bool is_known_anomaly(const std::string& name) {
  for (const auto& info : anomaly_catalog())
    if (info.name == name) return true;
  return false;
}

CliParser make_anomaly_parser(const std::string& name) {
  if (!is_known_anomaly(name))
    throw ConfigError("unknown anomaly '" + name + "'");

  CliParser parser("hpas " + name, [&] {
    for (const auto& info : anomaly_catalog())
      if (info.name == name) return info.type + " (" + info.behavior + ")";
    return std::string();
  }());
  add_common_options(parser);

  if (name == "cpuoccupy") {
    parser
        .add({.long_name = "utilization", .short_name = 'u',
              .value_name = "PCT",
              .help = "CPU utilization percentage of one core",
              .default_value = "100"})
        .add({.long_name = "period", .short_name = 'p', .value_name = "TIME",
              .help = "duty-cycle period", .default_value = "100ms"});
  } else if (name == "cachecopy") {
    parser
        .add({.long_name = "cache", .short_name = 'c', .value_name = "LEVEL",
              .help = "target cache level: L1, L2 or L3",
              .default_value = "L3"})
        .add({.long_name = "multiplier", .short_name = 'm',
              .value_name = "X",
              .help = "working-set size as a multiple of the cache level",
              .default_value = "1.0"})
        .add({.long_name = "rate", .short_name = 'r', .value_name = "TIME",
              .help = "sleep between copies", .default_value = "0s"});
  } else if (name == "membw") {
    parser
        .add({.long_name = "size", .short_name = 's', .value_name = "BYTES",
              .help = "size of each matrix", .default_value = "64M"})
        .add({.long_name = "rate", .short_name = 'r', .value_name = "TIME",
              .help = "sleep between transpose passes",
              .default_value = "0s"});
  } else if (name == "memeater") {
    parser
        .add({.long_name = "size", .short_name = 's', .value_name = "BYTES",
              .help = "growth step (and initial allocation)",
              .default_value = "35M"})
        .add({.long_name = "max-size", .short_name = '\0',
              .value_name = "BYTES",
              .help = "size limit; 0 = grow until the duration ends",
              .default_value = "0"})
        .add({.long_name = "rate", .short_name = 'r', .value_name = "TIME",
              .help = "sleep between growth steps", .default_value = "1s"})
        .add({.long_name = "mem-floor-mb", .short_name = '\0',
              .value_name = "MB",
              .help = "pause growth while available memory is below this "
                      "floor (0 disables the guard)",
              .default_value = "256"});
  } else if (name == "memleak") {
    parser
        .add({.long_name = "size", .short_name = 's', .value_name = "BYTES",
              .help = "leaked chunk size per iteration",
              .default_value = "20M"})
        .add({.long_name = "max-size", .short_name = '\0',
              .value_name = "BYTES",
              .help = "total leak cap; 0 = unlimited", .default_value = "0"})
        .add({.long_name = "rate", .short_name = 'r', .value_name = "TIME",
              .help = "sleep between leaked chunks", .default_value = "1s"})
        .add({.long_name = "mem-floor-mb", .short_name = '\0',
              .value_name = "MB",
              .help = "pause leaking while available memory is below this "
                      "floor (0 disables the guard)",
              .default_value = "256"});
  } else if (name == "netoccupy") {
    parser
        .add({.long_name = "mode", .short_name = 'm', .value_name = "MODE",
              .help = "send, recv, or loopback", .default_value = "loopback"})
        .add({.long_name = "host", .short_name = '\0', .value_name = "ADDR",
              .help = "peer IPv4 address (send mode)",
              .default_value = "127.0.0.1"})
        .add({.long_name = "port", .short_name = 'p', .value_name = "PORT",
              .help = "base TCP port (task i uses port+i)",
              .default_value = "17119"})
        .add({.long_name = "size", .short_name = 's', .value_name = "BYTES",
              .help = "message size", .default_value = "100M"})
        .add({.long_name = "rate", .short_name = 'r', .value_name = "TIME",
              .help = "sleep between messages", .default_value = "0s"})
        .add({.long_name = "ntasks", .short_name = 'n', .value_name = "N",
              .help = "concurrent sender/receiver pairs",
              .default_value = "1"});
  } else if (name == "iometadata") {
    parser
        .add({.long_name = "dir", .short_name = '\0', .value_name = "PATH",
              .help = "directory on the target (shared) filesystem",
              .default_value = "."})
        .add({.long_name = "files", .short_name = 'f', .value_name = "N",
              .help = "files created per iteration", .default_value = "20"})
        .add({.long_name = "rate", .short_name = 'r', .value_name = "TIME",
              .help = "sleep between iterations", .default_value = "0s"})
        .add({.long_name = "ntasks", .short_name = 'n', .value_name = "N",
              .help = "worker threads (ranks)", .default_value = "1"});
  } else if (name == "iobandwidth") {
    parser
        .add({.long_name = "dir", .short_name = '\0', .value_name = "PATH",
              .help = "directory on the target (shared) filesystem",
              .default_value = "."})
        .add({.long_name = "size", .short_name = 's', .value_name = "BYTES",
              .help = "file size of the copy chain", .default_value = "256M"})
        .add({.long_name = "block", .short_name = 'b', .value_name = "BYTES",
              .help = "I/O block size (dd bs=)", .default_value = "1M"})
        .add({.long_name = "rate", .short_name = 'r', .value_name = "TIME",
              .help = "sleep between file copies", .default_value = "0s"})
        .add({.long_name = "ntasks", .short_name = 'n', .value_name = "N",
              .help = "worker threads (ranks)", .default_value = "1"});
  }
  return parser;
}

std::unique_ptr<Anomaly> make_anomaly(const std::string& name,
                                      const ParsedArgs& args) {
  const CommonOptions common = parse_common(args);

  if (name == "cpuoccupy") {
    CpuOccupyOptions opts{.common = common,
                          .utilization_pct = parse_percent(args.value("utilization")),
                          .period_s = parse_duration_seconds(args.value("period"))};
    return std::make_unique<CpuOccupy>(opts);
  }
  if (name == "cachecopy") {
    CacheCopyOptions opts{
        .common = common,
        .level = parse_cache_level(args.value("cache")),
        .multiplier = parse_double(args.value("multiplier")),
        .sleep_between_copies_s = parse_duration_seconds(args.value("rate")),
        .topology = detect_cache_topology()};
    return std::make_unique<CacheCopy>(opts);
  }
  if (name == "membw") {
    MemBwOptions opts{
        .common = common,
        .matrix_bytes = parse_bytes(args.value("size")),
        .sleep_between_passes_s = parse_duration_seconds(args.value("rate"))};
    return std::make_unique<MemBw>(opts);
  }
  if (name == "memeater") {
    MemEaterOptions opts{
        .common = common,
        .step_bytes = parse_bytes(args.value("size")),
        .max_bytes = parse_bytes(args.value("max-size")),
        .sleep_between_steps_s = parse_duration_seconds(args.value("rate")),
        .mem_floor_bytes =
            parse_u64(args.value("mem-floor-mb")) * 1024 * 1024};
    return std::make_unique<MemEater>(opts);
  }
  if (name == "memleak") {
    MemLeakOptions opts{
        .common = common,
        .chunk_bytes = parse_bytes(args.value("size")),
        .max_bytes = parse_bytes(args.value("max-size")),
        .sleep_between_chunks_s = parse_duration_seconds(args.value("rate")),
        .mem_floor_bytes =
            parse_u64(args.value("mem-floor-mb")) * 1024 * 1024};
    return std::make_unique<MemLeak>(opts);
  }
  if (name == "netoccupy") {
    NetOccupyOptions opts{
        .common = common,
        .mode = parse_net_mode(args.value("mode")),
        .host = args.value("host"),
        .port = static_cast<std::uint16_t>(parse_u64(args.value("port"))),
        .message_bytes = parse_bytes(args.value("size")),
        .sleep_between_messages_s = parse_duration_seconds(args.value("rate")),
        .ntasks = static_cast<unsigned>(parse_u64(args.value("ntasks")))};
    return std::make_unique<NetOccupy>(opts);
  }
  if (name == "iometadata") {
    IoMetadataOptions opts{
        .common = common,
        .directory = args.value("dir"),
        .files_per_iteration = static_cast<unsigned>(parse_u64(args.value("files"))),
        .delete_every = 10,
        .sleep_between_iterations_s = parse_duration_seconds(args.value("rate")),
        .ntasks = static_cast<unsigned>(parse_u64(args.value("ntasks")))};
    return std::make_unique<IoMetadata>(opts);
  }
  if (name == "iobandwidth") {
    IoBandwidthOptions opts{
        .common = common,
        .directory = args.value("dir"),
        .file_bytes = parse_bytes(args.value("size")),
        .block_bytes = parse_bytes(args.value("block")),
        .sleep_between_copies_s = parse_duration_seconds(args.value("rate")),
        .ntasks = static_cast<unsigned>(parse_u64(args.value("ntasks")))};
    return std::make_unique<IoBandwidth>(opts);
  }
  throw ConfigError("unknown anomaly '" + name + "'");
}

}  // namespace hpas::anomalies
