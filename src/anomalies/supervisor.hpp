// Worker supervision for the native anomaly generators.
//
// Every generator owns one Supervisor (via the Anomaly base class). The
// worker threads report structured WorkerFailure records through its
// lock-free channel instead of flipping a bare "failed" bool; the
// supervisor applies the --on-error policy:
//
//   retry   (default) -- transient errors are retried with exponential
//           backoff; a worker that still dies fails the whole anomaly
//           (clean shutdown, failure report, nonzero exit);
//   degrade -- a dead worker's duty is redistributed to the survivors
//           (duty_factor() tells them how much harder to work); the
//           anomaly stops only when every worker is dead;
//   abort   -- no retries; the first error stops the anomaly.
//
// The terminal report (SupervisionReport) names every failure's task,
// operation, errno and timestamp -- a generator can degrade or die, but
// never silently.
#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <vector>

#include "anomalies/failure.hpp"
#include "common/stopwatch.hpp"

namespace hpas::anomalies {

struct SupervisorOptions {
  OnError on_error = OnError::kRetry;
  RetryPolicy retry;
};

/// End-of-run summary: what failed, what recovered, what got dropped.
struct SupervisionReport {
  std::string anomaly;
  OnError on_error = OnError::kRetry;
  unsigned workers_total = 1;
  unsigned workers_failed = 0;
  std::uint64_t transient_recovered = 0;  ///< errors retried successfully
  std::uint64_t retries = 0;              ///< retry attempts consumed
  std::uint64_t failures_dropped = 0;     ///< records lost to channel overflow
  std::vector<WorkerFailure> failures;    ///< terminal failures, oldest first

  /// True when at least one worker terminally failed: the anomaly did not
  /// deliver its full configured load and the run must exit nonzero.
  bool fatal() const { return workers_failed > 0; }
  bool healthy() const { return workers_failed == 0 && failures.empty(); }

  /// Multi-line human-readable report (one header + one line per failure).
  std::string to_string() const;
};

class Supervisor {
 public:
  Supervisor() = default;
  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  void set_options(const SupervisorOptions& opts) { opts_ = opts; }
  const SupervisorOptions& options() const { return opts_; }

  /// The retry policy workers should actually apply: abort mode forbids
  /// retries, so the attempt budget collapses to 1.
  RetryPolicy effective_retry() const;

  /// External cancellation (the anomaly's stop_requested); checked by
  /// cancelled() together with should_stop().
  void set_cancel(std::function<bool()> cancel) { cancel_ = std::move(cancel); }

  /// Declared by multi-worker generators in setup(); defaults to 1.
  void set_worker_count(unsigned n);

  /// Restarts the failure timestamp clock; called at the top of run().
  void start_clock() { epoch_.reset(); }
  double now_s() const { return epoch_.elapsed_seconds(); }

  // -- worker-side API (all thread-safe) ---------------------------------

  /// Records a terminal failure of worker `task` and marks it dead. In
  /// retry/abort mode this stops the whole anomaly; in degrade mode the
  /// survivors pick up the duty.
  void report_failure(std::uint32_t task, FailureOp op, int err,
                      std::uint32_t attempts = 1);

  /// Counts an error that was retried successfully (`retries` attempts
  /// were consumed before the operation went through).
  void note_recovered(std::uint64_t retries);

  /// True when the whole anomaly should wind down: policy demands it, or
  /// every worker is dead, or the external cancel fired.
  bool should_stop() const;
  bool cancelled() const { return (cancel_ && cancel_()) || should_stop(); }

  unsigned workers_total() const {
    return workers_total_.load(std::memory_order_relaxed);
  }
  unsigned workers_failed() const {
    return workers_failed_.load(std::memory_order_relaxed);
  }

  /// Degrade mode: total/alive -- survivors scale their work rate by this
  /// so the anomaly's aggregate duty is preserved. 1.0 while healthy.
  double duty_factor() const;

  /// Drains the channel and assembles the terminal report. Call after the
  /// workers are joined.
  SupervisionReport make_report(const std::string& anomaly_name);

 private:
  SupervisorOptions opts_;
  std::function<bool()> cancel_;
  Stopwatch epoch_;
  std::atomic<unsigned> workers_total_{1};
  std::atomic<unsigned> workers_failed_{0};
  std::atomic<std::uint64_t> recovered_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<bool> stop_all_{false};
  FailureChannel channel_{256};
};

/// Runs `call` under the supervisor's (effective) retry policy, serving
/// backoffs through `sleep`. Successful retries are counted as recovered;
/// a terminal failure is reported to the supervisor (cancellation is
/// not). Callers should exit the worker when !result.ok().
IoResult supervised_io(Supervisor& sup, std::uint32_t task, FailureOp op,
                       const SyscallFn& call, const SleepFn& sleep,
                       const TransientHookFn& on_transient = nullptr);

/// write_fully under the supervisor's policy: short writes resume with
/// the unwritten remainder, transients back off, terminal failures are
/// reported. result.value holds the bytes written either way.
IoResult supervised_write_fully(Supervisor& sup, std::uint32_t task,
                                const WriteFn& write_fn, const char* data,
                                std::size_t n, const SleepFn& sleep,
                                const TransientHookFn& on_transient = nullptr);

}  // namespace hpas::anomalies
