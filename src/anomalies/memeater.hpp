// memeater -- memory-intensive process anomaly (paper Sec. 3.3.1).
//
// "The memeater anomaly allocates an array of a given size (35MB by
// default, but adjustable) and fills it with random values. Later, it uses
// realloc() to increase the array's size by the same amount, fills the
// remaining area with random values, and repeats until the time or size
// limit given by the user is reached."
//
// Unlike memleak, memeater models a legitimate memory-hungry neighbour:
// the footprint grows to a plateau and is released on exit.
#pragma once

#include <cstdint>

#include "anomalies/anomaly.hpp"
#include "common/rng.hpp"

namespace hpas::anomalies {

struct MemEaterOptions {
  CommonOptions common;
  std::uint64_t step_bytes = 35ULL * 1024 * 1024;  ///< 35 MB paper default
  std::uint64_t max_bytes = 0;      ///< 0 = no size limit (time-limited)
  double sleep_between_steps_s = 1.0;  ///< growth pacing ("rate")
  /// Memory-pressure guard (see mem_guard.hpp): growth pauses while the
  /// system's available memory is below this floor plus one step, so the
  /// anomaly degrades to holding its footprint instead of being
  /// OOM-killed. 0 disables the guard.
  std::uint64_t mem_floor_bytes = 256ULL * 1024 * 1024;
};

class MemEater final : public Anomaly {
 public:
  explicit MemEater(MemEaterOptions opts);
  ~MemEater() override;

  std::string name() const override { return "memeater"; }

  std::uint64_t allocated_bytes() const { return allocated_; }
  /// Iterations the memory-pressure guard held growth (degraded mode).
  std::uint64_t floor_holds() const { return floor_holds_; }

 protected:
  bool iterate(RunStats& stats) override;
  void teardown() override;

 private:
  MemEaterOptions opts_;
  Rng rng_;
  // realloc() is the faithful mechanism here (the paper names it), so the
  // buffer is a raw C allocation owned by this class; teardown() frees it.
  unsigned char* buffer_ = nullptr;
  std::uint64_t allocated_ = 0;
  std::uint64_t floor_holds_ = 0;
};

}  // namespace hpas::anomalies
