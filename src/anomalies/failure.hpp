// Structured worker-failure vocabulary for the native anomaly generators.
//
// HPAS generators run unattended for whole job lifetimes, so a transient
// syscall hiccup (EINTR, a short write, a momentary ENOSPC) must not
// silently kill a worker thread: FINJ (Netti et al.) argues a fault
// injector is only trustworthy if *its own* failures are detected,
// classified and reported. This header defines that vocabulary:
//
//   * FailureOp / ErrorClass / classify_errno -- which operation failed
//     and whether the errno is worth retrying;
//   * WorkerFailure -- one structured, fixed-size failure record
//     (task index, operation, errno, attempts, timestamp);
//   * FailureChannel -- a lock-free bounded MPMC channel workers push
//     records through (never blocks a worker; overflow is counted, not
//     silently lost);
//   * RetryPolicy + retry_syscall/write_fully -- bounded retry with
//     exponential backoff, written against injectable callables so unit
//     tests can shim the "syscalls" and prove the EINTR/short-write
//     logic without real fault hardware.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace hpas::anomalies {

/// Transient errors are retried with backoff (and possibly after the
/// worker cleans up after itself, e.g. deleting its scratch files on
/// ENOSPC); fatal errors terminate the worker immediately.
enum class ErrorClass : std::uint8_t { kTransient = 0, kFatal = 1 };

/// What the whole anomaly does about a worker's *terminal* failure
/// (transient retries exhausted, or a fatal errno):
///   retry   -- transients are retried; a dead worker still fails the
///              anomaly (clean shutdown + report + nonzero exit);
///   degrade -- a dead worker's duty is redistributed to the survivors;
///              the anomaly only stops when every worker is dead;
///   abort   -- no retries at all; the first error stops the anomaly.
enum class OnError : std::uint8_t { kRetry = 0, kDegrade = 1, kAbort = 2 };

OnError parse_on_error(const std::string& text);
std::string_view on_error_name(OnError mode);

/// The operation a failure record is about.
enum class FailureOp : std::uint8_t {
  kOpen = 0,
  kRead,
  kWrite,
  kFsync,
  kClose,
  kUnlink,
  kAlloc,
  kSocket,
  kBind,
  kConnect,
  kAccept,
  kSend,
  kRecv,
  kOther,
};

std::string_view failure_op_name(FailureOp op);

/// Symbolic name for common errno values ("ENOSPC"); "errno N" otherwise.
std::string errno_name(int err);

/// Transient vs fatal, in the context of the failed operation. The table
/// is deliberately conservative: anything not explicitly transient is
/// fatal. See DESIGN.md "Failure supervision" for the full table.
ErrorClass classify_errno(FailureOp op, int err);

/// One structured failure record. Fixed-size / trivially copyable so the
/// channel slots need no allocation and pushes stay lock-free.
struct WorkerFailure {
  std::uint32_t task = 0;   ///< worker (task) index within the anomaly
  FailureOp op = FailureOp::kOther;
  ErrorClass cls = ErrorClass::kFatal;
  int err = 0;              ///< errno at failure time; 0 = none recorded
  std::uint32_t attempts = 1;  ///< attempts made before giving up
  double time_s = 0.0;      ///< seconds since the anomaly's run() started
};

/// One human-readable line: "task 1: write: ENOSPC (No space left on
/// device), transient, gave up after 8 attempts, t=+2.41s".
std::string describe(const WorkerFailure& failure);

/// Bounded retry with exponential backoff. attempt is 1-based: the wait
/// *after* the attempt'th try.
struct RetryPolicy {
  int max_attempts = 8;             ///< total tries per operation
  double initial_backoff_s = 0.001;
  double backoff_multiplier = 2.0;
  double max_backoff_s = 0.25;

  double backoff_s(int attempt) const;
};

/// Lock-free bounded MPMC channel for WorkerFailure records (Vyukov's
/// bounded queue). push() never blocks and never allocates: when the
/// channel is full the record is dropped and counted, so a failure storm
/// cannot stall the workers it is reporting on.
class FailureChannel {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2).
  explicit FailureChannel(std::size_t capacity = 256);

  FailureChannel(const FailureChannel&) = delete;
  FailureChannel& operator=(const FailureChannel&) = delete;

  /// Thread-safe; returns false (and counts a drop) when full.
  bool push(const WorkerFailure& failure) noexcept;

  /// Pops everything currently in the channel, oldest first.
  std::vector<WorkerFailure> drain();

  std::uint64_t pushed() const {
    return pushed_.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  std::size_t capacity() const { return slots_.size(); }

 private:
  struct Slot {
    std::atomic<std::size_t> seq{0};
    WorkerFailure value;
  };

  bool pop(WorkerFailure& out) noexcept;

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
  std::atomic<std::uint64_t> pushed_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

/// Outcome of a (possibly retried) I/O-ish operation.
struct IoResult {
  std::int64_t value = -1;    ///< last return value / total bytes written
  int err = 0;                ///< errno of the terminal failure; 0 if ok
  std::uint32_t attempts = 1; ///< tries consumed (1 = first-try success)

  bool ok() const { return err == 0 && value >= 0; }
  bool cancelled() const;     ///< gave up because the run is stopping
};

/// The injectable pieces of the retry machinery: `call` is the
/// "syscall" (returns >= 0 on success, -1 with errno set on failure),
/// `cancelled` ends the loop early (stop request / supervisor shutdown),
/// `sleep` serves the backoff, and `on_transient` runs before each
/// retry so callers can clean up after themselves (the "momentary
/// ENOSPC after cleanup" case: delete your scratch files, then retry).
using SyscallFn = std::function<std::int64_t()>;
using CancelFn = std::function<bool()>;
using SleepFn = std::function<void(double)>;
using TransientHookFn = std::function<void(int err)>;

/// Retries `call` on transient errnos until it succeeds, a fatal errno
/// appears, `policy.max_attempts` tries are consumed, or `cancelled`
/// fires (result.err == ECANCELED, which is never reported as a
/// failure).
IoResult retry_syscall(FailureOp op, const RetryPolicy& policy,
                       const SyscallFn& call, const CancelFn& cancelled,
                       const SleepFn& sleep,
                       const TransientHookFn& on_transient = nullptr);

/// Writes all `n` bytes through `write_fn`, resuming after short writes
/// (a legal outcome, not an error: writing continues with the unwritten
/// remainder) and retrying transient errnos with backoff. A return of 0
/// counts as a transient no-progress error; any forward progress resets
/// the attempt budget. On success result.value == n; on failure it holds
/// the bytes that did make it out.
using WriteFn = std::function<std::int64_t(const char* data, std::size_t n)>;
IoResult write_fully(const WriteFn& write_fn, const char* data,
                     std::size_t n, const RetryPolicy& policy,
                     const CancelFn& cancelled, const SleepFn& sleep,
                     const TransientHookFn& on_transient = nullptr);

}  // namespace hpas::anomalies
