// cpuoccupy -- CPU-intensive process anomaly (paper Sec. 3.1).
//
// "This anomaly performs arithmetic operations on random values in a loop
// and sleeps for a given percentage of the time [...] the activity of the
// anomaly has negligible impact on the cache or memory, and the
// utilization of the CPU can be adjusted to a given percentage."
//
// The paper implements the duty cycle with setitimer(); we use a
// steady-clock duty cycle with the same period granularity, which gives
// identical observable behaviour (a process consuming u% of one CPU) while
// staying signal-free and thread-safe. Use cases: orphan CPU-hog processes
// (utilization near 100%) and OS jitter (low utilization, short period).
#pragma once

#include <cstdint>

#include "anomalies/anomaly.hpp"
#include "common/rng.hpp"

namespace hpas::anomalies {

struct CpuOccupyOptions {
  CommonOptions common;
  double utilization_pct = 100.0;  ///< [0, 100]: CPU share of one core
  double period_s = 0.10;          ///< duty-cycle period (work+sleep)
};

class CpuOccupy final : public Anomaly {
 public:
  explicit CpuOccupy(CpuOccupyOptions opts);

  std::string name() const override { return "cpuoccupy"; }

  /// Checksum over all arithmetic performed; consumed so the optimizer
  /// cannot elide the busy loop, and handy for determinism tests.
  std::uint64_t checksum() const { return checksum_; }

 protected:
  bool iterate(RunStats& stats) override;

 private:
  /// Runs arithmetic on register-resident values for ~`seconds`;
  /// returns the number of operations executed.
  std::uint64_t burn(double seconds);

  CpuOccupyOptions opts_;
  Rng rng_;
  std::uint64_t checksum_ = 0;
};

}  // namespace hpas::anomalies
