// memleak -- memory-leak anomaly (paper Sec. 3.3.2).
//
// "We model memory leaks using the memleak anomaly, which allocates an
// array of characters of a given size (20 MB by default) and fills it with
// random characters in each iteration. The addresses of the arrays are not
// stored and are not freed at each iteration, causing a memory leak."
//
// The observable signature -- the one the diagnosis models key on -- is a
// monotonically growing resident set for the life of the anomaly. We keep
// the allocations in an internal list that is only released at teardown;
// during the run nothing is freed, which reproduces the paper's pattern
// while still letting the generator be embedded in long-lived processes
// (tests, benches) without genuinely leaking the host.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "anomalies/anomaly.hpp"
#include "common/rng.hpp"

namespace hpas::anomalies {

struct MemLeakOptions {
  CommonOptions common;
  std::uint64_t chunk_bytes = 20ULL * 1024 * 1024;  ///< 20 MB paper default
  std::uint64_t max_bytes = 0;   ///< safety cap; 0 = unlimited
  double sleep_between_chunks_s = 1.0;  ///< leak pacing ("rate")
  bool touch_all = true;  ///< fill pages so the leak shows up in RSS
  /// Memory-pressure guard (see mem_guard.hpp): leaking pauses while the
  /// system's available memory is below this floor plus one chunk, so the
  /// anomaly degrades to holding its leak instead of being OOM-killed.
  /// 0 disables the guard.
  std::uint64_t mem_floor_bytes = 256ULL * 1024 * 1024;
};

class MemLeak final : public Anomaly {
 public:
  explicit MemLeak(MemLeakOptions opts);

  std::string name() const override { return "memleak"; }

  std::uint64_t leaked_bytes() const { return leaked_; }
  /// Iterations the memory-pressure guard held growth (degraded mode).
  std::uint64_t floor_holds() const { return floor_holds_; }

 protected:
  bool iterate(RunStats& stats) override;
  void teardown() override;

 private:
  MemLeakOptions opts_;
  Rng rng_;
  std::vector<std::unique_ptr<unsigned char[]>> chunks_;
  std::uint64_t leaked_ = 0;
  std::uint64_t floor_holds_ = 0;
};

}  // namespace hpas::anomalies
