// The anomaly suite registry: Table 1 of the paper as code.
//
// Maps anomaly names to their catalog entry (subsystem, behaviour, knobs)
// and to CLI-driven factories, so the `hpas` tool, the tests, and the
// table1 bench all share one source of truth.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "anomalies/anomaly.hpp"
#include "common/cli.hpp"

namespace hpas::anomalies {

struct AnomalyInfo {
  std::string name;       ///< e.g. "cpuoccupy"
  std::string subsystem;  ///< "CPU", "Cache hierarchy", "Memory", ...
  std::string type;       ///< Table 1 "anomaly type" column
  std::string behavior;   ///< Table 1 "anomaly behavior" column
  std::string knobs;      ///< Table 1 "runtime configuration options" column
};

/// All eight anomalies in paper order (Table 1).
const std::vector<AnomalyInfo>& anomaly_catalog();

/// True when `name` is one of the eight anomalies.
bool is_known_anomaly(const std::string& name);

/// CLI parser for one anomaly, with that anomaly's knobs plus the common
/// --duration/--start-delay/--seed options. Throws ConfigError for an
/// unknown name.
CliParser make_anomaly_parser(const std::string& name);

/// Constructs a configured generator from parsed CLI args. Throws
/// ConfigError on unknown names or invalid knob values.
std::unique_ptr<Anomaly> make_anomaly(const std::string& name,
                                      const ParsedArgs& args);

}  // namespace hpas::anomalies
