#include "anomalies/failure.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/error.hpp"

namespace hpas::anomalies {

OnError parse_on_error(const std::string& text) {
  if (text == "retry") return OnError::kRetry;
  if (text == "degrade") return OnError::kDegrade;
  if (text == "abort") return OnError::kAbort;
  throw ConfigError("unknown --on-error mode '" + text +
                    "' (expected retry, degrade, or abort)");
}

std::string_view on_error_name(OnError mode) {
  switch (mode) {
    case OnError::kRetry: return "retry";
    case OnError::kDegrade: return "degrade";
    case OnError::kAbort: return "abort";
  }
  return "unknown";
}

std::string_view failure_op_name(FailureOp op) {
  switch (op) {
    case FailureOp::kOpen: return "open";
    case FailureOp::kRead: return "read";
    case FailureOp::kWrite: return "write";
    case FailureOp::kFsync: return "fsync";
    case FailureOp::kClose: return "close";
    case FailureOp::kUnlink: return "unlink";
    case FailureOp::kAlloc: return "alloc";
    case FailureOp::kSocket: return "socket";
    case FailureOp::kBind: return "bind";
    case FailureOp::kConnect: return "connect";
    case FailureOp::kAccept: return "accept";
    case FailureOp::kSend: return "send";
    case FailureOp::kRecv: return "recv";
    case FailureOp::kOther: return "other";
  }
  return "unknown";
}

std::string errno_name(int err) {
  switch (err) {
    case 0: return "OK";
    case EINTR: return "EINTR";
    case EAGAIN: return "EAGAIN";
    case EBUSY: return "EBUSY";
    case ENOSPC: return "ENOSPC";
    case EDQUOT: return "EDQUOT";
    case EMFILE: return "EMFILE";
    case ENFILE: return "ENFILE";
    case ENOMEM: return "ENOMEM";
    case ENOBUFS: return "ENOBUFS";
    case EIO: return "EIO";
    case EBADF: return "EBADF";
    case ENOENT: return "ENOENT";
    case EACCES: return "EACCES";
    case EPIPE: return "EPIPE";
    case ECONNRESET: return "ECONNRESET";
    case ECONNREFUSED: return "ECONNREFUSED";
    case ETIMEDOUT: return "ETIMEDOUT";
    case ECANCELED: return "ECANCELED";
    case EROFS: return "EROFS";
    case ENOTDIR: return "ENOTDIR";
    default: return "errno " + std::to_string(err);
  }
}

ErrorClass classify_errno(FailureOp op, int err) {
  switch (err) {
    // Interrupted / try-again conditions are always worth retrying.
    case EINTR:
    case EAGAIN:
#if EWOULDBLOCK != EAGAIN
    case EWOULDBLOCK:
#endif
    case EBUSY:
    case ENOBUFS:
      return ErrorClass::kTransient;
    // Resource exhaustion is transient for operations whose owner can
    // free its own resources (delete scratch files, wait for another
    // job's burst to pass) -- the "momentary ENOSPC after cleanup" case.
    case ENOSPC:
    case EDQUOT:
    case EMFILE:
    case ENFILE:
    case ENOMEM:
      return ErrorClass::kTransient;
    // A refused connection usually means the peer is not up *yet*.
    case ECONNREFUSED:
    case ETIMEDOUT:
      return op == FailureOp::kConnect ? ErrorClass::kTransient
                                       : ErrorClass::kFatal;
    default:
      return ErrorClass::kFatal;
  }
}

std::string describe(const WorkerFailure& failure) {
  std::string out = "task " + std::to_string(failure.task) + ": ";
  out += failure_op_name(failure.op);
  out += ": ";
  out += errno_name(failure.err);
  if (failure.err != 0) {
    out += " (";
    out += std::strerror(failure.err);
    out += ")";
  }
  out += failure.cls == ErrorClass::kTransient ? ", transient" : ", fatal";
  if (failure.attempts > 1) {
    out += ", gave up after " + std::to_string(failure.attempts) + " attempts";
  }
  char when[32];
  std::snprintf(when, sizeof when, ", t=+%.2fs", failure.time_s);
  out += when;
  return out;
}

double RetryPolicy::backoff_s(int attempt) const {
  double wait = initial_backoff_s;
  for (int i = 1; i < attempt; ++i) wait *= backoff_multiplier;
  return std::min(wait, max_backoff_s);
}

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 2;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

FailureChannel::FailureChannel(std::size_t capacity)
    : slots_(round_up_pow2(std::max<std::size_t>(capacity, 2))) {
  mask_ = slots_.size() - 1;
  for (std::size_t i = 0; i < slots_.size(); ++i)
    slots_[i].seq.store(i, std::memory_order_relaxed);
}

bool FailureChannel::push(const WorkerFailure& failure) noexcept {
  std::size_t pos = head_.load(std::memory_order_relaxed);
  for (;;) {
    Slot& slot = slots_[pos & mask_];
    const std::size_t seq = slot.seq.load(std::memory_order_acquire);
    const auto diff = static_cast<std::intptr_t>(seq) -
                      static_cast<std::intptr_t>(pos);
    if (diff == 0) {
      if (head_.compare_exchange_weak(pos, pos + 1,
                                      std::memory_order_relaxed)) {
        slot.value = failure;
        slot.seq.store(pos + 1, std::memory_order_release);
        pushed_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    } else if (diff < 0) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;  // full
    } else {
      pos = head_.load(std::memory_order_relaxed);
    }
  }
}

bool FailureChannel::pop(WorkerFailure& out) noexcept {
  std::size_t pos = tail_.load(std::memory_order_relaxed);
  for (;;) {
    Slot& slot = slots_[pos & mask_];
    const std::size_t seq = slot.seq.load(std::memory_order_acquire);
    const auto diff = static_cast<std::intptr_t>(seq) -
                      static_cast<std::intptr_t>(pos + 1);
    if (diff == 0) {
      if (tail_.compare_exchange_weak(pos, pos + 1,
                                      std::memory_order_relaxed)) {
        out = slot.value;
        slot.seq.store(pos + mask_ + 1, std::memory_order_release);
        return true;
      }
    } else if (diff < 0) {
      return false;  // empty
    } else {
      pos = tail_.load(std::memory_order_relaxed);
    }
  }
}

std::vector<WorkerFailure> FailureChannel::drain() {
  std::vector<WorkerFailure> out;
  WorkerFailure failure;
  while (pop(failure)) out.push_back(failure);
  return out;
}

bool IoResult::cancelled() const { return err == ECANCELED; }

IoResult retry_syscall(FailureOp op, const RetryPolicy& policy,
                       const SyscallFn& call, const CancelFn& cancelled,
                       const SleepFn& sleep,
                       const TransientHookFn& on_transient) {
  IoResult result;
  const int budget = std::max(policy.max_attempts, 1);
  for (int attempt = 1;; ++attempt) {
    result.attempts = static_cast<std::uint32_t>(attempt);
    if (cancelled && cancelled()) {
      result.err = ECANCELED;
      return result;
    }
    errno = 0;
    const std::int64_t value = call();
    if (value >= 0) {
      result.value = value;
      result.err = 0;
      return result;
    }
    result.err = errno != 0 ? errno : EIO;
    if (classify_errno(op, result.err) == ErrorClass::kFatal ||
        attempt >= budget) {
      return result;
    }
    if (on_transient) on_transient(result.err);
    if (sleep) sleep(policy.backoff_s(attempt));
  }
}

IoResult write_fully(const WriteFn& write_fn, const char* data,
                     std::size_t n, const RetryPolicy& policy,
                     const CancelFn& cancelled, const SleepFn& sleep,
                     const TransientHookFn& on_transient) {
  IoResult result;
  result.value = 0;  // bytes written so far
  const int budget = std::max(policy.max_attempts, 1);
  int attempt = 0;
  std::size_t done = 0;
  while (done < n) {
    if (cancelled && cancelled()) {
      result.err = ECANCELED;
      return result;
    }
    errno = 0;
    const std::int64_t put = write_fn(data + done, n - done);
    if (put > 0) {
      // Forward progress -- a short write is legal, not an error. Resume
      // with the remainder and reset the transient budget.
      done += static_cast<std::size_t>(put);
      result.value = static_cast<std::int64_t>(done);
      attempt = 0;
      continue;
    }
    // put == 0 (no progress) or -1 (error): consume a transient attempt.
    result.err = put < 0 ? (errno != 0 ? errno : EIO) : ENOSPC;
    result.attempts = static_cast<std::uint32_t>(++attempt);
    if (put < 0 &&
        classify_errno(FailureOp::kWrite, result.err) == ErrorClass::kFatal) {
      return result;
    }
    if (attempt >= budget) return result;
    if (on_transient) on_transient(result.err);
    if (sleep) sleep(policy.backoff_s(attempt));
  }
  result.err = 0;
  result.attempts = static_cast<std::uint32_t>(std::max(attempt, 0)) + 1;
  return result;
}

}  // namespace hpas::anomalies
