#include "anomalies/supervisor.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>

namespace hpas::anomalies {

std::string SupervisionReport::to_string() const {
  char head[160];
  std::snprintf(head, sizeof head,
                "%s: %u/%u worker(s) failed (on-error=%s, %llu transient "
                "recovered, %llu retries)",
                anomaly.c_str(), workers_failed, workers_total,
                std::string(on_error_name(on_error)).c_str(),
                static_cast<unsigned long long>(transient_recovered),
                static_cast<unsigned long long>(retries));
  std::string out = head;
  for (const WorkerFailure& failure : failures) {
    out += "\n  ";
    out += describe(failure);
  }
  if (failures_dropped > 0) {
    out += "\n  (+" + std::to_string(failures_dropped) +
           " failure record(s) dropped: channel overflow)";
  }
  return out;
}

RetryPolicy Supervisor::effective_retry() const {
  RetryPolicy policy = opts_.retry;
  if (opts_.on_error == OnError::kAbort) policy.max_attempts = 1;
  return policy;
}

void Supervisor::set_worker_count(unsigned n) {
  workers_total_.store(std::max(n, 1u), std::memory_order_relaxed);
}

void Supervisor::report_failure(std::uint32_t task, FailureOp op, int err,
                                std::uint32_t attempts) {
  WorkerFailure failure;
  failure.task = task;
  failure.op = op;
  failure.cls = classify_errno(op, err);
  failure.err = err;
  failure.attempts = attempts;
  failure.time_s = now_s();
  channel_.push(failure);
  const unsigned failed =
      workers_failed_.fetch_add(1, std::memory_order_acq_rel) + 1;
  switch (opts_.on_error) {
    case OnError::kRetry:
    case OnError::kAbort:
      // A terminally dead worker fails the whole anomaly: stop the
      // survivors so we shut down cleanly instead of running at an
      // unannounced fraction of the configured load.
      stop_all_.store(true, std::memory_order_release);
      break;
    case OnError::kDegrade:
      // Survivors absorb the duty; only a total wipeout stops the run.
      if (failed >= workers_total_.load(std::memory_order_relaxed)) {
        stop_all_.store(true, std::memory_order_release);
      }
      break;
  }
}

void Supervisor::note_recovered(std::uint64_t retries) {
  recovered_.fetch_add(1, std::memory_order_relaxed);
  retries_.fetch_add(retries, std::memory_order_relaxed);
}

bool Supervisor::should_stop() const {
  if (stop_all_.load(std::memory_order_acquire)) return true;
  return workers_failed_.load(std::memory_order_relaxed) >=
         workers_total_.load(std::memory_order_relaxed);
}

double Supervisor::duty_factor() const {
  const unsigned total = workers_total_.load(std::memory_order_relaxed);
  const unsigned failed = workers_failed_.load(std::memory_order_relaxed);
  const unsigned alive = failed < total ? total - failed : 1;
  return static_cast<double>(total) / static_cast<double>(alive);
}

SupervisionReport Supervisor::make_report(const std::string& anomaly_name) {
  SupervisionReport report;
  report.anomaly = anomaly_name;
  report.on_error = opts_.on_error;
  report.workers_total = workers_total_.load(std::memory_order_relaxed);
  report.workers_failed = workers_failed_.load(std::memory_order_relaxed);
  report.transient_recovered = recovered_.load(std::memory_order_relaxed);
  report.retries = retries_.load(std::memory_order_relaxed);
  report.failures_dropped = channel_.dropped();
  report.failures = channel_.drain();
  return report;
}

IoResult supervised_io(Supervisor& sup, std::uint32_t task, FailureOp op,
                       const SyscallFn& call, const SleepFn& sleep,
                       const TransientHookFn& on_transient) {
  const IoResult result =
      retry_syscall(op, sup.effective_retry(), call,
                    [&sup] { return sup.cancelled(); }, sleep, on_transient);
  if (result.ok()) {
    if (result.attempts > 1) sup.note_recovered(result.attempts - 1);
  } else if (!result.cancelled()) {
    sup.report_failure(task, op, result.err, result.attempts);
  }
  return result;
}

IoResult supervised_write_fully(Supervisor& sup, std::uint32_t task,
                                const WriteFn& write_fn, const char* data,
                                std::size_t n, const SleepFn& sleep,
                                const TransientHookFn& on_transient) {
  const IoResult result =
      write_fully(write_fn, data, n, sup.effective_retry(),
                  [&sup] { return sup.cancelled(); }, sleep, on_transient);
  if (result.ok()) {
    if (result.attempts > 1) sup.note_recovered(result.attempts - 1);
  } else if (!result.cancelled()) {
    sup.report_failure(task, FailureOp::kWrite, result.err, result.attempts);
  }
  return result;
}

}  // namespace hpas::anomalies
