// Composite anomaly schedules (paper Sec. 3: "This configurability also
// enables composing more complicated variability patterns by using
// multiple anomaly instances").
//
// A schedule is a small text format, one anomaly instance per line:
//
//     # comment
//     at 0s   cpuoccupy -u 80 -d 30s
//     at 10s  memleak -s 20M -r 1s -d 45s
//     at 15s  cachecopy -c L2 -d 20s
//
// `run_schedule` launches every instance on its own thread at its start
// offset and waits for all of them; a stop request tears the whole
// composition down. This is what `hpas schedule <file>` runs.
#pragma once

#include <atomic>
#include <iosfwd>
#include <string>
#include <vector>

#include "anomalies/anomaly.hpp"

namespace hpas::anomalies {

struct ScheduleEntry {
  double start_s = 0.0;           ///< offset from schedule launch
  std::string anomaly;            ///< one of the eight suite names
  std::vector<std::string> args;  ///< CLI args for that anomaly
};

struct Schedule {
  std::vector<ScheduleEntry> entries;

  /// Total wall time the schedule needs: max over entries of
  /// start + start-delay + duration (parsed from each entry's args).
  double span_seconds() const;
};

/// Parses the schedule text format. Throws ConfigError with the line
/// number on malformed input (unknown anomaly, bad time, missing "at").
Schedule parse_schedule(std::istream& in);
Schedule parse_schedule_text(const std::string& text);
Schedule load_schedule_file(const std::string& path);

/// Per-entry outcome of a composite run.
struct ScheduleEntryResult {
  ScheduleEntry entry;
  RunStats stats;
  std::string error;  ///< non-empty if the instance failed
  SupervisionReport supervision;  ///< worker failures / recoveries
};

/// Runs all entries concurrently, honouring their start offsets.
/// `stop` (optional) requests early teardown of every running instance.
/// Blocks until every instance has finished.
std::vector<ScheduleEntryResult> run_schedule(
    const Schedule& schedule, const std::atomic<bool>* stop = nullptr);

}  // namespace hpas::anomalies
