// cachecopy -- cache-contention anomaly (paper Sec. 3.2).
//
// "The anomaly generator allocates two arrays, each of which are half the
// size of the L1, L2 or L3 caches [...] and repeatedly copies the contents
// of one array to the other one. The two arrays are contiguous in memory
// and are allocated using posix_memalign()."
//
// Because the combined working set matches the chosen cache level, the
// copy loop keeps that level fully occupied and evicts colocated
// applications' lines, while generating almost no main-memory traffic once
// the arrays are resident (contrast with membw).
#pragma once

#include <cstdint>

#include "anomalies/anomaly.hpp"
#include "anomalies/cache_topology.hpp"
#include "common/rng.hpp"

namespace hpas::anomalies {

struct CacheCopyOptions {
  CommonOptions common;
  CacheLevel level = CacheLevel::kL3;  ///< which cache to occupy
  double multiplier = 1.0;  ///< scales the working set relative to the level
  double sleep_between_copies_s = 0.0;  ///< "rate" knob of Table 1
  CacheTopology topology = {};          ///< defaults; detect_cache_topology()
};

class CacheCopy final : public Anomaly {
 public:
  explicit CacheCopy(CacheCopyOptions opts);
  ~CacheCopy() override;

  std::string name() const override { return "cachecopy"; }

  /// Size of EACH of the two arrays (= level size x multiplier / 2).
  std::uint64_t array_bytes() const { return array_bytes_; }

 protected:
  void setup() override;
  bool iterate(RunStats& stats) override;
  void teardown() override;

 private:
  CacheCopyOptions opts_;
  Rng rng_;
  std::uint64_t array_bytes_ = 0;
  unsigned char* block_ = nullptr;  ///< one aligned block holding both arrays
};

}  // namespace hpas::anomalies
