// Memory-pressure guard for the footprint anomalies (memeater, memleak).
//
// A memory hog that grows unchecked eventually meets the OOM killer --
// which takes out not just the anomaly but, on a shared node, possibly
// the experiment harness around it. The guard reads how much memory the
// system will still hand out without reclaim pain and stops the anomaly's
// growth while that headroom is below a floor (`--mem-floor-mb`,
// default 256 MiB). The anomaly then *holds* its footprint -- still a
// realistic memory-pressure signature -- instead of dying.
//
// Headroom is the minimum of two views, because either one alone lies:
//   * /proc/meminfo MemAvailable -- the whole machine's estimate;
//   * the cgroup v2 limit (memory.max - memory.current) -- a container
//     may be capped far below the machine's free memory.
// Missing files (non-Linux, cgroup v1, no limit) simply drop that view.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace hpas::anomalies {

/// Bytes the current process can still allocate before hitting either
/// system memory exhaustion or its cgroup limit. nullopt when neither
/// source is readable (no /proc, no cgroup v2): the caller should treat
/// that as "unknown" and skip guarding rather than assume zero.
std::optional<std::uint64_t> available_memory_bytes();

/// Parse helpers, exposed for tests (the real files are read by
/// available_memory_bytes()).
/// Extracts `MemAvailable` (in bytes) from /proc/meminfo content.
std::optional<std::uint64_t> parse_meminfo_available(const std::string& text);
/// Parses a cgroup v2 memory.max / memory.current value: a byte count,
/// or "max" (no limit -> nullopt).
std::optional<std::uint64_t> parse_cgroup_bytes(const std::string& text);

}  // namespace hpas::anomalies
