#include "anomalies/memeater.hpp"

#include <cerrno>
#include <cstdlib>

#include "anomalies/mem_guard.hpp"
#include "common/error.hpp"
#include "common/log.hpp"

namespace hpas::anomalies {

MemEater::MemEater(MemEaterOptions opts)
    : Anomaly(opts.common), opts_(opts), rng_(opts.common.seed) {
  require(opts.step_bytes > 0, "memeater: step size must be positive");
  require(opts.sleep_between_steps_s >= 0.0,
          "memeater: sleep must be non-negative");
}

MemEater::~MemEater() { teardown(); }

bool MemEater::iterate(RunStats& stats) {
  if (opts_.max_bytes > 0 && allocated_ >= opts_.max_bytes) {
    // Size limit reached: hold the plateau (stay memory-intensive) until
    // the duration elapses, without growing further.
    pace(opts_.sleep_between_steps_s > 0 ? opts_.sleep_between_steps_s : 0.1);
    return true;
  }

  if (opts_.mem_floor_bytes > 0) {
    const auto avail = available_memory_bytes();
    if (avail && *avail < opts_.mem_floor_bytes + opts_.step_bytes) {
      // Below the floor the next step would push the node into OOM
      // territory; hold the footprint (still memory pressure, just not
      // growth) and report degraded operation instead of dying.
      if (floor_holds_ == 0) {
        log_warn("memeater: available memory ", *avail,
                 " bytes below floor; holding at ", allocated_, " bytes");
        supervisor().note_recovered(1);
      }
      ++floor_holds_;
      pace(opts_.sleep_between_steps_s > 0 ? opts_.sleep_between_steps_s
                                           : 1.0);
      return true;
    }
  }

  const std::uint64_t new_size = allocated_ + opts_.step_bytes;
  auto* grown = static_cast<unsigned char*>(
      std::realloc(buffer_, new_size));  // NOLINT: realloc per the paper
  if (grown == nullptr) {
    if (common_options().on_error == OnError::kAbort) {
      supervisor().report_failure(0, FailureOp::kAlloc, ENOMEM);
      return false;
    }
    // Allocation failure is an expected runtime condition for a memory
    // hog (the paper notes apps get killed when memory runs out); stop
    // growing but keep what we have -- a recovered transient.
    log_warn("memeater: realloc to ", new_size, " bytes failed; holding at ",
             allocated_, " bytes");
    supervisor().note_recovered(1);
    pace(1.0);
    return true;
  }
  buffer_ = grown;
  // Fill only the newly grown tail with random values, as the paper does.
  rng_.fill_bytes(buffer_ + allocated_, opts_.step_bytes);
  allocated_ = new_size;
  stats.work_amount = static_cast<double>(allocated_);
  if (opts_.sleep_between_steps_s > 0.0) pace(opts_.sleep_between_steps_s);
  return true;
}

void MemEater::teardown() {
  std::free(buffer_);
  buffer_ = nullptr;
  allocated_ = 0;
}

}  // namespace hpas::anomalies
