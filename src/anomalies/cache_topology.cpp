#include "anomalies/cache_topology.hpp"

#include <cctype>
#include <filesystem>
#include <fstream>

#include "common/error.hpp"
#include "common/units.hpp"

namespace hpas::anomalies {
namespace {

std::string read_first_line(const std::filesystem::path& p) {
  std::ifstream in(p);
  std::string line;
  if (in) std::getline(in, line);
  return line;
}

}  // namespace

CacheLevel parse_cache_level(const std::string& text) {
  std::string t;
  for (const char c : text)
    t += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (t == "l1" || t == "1") return CacheLevel::kL1;
  if (t == "l2" || t == "2") return CacheLevel::kL2;
  if (t == "l3" || t == "3") return CacheLevel::kL3;
  throw ConfigError("unknown cache level '" + text + "' (expected L1/L2/L3)");
}

const char* cache_level_name(CacheLevel level) {
  switch (level) {
    case CacheLevel::kL1: return "L1";
    case CacheLevel::kL2: return "L2";
    case CacheLevel::kL3: return "L3";
  }
  return "?";
}

std::uint64_t CacheTopology::level_bytes(CacheLevel level) const {
  switch (level) {
    case CacheLevel::kL1: return l1_bytes;
    case CacheLevel::kL2: return l2_bytes;
    case CacheLevel::kL3: return l3_bytes;
  }
  return l3_bytes;
}

CacheTopology detect_cache_topology(const std::string& sysfs_cpu_cache_dir) {
  CacheTopology topo;
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(sysfs_cpu_cache_dir, ec)) return topo;

  bool any = false;
  for (const auto& entry : fs::directory_iterator(sysfs_cpu_cache_dir, ec)) {
    if (ec) break;
    const auto name = entry.path().filename().string();
    if (name.rfind("index", 0) != 0) continue;
    const std::string level = read_first_line(entry.path() / "level");
    const std::string type = read_first_line(entry.path() / "type");
    const std::string size = read_first_line(entry.path() / "size");
    if (level.empty() || size.empty()) continue;
    if (type == "Instruction") continue;  // we care about data/unified caches
    std::uint64_t bytes = 0;
    try {
      bytes = parse_bytes(size);
    } catch (const ConfigError&) {
      continue;
    }
    if (bytes == 0) continue;
    if (level == "1") topo.l1_bytes = bytes;
    else if (level == "2") topo.l2_bytes = bytes;
    else if (level == "3") topo.l3_bytes = bytes;
    else continue;
    any = true;
  }
  topo.detected = any;
  return topo;
}

}  // namespace hpas::anomalies
