#include "anomalies/iobandwidth.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace hpas::anomalies {
namespace fs = std::filesystem;
namespace {

/// RAII file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Fd& operator=(Fd&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = o.fd_;
      o.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void reset() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
};

}  // namespace

struct IoBandwidth::Impl {
  std::vector<std::thread> workers;
  std::vector<fs::path> task_dirs;
  std::atomic<std::uint64_t> written{0};
};

IoBandwidth::IoBandwidth(IoBandwidthOptions opts)
    : Anomaly(opts.common), opts_(opts), impl_(std::make_unique<Impl>()) {
  require(opts.ntasks >= 1, "iobandwidth: ntasks must be >= 1");
  require(opts.file_bytes > 0, "iobandwidth: file size must be positive");
  require(opts.block_bytes > 0, "iobandwidth: block size must be positive");
}

IoBandwidth::~IoBandwidth() { teardown(); }

void IoBandwidth::setup() {
  supervisor().set_worker_count(opts_.ntasks);
  for (unsigned task = 0; task < opts_.ntasks; ++task) {
    const fs::path dir = fs::path(opts_.directory) /
                         ("hpas_iobandwidth_" + std::to_string(::getpid()) +
                          "_t" + std::to_string(task));
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec)
      throw SystemError("iobandwidth: cannot create " + dir.string() + ": " +
                        ec.message());
    impl_->task_dirs.push_back(dir);
  }

  for (unsigned task = 0; task < opts_.ntasks; ++task) {
    const fs::path dir = impl_->task_dirs[task];
    impl_->workers.emplace_back([this, dir, task] {
      pin_current_thread(static_cast<int>(task));
      Supervisor& sup = supervisor();
      const auto sleep = [this](double s) { pace(s); };
      const auto count_written = [this](std::int64_t bytes) {
        if (bytes > 0)
          impl_->written.fetch_add(static_cast<std::uint64_t>(bytes),
                                   std::memory_order_relaxed);
      };
      std::vector<char> block(static_cast<std::size_t>(
          std::min<std::uint64_t>(opts_.block_bytes, opts_.file_bytes)));
      Rng rng(common_options().seed + task);
      rng.fill_bytes(block.data(), block.size());

      // Seed file: "dd copies random data into a file".
      const fs::path file_a = dir / "chain_a";
      const fs::path file_b = dir / "chain_b";
      {
        const IoResult opened = supervised_io(
            sup, task, FailureOp::kOpen,
            [&]() -> std::int64_t {
              return ::open(file_a.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                            0644);
            },
            sleep);
        if (!opened.ok()) return;
        Fd out(static_cast<int>(opened.value));
        std::uint64_t remaining = opts_.file_bytes;
        while (remaining > 0 && !sup.cancelled()) {
          const std::size_t chunk = static_cast<std::size_t>(
              std::min<std::uint64_t>(remaining, block.size()));
          const IoResult put = supervised_write_fully(
              sup, task,
              [&](const char* data, std::size_t n) -> std::int64_t {
                return ::write(out.fd(), data, n);
              },
              block.data(), chunk, sleep);
          count_written(put.value);
          if (!put.ok()) return;
          remaining -= chunk;
        }
        if (opts_.sync_each_copy &&
            !supervised_io(
                 sup, task, FailureOp::kFsync,
                 [&]() -> std::int64_t { return ::fsync(out.fd()); }, sleep)
                 .ok()) {
          return;
        }
      }

      // Copy chain: a -> b -> a -> ... ("copies that file to another file
      // and so on").
      fs::path src = file_a, dst = file_b;
      while (!sup.cancelled()) {
        const IoResult in_r = supervised_io(
            sup, task, FailureOp::kOpen,
            [&]() -> std::int64_t { return ::open(src.c_str(), O_RDONLY); },
            sleep);
        if (!in_r.ok()) return;
        Fd in(static_cast<int>(in_r.value));
        const IoResult out_r = supervised_io(
            sup, task, FailureOp::kOpen,
            [&]() -> std::int64_t {
              return ::open(dst.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
            },
            sleep);
        if (!out_r.ok()) return;
        Fd out(static_cast<int>(out_r.value));
        while (!sup.cancelled()) {
          const IoResult got = supervised_io(
              sup, task, FailureOp::kRead,
              [&]() -> std::int64_t {
                return ::read(in.fd(), block.data(), block.size());
              },
              sleep);
          if (!got.ok()) return;
          if (got.value == 0) break;  // end of file
          const IoResult put = supervised_write_fully(
              sup, task,
              [&](const char* data, std::size_t n) -> std::int64_t {
                return ::write(out.fd(), data, n);
              },
              block.data(), static_cast<std::size_t>(got.value), sleep);
          count_written(put.value);
          if (!put.ok()) return;
        }
        if (opts_.sync_each_copy &&
            !supervised_io(
                 sup, task, FailureOp::kFsync,
                 [&]() -> std::int64_t { return ::fsync(out.fd()); }, sleep)
                 .ok()) {
          return;
        }
        std::swap(src, dst);
        // Degrade mode: survivors shrink their pauses to cover the duty of
        // dead workers.
        if (opts_.sleep_between_copies_s > 0.0)
          pace(opts_.sleep_between_copies_s / sup.duty_factor());
      }
    });
  }
}

bool IoBandwidth::iterate(RunStats& stats) {
  pace(0.05);
  stats.work_amount =
      static_cast<double>(impl_->written.load(std::memory_order_relaxed));
  return !supervisor().should_stop();
}

void IoBandwidth::teardown() {
  request_stop();
  for (auto& worker : impl_->workers) {
    if (worker.joinable()) worker.join();
  }
  impl_->workers.clear();
  bytes_written_ = impl_->written.load();
  for (const auto& dir : impl_->task_dirs) {
    std::error_code ec;
    fs::remove_all(dir, ec);
  }
  impl_->task_dirs.clear();
}

}  // namespace hpas::anomalies
