#include "anomalies/schedule.hpp"

#include <chrono>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>

#include "anomalies/suite.hpp"
#include "common/error.hpp"
#include "common/stopwatch.hpp"
#include "common/units.hpp"

namespace hpas::anomalies {
namespace {

/// Duration/start-delay of one entry as its generator will see them.
std::pair<double, double> entry_timing(const ScheduleEntry& entry) {
  const auto parser = make_anomaly_parser(entry.anomaly);
  const auto args = parser.parse(entry.args);
  return {parse_duration_seconds(args.value("duration")),
          parse_duration_seconds(args.value("start-delay"))};
}

}  // namespace

double Schedule::span_seconds() const {
  double span = 0.0;
  for (const auto& entry : entries) {
    const auto [duration, delay] = entry_timing(entry);
    span = std::max(span, entry.start_s + delay + duration);
  }
  return span;
}

Schedule parse_schedule(std::istream& in) {
  Schedule schedule;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments and whitespace-only lines.
    if (const auto hash = line.find('#'); hash != std::string::npos)
      line.erase(hash);
    std::istringstream ls(line);
    std::string keyword;
    if (!(ls >> keyword)) continue;  // blank

    const std::string where = "schedule line " + std::to_string(line_no);
    if (keyword != "at")
      throw ConfigError(where + ": expected 'at <time> <anomaly> [args]', got '" +
                        keyword + "'");
    std::string time_text, anomaly;
    if (!(ls >> time_text >> anomaly))
      throw ConfigError(where + ": expected 'at <time> <anomaly> [args]'");

    ScheduleEntry entry;
    try {
      entry.start_s = parse_duration_seconds(time_text);
    } catch (const ConfigError& e) {
      throw ConfigError(where + ": " + e.what());
    }
    if (!is_known_anomaly(anomaly))
      throw ConfigError(where + ": unknown anomaly '" + anomaly + "'");
    entry.anomaly = anomaly;
    std::string arg;
    while (ls >> arg) entry.args.push_back(arg);

    // Validate the args eagerly so errors carry the line number.
    try {
      const auto parser = make_anomaly_parser(anomaly);
      (void)make_anomaly(anomaly, parser.parse(entry.args));
    } catch (const ConfigError& e) {
      throw ConfigError(where + ": " + e.what());
    }
    schedule.entries.push_back(std::move(entry));
  }
  return schedule;
}

Schedule parse_schedule_text(const std::string& text) {
  std::istringstream in(text);
  return parse_schedule(in);
}

Schedule load_schedule_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw SystemError("cannot open schedule file: " + path);
  return parse_schedule(in);
}

std::vector<ScheduleEntryResult> run_schedule(const Schedule& schedule,
                                              const std::atomic<bool>* stop) {
  std::vector<ScheduleEntryResult> results(schedule.entries.size());
  std::vector<std::unique_ptr<Anomaly>> instances;
  instances.reserve(schedule.entries.size());

  // Construct everything up front so configuration errors surface before
  // any load is generated. The start offset is realized through the
  // generator's own start-delay machinery.
  for (const auto& entry : schedule.entries) {
    const auto parser = make_anomaly_parser(entry.anomaly);
    auto args = parser.parse(entry.args);
    auto anomaly = make_anomaly(entry.anomaly, args);
    // make_anomaly has no way to add the schedule offset, so rebuild the
    // arg list with the combined delay.
    const double delay =
        parse_duration_seconds(args.value("start-delay")) + entry.start_s;
    std::vector<std::string> adjusted = entry.args;
    adjusted.push_back("--start-delay");
    adjusted.push_back(std::to_string(delay) + "s");
    anomaly = make_anomaly(entry.anomaly, parser.parse(adjusted));
    instances.push_back(std::move(anomaly));
  }

  std::vector<std::thread> workers;
  workers.reserve(instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    workers.emplace_back([&, i] {
      results[i].entry = schedule.entries[i];
      try {
        results[i].stats = instances[i]->run();
      } catch (const std::exception& e) {
        results[i].error = e.what();
      }
      results[i].supervision = instances[i]->supervision_report();
    });
  }

  // Propagate external stop requests to every instance.
  std::thread watchdog;
  std::atomic<bool> done{false};
  if (stop != nullptr) {
    watchdog = std::thread([&] {
      while (!done.load(std::memory_order_relaxed)) {
        if (stop->load(std::memory_order_relaxed)) {
          for (const auto& instance : instances) instance->request_stop();
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    });
  }

  for (auto& worker : workers) worker.join();
  done.store(true);
  if (watchdog.joinable()) watchdog.join();
  return results;
}

}  // namespace hpas::anomalies
