// Detection of the host's cache hierarchy.
//
// cachecopy sizes its arrays at "half the size of the L1, L2 or L3 caches"
// (paper Sec. 3.2), so it needs the actual cache sizes. We read them from
// sysfs (/sys/devices/system/cpu/cpu0/cache); when sysfs is unavailable
// (containers, non-Linux) we fall back to the Haswell Xeon E5-2698 v3
// sizes of the paper's Voltrino system.
#pragma once

#include <cstdint>
#include <string>

namespace hpas::anomalies {

enum class CacheLevel { kL1 = 1, kL2 = 2, kL3 = 3 };

/// Parses "L1"/"l1"/"1" etc.; throws ConfigError on anything else.
CacheLevel parse_cache_level(const std::string& text);

const char* cache_level_name(CacheLevel level);

struct CacheTopology {
  std::uint64_t l1_bytes = 32ULL * 1024;          ///< L1d, per core
  std::uint64_t l2_bytes = 256ULL * 1024;         ///< per core
  std::uint64_t l3_bytes = 40ULL * 1024 * 1024;   ///< shared per socket
  bool detected = false;  ///< true when sysfs provided the values

  std::uint64_t level_bytes(CacheLevel level) const;
};

/// Reads the topology from `sysfs_cpu_cache_dir` (default: cpu0's cache
/// directory). Missing/garbled entries fall back to defaults; never throws.
CacheTopology detect_cache_topology(
    const std::string& sysfs_cpu_cache_dir =
        "/sys/devices/system/cpu/cpu0/cache");

}  // namespace hpas::anomalies
