// netoccupy -- network contention anomaly (paper Sec. 3.4).
//
// In the paper, rank pairs on two nodes blast 100 MB messages at each
// other with SHMEM shmem_putmem() over the Cray Aries. Neither SHMEM nor
// Aries exists off a Cray, so this port substitutes TCP sockets: each of
// the `ntasks` worker pairs keeps a stream of `message_bytes`-sized sends
// in flight from the sender node to the receiver node. The observable
// behaviour -- sustained pairwise bandwidth consumption on the path
// between two nodes, tunable via message size / rate / ntasks -- is
// preserved (see DESIGN.md substitution table). For the simulated Aries
// interconnect, see simanom::NetOccupyInjector.
//
// Deployment mirrors the original: run `hpas netoccupy --mode recv` on one
// node and `--mode send --host <peer>` on the other. A `--mode loopback`
// runs both endpoints in one process (threads), which is what the tests
// and single-machine demos use.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "anomalies/anomaly.hpp"

namespace hpas::anomalies {

enum class NetMode { kSend, kRecv, kLoopback };

NetMode parse_net_mode(const std::string& text);

struct NetOccupyOptions {
  CommonOptions common;
  NetMode mode = NetMode::kLoopback;
  std::string host = "127.0.0.1";
  std::uint16_t port = 17119;  ///< base port; task i uses port + i
  std::uint64_t message_bytes = 100ULL * 1024 * 1024;  ///< paper: 100 MB
  double sleep_between_messages_s = 0.0;  ///< "rate" knob
  unsigned ntasks = 1;                    ///< concurrent sender/receiver pairs
};

class NetOccupy final : public Anomaly {
 public:
  explicit NetOccupy(NetOccupyOptions opts);
  ~NetOccupy() override;

  std::string name() const override { return "netoccupy"; }

  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t bytes_received() const { return bytes_received_; }

 protected:
  void setup() override;
  bool iterate(RunStats& stats) override;
  void teardown() override;

 private:
  struct Impl;
  NetOccupyOptions opts_;
  std::unique_ptr<Impl> impl_;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
};

}  // namespace hpas::anomalies
