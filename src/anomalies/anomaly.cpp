#include "anomalies/anomaly.hpp"

#include <sched.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/stopwatch.hpp"

namespace hpas::anomalies {

Anomaly::Anomaly(CommonOptions opts) : opts_(opts) {
  require(opts_.start_delay_s >= 0.0, "start-delay must be non-negative");
  require(opts_.max_retries >= 1, "max-retries must be >= 1");
  SupervisorOptions sup;
  sup.on_error = opts_.on_error;
  sup.retry.max_attempts = opts_.max_retries;
  supervisor_.set_options(sup);
  // Anomaly is non-movable, so capturing `this` here is safe.
  supervisor_.set_cancel([this] { return stop_requested(); });
}

const SupervisionReport& Anomaly::supervision_report() {
  if (!report_ready_) {
    report_ = supervisor_.make_report(name());
    report_ready_ = true;
  }
  return report_;
}

void Anomaly::pace(double seconds) const {
  // Sleep in slices so a stop request is honoured within ~50 ms even in
  // the middle of a long pause.
  constexpr double kSliceSeconds = 0.05;
  Stopwatch sw;
  while (!stop_requested()) {
    const double remaining = seconds - sw.elapsed_seconds();
    if (remaining <= 0.0) break;
    const double nap = std::min(remaining, kSliceSeconds);
    std::this_thread::sleep_for(std::chrono::duration<double>(nap));
  }
  idle_seconds_.fetch_add(sw.elapsed_seconds(), std::memory_order_relaxed);
}

void Anomaly::pin_current_thread(int offset) const {
  if (opts_.pin_cpu < 0) return;
#if defined(__linux__)
  const long online = ::sysconf(_SC_NPROCESSORS_ONLN);
  if (online <= 0) return;
  const int cpu = (opts_.pin_cpu + offset) % static_cast<int>(online);
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu), &set);
  if (::sched_setaffinity(0, sizeof(set), &set) != 0) {
    log_warn(name(), ": failed to pin to CPU ", cpu);
  }
#else
  (void)offset;
  log_warn(name(), ": CPU pinning not supported on this platform");
#endif
}

RunStats Anomaly::run() {
  RunStats stats;
  Stopwatch total;

  report_ready_ = false;
  supervisor_.start_clock();
  pin_current_thread();
  if (opts_.start_delay_s > 0.0) pace(opts_.start_delay_s);

  if (!stop_requested()) {
    setup();
    Stopwatch active_window;
    while (!stop_requested()) {
      if (opts_.duration_s > 0.0 &&
          active_window.elapsed_seconds() >= opts_.duration_s) {
        break;
      }
      if (supervisor_.should_stop()) break;
      Stopwatch iter;
      const double idle_before =
          idle_seconds_.load(std::memory_order_relaxed);
      const bool keep_going = iterate(stats);
      const double idle_during =
          idle_seconds_.load(std::memory_order_relaxed) - idle_before;
      stats.active_seconds +=
          std::max(0.0, iter.elapsed_seconds() - idle_during);
      ++stats.iterations;
      if (!keep_going) break;
    }
    teardown();
  }

  stats.elapsed_seconds = total.elapsed_seconds();
  return stats;
}

}  // namespace hpas::anomalies
