#include "apps/stream.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace hpas::apps {

using sim::Phase;
using sim::Task;
using sim::TaskProfile;

StreamBench::StreamBench(sim::World& world, Options options)
    : world_(world), options_(options) {
  require(options.passes >= 1, "StreamBench: passes >= 1");
  require(options.bytes_per_pass > 0, "StreamBench: bytes_per_pass > 0");

  TaskProfile profile;
  profile.ips_peak = 2.3e9;
  profile.cpu_demand = 1.0;
  profile.working_set_bytes = 64.0 * 1024;  // streaming: no cache reuse
  profile.stream_bw_demand =
      world.node(options.node).config().core_bw_limit;

  pass_start_ = world.now();
  task_ = world.spawn_task(
      "STREAM", options_.node, options_.core, profile,
      Phase::stream(options_.bytes_per_pass), [this](Task&) {
        const double elapsed = world_.now() - pass_start_;
        rates_.push_back(elapsed > 0.0 ? options_.bytes_per_pass / elapsed
                                       : 0.0);
        ++pass_;
        if (pass_ >= options_.passes) {
          finished_ = true;
          return Phase::done();
        }
        pass_start_ = world_.now();
        return Phase::stream(options_.bytes_per_pass);
      });
}

double StreamBench::best_rate() const {
  double best = 0.0;
  for (const double r : rates_) best = std::max(best, r);
  return best;
}

double StreamBench::run_to_completion(double deadline) {
  while (!finished_ && world_.now() < deadline &&
         world_.simulator().pending_events() > 0) {
    world_.simulator().step();
  }
  return best_rate();
}

}  // namespace hpas::apps
