// OSU-style point-to-point bandwidth benchmark (Fig. 6).
//
// For each message size, a window of back-to-back messages is streamed
// from src to dst and the achieved bandwidth is recorded. Per-message
// startup latency makes small messages latency-bound and large ones
// bandwidth-bound, reproducing the classic OSU curve shape.
#pragma once

#include <vector>

#include "sim/world.hpp"

namespace hpas::apps {

class OsuBandwidth {
 public:
  struct Options {
    int src_node = 0;
    int dst_node = 1;
    std::vector<double> message_sizes;  ///< bytes, measured in order
    int window = 16;                    ///< messages per measurement
    double msg_latency_s = 15e-6;
  };

  OsuBandwidth(sim::World& world, Options options);

  bool finished() const { return finished_; }
  /// results()[i] = achieved bytes/s for message_sizes[i].
  const std::vector<double>& results() const { return results_; }

  void run_to_completion(double deadline = 1.0e7);

 private:
  sim::World& world_;
  Options options_;
  sim::Task* task_ = nullptr;
  std::vector<double> results_;
  std::size_t size_index_ = 0;
  int msg_in_window_ = 0;
  double window_start_ = 0.0;
  bool finished_ = false;
};

}  // namespace hpas::apps
