// STREAM-like memory bandwidth measurement (McCalpin), used by Fig. 4.
//
// One task on a chosen core performs `passes` streaming sweeps of
// `bytes_per_pass` and records the achieved rate of each; "Best Rate" is
// the maximum, matching STREAM's reporting convention.
#pragma once

#include <vector>

#include "sim/world.hpp"

namespace hpas::apps {

class StreamBench {
 public:
  struct Options {
    int node = 0;
    int core = 0;
    double bytes_per_pass = 2.0e9;
    int passes = 10;
  };

  StreamBench(sim::World& world, Options options);

  bool finished() const { return finished_; }
  /// Best (maximum) achieved bytes/s across passes.
  double best_rate() const;
  const std::vector<double>& pass_rates() const { return rates_; }

  double run_to_completion(double deadline = 1.0e7);

 private:
  sim::World& world_;
  Options options_;
  sim::Task* task_ = nullptr;
  std::vector<double> rates_;
  double pass_start_ = 0.0;
  int pass_ = 0;
  bool finished_ = false;
};

}  // namespace hpas::apps
