// Bulk-synchronous-parallel application runtime for the simulated cluster.
//
// Each rank iterates: compute -> ring halo exchange -> barrier. The
// barrier is what transmits anomalies across ranks: one slowed rank (CPU
// share stolen, cache evicted, bandwidth starved) delays every iteration
// of the whole job -- the mechanism behind Fig. 8's application-level
// slowdowns and Fig. 12's allocation-policy gap.
#pragma once

#include <vector>

#include "apps/profiles.hpp"
#include "sim/world.hpp"

namespace hpas::apps {

class BspApp {
 public:
  struct Placement {
    std::vector<int> nodes;   ///< nodes hosting ranks
    int ranks_per_node = 4;   ///< ranks pinned to cores [first_core, ...)
    int first_core = 0;
  };

  /// Spawns all rank tasks immediately. The BspApp object must outlive
  /// the World's execution of the job (controllers point back into it).
  BspApp(sim::World& world, AppSpec spec, Placement placement);

  BspApp(const BspApp&) = delete;
  BspApp& operator=(const BspApp&) = delete;

  bool finished() const { return finished_; }
  /// Simulated wall time from spawn to last rank's completion.
  double elapsed() const;
  int completed_iterations() const { return iteration_; }
  const AppSpec& spec() const { return spec_; }
  const std::vector<sim::Task*>& rank_tasks() const { return ranks_; }

  /// Convenience: run the world until this app finishes (or `deadline`
  /// passes); returns elapsed().
  double run_to_completion(double deadline = 1.0e7);

 private:
  sim::Phase on_rank_phase_done(int rank, sim::Task& task);
  sim::Phase start_iteration_phase(int rank) const;
  int peer_rank(int rank) const;

  sim::World& world_;
  AppSpec spec_;
  Placement placement_;
  std::vector<sim::Task*> ranks_;
  std::vector<int> rank_nodes_;
  int iteration_ = 0;
  int at_barrier_ = 0;
  bool finished_ = false;
  double start_time_ = 0.0;
  double finish_time_ = 0.0;
};

}  // namespace hpas::apps
