// IOR-like filesystem benchmark (Fig. 7): sequential write, metadata
// (access/stat), and read phases against the shared filesystem, reporting
// the achieved rate of each phase.
#pragma once

#include "sim/world.hpp"

namespace hpas::apps {

class IorBench {
 public:
  struct Options {
    int node = 0;
    double write_bytes = 1.0e9;
    double metadata_ops = 2000.0;  ///< the "access" phase
    double read_bytes = 1.0e9;
  };

  IorBench(sim::World& world, Options options);

  bool finished() const { return finished_; }
  double write_rate() const { return write_rate_; }      ///< bytes/s
  double access_rate() const { return access_rate_; }    ///< ops/s
  double read_rate() const { return read_rate_; }        ///< bytes/s

  void run_to_completion(double deadline = 1.0e7);

 private:
  sim::World& world_;
  Options options_;
  sim::Task* task_ = nullptr;
  double phase_start_ = 0.0;
  int phase_index_ = 0;  // 0 write, 1 access, 2 read
  double write_rate_ = 0.0, access_rate_ = 0.0, read_rate_ = 0.0;
  bool finished_ = false;
};

}  // namespace hpas::apps
