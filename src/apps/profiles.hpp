// Proxy-application models (paper Table 2).
//
// The eight benchmark applications of the paper's evaluation, expressed
// as resource profiles for the simulated cluster. Figure 8's structure --
// which anomaly hurts which application -- is determined entirely by
// these resource characteristics, not by the physics the real proxies
// compute, so a profile-driven model preserves the result (DESIGN.md).
//
//   app         CPU-int  Mem-int  Net-int   (Table 2)
//   Cloverleaf            x
//   CoMD         x
//   Kripke       x        x
//   MILC                  x        x
//   miniAMR               x        x
//   miniGhost             x        x
//   miniMD       x
//   SW4lite      x        x
#pragma once

#include <string>
#include <vector>

#include "sim/task.hpp"

namespace hpas::apps {

struct AppSpec {
  std::string name;
  sim::TaskProfile rank_profile;  ///< per-rank microarchitectural profile
  double instr_per_iteration = 1.0e9;   ///< per rank
  double comm_bytes_per_iteration = 0;  ///< per rank, to its ring neighbor
  int iterations = 100;
  // Table 2 characterization flags (ground truth for table2 bench).
  bool cpu_intensive = false;
  bool memory_intensive = false;
  bool network_intensive = false;
};

/// The eight proxy applications, in the paper's (alphabetical) order.
const std::vector<AppSpec>& proxy_apps();

/// Lookup by (case-sensitive) name; throws ConfigError when unknown.
const AppSpec& app_by_name(const std::string& name);

}  // namespace hpas::apps
