#include "apps/profiles.hpp"

#include "common/error.hpp"

namespace hpas::apps {
namespace {

using sim::TaskProfile;

constexpr double kMiB = 1024.0 * 1024.0;

/// CPU-bound kernel: high IPC, small working set, few misses.
TaskProfile cpu_bound_profile() {
  TaskProfile p;
  p.ips_peak = 2.3e9;
  p.working_set_bytes = 2.0 * kMiB;
  p.m1_base = 8.0;  p.m1_max = 45.0;
  p.m2_base = 2.0;  p.m2_max = 20.0;
  p.m3_base = 0.3;  p.m3_max = 12.0;
  return p;
}

/// Memory-bound kernel: large working set, heavy L2/L3 miss traffic.
TaskProfile mem_bound_profile(double ws_mib, double m3_base) {
  TaskProfile p;
  p.ips_peak = 2.3e9;
  p.working_set_bytes = ws_mib * kMiB;
  p.m1_base = 40.0; p.m1_max = 70.0;
  p.m2_base = 18.0; p.m2_max = 35.0;
  p.m3_base = m3_base; p.m3_max = m3_base + 12.0;
  return p;
}

/// Mixed kernel (Kripke, SW4lite): compute-heavy sweeps over sizable
/// state.
TaskProfile mixed_profile(double ws_mib) {
  TaskProfile p;
  p.ips_peak = 2.3e9;
  p.working_set_bytes = ws_mib * kMiB;
  p.m1_base = 20.0; p.m1_max = 55.0;
  p.m2_base = 8.0;  p.m2_max = 25.0;
  p.m3_base = 2.5;  p.m3_max = 14.0;
  return p;
}

std::vector<AppSpec> build_catalog() {
  std::vector<AppSpec> apps;

  // Cloverleaf: structured hydrodynamics, bandwidth-bound stencils.
  apps.push_back({.name = "cloverleaf",
                  .rank_profile = mem_bound_profile(24.0, 9.0),
                  .instr_per_iteration = 1.1e9,
                  .comm_bytes_per_iteration = 2.0 * kMiB,
                  .iterations = 160,
                  .cpu_intensive = false,
                  .memory_intensive = true,
                  .network_intensive = false});

  // CoMD: molecular dynamics, force loops dominate, cache friendly.
  apps.push_back({.name = "CoMD",
                  .rank_profile = cpu_bound_profile(),
                  .instr_per_iteration = 2.6e9,
                  .comm_bytes_per_iteration = 0.5 * kMiB,
                  .iterations = 180,
                  .cpu_intensive = true,
                  .memory_intensive = false,
                  .network_intensive = false});

  // Kripke: particle transport sweeps, compute + large angular state.
  apps.push_back({.name = "kripke",
                  .rank_profile = mixed_profile(30.0),
                  .instr_per_iteration = 2.0e9,
                  .comm_bytes_per_iteration = 1.0 * kMiB,
                  .iterations = 150,
                  .cpu_intensive = true,
                  .memory_intensive = true,
                  .network_intensive = false});

  // MILC: lattice QCD, bandwidth bound with heavy halo exchange.
  apps.push_back({.name = "milc",
                  .rank_profile = mem_bound_profile(28.0, 10.0),
                  .instr_per_iteration = 1.2e9,
                  .comm_bytes_per_iteration = 14.0 * kMiB,
                  .iterations = 150,
                  .cpu_intensive = false,
                  .memory_intensive = true,
                  .network_intensive = true});

  // miniAMR: adaptive mesh refinement, irregular memory + communication.
  apps.push_back({.name = "miniAMR",
                  .rank_profile = mem_bound_profile(26.0, 8.0),
                  .instr_per_iteration = 1.4e9,
                  .comm_bytes_per_iteration = 10.0 * kMiB,
                  .iterations = 140,
                  .cpu_intensive = false,
                  .memory_intensive = true,
                  .network_intensive = true});

  // miniGhost: halo-exchange stencil (the Fig. 3 victim application).
  apps.push_back({.name = "miniGhost",
                  .rank_profile = mem_bound_profile(20.0, 7.0),
                  .instr_per_iteration = 1.3e9,
                  .comm_bytes_per_iteration = 12.0 * kMiB,
                  .iterations = 150,
                  .cpu_intensive = false,
                  .memory_intensive = true,
                  .network_intensive = true});

  // miniMD: molecular dynamics like CoMD; compute bound.
  apps.push_back({.name = "miniMD",
                  .rank_profile = cpu_bound_profile(),
                  .instr_per_iteration = 2.2e9,
                  .comm_bytes_per_iteration = 0.5 * kMiB,
                  .iterations = 170,
                  .cpu_intensive = true,
                  .memory_intensive = false,
                  .network_intensive = false});

  // SW4lite: seismic wave kernels; compute heavy over large grids.
  apps.push_back({.name = "sw4lite",
                  .rank_profile = mixed_profile(32.0),
                  .instr_per_iteration = 2.4e9,
                  .comm_bytes_per_iteration = 1.5 * kMiB,
                  .iterations = 160,
                  .cpu_intensive = true,
                  .memory_intensive = true,
                  .network_intensive = false});

  return apps;
}

}  // namespace

const std::vector<AppSpec>& proxy_apps() {
  static const std::vector<AppSpec> kApps = build_catalog();
  return kApps;
}

const AppSpec& app_by_name(const std::string& name) {
  for (const AppSpec& app : proxy_apps()) {
    if (app.name == name) return app;
  }
  throw ConfigError("unknown application '" + name + "'");
}

}  // namespace hpas::apps
