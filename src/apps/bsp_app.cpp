#include "apps/bsp_app.hpp"

#include "common/error.hpp"

namespace hpas::apps {

using sim::Phase;
using sim::PhaseKind;
using sim::Task;

BspApp::BspApp(sim::World& world, AppSpec spec, Placement placement)
    : world_(world), spec_(std::move(spec)), placement_(std::move(placement)) {
  require(!placement_.nodes.empty(), "BspApp: need at least one node");
  require(placement_.ranks_per_node >= 1, "BspApp: ranks_per_node >= 1");
  start_time_ = world_.now();

  const int total_ranks = static_cast<int>(placement_.nodes.size()) *
                          placement_.ranks_per_node;
  ranks_.reserve(static_cast<std::size_t>(total_ranks));
  for (int rank = 0; rank < total_ranks; ++rank) {
    const int node =
        placement_.nodes[static_cast<std::size_t>(rank) /
                         static_cast<std::size_t>(placement_.ranks_per_node)];
    const int core =
        placement_.first_core + rank % placement_.ranks_per_node;
    rank_nodes_.push_back(node);
    Task* task = world_.spawn_task(
        spec_.name + ".r" + std::to_string(rank), node, core,
        spec_.rank_profile, Phase::compute(spec_.instr_per_iteration),
        [this, rank](Task& t) { return on_rank_phase_done(rank, t); });
    ranks_.push_back(task);
  }
}

int BspApp::peer_rank(int rank) const {
  return (rank + 1) % static_cast<int>(ranks_.size());
}

Phase BspApp::start_iteration_phase(int /*rank*/) const {
  return Phase::compute(spec_.instr_per_iteration);
}

Phase BspApp::on_rank_phase_done(int rank, Task& /*task*/) {
  switch (ranks_[static_cast<std::size_t>(rank)]->phase().kind) {
    case PhaseKind::kCompute: {
      // Halo exchange with the ring neighbor (skippable for apps with no
      // communication).
      if (spec_.comm_bytes_per_iteration > 0.0 && ranks_.size() > 1) {
        const int peer = rank_nodes_[static_cast<std::size_t>(peer_rank(rank))];
        return Phase::message(peer, spec_.comm_bytes_per_iteration);
      }
      [[fallthrough]];
    }
    case PhaseKind::kMessage: {
      // Arrived at the barrier.
      ++at_barrier_;
      if (at_barrier_ < static_cast<int>(ranks_.size()))
        return Phase::idle();
      // Last rank releases the barrier.
      at_barrier_ = 0;
      ++iteration_;
      if (iteration_ >= spec_.iterations) {
        finished_ = true;
        finish_time_ = world_.now();
        for (std::size_t r = 0; r < ranks_.size(); ++r) {
          if (static_cast<int>(r) != rank)
            ranks_[r]->set_phase(Phase::done());
        }
        return Phase::done();
      }
      for (std::size_t r = 0; r < ranks_.size(); ++r) {
        if (static_cast<int>(r) != rank)
          ranks_[r]->set_phase(start_iteration_phase(static_cast<int>(r)));
      }
      return start_iteration_phase(rank);
    }
    default:
      throw InvariantError("BspApp: unexpected phase completion");
  }
}

double BspApp::elapsed() const {
  return finished_ ? finish_time_ - start_time_ : world_.now() - start_time_;
}

double BspApp::run_to_completion(double deadline) {
  while (!finished_ && world_.now() < deadline &&
         world_.simulator().pending_events() > 0) {
    world_.simulator().step();
  }
  return elapsed();
}

}  // namespace hpas::apps
