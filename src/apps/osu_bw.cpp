#include "apps/osu_bw.hpp"

#include "common/error.hpp"

namespace hpas::apps {

using sim::Phase;
using sim::Task;
using sim::TaskProfile;

OsuBandwidth::OsuBandwidth(sim::World& world, Options options)
    : world_(world), options_(std::move(options)) {
  require(!options_.message_sizes.empty(), "OsuBandwidth: need sizes");
  require(options_.window >= 1, "OsuBandwidth: window >= 1");

  TaskProfile profile;
  profile.cpu_demand = 0.1;  // MPI progress engine
  profile.working_set_bytes = 1.0 * 1024 * 1024;
  profile.msg_latency_s = options_.msg_latency_s;

  window_start_ = world.now();
  task_ = world.spawn_task(
      "osu_bw", options_.src_node, 0, profile,
      Phase::message(options_.dst_node, options_.message_sizes[0]),
      [this](Task&) {
        ++msg_in_window_;
        if (msg_in_window_ >= options_.window) {
          const double elapsed = world_.now() - window_start_;
          const double bytes = options_.message_sizes[size_index_] *
                               static_cast<double>(options_.window);
          results_.push_back(elapsed > 0.0 ? bytes / elapsed : 0.0);
          ++size_index_;
          msg_in_window_ = 0;
          window_start_ = world_.now();
          if (size_index_ >= options_.message_sizes.size()) {
            finished_ = true;
            return Phase::done();
          }
        }
        return Phase::message(options_.dst_node,
                              options_.message_sizes[size_index_]);
      });
}

void OsuBandwidth::run_to_completion(double deadline) {
  while (!finished_ && world_.now() < deadline &&
         world_.simulator().pending_events() > 0) {
    world_.simulator().step();
  }
}

}  // namespace hpas::apps
