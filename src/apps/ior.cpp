#include "apps/ior.hpp"

#include "common/error.hpp"

namespace hpas::apps {

using sim::IoKind;
using sim::Phase;
using sim::Task;
using sim::TaskProfile;

IorBench::IorBench(sim::World& world, Options options)
    : world_(world), options_(options) {
  require(options.write_bytes > 0 && options.read_bytes > 0 &&
              options.metadata_ops > 0,
          "IorBench: phase amounts must be positive");

  TaskProfile profile;
  profile.cpu_demand = 0.1;

  phase_start_ = world.now();
  task_ = world.spawn_task(
      "IOR", options_.node, 0, profile,
      Phase::io(IoKind::kWrite, options_.write_bytes), [this](Task&) {
        const double elapsed = world_.now() - phase_start_;
        phase_start_ = world_.now();
        switch (phase_index_++) {
          case 0:
            write_rate_ = elapsed > 0 ? options_.write_bytes / elapsed : 0.0;
            return Phase::io(IoKind::kMetadata, options_.metadata_ops);
          case 1:
            access_rate_ = elapsed > 0 ? options_.metadata_ops / elapsed : 0.0;
            return Phase::io(IoKind::kRead, options_.read_bytes);
          default:
            read_rate_ = elapsed > 0 ? options_.read_bytes / elapsed : 0.0;
            finished_ = true;
            return Phase::done();
        }
      });
}

void IorBench::run_to_completion(double deadline) {
  while (!finished_ && world_.now() < deadline &&
         world_.simulator().pending_events() > 0) {
    world_.simulator().step();
  }
}

}  // namespace hpas::apps
