file(REMOVE_RECURSE
  "CMakeFiles/test_jitter_policy_ext.dir/test_jitter_policy_ext.cpp.o"
  "CMakeFiles/test_jitter_policy_ext.dir/test_jitter_policy_ext.cpp.o.d"
  "test_jitter_policy_ext"
  "test_jitter_policy_ext.pdb"
  "test_jitter_policy_ext[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jitter_policy_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
