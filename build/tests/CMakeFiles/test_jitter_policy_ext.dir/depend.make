# Empty dependencies file for test_jitter_policy_ext.
# This may be replaced when dependencies are built.
