# Empty dependencies file for test_anomaly_suite.
# This may be replaced when dependencies are built.
