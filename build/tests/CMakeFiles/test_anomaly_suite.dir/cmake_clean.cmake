file(REMOVE_RECURSE
  "CMakeFiles/test_anomaly_suite.dir/test_anomaly_suite.cpp.o"
  "CMakeFiles/test_anomaly_suite.dir/test_anomaly_suite.cpp.o.d"
  "test_anomaly_suite"
  "test_anomaly_suite.pdb"
  "test_anomaly_suite[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_anomaly_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
