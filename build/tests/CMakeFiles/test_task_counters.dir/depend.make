# Empty dependencies file for test_task_counters.
# This may be replaced when dependencies are built.
