file(REMOVE_RECURSE
  "CMakeFiles/test_task_counters.dir/test_task_counters.cpp.o"
  "CMakeFiles/test_task_counters.dir/test_task_counters.cpp.o.d"
  "test_task_counters"
  "test_task_counters.pdb"
  "test_task_counters[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_task_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
