file(REMOVE_RECURSE
  "CMakeFiles/test_simanom.dir/test_simanom.cpp.o"
  "CMakeFiles/test_simanom.dir/test_simanom.cpp.o.d"
  "test_simanom"
  "test_simanom.pdb"
  "test_simanom[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simanom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
