# Empty dependencies file for test_simanom.
# This may be replaced when dependencies are built.
