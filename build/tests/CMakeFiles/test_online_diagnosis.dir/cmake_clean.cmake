file(REMOVE_RECURSE
  "CMakeFiles/test_online_diagnosis.dir/test_online_diagnosis.cpp.o"
  "CMakeFiles/test_online_diagnosis.dir/test_online_diagnosis.cpp.o.d"
  "test_online_diagnosis"
  "test_online_diagnosis.pdb"
  "test_online_diagnosis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_online_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
