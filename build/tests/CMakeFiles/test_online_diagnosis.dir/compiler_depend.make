# Empty compiler generated dependencies file for test_online_diagnosis.
# This may be replaced when dependencies are built.
