# Empty compiler generated dependencies file for test_refine_pin.
# This may be replaced when dependencies are built.
