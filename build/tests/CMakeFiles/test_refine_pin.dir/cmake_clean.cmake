file(REMOVE_RECURSE
  "CMakeFiles/test_refine_pin.dir/test_refine_pin.cpp.o"
  "CMakeFiles/test_refine_pin.dir/test_refine_pin.cpp.o.d"
  "test_refine_pin"
  "test_refine_pin.pdb"
  "test_refine_pin[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_refine_pin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
