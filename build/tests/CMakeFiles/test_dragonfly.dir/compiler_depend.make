# Empty compiler generated dependencies file for test_dragonfly.
# This may be replaced when dependencies are built.
