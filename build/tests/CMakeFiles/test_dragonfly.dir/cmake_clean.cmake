file(REMOVE_RECURSE
  "CMakeFiles/test_dragonfly.dir/test_dragonfly.cpp.o"
  "CMakeFiles/test_dragonfly.dir/test_dragonfly.cpp.o.d"
  "test_dragonfly"
  "test_dragonfly.pdb"
  "test_dragonfly[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dragonfly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
