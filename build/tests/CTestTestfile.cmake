# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_units[1]_include.cmake")
include("/root/repo/build/tests/test_cli[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_containers[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_features[1]_include.cmake")
include("/root/repo/build/tests/test_anomalies[1]_include.cmake")
include("/root/repo/build/tests/test_anomaly_suite[1]_include.cmake")
include("/root/repo/build/tests/test_schedule[1]_include.cmake")
include("/root/repo/build/tests/test_sim_engine[1]_include.cmake")
include("/root/repo/build/tests/test_maxmin[1]_include.cmake")
include("/root/repo/build/tests/test_node[1]_include.cmake")
include("/root/repo/build/tests/test_network[1]_include.cmake")
include("/root/repo/build/tests/test_dragonfly[1]_include.cmake")
include("/root/repo/build/tests/test_storage[1]_include.cmake")
include("/root/repo/build/tests/test_world[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_simanom[1]_include.cmake")
include("/root/repo/build/tests/test_ml[1]_include.cmake")
include("/root/repo/build/tests/test_diagnosis[1]_include.cmake")
include("/root/repo/build/tests/test_sched[1]_include.cmake")
include("/root/repo/build/tests/test_lb[1]_include.cmake")
include("/root/repo/build/tests/test_jitter_policy_ext[1]_include.cmake")
include("/root/repo/build/tests/test_online_diagnosis[1]_include.cmake")
include("/root/repo/build/tests/test_refine_pin[1]_include.cmake")
include("/root/repo/build/tests/test_task_counters[1]_include.cmake")
include("/root/repo/build/tests/test_model_properties[1]_include.cmake")
