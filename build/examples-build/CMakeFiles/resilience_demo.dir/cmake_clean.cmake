file(REMOVE_RECURSE
  "../examples/resilience_demo"
  "../examples/resilience_demo.pdb"
  "CMakeFiles/resilience_demo.dir/resilience_demo.cpp.o"
  "CMakeFiles/resilience_demo.dir/resilience_demo.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resilience_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
