
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/resilience_demo.cpp" "examples-build/CMakeFiles/resilience_demo.dir/resilience_demo.cpp.o" "gcc" "examples-build/CMakeFiles/resilience_demo.dir/resilience_demo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lb/CMakeFiles/hpas_lb.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/hpas_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/simanom/CMakeFiles/hpas_simanom.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hpas_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hpas_common.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/hpas_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
