file(REMOVE_RECURSE
  "../examples/diagnosis_demo"
  "../examples/diagnosis_demo.pdb"
  "CMakeFiles/diagnosis_demo.dir/diagnosis_demo.cpp.o"
  "CMakeFiles/diagnosis_demo.dir/diagnosis_demo.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diagnosis_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
