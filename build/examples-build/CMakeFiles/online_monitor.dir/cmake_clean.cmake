file(REMOVE_RECURSE
  "../examples/online_monitor"
  "../examples/online_monitor.pdb"
  "CMakeFiles/online_monitor.dir/online_monitor.cpp.o"
  "CMakeFiles/online_monitor.dir/online_monitor.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
