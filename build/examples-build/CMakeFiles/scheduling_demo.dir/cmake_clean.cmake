file(REMOVE_RECURSE
  "../examples/scheduling_demo"
  "../examples/scheduling_demo.pdb"
  "CMakeFiles/scheduling_demo.dir/scheduling_demo.cpp.o"
  "CMakeFiles/scheduling_demo.dir/scheduling_demo.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduling_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
