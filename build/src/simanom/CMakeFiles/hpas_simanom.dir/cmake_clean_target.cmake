file(REMOVE_RECURSE
  "libhpas_simanom.a"
)
