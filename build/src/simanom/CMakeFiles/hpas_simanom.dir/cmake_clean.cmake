file(REMOVE_RECURSE
  "CMakeFiles/hpas_simanom.dir/injectors.cpp.o"
  "CMakeFiles/hpas_simanom.dir/injectors.cpp.o.d"
  "libhpas_simanom.a"
  "libhpas_simanom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpas_simanom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
