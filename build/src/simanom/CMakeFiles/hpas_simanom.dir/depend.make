# Empty dependencies file for hpas_simanom.
# This may be replaced when dependencies are built.
