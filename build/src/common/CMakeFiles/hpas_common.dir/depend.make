# Empty dependencies file for hpas_common.
# This may be replaced when dependencies are built.
