file(REMOVE_RECURSE
  "CMakeFiles/hpas_common.dir/cli.cpp.o"
  "CMakeFiles/hpas_common.dir/cli.cpp.o.d"
  "CMakeFiles/hpas_common.dir/log.cpp.o"
  "CMakeFiles/hpas_common.dir/log.cpp.o.d"
  "CMakeFiles/hpas_common.dir/rng.cpp.o"
  "CMakeFiles/hpas_common.dir/rng.cpp.o.d"
  "CMakeFiles/hpas_common.dir/stats.cpp.o"
  "CMakeFiles/hpas_common.dir/stats.cpp.o.d"
  "CMakeFiles/hpas_common.dir/units.cpp.o"
  "CMakeFiles/hpas_common.dir/units.cpp.o.d"
  "libhpas_common.a"
  "libhpas_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpas_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
