file(REMOVE_RECURSE
  "libhpas_common.a"
)
