# Empty compiler generated dependencies file for hpas_anomalies.
# This may be replaced when dependencies are built.
