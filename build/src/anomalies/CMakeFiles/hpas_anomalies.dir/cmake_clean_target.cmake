file(REMOVE_RECURSE
  "libhpas_anomalies.a"
)
