
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/anomalies/anomaly.cpp" "src/anomalies/CMakeFiles/hpas_anomalies.dir/anomaly.cpp.o" "gcc" "src/anomalies/CMakeFiles/hpas_anomalies.dir/anomaly.cpp.o.d"
  "/root/repo/src/anomalies/cache_topology.cpp" "src/anomalies/CMakeFiles/hpas_anomalies.dir/cache_topology.cpp.o" "gcc" "src/anomalies/CMakeFiles/hpas_anomalies.dir/cache_topology.cpp.o.d"
  "/root/repo/src/anomalies/cachecopy.cpp" "src/anomalies/CMakeFiles/hpas_anomalies.dir/cachecopy.cpp.o" "gcc" "src/anomalies/CMakeFiles/hpas_anomalies.dir/cachecopy.cpp.o.d"
  "/root/repo/src/anomalies/cpuoccupy.cpp" "src/anomalies/CMakeFiles/hpas_anomalies.dir/cpuoccupy.cpp.o" "gcc" "src/anomalies/CMakeFiles/hpas_anomalies.dir/cpuoccupy.cpp.o.d"
  "/root/repo/src/anomalies/iobandwidth.cpp" "src/anomalies/CMakeFiles/hpas_anomalies.dir/iobandwidth.cpp.o" "gcc" "src/anomalies/CMakeFiles/hpas_anomalies.dir/iobandwidth.cpp.o.d"
  "/root/repo/src/anomalies/iometadata.cpp" "src/anomalies/CMakeFiles/hpas_anomalies.dir/iometadata.cpp.o" "gcc" "src/anomalies/CMakeFiles/hpas_anomalies.dir/iometadata.cpp.o.d"
  "/root/repo/src/anomalies/membw.cpp" "src/anomalies/CMakeFiles/hpas_anomalies.dir/membw.cpp.o" "gcc" "src/anomalies/CMakeFiles/hpas_anomalies.dir/membw.cpp.o.d"
  "/root/repo/src/anomalies/memeater.cpp" "src/anomalies/CMakeFiles/hpas_anomalies.dir/memeater.cpp.o" "gcc" "src/anomalies/CMakeFiles/hpas_anomalies.dir/memeater.cpp.o.d"
  "/root/repo/src/anomalies/memleak.cpp" "src/anomalies/CMakeFiles/hpas_anomalies.dir/memleak.cpp.o" "gcc" "src/anomalies/CMakeFiles/hpas_anomalies.dir/memleak.cpp.o.d"
  "/root/repo/src/anomalies/netoccupy.cpp" "src/anomalies/CMakeFiles/hpas_anomalies.dir/netoccupy.cpp.o" "gcc" "src/anomalies/CMakeFiles/hpas_anomalies.dir/netoccupy.cpp.o.d"
  "/root/repo/src/anomalies/schedule.cpp" "src/anomalies/CMakeFiles/hpas_anomalies.dir/schedule.cpp.o" "gcc" "src/anomalies/CMakeFiles/hpas_anomalies.dir/schedule.cpp.o.d"
  "/root/repo/src/anomalies/suite.cpp" "src/anomalies/CMakeFiles/hpas_anomalies.dir/suite.cpp.o" "gcc" "src/anomalies/CMakeFiles/hpas_anomalies.dir/suite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hpas_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
