file(REMOVE_RECURSE
  "CMakeFiles/hpas_anomalies.dir/anomaly.cpp.o"
  "CMakeFiles/hpas_anomalies.dir/anomaly.cpp.o.d"
  "CMakeFiles/hpas_anomalies.dir/cache_topology.cpp.o"
  "CMakeFiles/hpas_anomalies.dir/cache_topology.cpp.o.d"
  "CMakeFiles/hpas_anomalies.dir/cachecopy.cpp.o"
  "CMakeFiles/hpas_anomalies.dir/cachecopy.cpp.o.d"
  "CMakeFiles/hpas_anomalies.dir/cpuoccupy.cpp.o"
  "CMakeFiles/hpas_anomalies.dir/cpuoccupy.cpp.o.d"
  "CMakeFiles/hpas_anomalies.dir/iobandwidth.cpp.o"
  "CMakeFiles/hpas_anomalies.dir/iobandwidth.cpp.o.d"
  "CMakeFiles/hpas_anomalies.dir/iometadata.cpp.o"
  "CMakeFiles/hpas_anomalies.dir/iometadata.cpp.o.d"
  "CMakeFiles/hpas_anomalies.dir/membw.cpp.o"
  "CMakeFiles/hpas_anomalies.dir/membw.cpp.o.d"
  "CMakeFiles/hpas_anomalies.dir/memeater.cpp.o"
  "CMakeFiles/hpas_anomalies.dir/memeater.cpp.o.d"
  "CMakeFiles/hpas_anomalies.dir/memleak.cpp.o"
  "CMakeFiles/hpas_anomalies.dir/memleak.cpp.o.d"
  "CMakeFiles/hpas_anomalies.dir/netoccupy.cpp.o"
  "CMakeFiles/hpas_anomalies.dir/netoccupy.cpp.o.d"
  "CMakeFiles/hpas_anomalies.dir/schedule.cpp.o"
  "CMakeFiles/hpas_anomalies.dir/schedule.cpp.o.d"
  "CMakeFiles/hpas_anomalies.dir/suite.cpp.o"
  "CMakeFiles/hpas_anomalies.dir/suite.cpp.o.d"
  "libhpas_anomalies.a"
  "libhpas_anomalies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpas_anomalies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
