# CMake generated Testfile for 
# Source directory: /root/repo/src/anomalies
# Build directory: /root/repo/build/src/anomalies
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
