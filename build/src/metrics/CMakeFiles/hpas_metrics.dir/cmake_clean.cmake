file(REMOVE_RECURSE
  "CMakeFiles/hpas_metrics.dir/collector.cpp.o"
  "CMakeFiles/hpas_metrics.dir/collector.cpp.o.d"
  "CMakeFiles/hpas_metrics.dir/csv.cpp.o"
  "CMakeFiles/hpas_metrics.dir/csv.cpp.o.d"
  "CMakeFiles/hpas_metrics.dir/features.cpp.o"
  "CMakeFiles/hpas_metrics.dir/features.cpp.o.d"
  "CMakeFiles/hpas_metrics.dir/host_samplers.cpp.o"
  "CMakeFiles/hpas_metrics.dir/host_samplers.cpp.o.d"
  "CMakeFiles/hpas_metrics.dir/store.cpp.o"
  "CMakeFiles/hpas_metrics.dir/store.cpp.o.d"
  "CMakeFiles/hpas_metrics.dir/time_series.cpp.o"
  "CMakeFiles/hpas_metrics.dir/time_series.cpp.o.d"
  "libhpas_metrics.a"
  "libhpas_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpas_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
