# Empty dependencies file for hpas_metrics.
# This may be replaced when dependencies are built.
