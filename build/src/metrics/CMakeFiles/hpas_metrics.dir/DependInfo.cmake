
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/collector.cpp" "src/metrics/CMakeFiles/hpas_metrics.dir/collector.cpp.o" "gcc" "src/metrics/CMakeFiles/hpas_metrics.dir/collector.cpp.o.d"
  "/root/repo/src/metrics/csv.cpp" "src/metrics/CMakeFiles/hpas_metrics.dir/csv.cpp.o" "gcc" "src/metrics/CMakeFiles/hpas_metrics.dir/csv.cpp.o.d"
  "/root/repo/src/metrics/features.cpp" "src/metrics/CMakeFiles/hpas_metrics.dir/features.cpp.o" "gcc" "src/metrics/CMakeFiles/hpas_metrics.dir/features.cpp.o.d"
  "/root/repo/src/metrics/host_samplers.cpp" "src/metrics/CMakeFiles/hpas_metrics.dir/host_samplers.cpp.o" "gcc" "src/metrics/CMakeFiles/hpas_metrics.dir/host_samplers.cpp.o.d"
  "/root/repo/src/metrics/store.cpp" "src/metrics/CMakeFiles/hpas_metrics.dir/store.cpp.o" "gcc" "src/metrics/CMakeFiles/hpas_metrics.dir/store.cpp.o.d"
  "/root/repo/src/metrics/time_series.cpp" "src/metrics/CMakeFiles/hpas_metrics.dir/time_series.cpp.o" "gcc" "src/metrics/CMakeFiles/hpas_metrics.dir/time_series.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hpas_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
