file(REMOVE_RECURSE
  "libhpas_metrics.a"
)
