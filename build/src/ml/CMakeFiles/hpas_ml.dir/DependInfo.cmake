
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/adaboost.cpp" "src/ml/CMakeFiles/hpas_ml.dir/adaboost.cpp.o" "gcc" "src/ml/CMakeFiles/hpas_ml.dir/adaboost.cpp.o.d"
  "/root/repo/src/ml/dataset.cpp" "src/ml/CMakeFiles/hpas_ml.dir/dataset.cpp.o" "gcc" "src/ml/CMakeFiles/hpas_ml.dir/dataset.cpp.o.d"
  "/root/repo/src/ml/decision_tree.cpp" "src/ml/CMakeFiles/hpas_ml.dir/decision_tree.cpp.o" "gcc" "src/ml/CMakeFiles/hpas_ml.dir/decision_tree.cpp.o.d"
  "/root/repo/src/ml/diagnosis.cpp" "src/ml/CMakeFiles/hpas_ml.dir/diagnosis.cpp.o" "gcc" "src/ml/CMakeFiles/hpas_ml.dir/diagnosis.cpp.o.d"
  "/root/repo/src/ml/evaluation.cpp" "src/ml/CMakeFiles/hpas_ml.dir/evaluation.cpp.o" "gcc" "src/ml/CMakeFiles/hpas_ml.dir/evaluation.cpp.o.d"
  "/root/repo/src/ml/random_forest.cpp" "src/ml/CMakeFiles/hpas_ml.dir/random_forest.cpp.o" "gcc" "src/ml/CMakeFiles/hpas_ml.dir/random_forest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hpas_common.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/hpas_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/hpas_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/simanom/CMakeFiles/hpas_simanom.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hpas_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
