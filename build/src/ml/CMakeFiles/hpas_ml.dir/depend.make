# Empty dependencies file for hpas_ml.
# This may be replaced when dependencies are built.
