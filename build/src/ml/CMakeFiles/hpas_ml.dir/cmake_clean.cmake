file(REMOVE_RECURSE
  "CMakeFiles/hpas_ml.dir/adaboost.cpp.o"
  "CMakeFiles/hpas_ml.dir/adaboost.cpp.o.d"
  "CMakeFiles/hpas_ml.dir/dataset.cpp.o"
  "CMakeFiles/hpas_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/hpas_ml.dir/decision_tree.cpp.o"
  "CMakeFiles/hpas_ml.dir/decision_tree.cpp.o.d"
  "CMakeFiles/hpas_ml.dir/diagnosis.cpp.o"
  "CMakeFiles/hpas_ml.dir/diagnosis.cpp.o.d"
  "CMakeFiles/hpas_ml.dir/evaluation.cpp.o"
  "CMakeFiles/hpas_ml.dir/evaluation.cpp.o.d"
  "CMakeFiles/hpas_ml.dir/random_forest.cpp.o"
  "CMakeFiles/hpas_ml.dir/random_forest.cpp.o.d"
  "libhpas_ml.a"
  "libhpas_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpas_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
