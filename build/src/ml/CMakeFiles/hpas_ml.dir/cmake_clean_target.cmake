file(REMOVE_RECURSE
  "libhpas_ml.a"
)
