file(REMOVE_RECURSE
  "libhpas_sched.a"
)
