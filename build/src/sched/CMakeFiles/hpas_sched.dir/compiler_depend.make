# Empty compiler generated dependencies file for hpas_sched.
# This may be replaced when dependencies are built.
