file(REMOVE_RECURSE
  "CMakeFiles/hpas_sched.dir/monitor.cpp.o"
  "CMakeFiles/hpas_sched.dir/monitor.cpp.o.d"
  "CMakeFiles/hpas_sched.dir/policies.cpp.o"
  "CMakeFiles/hpas_sched.dir/policies.cpp.o.d"
  "libhpas_sched.a"
  "libhpas_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpas_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
