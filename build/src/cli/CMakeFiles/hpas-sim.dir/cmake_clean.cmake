file(REMOVE_RECURSE
  "../../bin/hpas-sim"
  "../../bin/hpas-sim.pdb"
  "CMakeFiles/hpas-sim.dir/hpas_sim_main.cpp.o"
  "CMakeFiles/hpas-sim.dir/hpas_sim_main.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpas-sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
