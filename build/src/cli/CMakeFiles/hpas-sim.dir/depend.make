# Empty dependencies file for hpas-sim.
# This may be replaced when dependencies are built.
