# Empty compiler generated dependencies file for hpas.
# This may be replaced when dependencies are built.
