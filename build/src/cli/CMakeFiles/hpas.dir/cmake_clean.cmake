file(REMOVE_RECURSE
  "../../bin/hpas"
  "../../bin/hpas.pdb"
  "CMakeFiles/hpas.dir/hpas_main.cpp.o"
  "CMakeFiles/hpas.dir/hpas_main.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
