
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cluster.cpp" "src/sim/CMakeFiles/hpas_sim.dir/cluster.cpp.o" "gcc" "src/sim/CMakeFiles/hpas_sim.dir/cluster.cpp.o.d"
  "/root/repo/src/sim/engine/simulator.cpp" "src/sim/CMakeFiles/hpas_sim.dir/engine/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/hpas_sim.dir/engine/simulator.cpp.o.d"
  "/root/repo/src/sim/maxmin.cpp" "src/sim/CMakeFiles/hpas_sim.dir/maxmin.cpp.o" "gcc" "src/sim/CMakeFiles/hpas_sim.dir/maxmin.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/sim/CMakeFiles/hpas_sim.dir/network.cpp.o" "gcc" "src/sim/CMakeFiles/hpas_sim.dir/network.cpp.o.d"
  "/root/repo/src/sim/node.cpp" "src/sim/CMakeFiles/hpas_sim.dir/node.cpp.o" "gcc" "src/sim/CMakeFiles/hpas_sim.dir/node.cpp.o.d"
  "/root/repo/src/sim/samplers.cpp" "src/sim/CMakeFiles/hpas_sim.dir/samplers.cpp.o" "gcc" "src/sim/CMakeFiles/hpas_sim.dir/samplers.cpp.o.d"
  "/root/repo/src/sim/storage.cpp" "src/sim/CMakeFiles/hpas_sim.dir/storage.cpp.o" "gcc" "src/sim/CMakeFiles/hpas_sim.dir/storage.cpp.o.d"
  "/root/repo/src/sim/task.cpp" "src/sim/CMakeFiles/hpas_sim.dir/task.cpp.o" "gcc" "src/sim/CMakeFiles/hpas_sim.dir/task.cpp.o.d"
  "/root/repo/src/sim/world.cpp" "src/sim/CMakeFiles/hpas_sim.dir/world.cpp.o" "gcc" "src/sim/CMakeFiles/hpas_sim.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hpas_common.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/hpas_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
