file(REMOVE_RECURSE
  "libhpas_sim.a"
)
