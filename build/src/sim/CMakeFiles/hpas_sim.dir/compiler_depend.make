# Empty compiler generated dependencies file for hpas_sim.
# This may be replaced when dependencies are built.
