file(REMOVE_RECURSE
  "CMakeFiles/hpas_sim.dir/cluster.cpp.o"
  "CMakeFiles/hpas_sim.dir/cluster.cpp.o.d"
  "CMakeFiles/hpas_sim.dir/engine/simulator.cpp.o"
  "CMakeFiles/hpas_sim.dir/engine/simulator.cpp.o.d"
  "CMakeFiles/hpas_sim.dir/maxmin.cpp.o"
  "CMakeFiles/hpas_sim.dir/maxmin.cpp.o.d"
  "CMakeFiles/hpas_sim.dir/network.cpp.o"
  "CMakeFiles/hpas_sim.dir/network.cpp.o.d"
  "CMakeFiles/hpas_sim.dir/node.cpp.o"
  "CMakeFiles/hpas_sim.dir/node.cpp.o.d"
  "CMakeFiles/hpas_sim.dir/samplers.cpp.o"
  "CMakeFiles/hpas_sim.dir/samplers.cpp.o.d"
  "CMakeFiles/hpas_sim.dir/storage.cpp.o"
  "CMakeFiles/hpas_sim.dir/storage.cpp.o.d"
  "CMakeFiles/hpas_sim.dir/task.cpp.o"
  "CMakeFiles/hpas_sim.dir/task.cpp.o.d"
  "CMakeFiles/hpas_sim.dir/world.cpp.o"
  "CMakeFiles/hpas_sim.dir/world.cpp.o.d"
  "libhpas_sim.a"
  "libhpas_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpas_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
