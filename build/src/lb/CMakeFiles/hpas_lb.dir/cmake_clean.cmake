file(REMOVE_RECURSE
  "CMakeFiles/hpas_lb.dir/balancers.cpp.o"
  "CMakeFiles/hpas_lb.dir/balancers.cpp.o.d"
  "CMakeFiles/hpas_lb.dir/stencil.cpp.o"
  "CMakeFiles/hpas_lb.dir/stencil.cpp.o.d"
  "libhpas_lb.a"
  "libhpas_lb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpas_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
