file(REMOVE_RECURSE
  "libhpas_lb.a"
)
