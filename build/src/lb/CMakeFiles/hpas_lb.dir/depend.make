# Empty dependencies file for hpas_lb.
# This may be replaced when dependencies are built.
