file(REMOVE_RECURSE
  "CMakeFiles/hpas_apps.dir/bsp_app.cpp.o"
  "CMakeFiles/hpas_apps.dir/bsp_app.cpp.o.d"
  "CMakeFiles/hpas_apps.dir/ior.cpp.o"
  "CMakeFiles/hpas_apps.dir/ior.cpp.o.d"
  "CMakeFiles/hpas_apps.dir/osu_bw.cpp.o"
  "CMakeFiles/hpas_apps.dir/osu_bw.cpp.o.d"
  "CMakeFiles/hpas_apps.dir/profiles.cpp.o"
  "CMakeFiles/hpas_apps.dir/profiles.cpp.o.d"
  "CMakeFiles/hpas_apps.dir/stream.cpp.o"
  "CMakeFiles/hpas_apps.dir/stream.cpp.o.d"
  "libhpas_apps.a"
  "libhpas_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpas_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
