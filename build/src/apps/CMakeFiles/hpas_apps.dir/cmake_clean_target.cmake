file(REMOVE_RECURSE
  "libhpas_apps.a"
)
