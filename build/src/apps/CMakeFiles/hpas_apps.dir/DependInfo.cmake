
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/bsp_app.cpp" "src/apps/CMakeFiles/hpas_apps.dir/bsp_app.cpp.o" "gcc" "src/apps/CMakeFiles/hpas_apps.dir/bsp_app.cpp.o.d"
  "/root/repo/src/apps/ior.cpp" "src/apps/CMakeFiles/hpas_apps.dir/ior.cpp.o" "gcc" "src/apps/CMakeFiles/hpas_apps.dir/ior.cpp.o.d"
  "/root/repo/src/apps/osu_bw.cpp" "src/apps/CMakeFiles/hpas_apps.dir/osu_bw.cpp.o" "gcc" "src/apps/CMakeFiles/hpas_apps.dir/osu_bw.cpp.o.d"
  "/root/repo/src/apps/profiles.cpp" "src/apps/CMakeFiles/hpas_apps.dir/profiles.cpp.o" "gcc" "src/apps/CMakeFiles/hpas_apps.dir/profiles.cpp.o.d"
  "/root/repo/src/apps/stream.cpp" "src/apps/CMakeFiles/hpas_apps.dir/stream.cpp.o" "gcc" "src/apps/CMakeFiles/hpas_apps.dir/stream.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hpas_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/hpas_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hpas_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
