# Empty compiler generated dependencies file for hpas_apps.
# This may be replaced when dependencies are built.
