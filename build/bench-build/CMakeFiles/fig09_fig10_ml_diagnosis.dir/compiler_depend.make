# Empty compiler generated dependencies file for fig09_fig10_ml_diagnosis.
# This may be replaced when dependencies are built.
