file(REMOVE_RECURSE
  "../bench/fig09_fig10_ml_diagnosis"
  "../bench/fig09_fig10_ml_diagnosis.pdb"
  "CMakeFiles/fig09_fig10_ml_diagnosis.dir/fig09_fig10_ml_diagnosis.cpp.o"
  "CMakeFiles/fig09_fig10_ml_diagnosis.dir/fig09_fig10_ml_diagnosis.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_fig10_ml_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
