file(REMOVE_RECURSE
  "../bench/ablation_diagnosis"
  "../bench/ablation_diagnosis.pdb"
  "CMakeFiles/ablation_diagnosis.dir/ablation_diagnosis.cpp.o"
  "CMakeFiles/ablation_diagnosis.dir/ablation_diagnosis.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
