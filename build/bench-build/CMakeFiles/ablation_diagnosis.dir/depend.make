# Empty dependencies file for ablation_diagnosis.
# This may be replaced when dependencies are built.
