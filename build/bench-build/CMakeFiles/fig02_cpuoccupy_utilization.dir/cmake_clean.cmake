file(REMOVE_RECURSE
  "../bench/fig02_cpuoccupy_utilization"
  "../bench/fig02_cpuoccupy_utilization.pdb"
  "CMakeFiles/fig02_cpuoccupy_utilization.dir/fig02_cpuoccupy_utilization.cpp.o"
  "CMakeFiles/fig02_cpuoccupy_utilization.dir/fig02_cpuoccupy_utilization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_cpuoccupy_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
