# Empty dependencies file for fig02_cpuoccupy_utilization.
# This may be replaced when dependencies are built.
