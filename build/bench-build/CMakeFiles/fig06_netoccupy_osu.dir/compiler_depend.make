# Empty compiler generated dependencies file for fig06_netoccupy_osu.
# This may be replaced when dependencies are built.
