file(REMOVE_RECURSE
  "../bench/fig06_netoccupy_osu"
  "../bench/fig06_netoccupy_osu.pdb"
  "CMakeFiles/fig06_netoccupy_osu.dir/fig06_netoccupy_osu.cpp.o"
  "CMakeFiles/fig06_netoccupy_osu.dir/fig06_netoccupy_osu.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_netoccupy_osu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
