file(REMOVE_RECURSE
  "../bench/table2_app_characterization"
  "../bench/table2_app_characterization.pdb"
  "CMakeFiles/table2_app_characterization.dir/table2_app_characterization.cpp.o"
  "CMakeFiles/table2_app_characterization.dir/table2_app_characterization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_app_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
