file(REMOVE_RECURSE
  "../bench/microbench_kernels"
  "../bench/microbench_kernels.pdb"
  "CMakeFiles/microbench_kernels.dir/microbench_kernels.cpp.o"
  "CMakeFiles/microbench_kernels.dir/microbench_kernels.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
