file(REMOVE_RECURSE
  "../bench/ablation_smt"
  "../bench/ablation_smt.pdb"
  "CMakeFiles/ablation_smt.dir/ablation_smt.cpp.o"
  "CMakeFiles/ablation_smt.dir/ablation_smt.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_smt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
