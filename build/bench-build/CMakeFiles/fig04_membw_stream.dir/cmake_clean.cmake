file(REMOVE_RECURSE
  "../bench/fig04_membw_stream"
  "../bench/fig04_membw_stream.pdb"
  "CMakeFiles/fig04_membw_stream.dir/fig04_membw_stream.cpp.o"
  "CMakeFiles/fig04_membw_stream.dir/fig04_membw_stream.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_membw_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
