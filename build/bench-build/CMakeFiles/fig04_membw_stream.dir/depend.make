# Empty dependencies file for fig04_membw_stream.
# This may be replaced when dependencies are built.
