# Empty dependencies file for fig12_allocation_policies.
# This may be replaced when dependencies are built.
