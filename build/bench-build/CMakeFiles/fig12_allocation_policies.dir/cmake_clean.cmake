file(REMOVE_RECURSE
  "../bench/fig12_allocation_policies"
  "../bench/fig12_allocation_policies.pdb"
  "CMakeFiles/fig12_allocation_policies.dir/fig12_allocation_policies.cpp.o"
  "CMakeFiles/fig12_allocation_policies.dir/fig12_allocation_policies.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_allocation_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
