file(REMOVE_RECURSE
  "../bench/fig13_load_balancer"
  "../bench/fig13_load_balancer.pdb"
  "CMakeFiles/fig13_load_balancer.dir/fig13_load_balancer.cpp.o"
  "CMakeFiles/fig13_load_balancer.dir/fig13_load_balancer.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_load_balancer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
