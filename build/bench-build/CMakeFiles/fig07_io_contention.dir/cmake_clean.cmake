file(REMOVE_RECURSE
  "../bench/fig07_io_contention"
  "../bench/fig07_io_contention.pdb"
  "CMakeFiles/fig07_io_contention.dir/fig07_io_contention.cpp.o"
  "CMakeFiles/fig07_io_contention.dir/fig07_io_contention.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_io_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
