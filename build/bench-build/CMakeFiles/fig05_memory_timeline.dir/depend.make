# Empty dependencies file for fig05_memory_timeline.
# This may be replaced when dependencies are built.
