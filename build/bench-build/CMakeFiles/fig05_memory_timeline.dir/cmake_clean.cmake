file(REMOVE_RECURSE
  "../bench/fig05_memory_timeline"
  "../bench/fig05_memory_timeline.pdb"
  "CMakeFiles/fig05_memory_timeline.dir/fig05_memory_timeline.cpp.o"
  "CMakeFiles/fig05_memory_timeline.dir/fig05_memory_timeline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_memory_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
