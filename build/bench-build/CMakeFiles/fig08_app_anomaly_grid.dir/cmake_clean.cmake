file(REMOVE_RECURSE
  "../bench/fig08_app_anomaly_grid"
  "../bench/fig08_app_anomaly_grid.pdb"
  "CMakeFiles/fig08_app_anomaly_grid.dir/fig08_app_anomaly_grid.cpp.o"
  "CMakeFiles/fig08_app_anomaly_grid.dir/fig08_app_anomaly_grid.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_app_anomaly_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
