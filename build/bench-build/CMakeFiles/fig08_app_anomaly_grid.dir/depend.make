# Empty dependencies file for fig08_app_anomaly_grid.
# This may be replaced when dependencies are built.
