file(REMOVE_RECURSE
  "../bench/ablation_wbas_weighting"
  "../bench/ablation_wbas_weighting.pdb"
  "CMakeFiles/ablation_wbas_weighting.dir/ablation_wbas_weighting.cpp.o"
  "CMakeFiles/ablation_wbas_weighting.dir/ablation_wbas_weighting.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wbas_weighting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
