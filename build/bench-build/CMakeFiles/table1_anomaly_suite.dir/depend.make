# Empty dependencies file for table1_anomaly_suite.
# This may be replaced when dependencies are built.
