file(REMOVE_RECURSE
  "../bench/table1_anomaly_suite"
  "../bench/table1_anomaly_suite.pdb"
  "CMakeFiles/table1_anomaly_suite.dir/table1_anomaly_suite.cpp.o"
  "CMakeFiles/table1_anomaly_suite.dir/table1_anomaly_suite.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_anomaly_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
