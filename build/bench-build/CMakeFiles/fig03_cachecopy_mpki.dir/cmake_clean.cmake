file(REMOVE_RECURSE
  "../bench/fig03_cachecopy_mpki"
  "../bench/fig03_cachecopy_mpki.pdb"
  "CMakeFiles/fig03_cachecopy_mpki.dir/fig03_cachecopy_mpki.cpp.o"
  "CMakeFiles/fig03_cachecopy_mpki.dir/fig03_cachecopy_mpki.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_cachecopy_mpki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
