# Empty dependencies file for fig03_cachecopy_mpki.
# This may be replaced when dependencies are built.
