// Tests for the node resource model: CPU shares, cache pressure, MPKI
// chain, memory bandwidth fairness + congestion, and capacity accounting.
#include "sim/node.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/error.hpp"

namespace hpas::sim {
namespace {

Phase forever_compute() { return Phase::compute(1e15); }

std::unique_ptr<Task> make_compute_task(const std::string& name, int node,
                                        int core, TaskProfile profile) {
  auto task = std::make_unique<Task>(name, node, core, profile,
                                     [](Task&) { return Phase::done(); });
  task->set_phase(forever_compute());
  return task;
}

std::unique_ptr<Task> make_stream_task(const std::string& name, int node,
                                       int core, double bw_demand) {
  TaskProfile profile;
  profile.stream_bw_demand = bw_demand;
  profile.working_set_bytes = 64 * 1024;
  auto task = std::make_unique<Task>(name, node, core, profile,
                                     [](Task&) { return Phase::done(); });
  task->set_phase(Phase::stream(1e15));
  return task;
}

TaskProfile simple_profile(double cpu_demand = 1.0) {
  TaskProfile p;
  p.ips_peak = 2.0e9;
  p.cpu_demand = cpu_demand;
  p.working_set_bytes = 1024 * 1024;
  p.m1_base = 10; p.m1_max = 40;
  p.m2_base = 4; p.m2_max = 16;
  p.m3_base = 1; p.m3_max = 8;
  return p;
}

TEST(NodeCpu, SoloTaskGetsItsDemand) {
  Node node(0, NodeConfig{});
  auto task = make_compute_task("t", 0, 0, simple_profile(0.4));
  node.compute_rates({task.get()});
  EXPECT_NEAR(task->rates().cpu_share, 0.4, 1e-12);
  EXPECT_GT(task->rates().progress, 0.0);
}

TEST(NodeCpu, SharedCoreSplitsProportionally) {
  Node node(0, NodeConfig{});
  auto a = make_compute_task("a", 0, 0, simple_profile(1.0));
  auto b = make_compute_task("b", 0, 0, simple_profile(1.0));
  node.compute_rates({a.get(), b.get()});
  EXPECT_NEAR(a->rates().cpu_share, 0.5, 1e-12);
  EXPECT_NEAR(b->rates().cpu_share, 0.5, 1e-12);
}

TEST(NodeCpu, SmtAggregateThroughputSoftensSharing) {
  NodeConfig config;
  config.smt_aggregate_throughput = 1.3;
  Node node(0, config);
  auto a = make_compute_task("a", 0, 0, simple_profile(1.0));
  auto b = make_compute_task("b", 0, 0, simple_profile(1.0));
  node.compute_rates({a.get(), b.get()});
  EXPECT_NEAR(a->rates().cpu_share, 0.65, 1e-12);
  EXPECT_NEAR(b->rates().cpu_share, 0.65, 1e-12);
}

TEST(NodeCpu, SmtCapacityNeverExceedsDemand) {
  NodeConfig config;
  config.smt_aggregate_throughput = 1.3;
  Node node(0, config);
  // Total demand 1.1 < 1.3: everyone fully served.
  auto a = make_compute_task("a", 0, 0, simple_profile(1.0));
  auto b = make_compute_task("b", 0, 0, simple_profile(0.1));
  node.compute_rates({a.get(), b.get()});
  EXPECT_NEAR(a->rates().cpu_share, 1.0, 1e-12);
  EXPECT_NEAR(b->rates().cpu_share, 0.1, 1e-12);
}

TEST(NodeCpu, DifferentCoresDoNotContend) {
  Node node(0, NodeConfig{});
  auto a = make_compute_task("a", 0, 0, simple_profile(1.0));
  auto b = make_compute_task("b", 0, 1, simple_profile(1.0));
  node.compute_rates({a.get(), b.get()});
  EXPECT_NEAR(a->rates().cpu_share, 1.0, 1e-12);
  EXPECT_NEAR(b->rates().cpu_share, 1.0, 1e-12);
}

TEST(NodeCpu, TasksOnOtherNodesIgnored) {
  Node node(0, NodeConfig{});
  auto mine = make_compute_task("a", 0, 0, simple_profile(1.0));
  auto other = make_compute_task("b", 1, 0, simple_profile(1.0));
  node.compute_rates({mine.get(), other.get()});
  EXPECT_NEAR(mine->rates().cpu_share, 1.0, 1e-12);
}

TEST(NodeCache, SharerRaisesVictimMpki) {
  Node node(0, NodeConfig{});
  TaskProfile victim_profile = simple_profile();
  victim_profile.working_set_bytes = 20.0 * 1024 * 1024;

  auto solo = make_compute_task("solo", 0, 0, victim_profile);
  node.compute_rates({solo.get()});
  const double solo_mpki =
      solo->rates().l3_miss_rate / solo->rates().instr_rate * 1000.0;

  // An L3-sized neighbor on another core evicts the victim's lines.
  TaskProfile hog_profile = simple_profile();
  hog_profile.working_set_bytes = 40.0 * 1024 * 1024;
  auto victim = make_compute_task("victim", 0, 0, victim_profile);
  auto hog = make_compute_task("hog", 0, 1, hog_profile);
  node.compute_rates({victim.get(), hog.get()});
  const double contended_mpki =
      victim->rates().l3_miss_rate / victim->rates().instr_rate * 1000.0;

  EXPECT_GT(contended_mpki, solo_mpki * 1.5);
}

TEST(NodeCache, PrivateLevelsOnlySharedWithinCore) {
  Node node(0, NodeConfig{});
  TaskProfile p = simple_profile();
  p.working_set_bytes = 32.0 * 1024;  // L1-sized

  // Same core (hyperthread scenario) -> L1 contention -> more L1 misses.
  auto a1 = make_compute_task("a", 0, 0, p);
  auto b1 = make_compute_task("b", 0, 0, p);
  node.compute_rates({a1.get(), b1.get()});
  const double same_core_m1 =
      a1->rates().l1_miss_rate / a1->rates().instr_rate * 1000.0;

  auto a2 = make_compute_task("a", 0, 0, p);
  auto b2 = make_compute_task("b", 0, 1, p);
  node.compute_rates({a2.get(), b2.get()});
  const double diff_core_m1 =
      a2->rates().l1_miss_rate / a2->rates().instr_rate * 1000.0;

  EXPECT_GT(same_core_m1, diff_core_m1 * 1.5);
}

TEST(NodeMemBw, StreamTaskCappedByCoreLimit) {
  NodeConfig config;
  config.core_bw_limit = 10.0e9;
  config.mem_bw_peak = 100.0e9;
  Node node(0, config);
  auto stream = make_stream_task("s", 0, 0, 1e12);
  node.compute_rates({stream.get()});
  EXPECT_NEAR(stream->rates().progress, 10.0e9, 1.0);
}

TEST(NodeMemBw, StreamsShareNodePeakFairly) {
  NodeConfig config;
  config.core_bw_limit = 10.0e9;
  config.mem_bw_peak = 12.0e9;
  Node node(0, config);
  auto s1 = make_stream_task("s1", 0, 0, 1e12);
  auto s2 = make_stream_task("s2", 0, 1, 1e12);
  node.compute_rates({s1.get(), s2.get()});
  EXPECT_NEAR(s1->rates().progress, 6.0e9, 1.0);
  EXPECT_NEAR(s2->rates().progress, 6.0e9, 1.0);
}

TEST(NodeMemBw, CongestionSlowsMissBoundCompute) {
  NodeConfig config;
  Node node(0, config);
  TaskProfile p = simple_profile();
  // Genuinely miss-bound: the whole chain must carry the traffic (m3 is
  // capped at m2, which is capped at m1).
  p.m1_base = 40;
  p.m2_base = 20;
  p.m3_base = 15;
  auto solo = make_compute_task("solo", 0, 0, p);
  node.compute_rates({solo.get()});
  const double solo_rate = solo->rates().progress;

  // A streaming hog on another core saturates the memory controller.
  auto victim = make_compute_task("victim", 0, 0, p);
  auto hog = make_stream_task("hog", 0, 1, 1e12);
  node.compute_rates({victim.get(), hog.get()});
  EXPECT_LT(victim->rates().progress, solo_rate * 0.9);
}

TEST(NodeMemBw, CongestionSparesCpuBoundCompute) {
  NodeConfig config;
  Node node(0, config);
  TaskProfile p = simple_profile();
  p.m3_base = 0.05;  // nearly no DRAM traffic
  p.m3_max = 0.2;
  auto solo = make_compute_task("solo", 0, 0, p);
  node.compute_rates({solo.get()});
  const double solo_rate = solo->rates().progress;

  auto victim = make_compute_task("victim", 0, 0, p);
  auto hog = make_stream_task("hog", 0, 1, 1e12);
  node.compute_rates({victim.get(), hog.get()});
  EXPECT_GT(victim->rates().progress, solo_rate * 0.95);
}

TEST(NodeMemory, CapacityAccountingAndRefusal) {
  NodeConfig config;
  config.memory_bytes = 10.0 * 1024 * 1024 * 1024;
  config.os_base_memory = 2.0 * 1024 * 1024 * 1024;
  Node node(0, config);
  EXPECT_NEAR(node.memory_free(), 8.0 * 1024 * 1024 * 1024, 1.0);
  EXPECT_TRUE(node.adjust_memory(4.0 * 1024 * 1024 * 1024));
  EXPECT_NEAR(node.memory_free(), 4.0 * 1024 * 1024 * 1024, 1.0);
  EXPECT_FALSE(node.adjust_memory(5.0 * 1024 * 1024 * 1024));  // over
  EXPECT_NEAR(node.memory_free(), 4.0 * 1024 * 1024 * 1024, 1.0);
  EXPECT_TRUE(node.adjust_memory(-4.0 * 1024 * 1024 * 1024));
  EXPECT_NEAR(node.memory_free(), 8.0 * 1024 * 1024 * 1024, 1.0);
}

TEST(NodeMemory, PageFaultCounterTracksGrowth) {
  Node node(0, NodeConfig{});
  node.adjust_memory(8192.0);
  EXPECT_NEAR(node.counters().pages_faulted, 2.0, 1e-9);
  node.adjust_memory(-8192.0);  // frees do not fault
  EXPECT_NEAR(node.counters().pages_faulted, 2.0, 1e-9);
}

TEST(NodeUtilization, ReflectsCpuShares) {
  NodeConfig config;
  config.cores = 4;
  Node node(0, config);
  auto a = make_compute_task("a", 0, 0, simple_profile(1.0));
  auto b = make_compute_task("b", 0, 1, simple_profile(0.5));
  std::vector<Task*> tasks = {a.get(), b.get()};
  node.compute_rates(tasks);
  EXPECT_NEAR(node.cpu_utilization(tasks), 1.5 / 4.0, 1e-9);
}

TEST(Node, InvalidConfigRejected) {
  NodeConfig config;
  config.cores = 0;
  EXPECT_THROW(Node(0, config), InvariantError);
}

}  // namespace
}  // namespace hpas::sim
