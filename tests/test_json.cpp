// Tests for the minimal JSON value type: parse/serialize round trips,
// deterministic (insertion-ordered, byte-stable) output, and the error
// positions the grid loader relies on for usable messages.
#include "common/json.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace hpas {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(Json::parse("3.25").as_number(), 3.25);
  EXPECT_DOUBLE_EQ(Json::parse("-17").as_number(), -17.0);
  EXPECT_DOUBLE_EQ(Json::parse("6.02e23").as_number(), 6.02e23);
  EXPECT_EQ(Json::parse("\"hi\\n\\\"there\\\"\"").as_string(),
            "hi\n\"there\"");
  EXPECT_EQ(Json::parse("\"\\u0041\\u00e9\"").as_string(), "A\xc3\xa9");
}

TEST(JsonParse, NestedContainers) {
  const Json v = Json::parse(R"({"a": [1, 2, {"b": true}], "c": "x"})");
  ASSERT_TRUE(v.is_object());
  const auto& a = v.find("a")->as_array();
  ASSERT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(a[1].as_number(), 2.0);
  EXPECT_TRUE(a[2].find("b")->as_bool());
  EXPECT_EQ(v.string_or("c", ""), "x");
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_THROW(Json::parse(""), ConfigError);
  EXPECT_THROW(Json::parse("{"), ConfigError);
  EXPECT_THROW(Json::parse("[1,]"), ConfigError);
  EXPECT_THROW(Json::parse("{\"a\" 1}"), ConfigError);
  EXPECT_THROW(Json::parse("\"unterminated"), ConfigError);
  EXPECT_THROW(Json::parse("nul"), ConfigError);
  EXPECT_THROW(Json::parse("1 2"), ConfigError);  // trailing garbage
}

TEST(JsonParse, ErrorsCarryPosition) {
  try {
    Json::parse("{\n  \"a\": !\n}");
    FAIL();
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(JsonDump, ObjectMembersKeepInsertionOrder) {
  Json v = Json::object();
  v.set("zebra", 1);
  v.set("alpha", 2);
  v.set("middle", 3);
  EXPECT_EQ(v.dump(), R"({"zebra":1,"alpha":2,"middle":3})");
  v.set("alpha", 9);  // replace keeps the original position
  EXPECT_EQ(v.dump(), R"({"zebra":1,"alpha":9,"middle":3})");
}

TEST(JsonDump, NumbersAreByteStable) {
  // Integers print without a decimal point; non-integers use the
  // shortest round-trip form. This rule is shared with the CSV writer.
  EXPECT_EQ(json_number_to_string(0.0), "0");
  EXPECT_EQ(json_number_to_string(-3.0), "-3");
  EXPECT_EQ(json_number_to_string(0.5), "0.5");
  EXPECT_EQ(json_number_to_string(1.0 / 3.0), "0.3333333333333333");
  EXPECT_EQ(json_number_to_string(1e21), "1e+21");
  // Round trip: parse(dump(x)) == x bit-for-bit.
  const double tricky = 0.1 + 0.2;
  EXPECT_EQ(Json::parse(json_number_to_string(tricky)).as_number(), tricky);
}

TEST(JsonDump, RoundTripsThroughParse) {
  const std::string text =
      R"({"name":"grid","n":3,"xs":[0.5,1,2.25],"flag":true,"none":null})";
  EXPECT_EQ(Json::parse(text).dump(), text);
}

TEST(JsonDump, PrettyPrintIsStable) {
  Json v = Json::object();
  v.set("a", 1);
  Json arr = Json::array();
  arr.push_back(2);
  v.set("b", std::move(arr));
  EXPECT_EQ(v.dump(2), "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}\n");
}

TEST(JsonDump, EscapesControlCharacters) {
  EXPECT_EQ(Json(std::string("a\tb\x01 c")).dump(), R"("a\tb\u0001 c")");
}

TEST(JsonAccessors, ThrowOnTypeMismatch) {
  const Json v = Json::parse(R"({"n": 1})");
  EXPECT_THROW(v.find("n")->as_string(), ConfigError);
  EXPECT_THROW(v.as_array(), ConfigError);
  EXPECT_THROW(v.string_or("n", "x"), ConfigError);  // exists, wrong type
}

}  // namespace
}  // namespace hpas
