// Large-topology smoke for the sharded executor: the 1k-node dragonfly
// preset must build, run sharded, and keep every determinism contract --
// trace bytes invariant under shard count, live-only pending_events()
// accounting on the big event queue, and journaled sweeps that resume
// byte-identically with --sim-shards engaged.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "runner/runner.hpp"
#include "sim/cluster.hpp"
#include "sim/world.hpp"
#include "trace/export.hpp"
#include "trace/tracer.hpp"

namespace {

using hpas::runner::run_sweep;
using hpas::runner::ScenarioSpec;
using hpas::runner::SweepGrid;
using hpas::runner::SweepOptions;
using hpas::runner::SweepResult;
using hpas::runner::write_outputs;

/// Sparse workload on the 1k-node dragonfly: compute/message cyclers on
/// every 16th node (64 tasks), peers a half-machine away so flows cross
/// groups and shard boundaries. Sparse keeps the smoke inside the ctest
/// budget; the topology, not the task count, is what scales here.
std::string dragonfly_trace(int shards, double duration) {
  auto world = hpas::sim::make_dragonfly_world();
  EXPECT_EQ(world->num_nodes(), 1024);
  world->set_shards(shards);
  hpas::trace::TraceCapture capture;
  world->attach_tracer(&capture.tracer());
  const int n = world->num_nodes();
  for (int id = 0; id < n; id += 16) {
    const int peer = (id + n / 2) % n;
    world->spawn_task("t" + std::to_string(id), id, 0,
                      hpas::sim::TaskProfile{}, hpas::sim::Phase::compute(0.5e9),
                      [peer](hpas::sim::Task& t) {
                        return t.phase().kind == hpas::sim::PhaseKind::kCompute
                                   ? hpas::sim::Phase::message(peer, 0.1e9)
                                   : hpas::sim::Phase::compute(0.5e9);
                      });
  }
  world->run_until(duration);
  std::ostringstream out(std::ios::binary);
  hpas::trace::write_binary(out, capture.take());
  return out.str();
}

TEST(ShardTopology, DragonflyThousandNodeTraceIsShardCountInvariant) {
  const std::string serial = dragonfly_trace(1, 3.0);
  ASSERT_FALSE(serial.empty());
  for (const int shards : {2, 4, 8}) {
    EXPECT_EQ(dragonfly_trace(shards, 3.0), serial) << "shards=" << shards;
  }
}

TEST(ShardTopology, PendingEventsCountsLiveOnlyOnLargeQueue) {
  auto world = hpas::sim::make_dragonfly_world();
  world->set_shards(4);
  hpas::sim::Simulator& sim = world->simulator();
  const std::size_t before = sim.pending_events();

  std::vector<hpas::sim::EventHandle> handles;
  for (int i = 0; i < 512; ++i)
    handles.push_back(sim.schedule_at(100.0 + i, [] {}));
  EXPECT_EQ(sim.pending_events(), before + 512);

  // Cancel a slice: live count drops immediately, the corpses stay
  // queued as tombstones (we are under the compaction floor).
  for (std::size_t i = 0; i < handles.size(); i += 2) sim.cancel(handles[i]);
  EXPECT_EQ(sim.pending_events(), before + 256);
  EXPECT_EQ(sim.queued_tombstones(), 256u);
  EXPECT_LE(sim.queued_tombstones(), hpas::sim::Simulator::compaction_floor());

  // Firing the survivors drains live events but never counts tombstones.
  world->run_until(100.0 + 512);
  EXPECT_EQ(sim.pending_events(), before);
}

// --- sharded journal / resume -----------------------------------------

std::map<std::string, std::string> dir_contents(
    const std::filesystem::path& dir) {
  std::map<std::string, std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name == "sweep.journal") continue;  // wall times: not comparable
    std::ifstream in(entry.path(), std::ios::binary);
    files[name] = {std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>()};
  }
  return files;
}

SweepGrid topology_grid() {
  SweepGrid grid;
  grid.name = "shard-topology";
  int index = 0;
  for (const char* system : {"voltrino", "voltrino", "dragonfly1k"}) {
    ScenarioSpec spec;
    spec.name = "st" + std::to_string(index);
    spec.system = system;
    spec.app = "none";
    spec.anomaly = index == 1 ? "membw" : "none";
    spec.duration_s = 2.0;
    spec.sample_period_s = 1.0;
    spec.seed = 7000 + static_cast<std::uint64_t>(index);
    grid.scenarios.push_back(spec);
    ++index;
  }
  return grid;
}

TEST(ShardTopology, ShardedJournaledSweepResumesByteIdentical) {
  const std::filesystem::path base =
      std::filesystem::temp_directory_path() / "hpas-shard-topology";
  std::filesystem::remove_all(base);
  std::filesystem::create_directories(base);
  const SweepGrid grid = topology_grid();

  // Reference: serial engine, uninterrupted.
  SweepOptions serial;
  serial.threads = 1;
  serial.capture_traces = true;
  serial.journal_path = (base / "serial" / "sweep.journal").string();
  const SweepResult serial_run = run_sweep(grid, serial);
  ASSERT_TRUE(serial_run.ok()) << serial_run.first_error();
  write_outputs(serial_run, (base / "serial").string());

  // Sharded engine, uninterrupted: same bytes as serial.
  SweepOptions sharded = serial;
  sharded.sim_shards = 4;
  sharded.journal_path = (base / "sharded" / "sweep.journal").string();
  const SweepResult sharded_run = run_sweep(grid, sharded);
  ASSERT_TRUE(sharded_run.ok()) << sharded_run.first_error();
  write_outputs(sharded_run, (base / "sharded").string());

  // "Crash" after the first scenario, then resume with --sim-shards 4.
  SweepGrid prefix = grid;
  prefix.scenarios.resize(1);
  SweepOptions crashed = sharded;
  crashed.journal_path = (base / "resumed" / "sweep.journal").string();
  ASSERT_TRUE(run_sweep(prefix, crashed).ok());
  SweepOptions resume = crashed;
  resume.resume = true;
  const SweepResult resumed_run = run_sweep(grid, resume);
  ASSERT_TRUE(resumed_run.ok()) << resumed_run.first_error();
  EXPECT_EQ(resumed_run.resumed, 1u);
  write_outputs(resumed_run, (base / "resumed").string());

  const auto want = dir_contents(base / "serial");
  ASSERT_GT(want.size(), 3u);
  for (const auto* leaf : {"sharded", "resumed"}) {
    const auto got = dir_contents(base / leaf);
    ASSERT_EQ(got.size(), want.size()) << leaf;
    for (const auto& [name, bytes] : want) {
      const auto it = got.find(name);
      ASSERT_NE(it, got.end()) << leaf << "/" << name;
      EXPECT_EQ(it->second, bytes) << leaf << "/" << name;
    }
  }
  std::filesystem::remove_all(base);
}

}  // namespace
