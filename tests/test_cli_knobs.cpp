// CLI coverage for every Table-1 knob of all eight generators.
//
// For each anomaly: a valid parse that sets every knob (long form and the
// short aliases the paper's usage examples rely on), plus rejection of
// out-of-range or malformed values. Two failure layers are asserted
// separately: malformed *input text* fails in the parse helpers with
// ConfigError; well-formed text whose value violates a generator
// precondition fails in the constructor's require() with InvariantError.
#include "anomalies/suite.hpp"

#include <gtest/gtest.h>

#include "anomalies/cpuoccupy.hpp"

#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace hpas::anomalies {
namespace {

std::unique_ptr<Anomaly> build(const std::string& name,
                               const std::vector<std::string>& argv) {
  const auto parser = make_anomaly_parser(name);
  return make_anomaly(name, parser.parse(argv));
}

// ---- cpuoccupy: utilization%, period + common knobs -------------------

TEST(CpuOccupyKnobs, AllKnobsParse) {
  const auto a = build("cpuoccupy", {"--utilization", "80", "--period", "2s",
                                     "--duration", "30s", "--start-delay",
                                     "5s", "--seed", "7", "--pin", "0"});
  EXPECT_EQ(a->name(), "cpuoccupy");
  EXPECT_DOUBLE_EQ(a->common_options().duration_s, 30.0);
  EXPECT_DOUBLE_EQ(a->common_options().start_delay_s, 5.0);
  EXPECT_EQ(a->common_options().seed, 7u);
  EXPECT_EQ(a->common_options().pin_cpu, 0);
}

TEST(CpuOccupyKnobs, ShortAliasesAndPercentSuffix) {
  EXPECT_NE(build("cpuoccupy", {"-u", "65%", "-p", "500ms", "-d", "1m"}),
            nullptr);
  EXPECT_NE(build("cpuoccupy", {"-u", "0"}), nullptr);    // boundary: idle
  EXPECT_NE(build("cpuoccupy", {"-u", "100"}), nullptr);  // boundary: full
}

TEST(CpuOccupyKnobs, RejectsOutOfRange) {
  // Malformed / out-of-range text dies in parse_percent (ConfigError)...
  EXPECT_THROW(build("cpuoccupy", {"-u", "150"}), ConfigError);
  EXPECT_THROW(build("cpuoccupy", {"-u", "-5"}), ConfigError);
  EXPECT_THROW(build("cpuoccupy", {"-u", "eighty"}), ConfigError);
  EXPECT_THROW(build("cpuoccupy", {"-d", "10parsecs"}), ConfigError);
  // ...while a syntactically fine but impossible period dies in the
  // constructor precondition (InvariantError).
  EXPECT_THROW(build("cpuoccupy", {"-p", "0s"}), InvariantError);
}

// ---- cachecopy: cache level, multiplier, rate --------------------------

TEST(CacheCopyKnobs, AllKnobsParse) {
  for (const char* level : {"L1", "L2", "L3", "l3", "2"}) {
    EXPECT_NE(build("cachecopy", {"--cache", level, "--multiplier", "0.9",
                                  "--rate", "100ms", "-d", "30s"}),
              nullptr)
        << "level " << level;
  }
}

TEST(CacheCopyKnobs, RejectsBadValues) {
  EXPECT_THROW(build("cachecopy", {"-c", "L4"}), ConfigError);
  EXPECT_THROW(build("cachecopy", {"-c", "dram"}), ConfigError);
  EXPECT_THROW(build("cachecopy", {"-m", "big"}), ConfigError);
  // Negative numbers never make it past the lexer...
  EXPECT_THROW(build("cachecopy", {"-m", "-1"}), ConfigError);
  // ...zero does, and dies in the constructor precondition.
  EXPECT_THROW(build("cachecopy", {"-m", "0"}), InvariantError);
}

// ---- membw: buffer size, rate ------------------------------------------

TEST(MemBwKnobs, AllKnobsParse) {
  EXPECT_NE(build("membw", {"--size", "64M", "--rate", "0s", "-d", "30s"}),
            nullptr);
  EXPECT_NE(build("membw", {"-s", "1G", "-r", "10ms"}), nullptr);
  EXPECT_NE(build("membw", {"-s", "4096"}), nullptr);  // plain bytes
}

TEST(MemBwKnobs, RejectsBadValues) {
  EXPECT_THROW(build("membw", {"-s", "64Q"}), ConfigError);
  EXPECT_THROW(build("membw", {"-s", "lots"}), ConfigError);
  // Below the 64-double minimum matrix: well-formed, invalid value.
  EXPECT_THROW(build("membw", {"-s", "16"}), InvariantError);
}

// ---- memeater: step size, max size, rate -------------------------------

TEST(MemEaterKnobs, AllKnobsParse) {
  const auto a = build("memeater", {"--size", "10M", "--max-size", "100M",
                                    "--rate", "2s", "-d", "1m"});
  EXPECT_EQ(a->name(), "memeater");
  EXPECT_NE(build("memeater", {"-s", "1K", "-r", "500ms"}), nullptr);
}

TEST(MemEaterKnobs, RejectsBadValues) {
  EXPECT_THROW(build("memeater", {"-s", "0"}), InvariantError);
  EXPECT_THROW(build("memeater", {"-s", "-1M"}), ConfigError);
  EXPECT_THROW(build("memeater", {"--max-size", "ten"}), ConfigError);
}

// ---- memleak: chunk size, max size, rate -------------------------------

TEST(MemLeakKnobs, AllKnobsParse) {
  EXPECT_NE(build("memleak", {"--size", "20M", "--max-size", "1G", "--rate",
                              "1s", "-d", "5m"}),
            nullptr);
  EXPECT_NE(build("memleak", {"-s", "512K", "-r", "100ms"}), nullptr);
}

TEST(MemLeakKnobs, RejectsBadValues) {
  EXPECT_THROW(build("memleak", {"-s", "0"}), InvariantError);
  EXPECT_THROW(build("memleak", {"-r", "1fortnight"}), ConfigError);
}

// ---- netoccupy: mode, host, port, message size, rate, ntasks -----------

TEST(NetOccupyKnobs, AllKnobsParse) {
  EXPECT_NE(build("netoccupy", {"--mode", "loopback", "--port", "15000",
                                "--size", "1M", "--rate", "0s", "--ntasks",
                                "2", "-d", "10s"}),
            nullptr);
  EXPECT_NE(build("netoccupy", {"-m", "send", "--host", "127.0.0.1"}),
            nullptr);
  EXPECT_NE(build("netoccupy", {"-m", "recv", "-n", "4", "-s", "64K"}),
            nullptr);
}

TEST(NetOccupyKnobs, RejectsBadValues) {
  EXPECT_THROW(build("netoccupy", {"-m", "broadcast"}), ConfigError);
  EXPECT_THROW(build("netoccupy", {"-p", "70000x"}), ConfigError);
  EXPECT_THROW(build("netoccupy", {"-n", "0"}), InvariantError);
  EXPECT_THROW(build("netoccupy", {"-s", "0"}), InvariantError);
}

// ---- iometadata: dir, files/iteration, rate, ntasks --------------------

TEST(IoMetadataKnobs, AllKnobsParse) {
  EXPECT_NE(build("iometadata", {"--dir", "/tmp", "--files", "48", "--rate",
                                 "1s", "--ntasks", "4", "-d", "1m"}),
            nullptr);
  EXPECT_NE(build("iometadata", {"-f", "10", "-n", "2", "-r", "100ms"}),
            nullptr);
}

TEST(IoMetadataKnobs, RejectsBadValues) {
  EXPECT_THROW(build("iometadata", {"-f", "many"}), ConfigError);
  EXPECT_THROW(build("iometadata", {"-f", "0"}), InvariantError);
  EXPECT_THROW(build("iometadata", {"-n", "0"}), InvariantError);
}

// ---- iobandwidth: dir, file size, block size, rate, ntasks -------------

TEST(IoBandwidthKnobs, AllKnobsParse) {
  EXPECT_NE(build("iobandwidth", {"--dir", "/tmp", "--size", "100M",
                                  "--block", "1M", "--rate", "0s",
                                  "--ntasks", "2", "-d", "30s"}),
            nullptr);
  EXPECT_NE(build("iobandwidth", {"-s", "10M", "-b", "64K", "-n", "1"}),
            nullptr);
}

TEST(IoBandwidthKnobs, RejectsBadValues) {
  EXPECT_THROW(build("iobandwidth", {"-s", "0"}), InvariantError);
  EXPECT_THROW(build("iobandwidth", {"-b", "0"}), InvariantError);
  EXPECT_THROW(build("iobandwidth", {"-n", "0"}), InvariantError);
  EXPECT_THROW(build("iobandwidth", {"-b", "1page"}), ConfigError);
}

// ---- cross-cutting: unknown options / missing values -------------------

TEST(AllKnobs, UnknownOptionRejected) {
  for (const auto& info : anomaly_catalog()) {
    const auto parser = make_anomaly_parser(info.name);
    EXPECT_THROW(parser.parse({"--no-such-knob", "1"}), ConfigError)
        << info.name;
  }
}

TEST(AllKnobs, NegativeStartDelayRejected) {
  // Via the CLI the lexer refuses the negative literal outright...
  for (const auto& info : anomaly_catalog())
    EXPECT_THROW(build(info.name, {"--start-delay", "-3s"}), ConfigError)
        << info.name;
  // ...and programmatic construction hits the base-class precondition.
  CpuOccupyOptions opts{.common = {.start_delay_s = -3.0},
                        .utilization_pct = 50.0,
                        .period_s = 1.0};
  EXPECT_THROW(CpuOccupy{opts}, InvariantError);
}

}  // namespace
}  // namespace hpas::anomalies
