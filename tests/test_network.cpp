// Tests for the interconnect model: topology construction, routing, and
// progressive-filling max-min flow rates.
#include "sim/network.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/error.hpp"

namespace hpas::sim {
namespace {

std::unique_ptr<Task> message_task(int src, int dst) {
  TaskProfile profile;
  auto task = std::make_unique<Task>("msg", src, 0, profile,
                                     [](Task&) { return Phase::done(); });
  task->set_phase(Phase::message(dst, 1e9));
  return task;
}

TEST(Topology, TwoTierShape) {
  const Topology topo = Topology::two_tier(2, 4, 10e9, 18e9);
  EXPECT_EQ(topo.num_nodes, 8);
  EXPECT_EQ(topo.num_switches, 2);
  // 8 NIC trunks + 1 inter-switch trunk.
  EXPECT_EQ(topo.trunks.size(), 9u);
}

TEST(Topology, StarShape) {
  const Topology topo = Topology::star(5, 1e9);
  EXPECT_EQ(topo.num_nodes, 5);
  EXPECT_EQ(topo.num_switches, 1);
  EXPECT_EQ(topo.trunks.size(), 5u);
}

TEST(Network, IntraSwitchPathHasTwoHops) {
  Network net(Topology::two_tier(2, 4, 10e9, 18e9));
  EXPECT_EQ(net.path(0, 1).size(), 2u);  // node->switch->node
}

TEST(Network, InterSwitchPathCrossesTrunk) {
  Network net(Topology::two_tier(2, 4, 10e9, 18e9));
  EXPECT_EQ(net.path(0, 4).size(), 3u);  // node->sw0->sw1->node
}

TEST(Network, PathLookupValidatesIds) {
  Network net(Topology::star(3, 1e9));
  EXPECT_THROW(net.path(0, 3), InvariantError);
  EXPECT_THROW(net.path(-1, 0), InvariantError);
}

TEST(Network, SingleFlowLimitedByNic) {
  Network net(Topology::two_tier(2, 4, 10e9, 18e9));
  auto task = message_task(0, 4);
  std::vector<Flow> flows = {{task.get(), 0, 4, 0.0}};
  net.compute_rates(flows);
  EXPECT_NEAR(flows[0].rate, 10e9, 1.0);
  EXPECT_NEAR(task->rates().progress, 10e9, 1.0);
}

TEST(Network, TrunkSharedMaxMinAcrossPairs) {
  Network net(Topology::two_tier(2, 4, 10e9, 18e9));
  auto t1 = message_task(0, 4);
  auto t2 = message_task(1, 5);
  auto t3 = message_task(2, 6);
  std::vector<Flow> flows = {{t1.get(), 0, 4, 0.0},
                             {t2.get(), 1, 5, 0.0},
                             {t3.get(), 2, 6, 0.0}};
  net.compute_rates(flows);
  // Three flows share the 18 GB/s inter-switch trunk: 6 GB/s each.
  for (const Flow& flow : flows) EXPECT_NEAR(flow.rate, 6e9, 1.0);
}

TEST(Network, IntraSwitchFlowsAvoidTrunkContention) {
  Network net(Topology::two_tier(2, 4, 10e9, 18e9));
  auto cross = message_task(0, 4);
  auto local = message_task(1, 2);  // same switch: no trunk hop
  std::vector<Flow> flows = {{cross.get(), 0, 4, 0.0},
                             {local.get(), 1, 2, 0.0}};
  net.compute_rates(flows);
  EXPECT_NEAR(flows[0].rate, 10e9, 1.0);
  EXPECT_NEAR(flows[1].rate, 10e9, 1.0);
}

TEST(Network, NicSharedByFlowsFromSameNode) {
  Network net(Topology::star(4, 10e9));
  auto a = message_task(0, 1);
  auto b = message_task(0, 2);
  std::vector<Flow> flows = {{a.get(), 0, 1, 0.0}, {b.get(), 0, 2, 0.0}};
  net.compute_rates(flows);
  EXPECT_NEAR(flows[0].rate, 5e9, 1.0);
  EXPECT_NEAR(flows[1].rate, 5e9, 1.0);
}

TEST(Network, LoopbackFlowsAreFree) {
  Network net(Topology::star(3, 1e9));
  auto task = message_task(1, 1);
  std::vector<Flow> flows = {{task.get(), 1, 1, 0.0}};
  net.compute_rates(flows);
  EXPECT_GT(flows[0].rate, 1e11);
}

TEST(Network, DirectionsAreIndependent) {
  // Full-duplex trunks: A->B traffic does not throttle B->A.
  Network net(Topology::two_tier(2, 1, 10e9, 10e9));
  auto fwd = message_task(0, 1);
  auto rev = message_task(1, 0);
  std::vector<Flow> flows = {{fwd.get(), 0, 1, 0.0}, {rev.get(), 1, 0, 0.0}};
  net.compute_rates(flows);
  EXPECT_NEAR(flows[0].rate, 10e9, 1.0);
  EXPECT_NEAR(flows[1].rate, 10e9, 1.0);
}

/// Property: total rate over any trunk direction never exceeds capacity.
class NetworkLoadProperty : public ::testing::TestWithParam<int> {};

TEST_P(NetworkLoadProperty, CapacityRespected) {
  const int pairs = GetParam();
  Network net(Topology::two_tier(2, 4, 10e9, 18e9));
  std::vector<std::unique_ptr<Task>> tasks;
  std::vector<Flow> flows;
  for (int i = 0; i < pairs; ++i) {
    const int src = i % 4;
    const int dst = 4 + (i % 4);
    tasks.push_back(message_task(src, dst));
    flows.push_back({tasks.back().get(), src, dst, 0.0});
  }
  net.compute_rates(flows);
  double trunk_total = 0.0;
  for (const Flow& flow : flows) trunk_total += flow.rate;
  EXPECT_LE(trunk_total, 18e9 + 1.0);
  for (const Flow& flow : flows) EXPECT_GT(flow.rate, 0.0);
}

INSTANTIATE_TEST_SUITE_P(PairCounts, NetworkLoadProperty,
                         ::testing::Values(1, 2, 3, 4, 6, 8));

}  // namespace
}  // namespace hpas::sim
