// Tests for the worker-failure vocabulary and the supervision layer:
// errno classification, exponential backoff, the lock-free failure
// channel, and the shimmed retry helpers that prove the EINTR /
// short-write / momentary-ENOSPC logic without real fault hardware.
#include "anomalies/failure.hpp"

#include <gtest/gtest.h>

#include <cerrno>
#include <thread>
#include <vector>

#include "anomalies/supervisor.hpp"
#include "common/error.hpp"

namespace hpas::anomalies {
namespace {

// ---------------------------------------------------------------- taxonomy

TEST(Classify, TransientErrnos) {
  for (const int err : {EINTR, EAGAIN, EBUSY, ENOBUFS, ENOSPC, EDQUOT,
                        EMFILE, ENFILE, ENOMEM}) {
    EXPECT_EQ(classify_errno(FailureOp::kWrite, err), ErrorClass::kTransient)
        << errno_name(err);
  }
}

TEST(Classify, FatalErrnos) {
  for (const int err : {EBADF, ENOENT, EACCES, EPIPE, EROFS, ENOTDIR, EIO}) {
    EXPECT_EQ(classify_errno(FailureOp::kWrite, err), ErrorClass::kFatal)
        << errno_name(err);
  }
}

TEST(Classify, ConnectionErrorsTransientOnlyForConnect) {
  EXPECT_EQ(classify_errno(FailureOp::kConnect, ECONNREFUSED),
            ErrorClass::kTransient);
  EXPECT_EQ(classify_errno(FailureOp::kConnect, ETIMEDOUT),
            ErrorClass::kTransient);
  EXPECT_EQ(classify_errno(FailureOp::kSend, ECONNREFUSED),
            ErrorClass::kFatal);
  EXPECT_EQ(classify_errno(FailureOp::kRecv, ETIMEDOUT), ErrorClass::kFatal);
}

TEST(OnErrorParse, RoundTripsAndRejects) {
  EXPECT_EQ(parse_on_error("retry"), OnError::kRetry);
  EXPECT_EQ(parse_on_error("degrade"), OnError::kDegrade);
  EXPECT_EQ(parse_on_error("abort"), OnError::kAbort);
  EXPECT_EQ(on_error_name(OnError::kDegrade), "degrade");
  EXPECT_THROW(parse_on_error("explode"), ConfigError);
}

TEST(Describe, NamesTaskOpErrnoAndAttempts) {
  WorkerFailure failure;
  failure.task = 3;
  failure.op = FailureOp::kWrite;
  failure.cls = ErrorClass::kTransient;
  failure.err = ENOSPC;
  failure.attempts = 8;
  failure.time_s = 2.41;
  const std::string line = describe(failure);
  EXPECT_NE(line.find("task 3"), std::string::npos) << line;
  EXPECT_NE(line.find("write"), std::string::npos) << line;
  EXPECT_NE(line.find("ENOSPC"), std::string::npos) << line;
  EXPECT_NE(line.find("8 attempts"), std::string::npos) << line;
}

// ----------------------------------------------------------------- backoff

TEST(RetryPolicy, BackoffDoublesAndCaps) {
  RetryPolicy policy;  // 1ms, x2, cap 250ms
  EXPECT_DOUBLE_EQ(policy.backoff_s(1), 0.001);
  EXPECT_DOUBLE_EQ(policy.backoff_s(2), 0.002);
  EXPECT_DOUBLE_EQ(policy.backoff_s(3), 0.004);
  EXPECT_DOUBLE_EQ(policy.backoff_s(20), 0.25);  // capped
}

// ----------------------------------------------------------------- channel

TEST(FailureChannel, RoundTripsInOrder) {
  FailureChannel channel(8);
  for (std::uint32_t i = 0; i < 5; ++i) {
    WorkerFailure f;
    f.task = i;
    EXPECT_TRUE(channel.push(f));
  }
  const auto drained = channel.drain();
  ASSERT_EQ(drained.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) EXPECT_EQ(drained[i].task, i);
  EXPECT_EQ(channel.pushed(), 5u);
  EXPECT_EQ(channel.dropped(), 0u);
}

TEST(FailureChannel, DropsAndCountsOnOverflow) {
  FailureChannel channel(4);  // capacity rounds to 4
  WorkerFailure f;
  for (int i = 0; i < 10; ++i) channel.push(f);
  EXPECT_EQ(channel.pushed(), 4u);
  EXPECT_EQ(channel.dropped(), 6u);
  EXPECT_EQ(channel.drain().size(), 4u);
  // Drained slots are reusable.
  EXPECT_TRUE(channel.push(f));
}

TEST(FailureChannel, ConcurrentPushesNeverLoseCountedRecords) {
  FailureChannel channel(1024);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&channel, t] {
      for (int i = 0; i < kPerThread; ++i) {
        WorkerFailure f;
        f.task = static_cast<std::uint32_t>(t);
        channel.push(f);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(channel.pushed() + channel.dropped(), kThreads * kPerThread);
  EXPECT_EQ(channel.drain().size(), channel.pushed());
}

// ------------------------------------------------- shimmed retry helpers

/// No-op sleep that records the backoffs served.
struct SleepLog {
  std::vector<double> waits;
  SleepFn fn() {
    return [this](double s) { waits.push_back(s); };
  }
};

TEST(RetrySyscall, SucceedsAfterEintrStorm) {
  int calls = 0;
  SleepLog sleeps;
  const IoResult result = retry_syscall(
      FailureOp::kRead, RetryPolicy{},
      [&calls]() -> std::int64_t {
        if (++calls < 4) {
          errno = EINTR;
          return -1;
        }
        return 42;
      },
      [] { return false; }, sleeps.fn());
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.value, 42);
  EXPECT_EQ(result.attempts, 4u);
  EXPECT_EQ(sleeps.waits.size(), 3u);  // one backoff per retry
}

TEST(RetrySyscall, FatalErrnoStopsImmediately) {
  int calls = 0;
  const IoResult result = retry_syscall(
      FailureOp::kWrite, RetryPolicy{},
      [&calls]() -> std::int64_t {
        ++calls;
        errno = EBADF;
        return -1;
      },
      [] { return false; }, nullptr);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.err, EBADF);
  EXPECT_EQ(calls, 1);
}

TEST(RetrySyscall, ExhaustsBudgetOnPersistentTransient) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  int calls = 0;
  const IoResult result = retry_syscall(
      FailureOp::kOpen, policy,
      [&calls]() -> std::int64_t {
        ++calls;
        errno = ENOSPC;
        return -1;
      },
      [] { return false; }, nullptr);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.err, ENOSPC);
  EXPECT_EQ(result.attempts, 3u);
  EXPECT_EQ(calls, 3);
}

TEST(RetrySyscall, TransientHookRunsBeforeEachRetry) {
  int cleanups = 0;
  int calls = 0;
  const IoResult result = retry_syscall(
      FailureOp::kOpen, RetryPolicy{},
      [&calls]() -> std::int64_t {
        if (++calls < 3) {
          errno = ENOSPC;
          return -1;
        }
        return 0;
      },
      [] { return false; }, nullptr, [&cleanups](int err) {
        EXPECT_EQ(err, ENOSPC);
        ++cleanups;
      });
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(cleanups, 2);  // the "clean up, then retry" path
}

TEST(RetrySyscall, CancellationWinsOverRetry) {
  int calls = 0;
  const IoResult result = retry_syscall(
      FailureOp::kRead, RetryPolicy{},
      [&calls]() -> std::int64_t {
        ++calls;
        errno = EINTR;
        return -1;
      },
      [&calls] { return calls >= 2; }, nullptr);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.cancelled());
  EXPECT_EQ(result.err, ECANCELED);
}

TEST(WriteFully, ResumesShortWritesWithRemainder) {
  // The "syscall" writes at most 3 bytes per call: every call but the
  // last is a legal short write the caller must resume, not abort.
  std::string sink;
  const std::string payload = "abcdefgh";
  const IoResult result = write_fully(
      [&sink](const char* data, std::size_t n) -> std::int64_t {
        const std::size_t put = std::min<std::size_t>(n, 3);
        sink.append(data, put);
        return static_cast<std::int64_t>(put);
      },
      payload.data(), payload.size(), RetryPolicy{}, [] { return false; },
      nullptr);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.value, static_cast<std::int64_t>(payload.size()));
  EXPECT_EQ(sink, payload);
}

TEST(WriteFully, RetriesEintrMidStream) {
  std::string sink;
  int calls = 0;
  const std::string payload = "0123456789";
  const IoResult result = write_fully(
      [&](const char* data, std::size_t n) -> std::int64_t {
        if (++calls % 2 == 1) {  // every other call is interrupted
          errno = EINTR;
          return -1;
        }
        const std::size_t put = std::min<std::size_t>(n, 4);
        sink.append(data, put);
        return static_cast<std::int64_t>(put);
      },
      payload.data(), payload.size(), RetryPolicy{}, [] { return false; },
      nullptr);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(sink, payload);
}

TEST(WriteFully, ProgressResetsTheAttemptBudget) {
  // 2-attempt budget, but an ENOSPC before every chunk: forward progress
  // must reset the budget or the long write spuriously fails.
  RetryPolicy policy;
  policy.max_attempts = 2;
  std::string sink;
  bool fail_next = true;
  const std::string payload = "xxxxxxxxxxxx";  // 12 bytes, 4 per chunk
  const IoResult result = write_fully(
      [&](const char* data, std::size_t n) -> std::int64_t {
        if (fail_next) {
          fail_next = false;
          errno = ENOSPC;
          return -1;
        }
        fail_next = true;
        const std::size_t put = std::min<std::size_t>(n, 4);
        sink.append(data, put);
        return static_cast<std::int64_t>(put);
      },
      payload.data(), payload.size(), policy, [] { return false; }, nullptr);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(sink, payload);
}

TEST(WriteFully, FatalErrnoReportsBytesThatMadeItOut) {
  std::string sink;
  int calls = 0;
  const std::string payload = "abcdefgh";
  const IoResult result = write_fully(
      [&](const char* data, std::size_t n) -> std::int64_t {
        if (++calls == 1) {
          sink.append(data, 4);
          (void)n;
          return 4;
        }
        errno = EBADF;
        return -1;
      },
      payload.data(), payload.size(), RetryPolicy{}, [] { return false; },
      nullptr);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.err, EBADF);
  EXPECT_EQ(result.value, 4);  // partial progress is reported, not lost
}

// -------------------------------------------------------------- supervisor

TEST(Supervisor, RetryModeStopsAllOnTerminalFailure) {
  Supervisor sup;
  sup.set_worker_count(4);
  EXPECT_FALSE(sup.should_stop());
  sup.report_failure(1, FailureOp::kWrite, ENOSPC, 8);
  EXPECT_TRUE(sup.should_stop());
  const SupervisionReport report = sup.make_report("iobandwidth");
  EXPECT_TRUE(report.fatal());
  EXPECT_EQ(report.workers_failed, 1u);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].task, 1u);
  EXPECT_EQ(report.failures[0].err, ENOSPC);
  EXPECT_EQ(report.failures[0].attempts, 8u);
}

TEST(Supervisor, DegradeModeRedistributesDuty) {
  Supervisor sup;
  SupervisorOptions opts;
  opts.on_error = OnError::kDegrade;
  sup.set_options(opts);
  sup.set_worker_count(4);
  EXPECT_DOUBLE_EQ(sup.duty_factor(), 1.0);
  sup.report_failure(0, FailureOp::kOpen, EACCES);
  EXPECT_FALSE(sup.should_stop());  // 3 survivors keep running
  EXPECT_DOUBLE_EQ(sup.duty_factor(), 4.0 / 3.0);
  sup.report_failure(1, FailureOp::kOpen, EACCES);
  sup.report_failure(2, FailureOp::kOpen, EACCES);
  EXPECT_FALSE(sup.should_stop());
  EXPECT_DOUBLE_EQ(sup.duty_factor(), 4.0);
  sup.report_failure(3, FailureOp::kOpen, EACCES);
  EXPECT_TRUE(sup.should_stop());  // total wipeout
  EXPECT_EQ(sup.make_report("x").workers_failed, 4u);
}

TEST(Supervisor, AbortModeCollapsesRetryBudget) {
  Supervisor sup;
  SupervisorOptions opts;
  opts.on_error = OnError::kAbort;
  opts.retry.max_attempts = 8;
  sup.set_options(opts);
  EXPECT_EQ(sup.effective_retry().max_attempts, 1);
  sup.report_failure(0, FailureOp::kRead, EINTR);
  EXPECT_TRUE(sup.should_stop());
}

TEST(Supervisor, ExternalCancelFlowsThroughCancelled) {
  Supervisor sup;
  bool stop = false;
  sup.set_cancel([&stop] { return stop; });
  EXPECT_FALSE(sup.cancelled());
  stop = true;
  EXPECT_TRUE(sup.cancelled());
  EXPECT_FALSE(sup.should_stop());  // cancel is external, not a failure
}

TEST(Supervisor, SupervisedIoRecordsRecoveriesAndFailures) {
  Supervisor sup;
  sup.set_worker_count(2);
  int calls = 0;
  const IoResult ok = supervised_io(
      sup, 0, FailureOp::kRead,
      [&calls]() -> std::int64_t {
        if (++calls < 3) {
          errno = EAGAIN;
          return -1;
        }
        return 7;
      },
      nullptr);
  EXPECT_TRUE(ok.ok());
  const IoResult bad = supervised_io(
      sup, 1, FailureOp::kFsync,
      []() -> std::int64_t {
        errno = EIO;
        return -1;
      },
      nullptr);
  EXPECT_FALSE(bad.ok());
  const SupervisionReport report = sup.make_report("test");
  EXPECT_EQ(report.transient_recovered, 1u);
  EXPECT_EQ(report.retries, 2u);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].op, FailureOp::kFsync);
  EXPECT_EQ(report.failures[0].err, EIO);
  EXPECT_NE(report.to_string().find("fsync"), std::string::npos);
}

TEST(Supervisor, CancelledOperationsAreNotFailures) {
  Supervisor sup;
  bool stop = true;
  sup.set_cancel([&stop] { return stop; });
  const IoResult result = supervised_io(
      sup, 0, FailureOp::kRead, []() -> std::int64_t { return 0; }, nullptr);
  EXPECT_TRUE(result.cancelled());
  const SupervisionReport report = sup.make_report("test");
  EXPECT_TRUE(report.healthy());
}

}  // namespace
}  // namespace hpas::anomalies
